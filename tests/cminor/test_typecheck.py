"""Tests for the CMinor type checker."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.errors import TypeCheckError
from repro.cminor.visitor import walk_function_expressions

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


GOOD_PROGRAM = """
struct pair { uint16_t first; uint16_t second; };
uint8_t table[8];
struct pair current;
uint16_t total = 0;

uint16_t sum(uint8_t* values, uint8_t count) {
  uint8_t i;
  uint16_t result = 0;
  for (i = 0; i < count; i++) {
    result = result + values[i];
  }
  return result;
}

__spontaneous void main(void) {
  struct pair* p = &current;
  total = sum(table, 8);
  p->first = total;
  current.second = p->first + 1;
  if (total > 100 && p != NULL) {
    total = 0;
  }
}
"""


class TestAcceptedPrograms:
    def test_good_program_checks(self):
        program = make_program(GOOD_PROGRAM)
        assert program.lookup_function("sum") is not None

    def test_expressions_are_annotated_with_types(self):
        program = make_program(GOOD_PROGRAM, simplify=False)
        func = program.lookup_function("sum")
        for expr in walk_function_expressions(func.body):
            assert expr.ctype is not None, f"unannotated {type(expr).__name__}"

    def test_pointer_member_access_type(self):
        program = make_program(GOOD_PROGRAM, simplify=False)
        main = program.lookup_function("main")
        members = [e for e in walk_function_expressions(main.body)
                   if isinstance(e, ast.Member)]
        assert members
        assert all(m.ctype == ty.UINT16 for m in members)

    def test_call_type_is_return_type(self):
        program = make_program(GOOD_PROGRAM, simplify=False)
        main = program.lookup_function("main")
        calls = [e for e in walk_function_expressions(main.body)
                 if isinstance(e, ast.Call) and e.callee == "sum"]
        assert calls and calls[0].ctype == ty.UINT16

    def test_builtin_calls_are_checked(self):
        make_program("""
__spontaneous void main(void) {
  uint8_t v = __hw_read8(59);
  __hw_write8(59, v);
  __sleep();
}
""")

    def test_string_initializer_for_char_array(self):
        make_program('uint8_t name[8] = "abcdefg";\n__spontaneous void main(void) { }')

    def test_comparison_of_pointer_and_null(self):
        make_program("""
uint8_t data[4];
__spontaneous void main(void) {
  uint8_t* p = data;
  if (p == NULL) {
    p = data;
  }
}
""")

    def test_local_initializer_may_reference_parameters(self):
        make_program("""
uint8_t twice(uint8_t x) {
  uint8_t doubled = x + x;
  return doubled;
}
__spontaneous void main(void) { twice(3); }
""")


class TestRejectedPrograms:
    def rejects(self, source):
        with pytest.raises(TypeCheckError):
            make_program(source)

    def test_undeclared_identifier(self):
        self.rejects("__spontaneous void main(void) { missing = 1; }")

    def test_unknown_function(self):
        self.rejects("__spontaneous void main(void) { nothing(); }")

    def test_wrong_argument_count(self):
        self.rejects("""
uint8_t f(uint8_t a) { return a; }
__spontaneous void main(void) { f(1, 2); }
""")

    def test_assigning_struct_to_int(self):
        self.rejects("""
struct pair { uint16_t a; uint16_t b; };
struct pair p;
__spontaneous void main(void) { uint8_t x = p; }
""")

    def test_dereferencing_non_pointer(self):
        self.rejects("__spontaneous void main(void) { uint8_t x = 1; uint8_t y = *x; }")

    def test_member_of_non_struct(self):
        self.rejects("__spontaneous void main(void) { uint8_t x = 1; x.field = 2; }")

    def test_unknown_struct_field(self):
        self.rejects("""
struct pair { uint16_t a; uint16_t b; };
struct pair p;
__spontaneous void main(void) { p.c = 1; }
""")

    def test_return_value_from_void_function(self):
        self.rejects("void f(void) { return 1; }\n__spontaneous void main(void) { f(); }")

    def test_missing_return_value(self):
        self.rejects("uint8_t f(void) { return; }\n__spontaneous void main(void) { f(); }")

    def test_assignment_to_non_lvalue(self):
        self.rejects("__spontaneous void main(void) { uint8_t x; x + 1 = 2; }")

    def test_assigning_to_array(self):
        self.rejects("""
uint8_t a[4];
uint8_t b[4];
__spontaneous void main(void) { a = b; }
""")

    def test_duplicate_local_in_same_scope(self):
        self.rejects("__spontaneous void main(void) { uint8_t x; uint8_t x; }")

    def test_duplicate_struct_definition_conflicts(self):
        self.rejects("""
struct p { uint8_t a; };
struct p { uint16_t a; };
__spontaneous void main(void) { }
""")

    def test_post_of_unknown_task(self):
        self.rejects("__spontaneous void main(void) { post nothing(); }")

    def test_void_variable(self):
        self.rejects("__spontaneous void main(void) { void x; }")

    def test_non_scalar_condition(self):
        self.rejects("""
struct pair { uint16_t a; uint16_t b; };
struct pair p;
__spontaneous void main(void) { if (p) { } }
""")

    def test_too_many_array_initializers(self):
        self.rejects("uint8_t t[2] = {1, 2, 3};\n__spontaneous void main(void) { }")
