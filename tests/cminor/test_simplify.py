"""Tests for the CIL-style simplifier."""

from repro.cminor import ast_nodes as ast
from repro.cminor.visitor import walk_statements

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program, statements_of


def loop_statements(program, function="main"):
    return [s for s in statements_of(program, function)
            if isinstance(s, (ast.While, ast.DoWhile, ast.For))]


class TestLoopNormalization:
    def test_for_becomes_while_one(self):
        program = make_program("""
uint8_t total;
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 4; i++) { total = total + i; }
}
""")
        loops = loop_statements(program)
        assert len(loops) == 1
        assert isinstance(loops[0], ast.While)
        assert isinstance(loops[0].cond, ast.IntLiteral) and loops[0].cond.value == 1

    def test_while_condition_becomes_guarded_break(self):
        program = make_program("""
uint8_t n = 10;
__spontaneous void main(void) {
  while (n > 0) { n = n - 1; }
}
""")
        (loop,) = loop_statements(program)
        guard = loop.body.stmts[0]
        assert isinstance(guard, ast.If)
        assert isinstance(guard.then_body.stmts[0], ast.Break)

    def test_do_while_guard_is_at_the_end(self):
        program = make_program("""
uint8_t n = 10;
__spontaneous void main(void) {
  do { n = n - 1; } while (n > 0);
}
""")
        (loop,) = loop_statements(program)
        assert isinstance(loop.body.stmts[-1], ast.If)

    def test_infinite_while_is_left_alone(self):
        program = make_program("""
__spontaneous void main(void) {
  while (1) { __sleep(); }
}
""")
        (loop,) = loop_statements(program)
        assert not any(isinstance(s, ast.If) for s in loop.body.stmts)

    def test_for_continue_still_runs_update(self):
        program = make_program("""
uint8_t total = 0;
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 8; i++) {
    if (i == 3) { continue; }
    total = total + 1;
  }
}
""")
        (loop,) = loop_statements(program)
        # The continue must be preceded by a copy of the update statement.
        continues = [s for s in walk_statements(loop.body)
                     if isinstance(s, ast.Continue)]
        assert len(continues) == 1
        then_body = [s for s in walk_statements(loop.body) if isinstance(s, ast.If)
                     and any(isinstance(x, ast.Continue) for x in s.then_body.stmts)]
        assert then_body
        updates_before_continue = [s for s in then_body[0].then_body.stmts
                                   if isinstance(s, ast.Assign)]
        assert updates_before_continue, "update must be duplicated before continue"

    def test_simplify_preserves_statement_semantics_counts(self):
        source = """
uint8_t data[4];
uint8_t total;
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 4; i++) { total = total + data[i]; }
}
"""
        program = make_program(source)
        assigns = [s for s in statements_of(program, "main")
                   if isinstance(s, ast.Assign)]
        # i = 0, total = total + data[i], i = i + 1
        assert len(assigns) == 3


class TestCleanup:
    def test_nops_and_empty_blocks_removed(self):
        program = make_program("""
__spontaneous void main(void) {
  ;
  { }
  { ; }
}
""")
        stmts = statements_of(program, "main")
        assert all(not isinstance(s, ast.Nop) for s in stmts)

    def test_nested_blocks_are_preserved_if_nonempty(self):
        program = make_program("""
uint8_t x;
__spontaneous void main(void) {
  { x = 1; }
}
""")
        assigns = [s for s in statements_of(program, "main")
                   if isinstance(s, ast.Assign)]
        assert len(assigns) == 1
