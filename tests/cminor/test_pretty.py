"""Tests for the pretty-printer, including a parse/print round-trip property."""

import pytest
from hypothesis import given, strategies as st

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.parser import parse_expression, parse_statement
from repro.cminor.pretty import PrettyPrinter, to_source

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


class TestExpressions:
    @pytest.mark.parametrize("source", [
        "a + b * c",
        "(a + b) * c",
        "a & b | c",
        "x << 2 | y >> 3",
        "!flag && count > 0",
        "buffer[i + 1]",
        "msg->data[0]",
        "packet.header.length",
        "*p + 1",
        "&table[3]",
        "f(a, b + 1)",
        "(uint16_t)value",
        "a ? b : c",
    ])
    def test_roundtrip_preserves_structure(self, source):
        first = parse_expression(source)
        printed = to_source(first)
        second = parse_expression(printed)
        from repro.cminor.visitor import expressions_equal

        assert expressions_equal(first, second), f"{source!r} -> {printed!r}"

    def test_string_escaping(self):
        literal = ast.StringLiteral('he said "hi"\n')
        printed = to_source(literal)
        assert printed == '"he said \\"hi\\"\\n"'

    def test_type_formatting(self):
        printer = PrettyPrinter()
        assert printer.format_type(ty.PointerType(ty.UINT8), "p") == "uint8_t* p"
        assert printer.format_type(ty.ArrayType(ty.UINT16, 4), "t") == "uint16_t t[4]"


class TestStatements:
    def test_if_else_layout(self):
        stmt = parse_statement("if (a) { x = 1; } else { x = 2; }")
        text = to_source(stmt)
        assert "if (a) {" in text and "} else {" in text

    def test_atomic_marks_injected_sections(self):
        atomic = ast.Atomic(ast.Block([]), synthetic=True)
        assert "injected" in to_source(atomic)

    def test_post_statement(self):
        assert to_source(parse_statement("post report();")) == "post report();"

    def test_vardecl_with_qualifiers(self):
        stmt = parse_statement("const uint8_t limit = 3;")
        assert to_source(stmt) == "const uint8_t limit = 3;"


class TestProgramPrinting:
    def test_whole_program_roundtrips(self):
        source = """
struct item { uint8_t kind; uint16_t value; };
struct item inventory[4];
uint16_t total = 0;

uint16_t tally(void) {
  uint8_t i;
  uint16_t sum = 0;
  for (i = 0; i < 4; i++) {
    sum = sum + inventory[i].value;
  }
  return sum;
}

__spontaneous void main(void) {
  total = tally();
}
"""
        program = make_program(source, simplify=False)
        printed = to_source(program)
        reparsed = make_program(printed, simplify=False)
        assert set(reparsed.functions) == set(program.functions)
        assert set(reparsed.globals) == set(program.globals)

    def test_function_attributes_survive_printing(self):
        program = make_program(
            '__interrupt("ADC") void handler(void) { }\n'
            '__spontaneous void main(void) { }', simplify=False)
        printed = to_source(program)
        assert '__interrupt("ADC")' in printed
        assert "__spontaneous" in printed


@st.composite
def literal_expressions(draw):
    """Small random integer expressions over literals."""
    depth = draw(st.integers(0, 3))

    def build(level):
        if level == 0:
            return ast.IntLiteral(draw(st.integers(0, 1000)))
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return ast.BinaryOp(op, build(level - 1),
                            ast.IntLiteral(draw(st.integers(0, 1000))))

    return build(depth)


class TestRoundTripProperty:
    @given(literal_expressions())
    def test_literal_expression_roundtrip(self, expr):
        from repro.cminor.visitor import expressions_equal

        printed = to_source(expr)
        reparsed = parse_expression(printed)
        assert expressions_equal(expr, reparsed)
