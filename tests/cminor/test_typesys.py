"""Tests (including property-based tests) for the CMinor type system."""

import pytest
from hypothesis import given, strategies as st

from repro.cminor import typesys as ty


SCALAR_TYPES = [ty.BOOL, ty.CHAR, ty.INT8, ty.UINT8, ty.INT16, ty.UINT16,
                ty.INT32, ty.UINT32]
INT_TYPES = [ty.INT8, ty.UINT8, ty.INT16, ty.UINT16, ty.INT32, ty.UINT32]


class TestSizes:
    @pytest.mark.parametrize("ctype,size", [
        (ty.VOID, 0), (ty.BOOL, 1), (ty.CHAR, 1), (ty.INT8, 1), (ty.UINT8, 1),
        (ty.INT16, 2), (ty.UINT16, 2), (ty.INT32, 4), (ty.UINT32, 4),
    ])
    def test_scalar_sizes(self, ctype, size):
        assert ctype.sizeof() == size

    def test_pointer_size_follows_target_platform(self):
        pointer = ty.PointerType(ty.UINT32)
        assert pointer.sizeof(pointer_size=2) == 2
        assert pointer.sizeof(pointer_size=4) == 4

    def test_array_size(self):
        assert ty.ArrayType(ty.UINT16, 10).sizeof() == 20

    def test_struct_size_and_offsets(self):
        struct = ty.StructType("msg", (
            ty.StructField("addr", ty.UINT16),
            ty.StructField("type", ty.UINT8),
            ty.StructField("data", ty.ArrayType(ty.UINT8, 4)),
        ))
        assert struct.sizeof() == 7
        assert struct.field_offset("addr") == 0
        assert struct.field_offset("type") == 2
        assert struct.field_offset("data") == 3
        assert struct.field_type("data").length == 4

    def test_struct_unknown_field_raises(self):
        struct = ty.StructType("empty", ())
        with pytest.raises(KeyError):
            struct.field_offset("nothing")

    def test_invalid_integer_width_rejected(self):
        with pytest.raises(ValueError):
            ty.IntType(12, True)


class TestClassification:
    def test_predicates(self):
        assert ty.UINT8.is_integer() and ty.UINT8.is_scalar()
        assert ty.PointerType(ty.VOID).is_pointer()
        assert ty.ArrayType(ty.UINT8, 3).is_array()
        assert not ty.ArrayType(ty.UINT8, 3).is_scalar()
        assert ty.VOID.is_void()

    def test_array_decay(self):
        decayed = ty.ArrayType(ty.UINT16, 8).decay()
        assert decayed == ty.PointerType(ty.UINT16)

    def test_scalar_decay_is_identity(self):
        assert ty.UINT8.decay() == ty.UINT8

    def test_structural_equality(self):
        assert ty.PointerType(ty.UINT8) == ty.PointerType(ty.UINT8)
        assert ty.ArrayType(ty.UINT8, 4) != ty.ArrayType(ty.UINT8, 5)


class TestArithmeticConversions:
    def test_promotion_to_sixteen_bits(self):
        result = ty.common_arithmetic_type(ty.UINT8, ty.UINT8)
        assert result.bits == 16

    def test_wider_operand_wins(self):
        result = ty.common_arithmetic_type(ty.UINT8, ty.UINT32)
        assert result.bits == 32 and not result.signed

    def test_signedness_mixing(self):
        result = ty.common_arithmetic_type(ty.INT16, ty.UINT16)
        assert not result.signed

    def test_wrap_unsigned(self):
        assert ty.UINT8.wrap(256) == 0
        assert ty.UINT8.wrap(257) == 1

    def test_wrap_signed(self):
        assert ty.INT8.wrap(128) == -128
        assert ty.INT8.wrap(-129) == 127

    def test_wrap_to_bool_and_pointer(self):
        assert ty.wrap_to(ty.BOOL, 7) == 1
        assert ty.wrap_to(ty.PointerType(ty.UINT8), 0x1FFFF) == 0xFFFF

    def test_integer_limits(self):
        assert ty.integer_limits(ty.UINT8) == (0, 255)
        assert ty.integer_limits(ty.INT16) == (-32768, 32767)
        assert ty.integer_limits(ty.BOOL) == (0, 1)


class TestAssignability:
    def test_integers_interconvert(self):
        assert ty.is_assignable(ty.UINT8, ty.UINT32)
        assert ty.is_assignable(ty.INT32, ty.BOOL)

    def test_array_decays_into_pointer(self):
        assert ty.is_assignable(ty.PointerType(ty.UINT8), ty.ArrayType(ty.UINT8, 4))

    def test_void_pointer_accepts_any_pointer(self):
        assert ty.is_assignable(ty.PointerType(ty.VOID), ty.PointerType(ty.UINT16))
        assert ty.is_assignable(ty.PointerType(ty.UINT16), ty.PointerType(ty.VOID))

    def test_incompatible_pointers_rejected(self):
        msg = ty.StructType("m", (ty.StructField("x", ty.UINT8),))
        assert not ty.is_assignable(ty.PointerType(msg), ty.PointerType(ty.UINT16))

    def test_struct_assignment_requires_same_struct(self):
        a = ty.StructType("a", (ty.StructField("x", ty.UINT8),))
        b = ty.StructType("b", (ty.StructField("x", ty.UINT8),))
        assert ty.is_assignable(a, a)
        assert not ty.is_assignable(a, b)

    def test_pointer_compatibility(self):
        assert ty.pointer_compatible(ty.PointerType(ty.UINT8), ty.PointerType(ty.CHAR))
        assert ty.pointer_compatible(ty.PointerType(ty.VOID), ty.PointerType(ty.UINT32))
        assert not ty.pointer_compatible(ty.PointerType(ty.UINT8),
                                         ty.PointerType(ty.UINT16))

    def test_iter_struct_types(self):
        inner = ty.StructType("inner", (ty.StructField("v", ty.UINT8),))
        outer = ty.StructType("outer", (
            ty.StructField("one", inner),
            ty.StructField("many", ty.ArrayType(inner, 3)),
        ))
        names = {s.name for s in ty.iter_struct_types(ty.PointerType(outer))}
        assert names == {"outer", "inner"}


class TestWrapProperties:
    @given(st.sampled_from(INT_TYPES), st.integers(-(1 << 40), 1 << 40))
    def test_wrap_is_always_in_range(self, ctype, value):
        wrapped = ctype.wrap(value)
        assert ctype.min_value <= wrapped <= ctype.max_value

    @given(st.sampled_from(INT_TYPES), st.integers(-(1 << 40), 1 << 40))
    def test_wrap_is_idempotent(self, ctype, value):
        assert ctype.wrap(ctype.wrap(value)) == ctype.wrap(value)

    @given(st.sampled_from(INT_TYPES), st.integers(-(1 << 40), 1 << 40))
    def test_wrap_preserves_congruence(self, ctype, value):
        modulus = 1 << ctype.bits
        assert (ctype.wrap(value) - value) % modulus == 0

    @given(st.sampled_from(INT_TYPES), st.sampled_from(INT_TYPES))
    def test_common_type_is_at_least_as_wide(self, left, right):
        result = ty.common_arithmetic_type(left, right)
        assert result.bits >= max(left.bits, right.bits)
        assert result.bits >= 16

    @given(st.sampled_from(SCALAR_TYPES))
    def test_every_scalar_value_fits_its_size(self, ctype):
        assert ctype.sizeof() >= 1
