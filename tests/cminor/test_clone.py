"""Tests for the fast structural ``Program.clone()``.

The sweep runner's front-end sharing rests on two properties:

* clones build to **byte-identical images** (same code bytes, same RAM
  layout, same surviving checks) as a freshly flattened program, and
* mutations of a clone never leak into the shared front-end program.
"""

import copy

from repro.backend.image import build_image
from repro.cminor import typesys as ty
from repro.cminor.pretty import PrettyPrinter
from repro.cminor.visitor import walk_statements
from repro.nesc.flatten import flatten_application
from repro.nesc.hwrefactor import refactor_hardware_accesses
from repro.tinyos import suite
from repro.toolchain.lower import back_end_passes
from repro.toolchain.passes import PassContext, PassManager
from repro.toolchain.variants import SAFE_OPTIMIZED

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import tiny_application

APP = "Oscilloscope_Mica2"


def _front_end_program():
    program = suite.build_program(APP, suppress_norace=True)
    refactor_hardware_accesses(program)
    return program


def _render(program) -> str:
    printer = PrettyPrinter()
    parts = [printer.format_global(v) for v in program.iter_globals()]
    parts += [printer.format_function(f) for f in program.iter_functions()]
    return "\n".join(parts)


def _build_back_end(program, app):
    ctx = PassContext(variant=SAFE_OPTIMIZED, application=app, label=APP,
                      program=program)
    PassManager(back_end_passes(SAFE_OPTIMIZED)).run(ctx)
    return ctx.image


class TestCloneFidelity:
    def test_clone_is_structurally_identical(self):
        program = _front_end_program()
        clone = program.clone()
        assert _render(clone) == _render(program)
        assert clone.summary() == program.summary()
        assert clone.tasks == program.tasks
        assert clone.interrupt_vectors == program.interrupt_vectors
        assert clone.racy_variables == program.racy_variables
        assert clone.structs.all() == program.structs.all()
        assert sorted(clone.builtins) == sorted(program.builtins)

    def test_clone_matches_deepcopy_semantics(self):
        program = _front_end_program()
        assert _render(program.clone()) == _render(copy.deepcopy(program))

    def test_cloned_statements_get_fresh_node_ids(self):
        program = flatten_application(tiny_application(), suppress_norace=True)
        clone = program.clone()
        original_ids = {s.node_id for f in program.iter_functions()
                        for s in walk_statements(f.body)}
        clone_ids = {s.node_id for f in clone.iter_functions()
                     for s in walk_statements(f.body)}
        assert not original_ids & clone_ids

    def test_clones_build_to_byte_identical_images(self):
        app = suite.build_application(APP)
        shared = _front_end_program()
        image_a = _build_back_end(shared.clone(), app)
        image_b = _build_back_end(shared.clone(), app)
        fresh = _build_back_end(_front_end_program(), app)
        for image in (image_b, fresh):
            assert image.code_bytes == image_a.code_bytes
            assert image.ram_bytes == image_a.ram_bytes
            assert image.function_sizes == image_a.function_sizes
            assert image.global_sizes == image_a.global_sizes
            assert image.surviving_checks == image_a.surviving_checks


class TestCloneIsolation:
    def test_mutating_a_clone_never_touches_the_original(self):
        program = _front_end_program()
        before = _render(program)
        before_meta = (list(program.tasks), dict(program.interrupt_vectors),
                       set(program.racy_variables), set(program.globals),
                       set(program.functions), program.structs.names())

        clone = program.clone()
        _build_back_end(clone, suite.build_application(APP))

        assert _render(program) == before
        assert (list(program.tasks), dict(program.interrupt_vectors),
                set(program.racy_variables), set(program.globals),
                set(program.functions), program.structs.names()) == before_meta

    def test_clone_has_its_own_struct_table_and_analysis_cache(self):
        program = _front_end_program()
        program.analysis().local_types(next(program.iter_functions()))
        clone = program.clone()
        assert clone.__dict__.get("_analysis_cache") is None

        clone.structs.define("clone_only", [ty.StructField("x", ty.UINT8)])
        assert program.structs.get("clone_only") is None

    def test_original_analysis_cache_survives_cloning(self):
        program = _front_end_program()
        func = next(program.iter_functions())
        cached = program.analysis().local_types(func)
        program.clone()
        assert program.analysis().local_types(func) is cached
