"""Tests for the CMinor lexer."""

import pytest

from repro.cminor.errors import LexError
from repro.cminor.lexer import Lexer, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifier(self):
        (tok,) = tokenize("counter")[:-1]
        assert tok.kind == "ident"
        assert tok.text == "counter"

    def test_keyword_versus_identifier(self):
        toks = tokenize("uint8_t counterx")[:-1]
        assert toks[0].kind == "keyword"
        assert toks[1].kind == "ident"

    def test_decimal_literal(self):
        (tok,) = tokenize("1234")[:-1]
        assert tok.kind == "int"
        assert tok.value == 1234

    def test_hex_literal(self):
        (tok,) = tokenize("0x7Fff")[:-1]
        assert tok.value == 0x7FFF

    def test_integer_suffixes_are_accepted(self):
        (tok,) = tokenize("42UL")[:-1]
        assert tok.value == 42

    def test_char_literal(self):
        (tok,) = tokenize("'A'")[:-1]
        assert tok.kind == "char"
        assert tok.value == ord("A")

    def test_char_escape(self):
        (tok,) = tokenize(r"'\n'")[:-1]
        assert tok.value == ord("\n")

    def test_string_literal(self):
        (tok,) = tokenize('"hello mote"')[:-1]
        assert tok.kind == "string"
        assert tok.text == "hello mote"

    def test_string_escapes(self):
        (tok,) = tokenize(r'"a\tb\0"')[:-1]
        assert tok.text == "a\tb\0"

    def test_underscore_identifier(self):
        (tok,) = tokenize("__hw_write8")[:-1]
        assert tok.kind == "ident"


class TestOperators:
    @pytest.mark.parametrize("op", ["<<=", ">>=", "==", "!=", "<=", ">=", "&&",
                                    "||", "<<", ">>", "->", "++", "--", "+", "-",
                                    "*", "/", "%", "&", "|", "^", "~", "!", "?",
                                    ":"])
    def test_single_operator(self, op):
        (tok,) = tokenize(op)[:-1]
        assert tok.kind == "op"
        assert tok.text == op

    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("p->f") == ["p", "->", "f"]

    def test_arrow_not_confused_with_minus(self):
        assert texts("a-b") == ["a", "-", "b"]


class TestWhitespaceAndComments:
    def test_line_comments_are_skipped(self):
        assert kinds("a // comment\n b") == ["ident", "ident"]

    def test_block_comments_are_skipped(self):
        assert kinds("a /* multi\nline */ b") == ["ident", "ident"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"never closed')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b", filename="unit.c")
        assert tokens[0].loc.line == 1 and tokens[0].loc.column == 1
        assert tokens[1].loc.line == 2 and tokens[1].loc.column == 3
        assert tokens[1].loc.filename == "unit.c"

    def test_token_helpers(self):
        tok = tokenize("if")[0]
        assert tok.is_keyword("if")
        assert not tok.is_op("if")

    def test_statement_token_stream(self):
        assert kinds("x = x + 1;") == ["ident", "op", "ident", "op", "int", "op"]
