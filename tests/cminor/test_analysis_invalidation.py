"""Analysis-cache invalidation coverage across every mutating pass.

For a figure application, each transformation stage is run with a fully
warmed ``Program.analysis()`` cache; afterwards the cache must be
indistinguishable from a fresh recompute.  A pass that mutates function
bodies without (declaratively or manually) invalidating the cache fails
these assertions, because the warmed entries would describe the old AST.
"""

import pytest

from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.instrument import cure
from repro.ccured.optimizer import optimize_checks
from repro.backend.gcc_opt import gcc_optimize
from repro.cminor.analysis_cache import ProgramAnalysisCache
from repro.cminor.simplify import simplify_program
from repro.cminor.visitor import statement_expressions, walk_statements
from repro.cxprop.driver import CxpropConfig
from repro.cxprop.inline import inline_program
from repro.cxprop.passes import (
    AtomicOptPass,
    CopyPropPass,
    CxpropFactsPass,
    DcePass,
    FoldPass,
)
from repro.nesc.hwrefactor import refactor_hardware_accesses
from repro.tinyos import suite
from repro.toolchain.passes import PassContext, PassManager

APP = "Oscilloscope_Mica2"


def _warm(program) -> None:
    """Populate every cacheable analysis for every function."""
    cache = program.analysis()
    for func in program.iter_functions():
        cache.local_types(func)
        cache.address_taken_locals(func)
        for stmt in walk_statements(func.body):
            cache.statement_expressions(stmt, func.name)


def _assert_cache_fresh(program) -> None:
    """The live cache must agree with a from-scratch recompute."""
    cache = program.analysis()
    fresh = ProgramAnalysisCache(program)
    for func in program.iter_functions():
        assert cache.local_types(func) == fresh.local_types(func), \
            f"stale local_types for {func.name}"
        assert cache.address_taken_locals(func) == \
            fresh.address_taken_locals(func), \
            f"stale address_taken_locals for {func.name}"
        for stmt in walk_statements(func.body):
            cached = cache.statement_expressions(stmt, func.name)
            expected = tuple(statement_expressions(stmt))
            assert len(cached) == len(expected) and \
                all(a is b for a, b in zip(cached, expected)), \
                f"stale statement_expressions in {func.name}"


@pytest.fixture()
def program():
    return suite.build_program(APP, suppress_norace=True)


def _run_pass(program, pass_, ctx=None):
    """Run one pass under the manager's declaration-driven invalidation."""
    ctx = ctx or PassContext(program=program)
    ctx.program = program
    PassManager([pass_]).run(ctx)
    return ctx


class TestMutatingStagesKeepAnalysisConsistent:
    def test_simplify(self, program):
        _warm(program)
        simplify_program(program)
        _assert_cache_fresh(program)

    def test_hwrefactor(self, program):
        _warm(program)
        refactor_hardware_accesses(program)
        _assert_cache_fresh(program)

    def test_cure_and_ccured_optimizer(self, program):
        refactor_hardware_accesses(program)
        _warm(program)
        cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                                   run_optimizer=False))
        _assert_cache_fresh(program)

        from repro.ccured.passes import CCuredOptimizerPass
        _warm(program)
        _run_pass(program, CCuredOptimizerPass())
        _assert_cache_fresh(program)

    def test_inliner(self, program):
        refactor_hardware_accesses(program)
        cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                                   run_optimizer=False))
        _warm(program)
        inline_program(program)
        _assert_cache_fresh(program)

    def test_every_cxprop_pass(self, program):
        refactor_hardware_accesses(program)
        cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID))
        config = CxpropConfig()
        ctx = PassContext(program=program)
        for pass_ in [CxpropFactsPass(config), FoldPass(config),
                      CopyPropPass(), AtomicOptPass(), DcePass()]:
            _warm(program)
            _run_pass(program, pass_, ctx)
            _assert_cache_fresh(program)

    def test_gcc_optimizer(self, program):
        refactor_hardware_accesses(program)
        cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID))
        _warm(program)
        gcc_optimize(program)
        _assert_cache_fresh(program)


def test_optimize_checks_invalidates_under_the_manager(program):
    """``ccured.optimize`` relies on the declaration (the raw function does
    not self-invalidate), so running it through the manager must clean up."""
    refactor_hardware_accesses(program)
    cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                               run_optimizer=False))
    _warm(program)
    removed = optimize_checks(program)
    assert removed > 0
    # Direct call: the cache may now be stale; the manager-driven path in
    # TestMutatingStagesKeepAnalysisConsistent covers the supported route.
    program.invalidate_analysis()
    _assert_cache_fresh(program)
