"""Tests for the AST traversal and rewriting helpers."""

from repro.cminor import ast_nodes as ast
from repro.cminor.parser import parse_expression, parse_statement
from repro.cminor.visitor import (
    clone_block,
    clone_expression,
    clone_statement,
    collect_called_functions,
    collect_identifiers,
    count_statements,
    expressions_equal,
    map_expression,
    statement_expressions,
    transform_block,
    walk_expression,
    walk_statements,
)

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


class TestExpressionTraversal:
    def test_walk_expression_visits_all_nodes(self):
        expr = parse_expression("f(a[i], b + c->d)")
        kinds = [type(node).__name__ for node in walk_expression(expr)]
        assert "Call" in kinds and "Index" in kinds and "Member" in kinds

    def test_map_expression_rewrites_bottom_up(self):
        expr = parse_expression("a + b")

        def rename(node):
            if isinstance(node, ast.Identifier):
                node.name = node.name.upper()
            return node

        result = map_expression(expr, rename)
        assert {n.name for n in walk_expression(result)
                if isinstance(n, ast.Identifier)} == {"A", "B"}

    def test_map_expression_can_replace_nodes(self):
        expr = parse_expression("a + 1")

        def fold(node):
            if isinstance(node, ast.Identifier):
                return ast.IntLiteral(41)
            return node

        result = map_expression(expr, fold)
        literals = [n.value for n in walk_expression(result)
                    if isinstance(n, ast.IntLiteral)]
        assert sorted(literals) == [1, 41]

    def test_expressions_equal_ignores_locations(self):
        left = parse_expression("a[i] + f(1)")
        right = parse_expression("a[ i ] + f( 1 )")
        assert expressions_equal(left, right)
        assert not expressions_equal(left, parse_expression("a[j] + f(1)"))

    def test_clone_expression_is_independent(self):
        original = parse_expression("x + y")
        clone = clone_expression(original)
        clone.left.name = "z"
        assert original.left.name == "x"


class TestStatementTraversal:
    SOURCE = """
uint8_t table[4];
uint8_t total;
void helper(void) { total = 0; }
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 4; i++) {
    if (table[i] > 2) {
      helper();
    } else {
      total = total + table[i];
    }
  }
  post work();
}
void work(void) { }
"""

    def test_walk_statements_reaches_nested_statements(self):
        program = make_program(self.SOURCE, simplify=False)
        func = program.lookup_function("main")
        kinds = {type(s).__name__ for s in walk_statements(func.body)}
        assert {"For", "If", "Assign", "ExprStmt", "Post"} <= kinds

    def test_collect_called_functions_includes_posts(self):
        program = make_program(self.SOURCE, simplify=False)
        func = program.lookup_function("main")
        assert collect_called_functions(func.body) == {"helper", "work"}

    def test_collect_identifiers(self):
        program = make_program(self.SOURCE, simplify=False)
        func = program.lookup_function("main")
        names = collect_identifiers(func.body)
        assert {"i", "table", "total"} <= names

    def test_count_statements_excludes_blocks(self):
        program = make_program(self.SOURCE, simplify=False)
        func = program.lookup_function("helper")
        assert count_statements(func.body) == 1

    def test_statement_expressions_of_if(self):
        stmt = parse_statement("if (a > b) { x = 1; }")
        exprs = statement_expressions(stmt)
        assert len(exprs) == 1 and isinstance(exprs[0], ast.BinaryOp)

    def test_transform_block_can_delete_and_expand(self):
        program = make_program(self.SOURCE)
        func = program.lookup_function("main")
        before = count_statements(func.body)

        def drop_posts(stmt):
            if isinstance(stmt, ast.Post):
                return None
            if isinstance(stmt, ast.ExprStmt):
                return [stmt, clone_statement(stmt)]
            return stmt

        transform_block(func.body, drop_posts)
        after_stmts = list(walk_statements(func.body))
        assert not any(isinstance(s, ast.Post) for s in after_stmts)
        assert count_statements(func.body) == before  # one removed, one doubled

    def test_clone_statement_assigns_fresh_node_ids(self):
        stmt = parse_statement("if (a) { b = 1; }")
        clone = clone_statement(stmt)
        original_ids = {s.node_id for s in walk_statements(ast.Block([stmt]))}
        clone_ids = {s.node_id for s in walk_statements(ast.Block([clone]))}
        assert original_ids.isdisjoint(clone_ids)

    def test_clone_block_preserves_structure(self):
        program = make_program(self.SOURCE)
        func = program.lookup_function("main")
        clone = clone_block(func.body)
        assert count_statements(clone) == count_statements(func.body)
