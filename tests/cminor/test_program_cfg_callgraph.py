"""Tests for whole-program linking, the CFG builder, and the call graph."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.callgraph import build_call_graph
from repro.cminor.cfg import build_cfg, has_unreachable_code
from repro.cminor.errors import LinkError
from repro.cminor.parser import parse_program
from repro.cminor.program import Program, link_units, standard_builtins

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


class TestLinking:
    def test_link_two_units(self):
        a = parse_program("uint8_t shared;\nvoid f(void) { shared = 1; }", "a")
        b = parse_program("void g(void) { }", "b")
        program = link_units([a, b], name="app")
        assert set(program.functions) == {"f", "g"}
        assert "shared" in program.globals

    def test_duplicate_function_is_a_link_error(self):
        a = parse_program("void f(void) { }", "a")
        b = parse_program("void f(void) { }", "b")
        with pytest.raises(LinkError):
            link_units([a, b])

    def test_duplicate_global_is_a_link_error(self):
        a = parse_program("uint8_t x;", "a")
        b = parse_program("uint8_t x;", "b")
        with pytest.raises(LinkError):
            link_units([a, b])

    def test_function_and_global_name_collision(self):
        program = Program()
        program.add_function(ast.FunctionDef("thing", ty.VOID))
        with pytest.raises(LinkError):
            program.add_global(ast.GlobalVar("thing", ty.UINT8))

    def test_standard_builtins_present(self):
        names = set(standard_builtins())
        assert {"__hw_read8", "__hw_write8", "__sleep", "__bounds_ok",
                "__error_report_id", "__halt"} <= names

    def test_root_functions(self):
        program = make_program("""
__spontaneous void main(void) { }
__interrupt("ADC") void adc(void) { }
void task_one(void) { }
void helper(void) { }
""", simplify=False)
        program.interrupt_vectors["ADC"] = "adc"
        program.tasks = ["task_one"]
        roots = set(program.root_functions())
        assert roots == {"main", "adc", "task_one"}

    def test_clone_is_deep(self):
        program = make_program("uint8_t x;\n__spontaneous void main(void) { x = 1; }")
        clone = program.clone()
        clone.remove_global("x")
        assert "x" in program.globals

    def test_summary_counts(self):
        program = make_program("""
uint8_t a;
void f(void) { a = 1; }
__spontaneous void main(void) { f(); }
""")
        summary = program.summary()
        assert summary["functions"] == 2
        assert summary["globals"] == 1
        assert summary["statements"] >= 2


class TestControlFlowGraph:
    def test_linear_function_has_single_path(self):
        program = make_program("""
uint8_t x;
__spontaneous void main(void) { x = 1; x = 2; }
""")
        cfg = build_cfg(program.lookup_function("main"))
        assert cfg.statement_count() == 2
        assert cfg.exit.index in cfg.reachable_blocks()

    def test_if_produces_branching(self):
        program = make_program("""
uint8_t x;
__spontaneous void main(void) {
  if (x) { x = 1; } else { x = 2; }
  x = 3;
}
""")
        cfg = build_cfg(program.lookup_function("main"))
        branch_blocks = [b for b in cfg.iter_blocks() if len(b.successors) >= 2]
        assert branch_blocks, "the if statement should create a two-way branch"

    def test_loop_creates_back_edge(self):
        program = make_program("""
uint8_t n = 4;
__spontaneous void main(void) {
  while (n) { n = n - 1; }
}
""")
        cfg = build_cfg(program.lookup_function("main"))

        def reaches(start, target, seen=None):
            seen = seen or set()
            for succ in cfg.block(start).successors:
                if succ == target:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    if reaches(succ, target, seen):
                        return True
            return False

        has_cycle = any(reaches(b.index, b.index) for b in cfg.iter_blocks())
        assert has_cycle

    def test_code_after_return_is_unreachable(self):
        program = make_program("""
uint8_t f(void) {
  return 1;
  return 2;
}
__spontaneous void main(void) { f(); }
""")
        assert has_unreachable_code(program.lookup_function("f"))

    def test_fully_reachable_function(self):
        program = make_program("""
uint8_t f(uint8_t x) {
  if (x) { return 1; }
  return 0;
}
__spontaneous void main(void) { f(1); }
""")
        assert not has_unreachable_code(program.lookup_function("f"))


class TestCallGraph:
    SOURCE = """
void leaf(void) { }
void middle(void) { leaf(); }
void recursive(uint8_t n) { if (n) { recursive(n - 1); } }
__spontaneous void main(void) { middle(); recursive(3); }
"""

    def test_callees_and_callers(self):
        program = make_program(self.SOURCE)
        graph = build_call_graph(program)
        assert graph.calls("main") == {"middle", "recursive"}
        assert graph.called_by("leaf") == {"middle"}

    def test_reachability(self):
        program = make_program(self.SOURCE + "\nvoid orphan(void) { }")
        graph = build_call_graph(program)
        reachable = graph.reachable_from(["main"])
        assert "leaf" in reachable and "orphan" not in reachable

    def test_recursion_detection(self):
        program = make_program(self.SOURCE)
        graph = build_call_graph(program)
        assert graph.recursive_functions() == {"recursive"}

    def test_bottom_up_order_places_callees_first(self):
        program = make_program(self.SOURCE)
        graph = build_call_graph(program)
        order = graph.bottom_up_order()
        assert order.index("leaf") < order.index("middle") < order.index("main")
