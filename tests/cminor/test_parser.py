"""Tests for the CMinor parser."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.errors import ParseError
from repro.cminor.parser import parse_expression, parse_program, parse_statement


class TestExpressions:
    def test_precedence_multiplication_before_addition(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(a + b) * c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "*"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "+"

    def test_comparison_and_logical(self):
        expr = parse_expression("a < b && c != 0")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "&&"

    def test_unary_operators(self):
        assert isinstance(parse_expression("!x"), ast.UnaryOp)
        assert isinstance(parse_expression("*p"), ast.Deref)
        assert isinstance(parse_expression("&x"), ast.AddressOf)
        assert isinstance(parse_expression("~mask"), ast.UnaryOp)

    def test_cast_expression(self):
        expr = parse_expression("(uint8_t)(x + 1)")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ty.UINT8

    def test_cast_of_pointer_type(self):
        expr = parse_expression("(uint16_t*)0x40")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ty.PointerType(ty.UINT16)

    def test_index_and_member(self):
        expr = parse_expression("table[i].field")
        assert isinstance(expr, ast.Member)
        assert isinstance(expr.base, ast.Index)

    def test_arrow_access(self):
        expr = parse_expression("msg->length")
        assert isinstance(expr, ast.Member) and expr.arrow

    def test_call_with_arguments(self):
        expr = parse_expression("f(1, x, g(y))")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], ast.Call)

    def test_ternary(self):
        expr = parse_expression("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_sizeof_type(self):
        expr = parse_expression("sizeof(uint32_t)")
        assert isinstance(expr, ast.SizeOf)
        assert expr.of_type == ty.UINT32

    def test_true_false_null_literals(self):
        assert parse_expression("true").value == 1
        assert parse_expression("false").value == 0
        assert parse_expression("NULL").value == 0

    def test_string_literal(self):
        expr = parse_expression('"abc"')
        assert isinstance(expr, ast.StringLiteral)
        assert expr.value == "abc"


class TestStatements:
    def test_compound_assignment_is_desugared(self):
        stmt = parse_statement("x += 2;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.rvalue, ast.BinaryOp) and stmt.rvalue.op == "+"

    def test_increment_is_desugared(self):
        stmt = parse_statement("x++;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.rvalue, ast.BinaryOp)
        assert stmt.rvalue.right.value == 1

    def test_if_else(self):
        stmt = parse_statement("if (a) { x = 1; } else { x = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is not None

    def test_if_without_braces_gets_block(self):
        stmt = parse_statement("if (a) x = 1;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.then_body, ast.Block)

    def test_while_loop(self):
        stmt = parse_statement("while (i < 10) { i++; }")
        assert isinstance(stmt, ast.While)

    def test_do_while_loop(self):
        stmt = parse_statement("do { i++; } while (i < 10);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_loop(self):
        stmt = parse_statement("for (i = 0; i < 4; i++) { total += i; }")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.update is not None

    def test_for_loop_with_declaration(self):
        stmt = parse_statement("for (uint8_t i = 0; i < 4; i++) { }")
        assert isinstance(stmt.init, ast.VarDecl)

    def test_atomic_statement(self):
        stmt = parse_statement("atomic { x = 1; }")
        assert isinstance(stmt, ast.Atomic)

    def test_post_statement(self):
        stmt = parse_statement("post sendTask();")
        assert isinstance(stmt, ast.Post)
        assert stmt.task == "sendTask"

    def test_return_break_continue(self):
        assert isinstance(parse_statement("return 3;"), ast.Return)
        assert isinstance(parse_statement("break;"), ast.Break)
        assert isinstance(parse_statement("continue;"), ast.Continue)

    def test_local_declaration_with_initializer(self):
        stmt = parse_statement("uint16_t total = a + b;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.ctype == ty.UINT16


class TestTopLevel:
    def test_struct_definition(self):
        unit = parse_program("""
struct point { int16_t x; int16_t y; };
struct point origin;
""")
        struct = unit.structs.get("point")
        assert struct is not None and len(struct.fields) == 2
        assert unit.globals[0].ctype == struct

    def test_global_array_with_initializer(self):
        unit = parse_program("uint8_t table[4] = {1, 2, 3, 4};")
        var = unit.globals[0]
        assert isinstance(var.ctype, ty.ArrayType) and var.ctype.length == 4
        assert isinstance(var.init, ast.InitList)

    def test_global_qualifiers(self):
        unit = parse_program("const uint8_t limit = 7; norace uint8_t flags;")
        assert unit.globals[0].is_const
        assert unit.globals[1].is_norace

    def test_function_definition_and_params(self):
        unit = parse_program("uint8_t add(uint8_t a, uint8_t b) { return a + b; }")
        func = unit.functions[0]
        assert func.name == "add" and len(func.params) == 2

    def test_void_parameter_list(self):
        unit = parse_program("void init(void) { }")
        assert unit.functions[0].params == []

    def test_array_parameter_decays_to_pointer(self):
        unit = parse_program("void fill(uint8_t buffer[8]) { buffer[0] = 1; }")
        param = unit.functions[0].params[0]
        assert isinstance(param.ctype, ty.PointerType)

    def test_function_attributes(self):
        unit = parse_program("""
__interrupt("ADC") void adc_handler(void) { }
__spontaneous void boot(void) { }
__inline uint8_t tiny(void) { return 1; }
""")
        assert unit.functions[0].attributes["interrupt"] == "ADC"
        assert unit.functions[1].is_spontaneous
        assert unit.functions[2].always_inline

    def test_prototypes_are_skipped(self):
        unit = parse_program("uint8_t helper(uint8_t x);\nuint8_t helper(uint8_t x) { return x; }")
        assert len(unit.functions) == 1

    def test_parse_errors_carry_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("uint8_t broken( { }", unit_name="bad.c")
        assert "bad.c" in str(excinfo.value)

    def test_missing_semicolon_is_an_error(self):
        with pytest.raises(ParseError):
            parse_program("uint8_t x = 1")

    def test_attribute_on_global_is_rejected(self):
        with pytest.raises(ParseError):
            parse_program("__spontaneous uint8_t x;")
