"""Tests for the batched sweep runner and its front-end sharing."""

import pytest

from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.sweep import SweepRunner
from repro.toolchain.variants import (
    BASELINE,
    SAFE_FLID,
    SAFE_FLID_CXPROP,
    SAFE_OPTIMIZED,
)

APPS = ["BlinkTask_Mica2", "Oscilloscope_Mica2"]
# safe-flid / safe-flid-cxprop / safe-optimized share their CCured stage,
# so this set exercises both front-end and deeper prefix sharing.
VARIANTS = [BASELINE, SAFE_FLID, SAFE_FLID_CXPROP, SAFE_OPTIMIZED]


@pytest.fixture(scope="module")
def shared_sweep():
    return SweepRunner(APPS, VARIANTS, share_front_end=True).run()


class TestSweepEquivalence:
    def test_shared_sweep_matches_per_variant_builds(self, shared_sweep):
        """Front-end sharing must not change any build summary."""
        for app in APPS:
            for variant in VARIANTS:
                expected = BuildPipeline(variant).build_named(app).summary()
                assert shared_sweep.get(app, variant.name).summary == expected

    def test_unshared_sweep_matches_shared_sweep(self, shared_sweep):
        unshared = SweepRunner(APPS, VARIANTS, share_front_end=False).run()
        assert unshared.summaries() == shared_sweep.summaries()

    def test_builds_preserve_app_then_variant_order(self, shared_sweep):
        order = [(b.application, b.variant_name) for b in shared_sweep]
        assert order == [(a, v.name) for a in APPS for v in VARIANTS]

    def test_results_carry_full_build_results(self, shared_sweep):
        build = shared_sweep.get("BlinkTask_Mica2", "safe-optimized")
        assert build.result is not None
        assert build.result.cxprop is not None
        assert build.result.trace is not None
        # The merged trace has the shared front end prepended.
        assert build.result.trace.pass_names()[:2] == \
            ["nesc.flatten", "nesc.hwrefactor"]

    def test_shared_ccured_stage_is_repointed_per_build(self, shared_sweep):
        """Even when the CCured stage ran on a shared prefix, each result's
        ccured report must reference that build's own program."""
        for variant_name in ("safe-flid", "safe-flid-cxprop", "safe-optimized"):
            result = shared_sweep.get("BlinkTask_Mica2", variant_name).result
            assert result.ccured is not None
            assert result.ccured.program is result.program

    def test_unknown_build_raises(self, shared_sweep):
        with pytest.raises(KeyError):
            shared_sweep.get("BlinkTask_Mica2", "no-such-variant")


class TestSweepIsolation:
    def test_variants_of_one_app_do_not_interfere(self, shared_sweep):
        """Mutations of one variant's clone never leak into another's."""
        baseline = shared_sweep.get("BlinkTask_Mica2", BASELINE.name).result
        optimized = shared_sweep.get("BlinkTask_Mica2",
                                     SAFE_OPTIMIZED.name).result
        assert baseline.program is not optimized.program
        assert baseline.checks_inserted == 0
        assert optimized.checks_inserted > 0
        # The baseline program must not contain CCured runtime functions.
        assert all(not f.is_runtime for f in baseline.program.iter_functions())


class TestSnapshotStore:
    def test_snapshots_persist_across_runner_calls(self, monkeypatch):
        """A shared store lets a later sweep resume from an earlier sweep's
        front end instead of re-flattening."""
        from repro.nesc.passes import FlattenPass

        flattens = []
        original = FlattenPass.run

        def counted(self, program, ctx):
            flattens.append(ctx.label)
            return original(self, program, ctx)

        monkeypatch.setattr(FlattenPass, "run", counted)

        store: dict = {}
        first = SweepRunner(["BlinkTask_Mica2"], [SAFE_FLID],
                            snapshot_store=store).run()
        second = SweepRunner(["BlinkTask_Mica2"], [SAFE_OPTIMIZED],
                             snapshot_store=store).run()
        assert flattens == ["BlinkTask_Mica2"]
        assert "BlinkTask_Mica2" in store
        # Resumed builds still match independent ones byte for byte.
        expected = BuildPipeline(SAFE_OPTIMIZED) \
            .build_named("BlinkTask_Mica2").summary()
        assert second.builds[0].summary == expected
        assert first.builds[0].summary != expected

    def test_application_objects_build_in_process(self):
        from helpers import tiny_application

        app = tiny_application()
        result = SweepRunner([app], [SAFE_FLID]).run()
        assert result.builds[0].application == app.name
        assert result.builds[0].summary["checks_inserted"] > 0

    def test_process_pool_rejects_application_objects(self):
        from helpers import tiny_application

        runner = SweepRunner([tiny_application()], [BASELINE], processes=1)
        with pytest.raises(ValueError, match="registered application names"):
            runner.run()


class TestProcessPool:
    def test_process_pool_reproduces_in_process_summaries(self, shared_sweep):
        pooled = SweepRunner(APPS, VARIANTS, processes=2).run()
        assert pooled.summaries() == shared_sweep.summaries()

    def test_process_pool_builds_carry_summaries_only(self):
        pooled = SweepRunner(["BlinkTask_Mica2"], [BASELINE],
                             processes=1).run()
        assert len(pooled) == 1
        assert pooled.builds[0].result is None
        assert pooled.builds[0].summary["code_bytes"] > 0
