"""Tests for the pass-manager layer: registry, manager, traces, lowering."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cminor.program import Program
from repro.cxprop.driver import CxpropConfig, resolve_pointer_size
from repro.toolchain.lower import (
    back_end_passes,
    front_end_passes,
    variant_pass_names,
    variant_passes,
)
from repro.toolchain.passes import (
    FixpointPass,
    Pass,
    PassContext,
    PassManager,
    PassOutcome,
    create_pass,
    registered_passes,
)
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import (
    BASELINE,
    FIG2_CCURED_OPT,
    SAFE_FLID,
    SAFE_OPTIMIZED,
)

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import tiny_application


class TestRegistry:
    def test_every_stage_is_registered(self):
        names = registered_passes()
        for expected in ["nesc.flatten", "nesc.hwrefactor", "ccured.cure",
                         "ccured.optimize", "inline", "cxprop", "cxprop.facts",
                         "cxprop.fold", "cxprop.copyprop", "cxprop.atomic",
                         "cxprop.dce", "gcc", "image"]:
            assert expected in names, f"{expected} not registered"

    def test_create_pass_by_name(self):
        pass_ = create_pass("nesc.flatten", suppress_norace=False)
        assert pass_.name == "nesc.flatten"
        assert pass_.suppress_norace is False
        with pytest.raises(KeyError):
            create_pass("no-such-pass")


class TestLowering:
    def test_baseline_lowers_to_minimal_pipeline(self):
        assert variant_pass_names(BASELINE) == [
            "nesc.flatten", "nesc.hwrefactor", "gcc", "image"]

    def test_safe_optimized_lowers_to_the_full_pipeline(self):
        assert variant_pass_names(SAFE_OPTIMIZED) == [
            "nesc.flatten", "nesc.hwrefactor", "ccured.cure",
            "ccured.optimize", "inline", "cxprop", "gcc", "image"]

    def test_fig2_variant_skips_the_inliner(self):
        names = variant_pass_names(FIG2_CCURED_OPT)
        assert "ccured.optimize" in names
        assert "inline" not in names and "cxprop" not in names

    def test_front_and_back_end_partition_the_pass_list(self):
        front = [p.name for p in front_end_passes(SAFE_FLID)]
        back = [p.name for p in back_end_passes(SAFE_FLID)]
        assert front + back == variant_pass_names(SAFE_FLID)
        assert front == ["nesc.flatten", "nesc.hwrefactor"]


class TestPassManager:
    def test_build_trace_records_every_pass(self):
        pipeline = BuildPipeline(SAFE_FLID)
        result = pipeline.build(tiny_application())
        trace = result.trace
        assert trace is not None
        assert trace.pass_names() == variant_pass_names(SAFE_FLID)
        assert trace.wall_time_s > 0
        for entry in trace.passes:
            assert entry.wall_time_s >= 0
        # The front end produced the program, so the first snapshot-before
        # is empty and every later pass sees a program.
        assert trace.passes[0].before is None
        assert trace.passes[0].after is not None
        assert trace.passes[-1].after.functions > 0

    def test_trace_change_counts_match_stage_reports(self):
        result = BuildPipeline(SAFE_FLID).build(tiny_application())
        trace = result.trace
        assert trace.report("nesc.hwrefactor").changed == \
            result.hw_refactor.total
        assert trace.report("ccured.cure").changed == result.checks_inserted
        assert trace.report("image").detail is result.image

    def test_measure_sizes_records_code_and_ram_bytes(self):
        result = BuildPipeline(SAFE_FLID, measure_sizes=True).build(
            tiny_application())
        last = result.trace.passes[-1]
        assert last.after.code_bytes == result.image.code_bytes
        assert last.after.ram_bytes == result.image.ram_bytes
        rows = result.trace.summary()
        assert any("code_bytes" in row for row in rows)
        assert "total" in result.trace.format()

    def test_declaration_driven_invalidation(self):
        """The manager invalidates the analysis cache after mutating passes."""

        class Touch(Pass):
            name = "touch"

            def run(self, program, ctx):
                program.functions["main"].body.stmts.append(ast.Nop())
                return PassOutcome(changed=1, detail=None)

        class Preserving(Pass):
            name = "preserving"
            invalidates_analysis = False

            def run(self, program, ctx):
                return PassOutcome(changed=1, detail=None)

        from repro.nesc.flatten import flatten_application
        program = flatten_application(tiny_application(), suppress_norace=True)
        main = program.functions["main"]
        cache = program.analysis()
        cache.local_types(main)
        assert main.name in cache._local_types

        ctx = PassContext(program=program)
        PassManager([Preserving()]).run(ctx)
        assert main.name in cache._local_types, \
            "a pass declaring invalidates_analysis=False must keep the cache"

        PassManager([Touch()]).run(ctx)
        assert main.name not in cache._local_types, \
            "a mutating pass must drop the cache through its declaration"

    def test_observer_sees_every_pass(self):
        seen = []
        ctx = PassContext(variant=BASELINE, application=tiny_application())
        PassManager(variant_passes(BASELINE),
                    observer=lambda p, rep, c: seen.append(rep.name)).run(ctx)
        assert seen == variant_pass_names(BASELINE)


class TestFixpointPass:
    def test_iterates_until_no_change(self):
        class CountDown(Pass):
            name = "countdown"
            invalidates_analysis = False

            def __init__(self):
                self.budget = 3

            def run(self, program, ctx):
                if self.budget > 0:
                    self.budget -= 1
                    return PassOutcome(changed=1)
                return PassOutcome(changed=0)

        fix = FixpointPass("fix", [CountDown()], max_rounds=10)
        outcome = fix.run(Program(), PassContext())
        # 3 changing rounds plus the quiescent round that detects the fixpoint.
        assert outcome.detail["rounds"] == 4
        assert outcome.changed == 3

    def test_max_rounds_caps_iteration(self):
        class Restless(Pass):
            name = "restless"
            invalidates_analysis = False

            def run(self, program, ctx):
                return PassOutcome(changed=1)

        fix = FixpointPass("fix", [Restless()], max_rounds=2)
        outcome = fix.run(Program(), PassContext())
        assert outcome.detail["rounds"] == 2
        assert outcome.changed == 2


class TestBuildNamedLabel:
    def test_label_is_set_at_construction_not_mutated_after(self):
        result = BuildPipeline(BASELINE).build_named("BlinkTask_Mica2")
        assert result.application == "BlinkTask_Mica2"
        assert result.summary()["application"] == "BlinkTask_Mica2"

    def test_build_defaults_to_the_application_name(self):
        app = tiny_application()
        result = BuildPipeline(BASELINE).build(app)
        assert result.application == app.name

    def test_build_accepts_an_explicit_label(self):
        result = BuildPipeline(BASELINE).build(tiny_application(),
                                               label="Figure_Label")
        assert result.application == "Figure_Label"


class TestPointerSizeThreading:
    def test_default_config_derives_from_platform(self):
        assert CxpropConfig().pointer_size is None
        assert resolve_pointer_size(Program(platform="mica2"),
                                    CxpropConfig()) == 2
        assert resolve_pointer_size(Program(platform="telosb"),
                                    CxpropConfig()) == 2

    def test_explicit_pointer_size_wins(self):
        config = CxpropConfig(pointer_size=4)
        assert resolve_pointer_size(Program(platform="mica2"), config) == 4

    def test_unknown_platform_falls_back_to_two_bytes(self):
        assert resolve_pointer_size(Program(platform="desktop"),
                                    CxpropConfig()) == 2

    def test_cxprop_runs_on_a_telosb_program(self):
        from repro.cxprop.driver import optimize_program
        from repro.tinyos import suite

        program = suite.build_program("RadioCountToLeds_TelosB",
                                      suppress_norace=True)
        report = optimize_program(program)
        assert report.rounds >= 1
