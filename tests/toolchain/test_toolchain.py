"""Tests for build variants, the pipeline, reporting, and simulation contexts."""

import pytest

from repro.ccured.config import MessageStrategy, RuntimeMode
from repro.toolchain.config import BuildVariant
from repro.toolchain.contexts import duty_cycle_context
from repro.toolchain.pipeline import BuildPipeline, build_application
from repro.toolchain.report import FigureTable, clip, percent_change
from repro.toolchain.variants import (
    BASELINE,
    FIGURE2_STRATEGIES,
    FIGURE3_VARIANTS,
    SAFE_FULL_RUNTIME,
    SAFE_OPTIMIZED,
    UNSAFE_OPTIMIZED,
    all_variant_names,
    variant_by_name,
)

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import tiny_application


class TestVariants:
    def test_figure3_has_seven_bars_in_order(self):
        assert len(FIGURE3_VARIANTS) == 7
        assert FIGURE3_VARIANTS[0].message_strategy is MessageStrategy.VERBOSE
        assert FIGURE3_VARIANTS[-1] is UNSAFE_OPTIMIZED

    def test_figure2_has_four_strategies(self):
        assert len(FIGURE2_STRATEGIES) == 4
        assert not FIGURE2_STRATEGIES[0].run_ccured_optimizer
        assert FIGURE2_STRATEGIES[-1].run_inliner

    def test_lookup_by_name(self):
        assert variant_by_name("baseline") is BASELINE
        assert variant_by_name("safe-optimized") is SAFE_OPTIMIZED
        with pytest.raises(KeyError):
            variant_by_name("unknown")
        assert "safe-flid" in all_variant_names()

    def test_describe_summarizes_the_stages(self):
        text = SAFE_OPTIMIZED.describe()
        assert "safe" in text and "inline" in text and "cxprop" in text
        assert BASELINE.describe().startswith("unsafe")

    def test_full_runtime_variant_uses_the_naive_port(self):
        assert SAFE_FULL_RUNTIME.runtime_mode is RuntimeMode.FULL


class TestPipeline:
    def test_baseline_build_has_no_checks(self, blink_baseline_build):
        assert blink_baseline_build.checks_inserted == 0
        assert blink_baseline_build.checks_surviving == 0
        assert blink_baseline_build.ccured is None

    def test_safe_build_records_every_stage(self, blink_safe_build):
        result = blink_safe_build
        assert result.ccured is not None
        assert result.checks_inserted > 0
        assert result.hw_refactor is not None and result.hw_refactor.total > 0
        assert result.gcc is not None

    def test_optimized_build_removes_checks_and_shrinks(self, blink_safe_build,
                                                        blink_optimized_build):
        assert blink_optimized_build.checks_surviving < \
            blink_safe_build.checks_surviving
        assert blink_optimized_build.image.code_bytes < \
            blink_safe_build.image.code_bytes
        assert blink_optimized_build.inline is not None
        assert blink_optimized_build.cxprop is not None

    def test_safe_build_is_larger_than_baseline(self, blink_baseline_build,
                                                blink_safe_build):
        assert blink_safe_build.image.code_bytes > \
            blink_baseline_build.image.code_bytes

    def test_runtime_footprint_is_reported(self, blink_safe_build):
        rom, ram = blink_safe_build.runtime_footprint()
        assert rom > 0
        assert ram >= 2

    def test_custom_application_can_be_built(self):
        result = BuildPipeline(BASELINE).build(tiny_application())
        assert result.image.code_bytes > 0
        assert result.program.lookup_function("main") is not None

    def test_build_application_helper(self):
        result = build_application("BlinkTask_Mica2", BASELINE)
        assert result.application == "BlinkTask_Mica2"

    def test_summary_dictionary(self, blink_optimized_build):
        summary = blink_optimized_build.summary()
        assert summary["application"] == "BlinkTask_Mica2"
        assert summary["variant"] == "safe-optimized"
        assert summary["code_bytes"] == blink_optimized_build.image.code_bytes


class TestReportHelpers:
    def test_percent_change(self):
        assert percent_change(110, 100) == pytest.approx(10.0)
        assert percent_change(90, 100) == pytest.approx(-10.0)
        assert percent_change(5, 0) == 0.0

    def test_clip(self):
        assert clip(250.0, -100.0, 100.0) == 100.0
        assert clip(-250.0, -100.0, 100.0) == -100.0
        assert clip(42.0, -100.0, 100.0) == 42.0

    def test_figure_table_rows_and_formatting(self):
        table = FigureTable(title="Demo", metric="x", applications=["A", "B"])
        table.baselines = {"A": 10.0, "B": 20.0}
        series = table.add_series("variant")
        series.values = {"A": 5.0, "B": -2.5}
        rows = table.rows()
        assert rows[0]["baseline"] == 10.0 and rows[1]["variant"] == -2.5
        text = table.format()
        assert "Demo" in text and "variant" in text and "A" in text


class TestContexts:
    def test_reactive_applications_get_radio_traffic(self):
        context = duty_cycle_context("RfmToLeds_Mica2")
        assert context is not None and context.radio_period_s > 0

    def test_base_station_also_gets_uart_traffic(self):
        context = duty_cycle_context("GenericBase_Mica2")
        assert context is not None and context.uart_period_s > 0

    def test_self_driven_applications_need_no_traffic(self):
        assert duty_cycle_context("BlinkTask_Mica2") is None
        assert duty_cycle_context("Oscilloscope_Mica2") is None

    def test_surge_context_advertises_a_route(self):
        context = duty_cycle_context("Surge_Mica2")
        assert context is not None
        from repro.tinyos import messages as msgs

        assert context.am_type == msgs.AM_MULTIHOP
