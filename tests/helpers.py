"""Shared helpers for the test suite.

Most tests need a small CMinor program built from source text; these helpers
wrap the parse/link/typecheck/simplify boilerplate and provide tiny
applications for the nesC and toolchain layers.
"""

from __future__ import annotations

from repro.cminor import ast_nodes as ast
from repro.cminor.parser import parse_program
from repro.cminor.program import Program, link_units
from repro.cminor.simplify import simplify_program
from repro.cminor.typecheck import check_program
from repro.cminor.visitor import walk_statements
from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.nesc.interface import standard_interfaces
from repro.tinyos import messages as msgs


def make_program(source: str, name: str = "test", platform: str = "mica2",
                 simplify: bool = True) -> Program:
    """Parse, link, (optionally) simplify and type-check one source unit."""
    unit = parse_program(source, name)
    program = link_units([unit], name=name, platform=platform)
    check_program(program)
    if simplify:
        simplify_program(program)
        check_program(program)
    return program


def statements_of(program: Program, function: str) -> list[ast.Stmt]:
    """All statements (recursively) of one function."""
    func = program.lookup_function(function)
    assert func is not None, f"no function named {function}"
    return list(walk_statements(func.body))


def count_calls(program: Program, callee: str) -> int:
    """Number of call sites of ``callee`` across the whole program."""
    from repro.cminor.visitor import walk_function_expressions

    count = 0
    for func in program.iter_functions():
        for expr in walk_function_expressions(func.body):
            if isinstance(expr, ast.Call) and expr.callee == callee:
                count += 1
    return count


def interfaces():
    """The standard interface set used by the TinyOS library."""
    return standard_interfaces(msgs.tos_msg_type())


def tiny_application(name: str = "TinyApp") -> Application:
    """A minimal two-component application: a timer client blinking an LED."""
    ifaces = interfaces()
    provider = Component(
        name="FakeTimerC",
        provides={"Control": ifaces["StdControl"], "Timer": ifaces["Timer"]},
        source="""
uint8_t running = 0;
uint16_t fires = 0;

uint8_t Control_init(void) {
  running = 0;
  fires = 0;
  return 1;
}

uint8_t Control_start(void) {
  return 1;
}

uint8_t Control_stop(void) {
  running = 0;
  return 1;
}

uint8_t Timer_start(uint32_t interval) {
  running = 1;
  return 1;
}

uint8_t Timer_stop(void) {
  running = 0;
  return 1;
}

void tick(void) {
  if (running) {
    fires = fires + 1;
    Timer_fired();
  }
}
""",
        interrupts={"TIMER1_COMPA": "tick"},
    )
    client = Component(
        name="ClientM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"]},
        source="""
uint16_t client_count = 0;
uint8_t client_buffer[8];

uint8_t Control_init(void) {
  client_count = 0;
  return 1;
}

uint8_t Control_start(void) {
  Timer_start(1000);
  return 1;
}

uint8_t Control_stop(void) {
  Timer_stop();
  return 1;
}

void record_task(void) {
  uint8_t slot;
  atomic {
    slot = (uint8_t)(client_count & 7);
    client_buffer[slot] = (uint8_t)(client_count & 255);
  }
}

uint8_t Timer_fired(void) {
  atomic {
    client_count = client_count + 1;
  }
  post record_task();
  return 1;
}
""",
        tasks=["record_task"],
    )
    app = Application(name=name, platform="mica2",
                      common_source=msgs.COMMON_SOURCE)
    app.add_component(provider)
    app.add_component(client)
    app.wire("ClientM", "Timer", "FakeTimerC", "Timer")
    app.boot.append(("FakeTimerC", "Control"))
    app.boot.append(("ClientM", "Control"))
    return app
