"""Tests for pointer kinds and CCured's kind inference."""

import pytest

from repro.ccured.infer import infer_pointer_kinds
from repro.ccured.kinds import (
    KindMap,
    PointerKind,
    global_slot,
    local_slot,
    param_slot,
)

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


class TestKindLattice:
    def test_ordering(self):
        assert PointerKind.SAFE < PointerKind.SEQ < PointerKind.WILD

    def test_join_is_commutative_and_monotone(self):
        for a in PointerKind:
            for b in PointerKind:
                assert PointerKind.join(a, b) == PointerKind.join(b, a)
                assert PointerKind.join(a, b) >= a

    def test_representation_words(self):
        assert PointerKind.SAFE.words == 1
        assert PointerKind.SEQ.words == 3
        assert PointerKind.WILD.words == 4
        assert PointerKind.SEQ.extra_bytes(pointer_size=2) == 4

    def test_needs_bounds(self):
        assert not PointerKind.SAFE.needs_bounds
        assert PointerKind.SEQ.needs_bounds and PointerKind.WILD.needs_bounds

    def test_kind_map_raise_to_is_monotone(self):
        kinds = KindMap()
        slot = global_slot("p")
        assert kinds.raise_to(slot, PointerKind.SEQ)
        assert not kinds.raise_to(slot, PointerKind.SAFE)
        assert kinds.get(slot) == PointerKind.SEQ
        assert kinds.counts()[PointerKind.SEQ] == 1

    def test_slot_string_forms(self):
        assert str(global_slot("g")) == "g"
        assert "f:" in str(local_slot("f", "x"))
        assert "struct" in str(__import__("repro.ccured.kinds",
                                          fromlist=["field_slot"]).field_slot("s", "f"))


INFERENCE_SOURCE = """
struct TOS_Msg { uint16_t addr; uint8_t length; uint8_t data[29]; };

uint8_t plain_buffer[16];
uint8_t* walking_pointer;
uint16_t* safe_pointer;
uint16_t safe_target;
struct TOS_Msg message;

uint16_t scan(uint8_t* bytes, uint8_t count) {
  uint8_t i;
  uint16_t sum = 0;
  for (i = 0; i < count; i++) {
    sum = sum + bytes[i];
  }
  return sum;
}

__spontaneous void main(void) {
  uint8_t* view;
  safe_pointer = &safe_target;
  *safe_pointer = 5;
  walking_pointer = plain_buffer;
  walking_pointer = walking_pointer + 1;
  view = (uint8_t*)&message;
  scan(view, 10);
  scan(plain_buffer, 16);
}
"""


class TestInference:
    @pytest.fixture(scope="class")
    def kinds(self):
        return infer_pointer_kinds(make_program(INFERENCE_SOURCE))

    def test_pointer_used_only_for_dereference_is_safe(self, kinds):
        assert kinds.get(global_slot("safe_pointer")) == PointerKind.SAFE

    def test_pointer_arithmetic_forces_seq(self, kinds):
        assert kinds.get(global_slot("walking_pointer")) == PointerKind.SEQ

    def test_indexed_parameter_is_seq(self, kinds):
        assert kinds.get(param_slot("scan", "bytes")) == PointerKind.SEQ

    def test_reinterpreting_cast_forces_seq(self, kinds):
        assert kinds.get(local_slot("main", "view")) >= PointerKind.SEQ

    def test_nothing_is_wild_after_hw_refactoring_style_code(self, kinds):
        assert kinds.counts()[PointerKind.WILD] == 0

    def test_int_to_pointer_cast_is_wild(self):
        program = make_program("""
uint8_t* port_alias;
__spontaneous void main(void) {
  port_alias = (uint8_t*)59;
  *port_alias = 1;
}
""")
        kinds = infer_pointer_kinds(program)
        assert kinds.get(global_slot("port_alias")) == PointerKind.WILD

    def test_kinds_flow_through_assignments(self):
        program = make_program("""
uint8_t buffer[8];
uint8_t* first;
uint8_t* second;
__spontaneous void main(void) {
  first = buffer;
  first = first + 1;
  second = first;
  *second = 0;
}
""")
        kinds = infer_pointer_kinds(program)
        assert kinds.get(global_slot("second")) == PointerKind.SEQ

    def test_struct_pointer_fields_are_tracked(self):
        program = make_program("""
struct node { uint8_t* payload; uint8_t length; };
struct node item;
uint8_t storage[4];
__spontaneous void main(void) {
  uint8_t x;
  item.payload = storage;
  x = item.payload[2];
}
""")
        kinds = infer_pointer_kinds(program)
        from repro.ccured.kinds import field_slot

        assert kinds.get(field_slot("node", "payload")) == PointerKind.SEQ
