"""Tests for CCured's check optimizer, lock insertion, and FLID handling."""

import pytest

from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.flid import FlidTable, decompress_failure
from repro.ccured.instrument import cure, surviving_check_ids
from repro.ccured.optimizer import optimize_checks, pointer_is_statically_safe
from repro.cminor import ast_nodes as ast
from repro.cminor.parser import parse_expression

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, make_program


class TestCheckOptimizer:
    def test_repeated_checks_on_same_pointer_are_deduplicated(self):
        program = make_program("""
struct rec { uint16_t a; uint16_t b; uint16_t c; };
void fill(struct rec* r) {
  r->a = 1;
  r->b = 2;
  r->c = 3;
}
__spontaneous void main(void) {
  struct rec x;
  fill(&x);
}
""")
        result = cure(program, CCuredConfig(run_optimizer=False))
        checks_before = count_calls(program, "__ccured_check_ptr") + \
            count_calls(program, "__ccured_check_null")
        removed = optimize_checks(program)
        checks_after = count_calls(program, "__ccured_check_ptr") + \
            count_calls(program, "__ccured_check_null")
        assert removed >= 2
        assert checks_after == checks_before - removed
        assert checks_after >= 1

    def test_checks_are_not_deduplicated_across_reassignment(self):
        program = make_program("""
uint16_t one;
uint16_t two;
uint16_t* p;
__spontaneous void main(void) {
  p = &one;
  *p = 1;
  p = &two;
  *p = 2;
}
""")
        cure(program, CCuredConfig(run_optimizer=False))
        before = len(surviving_check_ids(program))
        optimize_checks(program)
        # Both dereferences guard different pointer values even though the
        # expression text is identical; they are statically safe here anyway,
        # so at most the provably safe ones disappear.
        assert len(surviving_check_ids(program)) <= before

    def test_statically_safe_pointer_classification(self):
        program = make_program("uint8_t arr[4];\n__spontaneous void main(void) { }")
        assert pointer_is_statically_safe(parse_expression("&arr[1]"), program)
        assert pointer_is_statically_safe(parse_expression('"text"'), program)
        assert not pointer_is_statically_safe(parse_expression("&arr[i]"), program)

    def test_run_optimizer_flag_in_cure(self):
        program = make_program("""
struct rec { uint16_t a; uint16_t b; };
void fill(struct rec* r) { r->a = 1; r->b = 2; }
__spontaneous void main(void) { struct rec x; fill(&x); }
""")
        result = cure(program, CCuredConfig(run_optimizer=True))
        assert result.optimizer_removed >= 1


class TestLockInsertion:
    SOURCE = """
uint8_t shared_index = 0;
uint8_t quiet_index = 0;
uint8_t samples[8];

__interrupt("ADC") void adc_isr(void) {
  shared_index = (uint8_t)((shared_index + 1) & 7);
}

__spontaneous void main(void) {
  samples[shared_index] = 1;
  samples[quiet_index] = 2;
}
"""

    def _build(self, insert_locks=True):
        program = make_program(self.SOURCE)
        program.interrupt_vectors["ADC"] = "adc_isr"
        program.racy_variables = {"shared_index"}
        result = cure(program, CCuredConfig(run_optimizer=False,
                                            insert_locks=insert_locks))
        return result, program

    def test_checks_on_racy_variables_get_atomic_sections(self):
        result, program = self._build()
        assert result.locked_checks >= 1
        main = program.lookup_function("main")
        from repro.cminor.visitor import walk_statements

        injected = [s for s in walk_statements(main.body)
                    if isinstance(s, ast.Atomic) and s.synthetic]
        assert injected, "a synthetic atomic section should protect the racy access"

    def test_non_racy_accesses_are_not_locked(self):
        result, _ = self._build()
        racy_sites = [s for s in result.inventory.sites if s.racy]
        quiet_sites = [s for s in result.inventory.sites
                       if "quiet_index" in s.description]
        assert racy_sites
        assert all(not s.racy for s in quiet_sites)

    def test_lock_insertion_can_be_disabled(self):
        result, program = self._build(insert_locks=False)
        assert result.locked_checks == 0
        main = program.lookup_function("main")
        from repro.cminor.visitor import walk_statements

        assert not any(isinstance(s, ast.Atomic) and s.synthetic
                       for s in walk_statements(main.body))


class TestFlidTable:
    def _table(self):
        program = make_program("""
uint8_t data[4];
uint8_t fetch(uint8_t i) { return data[i]; }
__spontaneous void main(void) { fetch(1); }
""")
        result = cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                                            run_optimizer=False))
        return result.flid_table

    def test_every_check_has_an_entry(self):
        table = self._table()
        assert len(table) >= 1
        entry = next(iter(table.entries.values()))
        assert entry.function == "fetch"
        assert "index" in entry.kind or "bounds" in entry.kind

    def test_decompression_reconstructs_a_diagnostic(self):
        table = self._table()
        flid = next(iter(table.entries))
        message = decompress_failure(table, flid)
        assert "fetch" in message and str(flid) in message

    def test_unknown_flid_is_reported_gracefully(self):
        table = self._table()
        assert "unknown failure location" in decompress_failure(table, 9999)

    def test_json_round_trip(self):
        table = self._table()
        restored = FlidTable.from_json(table.to_json())
        assert len(restored) == len(table)
        flid = next(iter(table.entries))
        assert restored.lookup(flid).function == table.lookup(flid).function
