"""Tests for CCured's check insertion, runtime linking, and configuration."""

import pytest

from repro.ccured.checks import CheckKind
from repro.ccured.config import CCuredConfig, MessageStrategy, RuntimeMode
from repro.ccured.instrument import (
    METADATA_PREFIX,
    cure,
    extract_check_id,
    surviving_check_ids,
)
from repro.ccured.runtime import RUNTIME_UNIT
from repro.cminor import ast_nodes as ast

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, make_program

SOURCE = """
struct record { uint16_t key; uint8_t body[6]; };

uint8_t table[8];
struct record current;
uint8_t* cursor;
uint16_t total;

uint8_t read_slot(uint8_t index) {
  return table[index];
}

void through_pointer(struct record* r) {
  r->key = 1;
  r->body[0] = 2;
}

__spontaneous void main(void) {
  uint8_t i;
  cursor = table;
  for (i = 0; i < 8; i++) {
    total = total + cursor[i];
  }
  total = total + read_slot(3);
  through_pointer(&current);
  table[2] = 9;
}
"""


def build_cured(strategy=MessageStrategy.FLID, **kwargs):
    program = make_program(SOURCE)
    config = CCuredConfig(message_strategy=strategy, run_optimizer=False, **kwargs)
    return cure(program, config), program


class TestCheckInsertion:
    def test_checks_are_inserted_for_unprovable_accesses(self):
        result, _ = build_cured()
        assert result.checks_inserted >= 4

    def test_variable_index_gets_a_check(self):
        result, _ = build_cured()
        kinds = {site.kind for site in result.inventory.sites
                 if site.function == "read_slot"}
        assert CheckKind.INDEX in kinds

    def test_pointer_member_write_gets_a_check(self):
        result, _ = build_cured()
        functions = {site.function for site in result.inventory.sites}
        assert "through_pointer" in functions

    def test_constant_in_range_index_is_not_checked(self):
        result, _ = build_cured()
        descriptions = [site.description for site in result.inventory.sites
                        if site.function == "main"]
        assert not any("table[2]" in d for d in descriptions)

    def test_check_ids_are_unique(self):
        result, _ = build_cured()
        ids = [site.check_id for site in result.inventory.sites]
        assert len(ids) == len(set(ids))

    def test_every_inserted_check_survives_before_optimization(self):
        result, program = build_cured()
        assert surviving_check_ids(program) == result.inventory.ids()

    def test_runtime_functions_are_not_instrumented(self):
        result, _ = build_cured()
        assert all(not site.function.startswith("__ccured")
                   for site in result.inventory.sites)

    def test_check_calls_reference_runtime_helpers(self):
        _, program = build_cured()
        helper_calls = (count_calls(program, "__ccured_check_ptr")
                        + count_calls(program, "__ccured_check_null")
                        + count_calls(program, "__ccured_check_wild"))
        assert helper_calls >= 4


class TestMessageStrategies:
    def test_flid_messages_are_integer_literals(self):
        result, program = build_cured(MessageStrategy.FLID)
        assert len(result.flid_table) == result.checks_inserted
        assert result.runtime.strategy is MessageStrategy.FLID

    def test_verbose_messages_embed_location_and_id(self):
        result, program = build_cured(MessageStrategy.VERBOSE)
        func = program.lookup_function("read_slot")
        from repro.cminor.visitor import walk_function_expressions

        strings = [e for e in walk_function_expressions(func.body)
                   if isinstance(e, ast.StringLiteral)]
        assert strings and any("read_slot" in s.value for s in strings)
        assert all(not s.in_rom for s in strings)

    def test_verbose_rom_marks_strings_for_flash(self):
        _, program = build_cured(MessageStrategy.VERBOSE_ROM)
        from repro.cminor.visitor import walk_function_expressions

        strings = [e for f in program.iter_functions()
                   for e in walk_function_expressions(f.body)
                   if isinstance(e, ast.StringLiteral) and "check failed" in e.value]
        assert strings and all(s.in_rom for s in strings)

    def test_terse_messages_are_short(self):
        result, program = build_cured(MessageStrategy.TERSE)
        from repro.cminor.visitor import walk_function_expressions

        strings = [e.value for f in program.iter_functions()
                   if not f.is_runtime
                   for e in walk_function_expressions(f.body)
                   if isinstance(e, ast.StringLiteral)]
        assert strings and all(len(s) <= 6 for s in strings)

    def test_extract_check_id_round_trips_each_strategy(self):
        for strategy in MessageStrategy:
            result, program = build_cured(strategy)
            assert surviving_check_ids(program) == result.inventory.ids()


class TestRuntimeAndMetadata:
    def test_trimmed_runtime_is_linked(self):
        _, program = build_cured()
        assert program.lookup_function("__ccured_fail") is not None
        assert program.lookup_function("__ccured_check_ptr") is not None
        runtime_functions = [f for f in program.iter_functions()
                             if f.origin == RUNTIME_UNIT]
        assert len(runtime_functions) <= 6

    def test_full_runtime_brings_in_the_desktop_baggage(self):
        result, program = build_cured(runtime_mode=RuntimeMode.FULL)
        names = {f.name for f in program.iter_functions()
                 if f.origin == RUNTIME_UNIT}
        assert {"__ccured_gc_malloc", "__ccured_memcpy", "__ccured_strlen",
                "__ccured_signal_handler"} <= names
        assert "__ccured_gc_heap" in program.globals

    def test_fat_pointer_metadata_for_seq_globals(self):
        _, program = build_cured()
        assert f"{METADATA_PREFIX}cursor" in program.globals

    def test_safe_global_pointers_get_no_metadata(self):
        program = make_program("""
uint16_t value;
uint16_t* direct;
__spontaneous void main(void) {
  direct = &value;
  *direct = 3;
}
""")
        cure(program, CCuredConfig(run_optimizer=False))
        assert f"{METADATA_PREFIX}direct" not in program.globals

    def test_report_contains_the_headline_numbers(self):
        result, _ = build_cured()
        report = result.report()
        assert report["checks_inserted"] == result.checks_inserted
        assert report["seq_pointers"] >= 1
        assert report["optimizer_removed"] == 0
