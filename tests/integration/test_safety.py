"""Integration tests for the safety property itself.

These tests build applications containing genuine memory-safety bugs and
check the central claim of the system: the unsafe build silently misbehaves,
while every safe build traps the violation at run time and reports a
diagnostic that the FLID table can decompress.
"""

import pytest

from repro import SafeTinyOS
from repro.nesc.component import Component
from repro.tinyos.apps import _base
from repro.toolchain.variants import BASELINE


def buggy_application(bound: int):
    """A sampler whose loop bound overruns its 4-entry buffer when bound > 4."""
    ifaces = _base.interfaces()
    source = f"""
uint16_t samples[4];
uint8_t cursor = 0;
uint16_t taken = 0;

uint8_t Control_init(void) {{
  cursor = 0;
  taken = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start(100);
  return 1;
}}

uint8_t Control_stop(void) {{
  return 1;
}}

uint8_t Timer_fired(void) {{
  PhotoADC_getData();
  return 1;
}}

uint8_t PhotoADC_dataReady(uint16_t value) {{
  atomic {{
    if (cursor < {bound}) {{
      samples[cursor] = value;
      cursor = cursor + 1;
    }} else {{
      cursor = 0;
    }}
    taken = taken + 1;
  }}
  return 1;
}}
"""
    component = Component(
        name="SamplerM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "PhotoADC": ifaces["ADC"]},
        source=source,
    )
    app = _base.new_application("Sampler", "mica2", "bounded sampler")
    _base.add_timer_stack(app, ifaces)
    _base.add_adc(app, ifaces)
    app.add_component(component)
    app.wire("SamplerM", "Timer", "TimerC", "Timer0")
    app.wire("SamplerM", "PhotoADC", "ADCC", "PhotoADC")
    app.boot.append(("SamplerM", "Control"))
    return app


@pytest.fixture(scope="module")
def system():
    return SafeTinyOS()


class TestBuggyApplication:
    def test_unsafe_build_corrupts_memory_silently(self, system):
        outcome = system.build(buggy_application(bound=6), BASELINE)
        run = system.simulate(outcome, seconds=2.0, use_default_context=False)
        assert not run.halted
        assert run.failures == []
        assert run.node.memory_violations > 0

    @pytest.mark.parametrize("variant", ["safe-flid", "safe-optimized",
                                         "safe-verbose"])
    def test_safe_builds_trap_the_overrun(self, system, variant):
        outcome = system.build(buggy_application(bound=6), variant)
        run = system.simulate(outcome, seconds=2.0, use_default_context=False)
        assert run.halted, f"{variant} should halt on the out-of-bounds store"
        assert run.failures, f"{variant} should report the failure"
        assert run.node.memory_violations == 0, \
            "the check must fire before the bad store happens"

    def test_flid_report_decompresses_to_the_right_place(self, system):
        outcome = system.build(buggy_application(bound=6), "safe-flid")
        run = system.simulate(outcome, seconds=2.0, use_default_context=False)
        failure = run.failures[0]
        assert failure.flid is not None
        message = outcome.explain_failure(failure.flid)
        assert "SamplerM" in message and "dataReady" in message

    def test_the_surviving_check_is_the_one_that_matters(self, system):
        outcome = system.build(buggy_application(bound=6), "safe-optimized")
        assert outcome.checks_surviving >= 1
        run = system.simulate(outcome, seconds=2.0, use_default_context=False)
        assert run.halted

    def test_correct_version_of_the_same_program_never_traps(self, system):
        outcome = system.build(buggy_application(bound=4), "safe-optimized")
        run = system.simulate(outcome, seconds=2.0, use_default_context=False)
        assert not run.halted
        assert run.failures == []
        assert run.node.memory_violations == 0


class TestSafetyAcrossTheSuite:
    @pytest.mark.parametrize("app", ["BlinkTask_Mica2", "SenseToRfm_Mica2",
                                     "Ident_Mica2"])
    def test_shipped_applications_never_trip_their_checks(self, system, app):
        outcome = system.build(app, "safe-flid")
        run = system.simulate(outcome, seconds=1.5)
        assert not run.halted
        assert run.failures == []
        assert run.node.memory_violations == 0
