"""End-to-end integration tests: the paper's claims on whole applications."""

import pytest

from repro import SafeTinyOS
from repro.toolchain.contexts import duty_cycle_context
from repro.toolchain.variants import BASELINE


@pytest.fixture(scope="module")
def system():
    return SafeTinyOS()


class TestBehaviouralEquivalence:
    """The safe, optimized build must behave exactly like the baseline."""

    @pytest.fixture(scope="class")
    def runs(self, system):
        app = "Oscilloscope_Mica2"
        results = {}
        for variant in ("baseline", "safe-flid", "safe-optimized"):
            outcome = system.build(app, variant)
            results[variant] = (outcome,
                                system.simulate(outcome, seconds=2.0))
        return results

    def test_no_safety_failures_in_a_correct_program(self, runs):
        for variant, (outcome, run) in runs.items():
            assert not run.halted, f"{variant} halted unexpectedly"
            assert run.failures == [], f"{variant} reported failures"

    def test_observable_behaviour_is_identical(self, runs):
        baseline_run = runs["baseline"][1]
        for variant in ("safe-flid", "safe-optimized"):
            run = runs[variant][1]
            assert run.node.adc.conversions == baseline_run.node.adc.conversions
            assert len(run.node.radio.packets_sent) == \
                len(baseline_run.node.radio.packets_sent)
            assert run.led_changes() == baseline_run.led_changes()

    def test_transmitted_packets_are_byte_identical(self, runs):
        baseline_packets = runs["baseline"][1].node.radio.packets_sent
        optimized_packets = runs["safe-optimized"][1].node.radio.packets_sent
        assert baseline_packets == optimized_packets

    def test_safety_costs_cpu_and_optimization_recovers_it(self, runs):
        baseline = runs["baseline"][1].duty_cycle
        safe = runs["safe-flid"][1].duty_cycle
        optimized = runs["safe-optimized"][1].duty_cycle
        assert safe > baseline
        assert optimized < safe
        assert optimized < baseline * 1.25

    def test_no_memory_violations_anywhere(self, runs):
        for _variant, (outcome, run) in runs.items():
            assert run.node.memory_violations == 0


class TestHeadlineClaims:
    def test_safe_optimized_is_close_to_baseline_in_size(self, system):
        app = "CntToLedsAndRfm_Mica2"
        baseline = system.build(app, BASELINE)
        optimized = system.build(app, "safe-optimized")
        assert optimized.code_bytes <= baseline.code_bytes * 1.25
        assert optimized.ram_bytes <= baseline.ram_bytes * 1.25

    def test_most_checks_are_removed_by_the_full_pipeline(self, system):
        outcome = system.build("Surge_Mica2", "safe-optimized")
        assert outcome.checks_inserted >= 50
        assert outcome.checks_removed / outcome.checks_inserted >= 0.5

    def test_a_receive_heavy_application_works_safely_under_traffic(self, system):
        app = "RfmToLeds_Mica2"
        outcome = system.build(app, "safe-optimized")
        run = system.simulate(outcome, seconds=2.0,
                              traffic=duty_cycle_context(app))
        assert run.node.radio.packets_received >= 4
        assert not run.halted and run.failures == []
        assert run.node.leds.state.changes >= 1

    def test_telosb_application_builds_and_runs(self, system):
        outcome = system.build("RadioCountToLeds_TelosB", "safe-optimized")
        assert outcome.program.platform == "telosb"
        run = system.simulate(outcome, seconds=1.0, use_default_context=False)
        assert not run.halted
        assert len(run.node.radio.packets_sent) >= 1
