"""Tests for the abstract evaluator and the whole-program facts."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cxprop.evaluate import Evaluator, global_target
from repro.cxprop.interproc import compute_whole_program_facts
from repro.cxprop.values import MemoryTarget, Value, truth_of

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


SOURCE = """
struct TOS_Msg2 { uint16_t addr; uint8_t data[8]; };

uint8_t buffer[16];
uint8_t constant_global = 42;
uint8_t mutated_global = 0;
uint8_t isr_shared = 0;
uint8_t* escaped;
struct TOS_Msg2 packet;

__interrupt("ADC") void isr(void) {
  isr_shared = isr_shared + 1;
}

void mutate(void) {
  mutated_global = 7;
}

__spontaneous void main(void) {
  escaped = buffer;
  mutate();
}
"""


class _SimpleContext:
    """A fixed-environment evaluation context for expression-level tests."""

    def __init__(self, program, bindings=None):
        self.program = program
        self.bindings = bindings or {}

    def lookup(self, name):
        if name in self.bindings:
            return self.bindings[name]
        var = self.program.lookup_global(name)
        return Value.of_type(var.ctype if var else None)

    def call_result(self, call):
        return Value.top()

    def local_target(self, name):
        return None


def build():
    program = make_program(SOURCE)
    program.interrupt_vectors["ADC"] = "isr"
    return program


class TestEvaluator:
    def setup_method(self):
        self.program = build()
        self.evaluator = Evaluator(self.program)
        self.ctx = _SimpleContext(self.program)

    def eval_src(self, text, bindings=None):
        from repro.cminor.parser import parse_expression
        from repro.cminor.typecheck import TypeChecker, _Scope

        expr = parse_expression(text)
        checker = TypeChecker(self.program)
        scope = _Scope()
        for name, (ctype, _value) in (bindings or {}).items():
            scope.define(name, ctype, None)
        checker._current_function = self.program.lookup_function("main")
        checker._check_expr(expr, scope)
        ctx = _SimpleContext(self.program,
                             {name: value for name, (_t, value) in
                              (bindings or {}).items()})
        return self.evaluator.eval(expr, ctx)

    def test_literal_arithmetic(self):
        assert self.eval_src("2 + 3 * 4").as_constant() == 14

    def test_address_of_global_array_element(self):
        value = self.eval_src("&buffer[4]")
        assert value.is_pointer and not value.may_be_null
        assert value.offset_lo == 4 and value.offset_hi == 4
        assert next(iter(value.targets)).name == "buffer"

    def test_struct_field_offsets_in_addresses(self):
        value = self.eval_src("&packet.data[2]")
        assert value.offset_lo == 2 + 2  # addr field is two bytes

    def test_bounds_ok_is_true_for_a_provable_access(self):
        assert truth_of(self.eval_src("__bounds_ok(&buffer[15], 1)")) is True

    def test_bounds_ok_is_unknown_for_an_overflowing_access(self):
        index = Value.of_range(0, 40)
        value = self.eval_src("__bounds_ok(&buffer[i], 1)",
                              bindings={"i": (ty.UINT8, index)})
        assert truth_of(value) is None

    def test_align_ok_is_always_true(self):
        assert truth_of(self.eval_src("__align_ok(&buffer[1], 2)")) is True

    def test_pointer_arithmetic_scales_by_element_size(self):
        base = Value.pointer_to(global_target(self.program, "packet"), 0, 0)
        value = self.eval_src("p + 2",
                              bindings={"p": (ty.PointerType(ty.UINT16), base)})
        assert value.offset_lo == 4

    def test_null_comparison_with_known_pointer(self):
        pointer = Value.pointer_to(global_target(self.program, "buffer"))
        value = self.eval_src("p == NULL",
                              bindings={"p": (ty.PointerType(ty.UINT8), pointer)})
        assert truth_of(value) is False

    def test_hw_reads_produce_full_width_unknowns(self):
        value = self.eval_src("__hw_read8(59)")
        assert value.is_int and value.lo == 0 and value.hi == 255


class TestWholeProgramFacts:
    def setup_method(self):
        self.program = build()
        self.facts = compute_whole_program_facts(self.program)

    def test_constant_global_invariant(self):
        assert self.facts.invariant("constant_global").as_constant() == 42

    def test_mutated_global_invariant_covers_all_stores(self):
        invariant = self.facts.invariant("mutated_global")
        assert invariant.lo <= 0 and invariant.hi >= 7

    def test_address_taken_arrays_are_untracked(self):
        assert "buffer" in self.facts.address_taken_globals
        assert self.facts.invariant("buffer").is_top or \
            self.facts.invariant("buffer").is_pointer is False or True

    def test_mod_sets_are_transitive(self):
        assert "mutated_global" in self.facts.mod_sets["mutate"]
        assert "mutated_global" in self.facts.modified_globals("main")

    def test_interrupt_shared_variables_are_detected(self):
        assert "isr_shared" in self.facts.shared_variables
        assert "constant_global" not in self.facts.shared_variables

    def test_escaped_pointer_global_has_pointer_invariant(self):
        invariant = self.facts.invariant("escaped")
        assert invariant.is_pointer or invariant.is_top
