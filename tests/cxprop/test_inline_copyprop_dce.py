"""Tests for the inliner, copy propagation, and dead code elimination."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cxprop.copyprop import propagate_copies
from repro.cxprop.dce import eliminate_dead_code
from repro.cxprop.inline import InlineConfig, inline_program, normalize_calls

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, make_program, statements_of


class TestCallNormalization:
    def test_nested_calls_are_hoisted_into_temporaries(self):
        program = make_program("""
uint8_t inner(void) { return 3; }
uint8_t outer(uint8_t x) { return x; }
uint8_t sink;
__spontaneous void main(void) {
  sink = outer(inner()) + 1;
}
""")
        hoisted = normalize_calls(program)
        assert hoisted >= 1
        main_stmts = statements_of(program, "main")
        temps = [s for s in main_stmts if isinstance(s, ast.VarDecl)
                 and isinstance(s.init, ast.Call)]
        assert temps

    def test_calls_in_conditions_are_hoisted(self):
        program = make_program("""
uint8_t check(void) { return 1; }
uint8_t sink;
__spontaneous void main(void) {
  if (check()) { sink = 1; }
}
""")
        assert normalize_calls(program) == 1
        ifs = [s for s in statements_of(program, "main") if isinstance(s, ast.If)]
        assert not any(isinstance(n, ast.Call)
                       for n in _walk_expr(ifs[0].cond))


def _walk_expr(expr):
    from repro.cminor.visitor import walk_expression

    return walk_expression(expr)


class TestInliner:
    SOURCE = """
uint8_t total;

__inline uint8_t tiny(uint8_t x) {
  return x + 1;
}

uint8_t early(uint8_t x) {
  if (x == 0) {
    return 0;
  }
  return x + 2;
}

uint8_t loopy(uint8_t n) {
  uint8_t i;
  uint8_t sum = 0;
  for (i = 0; i < n; i++) {
    sum = sum + i;
  }
  return sum;
}

void recurse(uint8_t n) {
  if (n) { recurse(n - 1); }
}

__spontaneous void main(void) {
  total = tiny(1);
  total = total + early(total);
  total = total + loopy(4);
  recurse(2);
}
"""

    def test_small_and_marked_functions_are_inlined(self):
        program = make_program(self.SOURCE)
        report = inline_program(program)
        assert report.calls_inlined >= 3
        assert count_calls(program, "tiny") == 0
        assert count_calls(program, "early") == 0

    def test_recursive_functions_are_never_inlined(self):
        program = make_program(self.SOURCE)
        inline_program(program)
        assert count_calls(program, "recurse") >= 1
        assert program.lookup_function("recurse") is not None

    def test_fully_inlined_callees_are_dropped(self):
        program = make_program(self.SOURCE)
        report = inline_program(program)
        assert report.functions_removed >= 1
        assert program.lookup_function("tiny") is None

    def test_early_return_callee_uses_loop_break_expansion(self):
        program = make_program(self.SOURCE)
        inline_program(program)
        from repro.cminor.typecheck import check_program

        check_program(program)

    def test_size_limit_is_respected(self):
        program = make_program(self.SOURCE)
        config = InlineConfig(size_limit=0, inline_single_call_site=False)
        report = inline_program(program, config)
        # Only the __inline-marked helper may be expanded.
        assert count_calls(program, "loopy") == 1
        assert count_calls(program, "early") == 1

    def test_inlined_program_preserves_behaviour_statically(self):
        program = make_program(self.SOURCE)
        inline_program(program)
        # total is still assigned three times in main.
        assigns = [s for s in statements_of(program, "main")
                   if isinstance(s, ast.Assign)
                   and isinstance(s.lvalue, ast.Identifier)
                   and s.lvalue.name == "total"]
        assert len(assigns) >= 3


class TestCopyPropagation:
    def test_copies_of_literals_are_propagated(self):
        program = make_program("""
uint8_t sink;
__spontaneous void main(void) {
  uint8_t a = 4;
  uint8_t b = a;
  sink = b;
}
""")
        report = propagate_copies(program)
        assert report.copies_propagated >= 1

    def test_copies_are_not_propagated_into_loops_that_reassign(self):
        program = make_program("""
uint8_t sink;
__spontaneous void main(void) {
  uint8_t i = 0;
  while (i < 4) {
    sink = i;
    i = i + 1;
  }
}
""")
        propagate_copies(program)
        loops = [s for s in statements_of(program, "main")
                 if isinstance(s, ast.While)]
        reads = [s for s in statements_of(program, "main")
                 if isinstance(s, ast.Assign)
                 and isinstance(s.lvalue, ast.Identifier)
                 and s.lvalue.name == "sink"]
        assert isinstance(reads[0].rvalue, ast.Identifier), \
            "the loop-carried variable must not be replaced by its initial value"

    def test_reassignment_invalidates_copies(self):
        program = make_program("""
uint8_t sink;
__spontaneous void main(void) {
  uint8_t a = 1;
  uint8_t b = a;
  a = 9;
  sink = b;
}
""")
        propagate_copies(program)
        read = [s for s in statements_of(program, "main")
                if isinstance(s, ast.Assign)
                and isinstance(s.lvalue, ast.Identifier)
                and s.lvalue.name == "sink"][0]
        # b may be replaced by the literal 1 (its value), never by a (stale).
        assert not (isinstance(read.rvalue, ast.Identifier)
                    and read.rvalue.name == "a")


class TestDeadCodeElimination:
    SOURCE = """
uint8_t used_global = 1;
uint8_t unused_global = 2;
uint16_t write_only_counter = 0;
volatile uint16_t keep_me = 0;
volatile uint8_t sink;

void unreachable_helper(void) { sink = 0; }

__spontaneous void main(void) {
  uint8_t unused_local = 9;
  sink = used_global;
  write_only_counter = write_only_counter + 1;
  keep_me = keep_me + 1;
}
"""

    def test_unreachable_functions_are_removed(self):
        program = make_program(self.SOURCE)
        report = eliminate_dead_code(program)
        assert report.functions_removed == 1
        assert program.lookup_function("unreachable_helper") is None

    def test_unreferenced_globals_are_removed(self):
        program = make_program(self.SOURCE)
        eliminate_dead_code(program)
        assert "unused_global" not in program.globals
        assert "used_global" in program.globals

    def test_write_only_globals_and_their_stores_are_removed(self):
        program = make_program(self.SOURCE)
        report = eliminate_dead_code(program)
        assert "write_only_counter" not in program.globals
        assert report.dead_stores_removed >= 1

    def test_volatile_globals_are_preserved(self):
        program = make_program(self.SOURCE)
        eliminate_dead_code(program)
        assert "keep_me" in program.globals

    def test_unused_locals_are_removed(self):
        program = make_program(self.SOURCE)
        eliminate_dead_code(program)
        decls = [s for s in statements_of(program, "main")
                 if isinstance(s, ast.VarDecl)]
        assert not decls

    def test_fat_pointer_metadata_follows_its_pointer(self):
        from repro.ccured.config import CCuredConfig
        from repro.ccured.instrument import METADATA_PREFIX, cure

        program = make_program("""
uint8_t buffer[8];
uint8_t* cursor;
uint8_t sink;
__spontaneous void main(void) {
  uint8_t i;
  cursor = buffer;
  for (i = 0; i < 8; i++) {
    sink = sink + cursor[i];
  }
}
""")
        cure(program, CCuredConfig(run_optimizer=False))
        meta_name = f"{METADATA_PREFIX}cursor"
        assert meta_name in program.globals
        eliminate_dead_code(program)
        # cursor is still used, so its metadata must survive too.
        assert "cursor" in program.globals
        assert meta_name in program.globals

    def test_program_still_typechecks_after_dce(self):
        program = make_program(self.SOURCE)
        eliminate_dead_code(program)
        from repro.cminor.typecheck import check_program

        check_program(program)
