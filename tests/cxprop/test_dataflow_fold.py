"""Tests for the flow-sensitive analysis and the fold pass."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cminor.visitor import walk_statements
from repro.cxprop.dataflow import FunctionAnalysis
from repro.cxprop.fold import fold_program
from repro.cxprop.interproc import compute_whole_program_facts

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, make_program, statements_of


def analyze(source, function="main"):
    program = make_program(source)
    facts = compute_whole_program_facts(program)
    func = program.lookup_function(function)
    analysis = FunctionAnalysis(program, func, facts)
    return program, func, analysis.run(), analysis


def state_at(program, func, result, predicate):
    for stmt in walk_statements(func.body):
        if predicate(stmt):
            return result.state_before(stmt)
    raise AssertionError("no statement matched the predicate")


class TestFlowSensitivity:
    def test_straight_line_constants(self):
        source = """
uint8_t g;
__spontaneous void main(void) {
  uint8_t x = 3;
  uint8_t y = x + 4;
  g = y;
}
"""
        program, func, result, analysis = analyze(source)
        state = state_at(program, func, result,
                         lambda s: isinstance(s, ast.Assign)
                         and isinstance(s.lvalue, ast.Identifier)
                         and s.lvalue.name == "g")
        assert state["y"].as_constant() == 7

    def test_branch_join_widens_to_both_values(self):
        source = """
uint8_t g;
__spontaneous void main(void) {
  uint8_t x;
  uint8_t flag = __hw_read8(59);
  if (flag) { x = 1; } else { x = 10; }
  g = x;
}
"""
        program, func, result, analysis = analyze(source)
        state = state_at(program, func, result,
                         lambda s: isinstance(s, ast.Assign)
                         and isinstance(s.lvalue, ast.Identifier)
                         and s.lvalue.name == "g")
        assert (state["x"].lo, state["x"].hi) == (1, 10)

    def test_loop_counter_is_bounded_by_its_guard(self):
        source = """
uint8_t sink;
uint8_t data[10];
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 10; i++) {
    sink = data[i];
  }
}
"""
        program, func, result, analysis = analyze(source)
        state = state_at(program, func, result,
                         lambda s: isinstance(s, ast.Assign)
                         and isinstance(s.lvalue, ast.Identifier)
                         and s.lvalue.name == "sink")
        assert state["i"].lo >= 0 and state["i"].hi <= 9

    def test_interrupt_shared_variables_are_not_trusted_outside_atomic(self):
        source = """
uint8_t shared = 0;
uint8_t sink;
__interrupt("ADC") void isr(void) { shared = 200; }
__spontaneous void main(void) {
  shared = 1;
  sink = shared;
  atomic {
    shared = 2;
    sink = shared;
  }
}
"""
        program = make_program(source)
        program.interrupt_vectors["ADC"] = "isr"
        facts = compute_whole_program_facts(program)
        func = program.lookup_function("main")
        result = FunctionAnalysis(program, func, facts).run()
        outside, inside = [result.state_before(s) for s in walk_statements(func.body)
                           if isinstance(s, ast.Assign)
                           and isinstance(s.lvalue, ast.Identifier)
                           and s.lvalue.name == "sink"]
        # Outside the atomic section the value may be anything the ISR wrote.
        assert outside["shared"].as_constant() is None
        # Inside the atomic section the flow-sensitive value is trusted.
        assert inside["shared"].as_constant() == 2


class TestFolding:
    def test_always_true_branch_is_folded(self):
        source = """
uint8_t g;
void effect(void) { g = g + 1; }
__spontaneous void main(void) {
  uint8_t x = 5;
  if (x > 1) { effect(); } else { g = 0; }
}
"""
        program = make_program(source)
        facts = compute_whole_program_facts(program)
        report = fold_program(program, facts)
        assert report.branches_folded >= 1
        main_stmts = statements_of(program, "main")
        assert not any(isinstance(s, ast.If) for s in main_stmts)
        assert count_calls(program, "effect") == 1

    def test_constant_global_reads_become_literals(self):
        source = """
uint8_t group = 125;
uint8_t sink;
__spontaneous void main(void) {
  sink = group;
}
"""
        program = make_program(source)
        facts = compute_whole_program_facts(program)
        report = fold_program(program, facts)
        assert report.constants_substituted >= 1
        assign = [s for s in statements_of(program, "main")
                  if isinstance(s, ast.Assign)][0]
        assert isinstance(assign.rvalue, ast.IntLiteral)
        assert assign.rvalue.value == 125

    def test_mutated_global_reads_are_not_substituted(self):
        source = """
uint8_t counter = 0;
uint8_t sink;
__spontaneous void main(void) {
  counter = counter + 1;
  sink = counter;
}
"""
        program = make_program(source)
        facts = compute_whole_program_facts(program)
        fold_program(program, facts)
        assign = [s for s in statements_of(program, "main")
                  if isinstance(s, ast.Assign)
                  and isinstance(s.lvalue, ast.Identifier)
                  and s.lvalue.name == "sink"][0]
        assert isinstance(assign.rvalue, ast.Identifier)

    def test_address_of_operands_are_never_replaced(self):
        source = """
uint8_t slot = 3;
uint8_t* where;
__spontaneous void main(void) {
  where = &slot;
}
"""
        program = make_program(source)
        facts = compute_whole_program_facts(program)
        fold_program(program, facts)
        assign = [s for s in statements_of(program, "main")
                  if isinstance(s, ast.Assign)][0]
        assert isinstance(assign.rvalue, ast.AddressOf)
        assert isinstance(assign.rvalue.lvalue, ast.Identifier)

    def test_bounds_check_conditions_fold_inside_known_loops(self):
        source = """
uint8_t data[8];
uint16_t total;
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 8; i++) {
    if (!__bounds_ok(&data[i], 1)) {
      __halt(1);
    }
    total = total + data[i];
  }
}
"""
        program = make_program(source)
        facts = compute_whole_program_facts(program)
        report = fold_program(program, facts)
        assert report.branches_folded >= 1
        assert count_calls(program, "__halt") == 0

    def test_unprovable_bounds_check_is_kept(self):
        source = """
uint8_t data[8];
uint8_t fetch(uint8_t index) {
  if (!__bounds_ok(&data[index], 1)) {
    __halt(1);
  }
  return data[index];
}
__spontaneous void main(void) { fetch(200); }
"""
        program = make_program(source)
        facts = compute_whole_program_facts(program)
        fold_program(program, facts)
        assert count_calls(program, "__halt") == 1

    def test_loop_guards_are_never_folded_away(self):
        source = """
uint16_t total;
uint8_t data[4];
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 4; i++) {
    total = total + data[i];
  }
}
"""
        program = make_program(source)
        facts = compute_whole_program_facts(program)
        fold_program(program, facts)
        loops = [s for s in statements_of(program, "main")
                 if isinstance(s, ast.While)]
        assert loops
        guard_breaks = [s for s in walk_statements(loops[0].body)
                        if isinstance(s, ast.Break)]
        assert guard_breaks, "the loop's exit path must survive folding"
