"""Tests for the pointer-aware race analysis, atomic optimization, and driver."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.cminor.visitor import walk_statements
from repro.cxprop.atomic_opt import compute_always_atomic_functions, \
    optimize_atomic_sections
from repro.cxprop.driver import CxpropConfig, optimize_program
from repro.cxprop.interproc import compute_whole_program_facts
from repro.cxprop.race import pointer_aware_race_analysis

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, make_program, statements_of


class TestPointerAwareRaceAnalysis:
    def test_direct_and_pointer_shared_variables(self):
        program = make_program("""
uint8_t directly_shared;
uint8_t reachable_through_pointer[4];
uint8_t* cursor;
uint8_t private_to_tasks;

__interrupt("ADC") void isr(void) {
  directly_shared = 1;
  cursor[0] = 2;
}

__spontaneous void main(void) {
  cursor = reachable_through_pointer;
  private_to_tasks = directly_shared;
}
""")
        program.interrupt_vectors["ADC"] = "isr"
        report = pointer_aware_race_analysis(program)
        assert "directly_shared" in report.shared_variables
        assert "reachable_through_pointer" in report.shared_variables
        assert "private_to_tasks" not in report.shared_variables
        assert "reachable_through_pointer" in report.pointer_shared

    def test_no_interrupts_means_nothing_is_shared(self):
        program = make_program("""
uint8_t quiet;
__spontaneous void main(void) { quiet = 1; }
""")
        report = pointer_aware_race_analysis(program)
        assert not report.shared_variables


class TestAtomicOptimization:
    SOURCE = """
uint8_t state;

void helper_in_atomic(void) {
  atomic { state = state + 1; }
}

void helper_outside(void) {
  atomic { state = state + 2; }
}

__interrupt("ADC") void isr(void) {
  atomic { state = 0; }
  helper_in_atomic();
}

__spontaneous void main(void) {
  atomic {
    helper_in_atomic();
    atomic { state = 5; }
  }
  helper_outside();
}
"""

    def _program(self):
        program = make_program(self.SOURCE)
        program.interrupt_vectors["ADC"] = "isr"
        return program

    def test_functions_called_only_from_atomic_context_are_detected(self):
        program = self._program()
        always = compute_always_atomic_functions(program)
        assert "helper_in_atomic" in always
        assert "helper_outside" not in always
        assert "main" not in always

    def test_nested_atomic_sections_are_flattened(self):
        program = self._program()
        report = optimize_atomic_sections(program)
        assert report.nested_removed >= 2  # inside main and inside the ISR
        isr_atomics = [s for s in statements_of(program, "isr")
                       if isinstance(s, ast.Atomic)]
        assert not isr_atomics

    def test_outer_sections_can_skip_the_irq_save(self):
        program = self._program()
        report = optimize_atomic_sections(program)
        assert report.irq_saves_avoided >= 1
        outside = [s for s in statements_of(program, "helper_outside")
                   if isinstance(s, ast.Atomic)]
        assert outside and not outside[0].save_irq

    def test_atomic_sections_in_atomic_only_helpers_are_removed(self):
        program = self._program()
        optimize_atomic_sections(program)
        helper = [s for s in statements_of(program, "helper_in_atomic")
                  if isinstance(s, ast.Atomic)]
        assert not helper


class TestDriver:
    SOURCE = """
uint8_t table[8];
uint8_t limit = 8;
uint16_t total;
uint16_t write_only;

uint16_t accumulate(void) {
  uint8_t i;
  uint16_t sum = 0;
  for (i = 0; i < 8; i++) {
    sum = sum + table[i];
  }
  return sum;
}

__spontaneous void main(void) {
  total = accumulate();
  write_only = total;
  if (limit > 100) {
    total = 0;
  }
}
"""

    def test_driver_reaches_a_fixpoint_and_reports(self):
        program = make_program(self.SOURCE)
        report = optimize_program(program, CxpropConfig())
        summary = report.summary()
        assert summary["rounds"] >= 1
        assert summary["branches_folded"] >= 1      # limit > 100 is false
        assert summary["dead_stores_removed"] >= 1  # write_only
        assert "write_only" not in program.globals

    def test_passes_can_be_disabled(self):
        program = make_program(self.SOURCE)
        report = optimize_program(program, CxpropConfig(
            enable_fold=False, enable_dce=False, enable_copyprop=False,
            enable_atomic_opt=False, max_rounds=1))
        assert report.summary()["branches_folded"] == 0
        assert "write_only" in program.globals

    def test_constant_domain_is_weaker_than_intervals(self):
        strong = make_program(self.SOURCE)
        weak = make_program(self.SOURCE)
        optimize_program(strong, CxpropConfig(domain="interval"))
        optimize_program(weak, CxpropConfig(domain="constant"))
        from repro.cminor.visitor import count_statements

        strong_size = sum(count_statements(f.body)
                          for f in strong.iter_functions())
        weak_size = sum(count_statements(f.body) for f in weak.iter_functions())
        assert strong_size <= weak_size

    def test_optimized_program_still_typechecks(self):
        program = make_program(self.SOURCE)
        optimize_program(program, CxpropConfig())
        from repro.cminor.typecheck import check_program

        check_program(program)
