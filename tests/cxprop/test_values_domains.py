"""Tests (including property-based tests) for abstract values and domains."""

import pytest
from hypothesis import given, strategies as st

from repro.cminor import typesys as ty
from repro.cxprop import values as av
from repro.cxprop.domains import ConstantDomain, IntervalDomain, ValueSetDomain, \
    make_domain
from repro.cxprop.values import MemoryTarget, Value


def ints(lo=-1000, hi=1000):
    return st.integers(lo, hi)


@st.composite
def int_values(draw):
    a = draw(ints())
    b = draw(ints())
    return Value.of_range(min(a, b), max(a, b))


class TestValueConstruction:
    def test_constant_detection(self):
        assert Value.of_int(7).as_constant() == 7
        assert Value.of_range(1, 2).as_constant() is None

    def test_of_type_for_integers(self):
        value = Value.of_type(ty.UINT8)
        assert (value.lo, value.hi) == (0, 255)
        assert Value.of_type(ty.BOOL).hi == 1

    def test_of_type_for_pointers(self):
        value = Value.of_type(ty.PointerType(ty.UINT8))
        assert value.is_pointer and value.may_be_null

    def test_null_and_known_pointers(self):
        target = MemoryTarget("global", "buffer", 8)
        pointer = Value.pointer_to(target, 0, 4)
        assert pointer.is_definitely_nonzero()
        assert Value.null_pointer().is_definitely_zero()

    def test_clamp_to_type(self):
        assert Value.of_range(0, 1000).clamp_to_type(ty.UINT8).hi == 255
        inside = Value.of_range(3, 7).clamp_to_type(ty.UINT8)
        assert (inside.lo, inside.hi) == (3, 7)


class TestJoin:
    @given(int_values(), int_values())
    def test_join_is_an_upper_bound(self, left, right):
        joined = left.join(right)
        assert joined.lo <= left.lo and joined.hi >= left.hi
        assert joined.lo <= right.lo and joined.hi >= right.hi

    @given(int_values(), int_values())
    def test_join_is_commutative(self, left, right):
        assert left.join(right) == right.join(left)

    @given(int_values())
    def test_join_is_idempotent(self, value):
        assert value.join(value) == value

    @given(int_values(), int_values(), int_values())
    def test_join_is_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    def test_join_with_bottom_and_top(self):
        v = Value.of_int(3)
        assert Value.bottom().join(v) == v
        assert Value.top().join(v).is_top

    def test_pointer_join_unions_targets(self):
        a = Value.pointer_to(MemoryTarget("global", "a", 4))
        b = Value.pointer_to(MemoryTarget("global", "b", 8))
        joined = a.join(b)
        assert len(joined.targets) == 2 and not joined.may_be_null

    def test_mixed_int_pointer_join_is_top(self):
        assert Value.of_int(1).join(Value.any_pointer()).is_top


class TestArithmetic:
    @given(ints(), ints(), ints(), ints())
    def test_add_is_sound(self, a_lo, a_hi, b_lo, b_hi):
        a = Value.of_range(min(a_lo, a_hi), max(a_lo, a_hi))
        b = Value.of_range(min(b_lo, b_hi), max(b_lo, b_hi))
        result = av.add_values(a, b)
        # Every concrete sum must be inside the abstract result.
        for x in (a.lo, a.hi):
            for y in (b.lo, b.hi):
                assert result.lo <= x + y <= result.hi

    @given(ints(), ints())
    def test_sub_of_constants_is_exact(self, a, b):
        result = av.sub_values(Value.of_int(a), Value.of_int(b))
        assert result.as_constant() == a - b

    def test_mod_with_constant_modulus(self):
        result = av.mod_values(Value.of_range(0, 255), Value.of_int(8))
        assert (result.lo, result.hi) == (0, 7)

    def test_bitand_with_mask(self):
        result = av.bitand_values(Value.of_range(0, 255), Value.of_int(7))
        assert (result.lo, result.hi) == (0, 7)

    def test_division_by_zero_is_top(self):
        assert av.div_values(Value.of_int(4), Value.of_int(0)).is_top


class TestComparisons:
    def test_disjoint_ranges_decide_comparisons(self):
        low = Value.of_range(0, 3)
        high = Value.of_range(10, 20)
        assert av.compare_values("<", low, high) == av.TRUE_VALUE
        assert av.compare_values(">=", low, high) == av.FALSE_VALUE
        assert av.compare_values("==", low, high) == av.FALSE_VALUE

    def test_overlapping_ranges_are_unknown(self):
        a = Value.of_range(0, 10)
        b = Value.of_range(5, 15)
        assert av.compare_values("<", a, b) == av.BOOL_VALUE

    def test_null_test_on_known_pointer(self):
        pointer = Value.pointer_to(MemoryTarget("global", "x", 2))
        assert av.compare_values("==", pointer, Value.of_int(0)) == av.FALSE_VALUE
        assert av.compare_values("!=", pointer, Value.of_int(0)) == av.TRUE_VALUE

    def test_truth_of(self):
        assert av.truth_of(Value.of_int(3)) is True
        assert av.truth_of(Value.of_int(0)) is False
        assert av.truth_of(Value.of_range(0, 1)) is None


class TestDomains:
    def test_make_domain(self):
        assert isinstance(make_domain("constant"), ConstantDomain)
        assert isinstance(make_domain("interval"), IntervalDomain)
        assert isinstance(make_domain("valueset"), ValueSetDomain)
        with pytest.raises(KeyError):
            make_domain("octagon")

    def test_constant_domain_drops_non_constants(self):
        domain = ConstantDomain()
        joined = domain.join(Value.of_int(1), Value.of_int(2))
        assert joined.as_constant() is None
        assert joined.range_width() > 100

    def test_interval_domain_keeps_ranges(self):
        domain = IntervalDomain()
        joined = domain.join(Value.of_int(1), Value.of_int(2))
        assert (joined.lo, joined.hi) == (1, 2)

    def test_interval_widening_jumps_to_type_limits(self):
        domain = IntervalDomain()
        widened = domain.widen(Value.of_range(0, 3), Value.of_range(0, 4), ty.UINT8)
        assert widened.hi == 255
        assert widened.lo == 0

    def test_widening_is_stable_when_nothing_changed(self):
        for domain in (ConstantDomain(), IntervalDomain(), ValueSetDomain()):
            value = Value.of_range(2, 5)
            assert domain.widen(value, value, ty.UINT8) == value

    @given(int_values(), int_values())
    def test_domain_joins_over_approximate_plain_join(self, left, right):
        plain = left.join(right)
        for domain in (ConstantDomain(), IntervalDomain(), ValueSetDomain()):
            joined = domain.join(left, right)
            assert joined.lo <= plain.lo and joined.hi >= plain.hi
