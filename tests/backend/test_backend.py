"""Tests for the backend: cost models, gcc-strength optimization, images."""

import pytest

from repro.backend.gcc_opt import gcc_optimize
from repro.backend.image import build_image
from repro.backend.target import cost_model_for
from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.instrument import cure
from repro.cminor import ast_nodes as ast
from repro.cminor.parser import parse_expression

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, make_program


class TestCostModels:
    def test_models_exist_for_both_platforms(self):
        mica2 = cost_model_for("mica2")
        telosb = cost_model_for("telosb")
        assert mica2.platform.name == "mica2"
        assert telosb.platform.name == "telosb"

    def test_wider_operations_cost_more_on_the_avr(self):
        costs = cost_model_for("mica2")
        narrow = parse_expression("1")
        narrow.ctype = __import__("repro.cminor.typesys", fromlist=["UINT8"]).UINT8
        wide = parse_expression("1")
        wide.ctype = __import__("repro.cminor.typesys", fromlist=["UINT32"]).UINT32
        assert costs.expr_bytes(wide) > costs.expr_bytes(narrow)

    def test_sixteen_bit_ops_are_cheaper_on_the_msp430(self):
        from repro.cminor import typesys as ty

        expr = ast.BinaryOp("+", ast.IntLiteral(1), ast.IntLiteral(2))
        expr.ctype = ty.UINT16
        avr = cost_model_for("mica2")
        msp = cost_model_for("telosb")
        assert msp.expr_cycles(expr) <= avr.expr_cycles(expr)

    def test_atomic_without_irq_save_is_cheaper(self):
        costs = cost_model_for("mica2")
        saving = ast.Atomic(ast.Block([]), save_irq=True)
        plain = ast.Atomic(ast.Block([]), save_irq=False)
        assert costs.stmt_bytes(plain) < costs.stmt_bytes(saving)
        assert costs.stmt_cycles(plain) < costs.stmt_cycles(saving)

    def test_division_is_expensive(self):
        from repro.cminor import typesys as ty

        costs = cost_model_for("mica2")
        div = ast.BinaryOp("/", ast.IntLiteral(10), ast.IntLiteral(3))
        div.ctype = ty.UINT16
        add = ast.BinaryOp("+", ast.IntLiteral(10), ast.IntLiteral(3))
        add.ctype = ty.UINT16
        assert costs.expr_cycles(div) > costs.expr_cycles(add)


class TestGccOptimize:
    def test_literal_arithmetic_is_folded(self):
        program = make_program("""
uint8_t sink;
__spontaneous void main(void) { sink = 2 + 3 * 4; }
""")
        report = gcc_optimize(program)
        assert report.constants_folded >= 2
        assign = [s for s in program.lookup_function("main").body.stmts
                  if isinstance(s, ast.Assign)][0]
        assert isinstance(assign.rvalue, ast.IntLiteral)
        assert assign.rvalue.value == 14

    def test_uncalled_static_functions_are_dropped(self):
        program = make_program("""
void never_called(void) { }
__spontaneous void main(void) { }
""")
        report = gcc_optimize(program)
        assert report.functions_removed == 1
        assert program.lookup_function("never_called") is None

    def test_easy_checks_are_removed_but_hard_ones_stay(self):
        # The two consecutive stores through the same unmodified pointer give
        # the backend an "easy" duplicate check to delete; the data-dependent
        # index in fetch() is beyond it.
        program = make_program("""
struct rec { uint16_t value; uint16_t other; };
struct rec item;
uint8_t table[4];
uint8_t fetch(uint8_t i) { return table[i]; }
void fill(struct rec* p) {
  p->value = 3;
  p->other = 4;
}
__spontaneous void main(void) {
  fill(&item);
  fetch(200);
}
""")
        cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                                   run_optimizer=False))
        before = (count_calls(program, "__ccured_check_ptr")
                  + count_calls(program, "__ccured_check_null")
                  + count_calls(program, "__ccured_check_wild"))
        report = gcc_optimize(program)
        after = (count_calls(program, "__ccured_check_ptr")
                 + count_calls(program, "__ccured_check_null")
                 + count_calls(program, "__ccured_check_wild"))
        assert report.checks_removed >= 1
        assert after >= 1, "the data-dependent index check must survive gcc"
        assert after == before - report.checks_removed

    def test_literal_branches_are_folded(self):
        program = make_program("""
uint8_t sink;
__spontaneous void main(void) {
  if (1) { sink = 1; } else { sink = 2; }
  if (0) { sink = 3; }
}
""")
        report = gcc_optimize(program)
        assert report.branches_folded == 2
        assert not any(isinstance(s, ast.If)
                       for s in program.lookup_function("main").body.stmts)


class TestMemoryImage:
    SOURCE = """
uint8_t small;
uint16_t initialized = 7;
uint8_t buffer[32];
uint8_t greet(void) {
  char* message = "hello";
  return (uint8_t)message[0];
}
__spontaneous void main(void) { small = greet(); }
"""

    def test_sections_are_accounted(self):
        program = make_program(self.SOURCE)
        image = build_image(program)
        assert image.bss_bytes >= 33          # small + buffer
        assert image.data_bytes >= 2          # initialized
        assert image.text_bytes > 0
        assert image.ram_bytes == image.data_bytes + image.bss_bytes + \
            image.string_ram_bytes

    def test_strings_occupy_ram_on_the_mica2(self):
        program = make_program(self.SOURCE)
        image = build_image(program)
        assert image.string_ram_bytes == len("hello") + 1
        assert image.string_rom_bytes == 0

    def test_strings_stay_in_flash_on_the_telosb(self):
        program = make_program(self.SOURCE, platform="telosb")
        image = build_image(program, cost_model_for("telosb"))
        assert image.string_ram_bytes == 0
        assert image.string_rom_bytes == len("hello") + 1

    def test_rom_strings_are_counted_as_code(self):
        program = make_program(self.SOURCE)
        func = program.lookup_function("greet")
        from repro.cminor.visitor import walk_function_expressions

        for expr in walk_function_expressions(func.body):
            if isinstance(expr, ast.StringLiteral):
                expr.in_rom = True
        image = build_image(program)
        assert image.string_ram_bytes == 0
        assert image.code_bytes > image.text_bytes

    def test_duplicate_strings_are_pooled(self):
        program = make_program("""
uint8_t sink;
uint8_t f(void) { char* a = "same"; return (uint8_t)a[0]; }
uint8_t g(void) { char* b = "same"; return (uint8_t)b[0]; }
__spontaneous void main(void) { sink = f() + g(); }
""")
        image = build_image(program)
        assert image.string_ram_bytes == len("same") + 1

    def test_per_symbol_sizes_and_footprint(self):
        program = make_program(self.SOURCE)
        image = build_image(program)
        assert "main" in image.function_sizes and "greet" in image.function_sizes
        rom, ram = image.footprint_of({"greet"}, {"buffer"})
        assert rom == image.function_sizes["greet"]
        assert ram == 32

    def test_more_statements_mean_more_code(self):
        small = make_program("uint8_t x;\n__spontaneous void main(void) { x = 1; }")
        large = make_program("""
uint8_t x;
__spontaneous void main(void) {
  x = 1; x = 2; x = 3; x = 4; x = 5; x = 6; x = 7; x = 8;
}
""")
        assert build_image(large).text_bytes > build_image(small).text_bytes

    def test_surviving_checks_recorded_in_image(self):
        program = make_program("""
uint8_t table[4];
uint8_t fetch(uint8_t i) { return table[i]; }
__spontaneous void main(void) { fetch(9); }
""")
        result = cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                                            run_optimizer=False))
        image = build_image(program)
        assert image.surviving_checks == result.inventory.ids()
