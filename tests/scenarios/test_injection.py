"""Injection primitives: bit flips, structured memory errors, crafted
frames, labelled UART rejection, and the corruptor's purity contract."""

import pytest

from repro.avrora.devices import Uart
from repro.avrora.memory import MemoryError_, MemorySystem, Pointer
from repro.avrora.network import _mix64, crc16
from repro.cminor import typesys as ty
from repro.scenarios.faults import PacketInjectFault, PayloadCorruptFault
from repro.scenarios.injector import ScenarioInjector, craft_packet
from repro.tinyos import messages as msgs


class TestFlipBit:
    def test_plain_byte_flip_xors_one_bit(self):
        mem = MemorySystem(pointer_size=2)
        obj = mem.allocate("G__buf", 4)
        obj.data[2] = 0b0001_0000
        what = mem.flip_bit("G__buf", 2, 4)
        assert obj.data[2] == 0
        assert "G__buf+2" in what

    def test_pointer_slot_flip_advances_the_stored_pointer(self):
        """Flipping bits of a pointer slot must move the *pointer*, not
        XOR the sentinel bytes the shadow representation stores."""
        mem = MemorySystem(pointer_size=2)
        target = mem.allocate("G__msg", 43)
        holder = mem.allocate("G__ptr", 2)
        ptr_type = ty.PointerType(ty.UINT8)
        mem.write(Pointer(holder, 0), ptr_type, Pointer(target, 0))
        mem.flip_bit("G__ptr", 0, 5)
        stored = mem.read(Pointer(holder, 0), ptr_type)
        assert isinstance(stored, Pointer)
        assert stored.obj is target
        assert stored.offset == 32

    def test_pointer_slot_flip_resolves_unaligned_offsets(self):
        mem = MemorySystem(pointer_size=2)
        target = mem.allocate("G__msg", 43)
        holder = mem.allocate("G__ptr", 2)
        ptr_type = ty.PointerType(ty.UINT8)
        mem.write(Pointer(holder, 0), ptr_type, Pointer(target, 4))
        # Offset 1 lands inside the 2-byte pointer slot at offset 0.
        mem.flip_bit("G__ptr", 1, 0)
        assert mem.read(Pointer(holder, 0), ptr_type).offset == 5

    def test_unknown_object_and_bad_ranges_are_rejected(self):
        mem = MemorySystem(pointer_size=2)
        mem.allocate("G__x", 2)
        with pytest.raises(KeyError, match="unknown global"):
            mem.flip_bit("G__missing", 0, 0)
        with pytest.raises(ValueError, match="outside"):
            mem.flip_bit("G__x", 2, 0)
        with pytest.raises(ValueError, match="bit"):
            mem.flip_bit("G__x", 0, 16)
        # Bits 8..15 only make sense for pointer slots.
        with pytest.raises(ValueError, match="holds no pointer"):
            mem.flip_bit("G__x", 0, 9)


class TestMemoryErrorContext:
    def test_out_of_bounds_write_carries_structured_context(self):
        mem = MemorySystem(pointer_size=2)
        obj = mem.allocate("G__buf", 4)
        with pytest.raises(MemoryError_) as error:
            mem.write(Pointer(obj, 3), ty.UINT16, 7)
        context = error.value.context()
        assert context == {
            "access": "write", "access_size": 2, "offset": 3,
            "object_name": "G__buf", "object_kind": "global",
            "object_size": 4,
        }

    def test_out_of_bounds_read_carries_structured_context(self):
        mem = MemorySystem(pointer_size=2)
        obj = mem.allocate("G__buf", 4)
        with pytest.raises(MemoryError_) as error:
            mem.read(Pointer(obj, -1), ty.UINT8)
        assert error.value.access == "read"
        assert error.value.offset == -1
        assert error.value.object_name == "G__buf"

    def test_non_access_errors_default_to_none(self):
        error = MemoryError_("dereference of null pointer")
        assert error.context() == {
            "access": None, "access_size": None, "offset": None,
            "object_name": None, "object_kind": None, "object_size": None,
        }


class TestUartInjectFrame:
    def test_oversized_frame_is_rejected_with_labelled_error(self):
        uart = Uart()
        with pytest.raises(ValueError, match="inject_frame.*37 bytes.*"
                                             "MAX_FRAME_LENGTH"):
            uart.inject_frame(bytes(37))

    def test_wire_sized_frame_is_accepted(self):
        class _StubNode:
            @staticmethod
            def cycles_for_us(us):
                return int(us)

            @staticmethod
            def schedule(delay, callback):
                pass

        uart = Uart()
        uart.node = _StubNode()
        uart.inject_frame(bytes(msgs.TOS_MSG_WIRE_LENGTH))
        assert len(uart.pending_rx) == msgs.TOS_MSG_WIRE_LENGTH

    def test_limit_matches_the_wire_format(self):
        assert Uart.MAX_FRAME_LENGTH == msgs.TOS_MSG_WIRE_LENGTH


class TestCraftPacket:
    def test_frame_lies_about_length_under_a_valid_crc(self):
        fault = PacketInjectFault(claimed_length=255)
        frame = craft_packet(fault)
        assert len(frame) == msgs.TOS_MSG_WIRE_LENGTH
        assert frame[4] == 255
        crc = crc16(frame[:msgs.TOS_MSG_WIRE_LENGTH - 2])
        assert frame[-2] == crc & 0xFF
        assert frame[-1] == (crc >> 8) & 0xFF

    def test_frame_passes_group_and_address_filters_by_default(self):
        frame = craft_packet(PacketInjectFault())
        dest = frame[0] | (frame[1] << 8)
        assert dest == msgs.TOS_BCAST_ADDR
        assert frame[3] == msgs.TOS_DEFAULT_GROUP


class TestCorruptorPurity:
    """Satellite: corruption decisions are pure functions of
    (seed, src, dst, sequence) — the partition-invariance contract."""

    def _corruptor(self, seed=0, **kwargs):
        injector = ScenarioInjector(PayloadCorruptFault(**kwargs), seed=seed)
        return injector._corruptor(injector.fault)

    def _frame(self, payload_byte=0x11):
        from repro.avrora.network import encode_tos_msg
        return encode_tos_msg(msgs.TOS_BCAST_ADDR, 9,
                              bytes([payload_byte] * 10))

    def test_same_packet_identity_corrupts_identically(self):
        frame = self._frame()
        first = self._corruptor()(0, 1, 5, frame)
        second = self._corruptor()(0, 1, 5, frame)
        assert first == second
        assert first != frame

    def test_decision_depends_only_on_link_identity(self):
        frame = self._frame()
        corrupt = self._corruptor()
        by_identity = {(src, dst, seq): corrupt(src, dst, seq, frame)
                       for src in (0, 1) for dst in (0, 1)
                       for seq in (0, 1, 2)}
        replay = self._corruptor()
        for (src, dst, seq), expected in by_identity.items():
            assert replay(src, dst, seq, frame) == expected

    def test_seed_changes_the_corruption_stream(self):
        frame = self._frame()
        assert self._corruptor(seed=0)(0, 1, 5, frame) != \
            self._corruptor(seed=1)(0, 1, 5, frame)

    def test_fixed_crc_still_validates(self):
        frame = self._frame()
        corrupted = self._corruptor()(0, 1, 5, frame)
        wire = msgs.TOS_MSG_WIRE_LENGTH
        crc = crc16(corrupted[:wire - 2])
        assert corrupted[wire - 2] == crc & 0xFF
        assert corrupted[wire - 1] == (crc >> 8) & 0xFF
        # Exactly one payload byte differs; the header is untouched.
        diffs = [i for i in range(wire - 2)
                 if corrupted[i] != frame[i]]
        assert len(diffs) == 1 and 5 <= diffs[0] < 5 + msgs.TOSH_DATA_LENGTH

    def test_probability_gate_is_pure(self):
        corrupt = self._corruptor(probability=0.5)
        frame = self._frame()
        fates = [corrupt(0, 1, seq, frame) is not None
                 for seq in range(64)]
        replay = self._corruptor(probability=0.5)
        assert fates == [replay(0, 1, seq, frame) is not None
                         for seq in range(64)]
        # A 0.5 gate over 64 packets corrupts some and spares some.
        assert any(fates) and not all(fates)

    def test_mix64_matches_channel_hash_domain_separation(self):
        # The corruptor salts its seed; the raw channel stream at the same
        # seed must not be reproduced (domain separation).
        from repro.scenarios.injector import _CORRUPT_SALT
        assert _mix64(0 ^ _CORRUPT_SALT, 0, 1, 5) != _mix64(0, 0, 1, 5)
