"""Verdict classification, scenario specs/records, and the end-to-end
matrix: baseline silently corrupts where the safe build detects."""

import dataclasses

import pytest

from repro.api.cli import UsageError, format_scenario_record, resolve_faults
from repro.api.records import ScenarioRecord
from repro.api.specs import ScenarioSpec
from repro.api.workbench import Workbench
from repro.scenarios.faults import (
    KILL_HALT_CODE,
    BitFlipFault,
    FaultPlan,
    NodeKillFault,
    PacketInjectFault,
    PayloadCorruptFault,
)
from repro.scenarios.runner import ScenarioRunner, classify, node_fingerprint

BIT_FLIP_LABEL = "bit-flip@RadioCRCPacketC__radio_rx_ptr"


# -- classify(): the verdict lattice on synthetic nodes -----------------------

class _State:
    def __init__(self):
        self.value = 0
        self.changes = 0
        self.red_toggles = 0


class _StubNode:
    def __init__(self, *, failures=0, halted=False, halt_code=None,
                 violations=0, statements=1000):
        self.failures = [object()] * failures
        self.halted = halted
        self.halt_code = halt_code
        self.memory_violations = violations
        self.leds = type("L", (), {"state": _State()})()
        self.radio = type("R", (), {"packets_sent": [],
                                    "packets_received": 0,
                                    "packets_dropped": 0})()
        self.uart = type("U", (), {"sent_bytes": bytearray()})()
        self.interpreter = type(
            "I", (), {"statements_executed": statements})()


class _StubNetwork:
    def __init__(self, *nodes):
        self.nodes = list(nodes)


def _golden(count=2):
    return tuple(node_fingerprint(_StubNode()) for _ in range(count))


class TestClassify:
    def test_new_failure_reports_mean_detected(self):
        network = _StubNetwork(_StubNode(failures=1), _StubNode())
        assert classify(network, _golden(), BitFlipFault()) == "detected"

    def test_detected_outranks_crash(self):
        network = _StubNetwork(
            _StubNode(failures=1, halted=True, halt_code=0x01), _StubNode())
        assert classify(network, _golden(), BitFlipFault()) == "detected"

    def test_silent_halt_is_a_crash(self):
        network = _StubNetwork(
            _StubNode(halted=True, halt_code=0x01), _StubNode())
        assert classify(network, _golden(), BitFlipFault()) == "crash"

    def test_induced_kill_is_not_a_crash(self):
        network = _StubNetwork(
            _StubNode(),
            _StubNode(halted=True, halt_code=KILL_HALT_CODE))
        fault = NodeKillFault(node=1)
        assert classify(network, _golden(), fault) == "benign"

    def test_state_fault_divergence_is_silent_corruption(self):
        # Same inputs, different behaviour: any fingerprint drift counts.
        network = _StubNetwork(_StubNode(statements=1001), _StubNode())
        assert classify(network, _golden(),
                        BitFlipFault()) == "silent-corruption"

    def test_input_fault_divergence_alone_is_benign(self):
        # A crafted packet changes the traffic pattern by design; mere
        # behavioural drift on any node is expected, not corruption.
        network = _StubNetwork(_StubNode(statements=1001),
                               _StubNode(statements=2000))
        fault = PacketInjectFault(node=0)
        assert classify(network, _golden(), fault) == "benign"

    def test_input_fault_absorbed_violation_is_silent_corruption(self):
        network = _StubNetwork(_StubNode(), _StubNode(violations=3))
        fault = PacketInjectFault(node=0)
        assert classify(network, _golden(), fault) == "silent-corruption"

    def test_identical_run_is_benign(self):
        network = _StubNetwork(_StubNode(), _StubNode())
        assert classify(network, _golden(), BitFlipFault()) == "benign"


# -- ScenarioSpec -------------------------------------------------------------

class TestScenarioSpec:
    def _spec(self, **kwargs):
        defaults = dict(app="Surge_Mica2",
                        variants=("baseline", "safe-optimized"),
                        plan=FaultPlan(faults=(BitFlipFault(),)))
        defaults.update(kwargs)
        return ScenarioSpec(**defaults)

    def test_plan_must_fit_the_network(self):
        plan = FaultPlan(faults=(NodeKillFault(node=5),))
        with pytest.raises(ValueError, match="targets node 5"):
            self._spec(plan=plan, node_count=2)

    def test_workers_capped_by_node_count(self):
        with pytest.raises(ValueError, match="workers"):
            self._spec(workers=3, node_count=2)

    def test_at_least_one_registered_variant(self):
        with pytest.raises(ValueError, match="at least one variant"):
            self._spec(variants=())
        with pytest.raises(KeyError):
            self._spec(variants=("warp-speed",))

    def test_round_trip(self):
        spec = self._spec(seconds=2.0, loss=0.1, seed=3)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_content_key_ignores_workers_but_not_the_plan(self):
        spec = self._spec(node_count=2)
        assert dataclasses.replace(spec, workers=2).content_key() \
            == spec.content_key()
        reseeded = dataclasses.replace(
            spec, plan=FaultPlan(faults=(BitFlipFault(),), seed=1))
        assert reseeded.content_key() != spec.content_key()


# -- ScenarioRecord + CLI formatting (no simulation needed) -------------------

def _record():
    return ScenarioRecord(
        app="Surge_Mica2", content_key="k" * 16, node_count=2, seconds=2.0,
        topology="chain", seed=0,
        variants=("baseline", "safe-optimized"),
        faults=(BIT_FLIP_LABEL, "payload-corrupt"),
        verdicts=(("silent-corruption", "detected"), ("benign", "benign")),
        details={f"{BIT_FLIP_LABEL}|baseline": {"verdict":
                                                "silent-corruption"}},
        golden={"runs": 2, "cache_hits": 0})


class TestScenarioRecord:
    def test_round_trip(self):
        record = _record()
        assert ScenarioRecord.from_dict(record.to_dict()) == record

    def test_cell_lookup_and_counts(self):
        record = _record()
        assert record.verdict(BIT_FLIP_LABEL, "baseline") \
            == "silent-corruption"
        assert record.verdict("payload-corrupt", "safe-optimized") == "benign"
        assert record.counts("baseline") == {"silent-corruption": 1,
                                             "benign": 1}

    def test_table_renders_every_cell(self):
        table = format_scenario_record(_record())
        for needle in ("baseline", "safe-optimized", BIT_FLIP_LABEL,
                       "silent-corruption", "detected",
                       "golden runs: 2 executed"):
            assert needle in table

    def test_resolve_faults_shorthands_and_errors(self):
        labels = [fault.label()
                  for fault in resolve_faults("bit-flip,payload", 2)]
        assert labels == [BIT_FLIP_LABEL, "payload-corrupt"]
        with pytest.raises(UsageError):
            resolve_faults("", 2)
        with pytest.raises(KeyError):
            resolve_faults("meteor", 2)


# -- End to end: the acceptance matrix ----------------------------------------

@pytest.fixture(scope="module")
def bench():
    return Workbench()


@pytest.fixture(scope="module")
def surge_spec():
    return ScenarioSpec(
        app="Surge_Mica2", variants=("baseline", "safe-optimized"),
        plan=FaultPlan(faults=(BitFlipFault(), PayloadCorruptFault())),
        seconds=2.0)


@pytest.fixture(scope="module")
def surge_record(bench, surge_spec):
    return bench.run_scenario(surge_spec)


class TestScenarioMatrix:
    def test_baseline_silently_corrupts_where_safe_detects(self,
                                                           surge_record):
        assert surge_record.verdict(BIT_FLIP_LABEL, "baseline") \
            == "silent-corruption"
        assert surge_record.verdict(BIT_FLIP_LABEL, "safe-optimized") \
            == "detected"

    def test_details_show_the_mechanism(self, surge_record):
        absorbed = surge_record.details[f"{BIT_FLIP_LABEL}|baseline"]
        assert absorbed["memory_violations"] > 0
        assert absorbed["failures"] == 0
        caught = surge_record.details[f"{BIT_FLIP_LABEL}|safe-optimized"]
        assert caught["failures"] >= 1

    def test_golden_runs_once_per_variant(self, surge_record):
        assert surge_record.golden == {"runs": 2, "cache_hits": 0}

    def test_record_is_memoized_by_content_key(self, bench, surge_spec,
                                               surge_record):
        again = bench.run_scenario(dataclasses.replace(surge_spec))
        assert again is surge_record

    def test_record_round_trips(self, surge_record):
        assert ScenarioRecord.from_dict(surge_record.to_dict()) \
            == surge_record

    def test_matrix_is_invariant_across_worker_counts(self, bench,
                                                      surge_spec,
                                                      surge_record):
        """Satellite: verdicts and details are pure functions of the spec —
        a fresh runner under the sharded kernel reproduces them exactly."""
        sharded = dataclasses.replace(surge_spec, workers=2)
        outcome = ScenarioRunner(bench).run(sharded)
        assert outcome["verdicts"] == surge_record.verdicts
        assert outcome["details"] == surge_record.details

    def test_second_plan_reuses_golden_fingerprints(self, bench,
                                                    surge_spec,
                                                    surge_record):
        follow_up = dataclasses.replace(
            surge_spec, plan=FaultPlan(faults=(PayloadCorruptFault(),),
                                       seed=1))
        record = bench.run_scenario(follow_up)
        assert record.golden == {"runs": 0, "cache_hits": 2}
