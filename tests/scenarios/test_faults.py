"""Fault and FaultPlan specs: validation, round trips, canonical labels."""

import pytest

from repro.scenarios.faults import (
    DEFAULT_FAULT_NAMES,
    BitFlipFault,
    FaultPlan,
    NodeKillFault,
    NodeRebootFault,
    PacketInjectFault,
    PayloadCorruptFault,
    default_fault,
    fault_from_dict,
)


class TestFaultSpecs:
    def test_every_kind_round_trips_through_dict(self):
        faults = [
            BitFlipFault(node=1, object="G__x", offset=3, bit=6, at_ms=250),
            PayloadCorruptFault(probability=0.5, flips=2, fix_crc=False),
            PacketInjectFault(node=1, via="uart", at_ms=700,
                              am_type=9, claimed_length=200, dest=7),
            NodeKillFault(node=2, at_ms=900),
            NodeRebootFault(node=2, checkpoint_ms=100, at_ms=400),
        ]
        for fault in faults:
            assert fault_from_dict(fault.to_dict()) == fault

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(KeyError, match="unknown fault kind"):
            fault_from_dict({"kind": "cosmic_ray"})

    def test_validation_rejects_malformed_faults(self):
        with pytest.raises(ValueError, match="at_ms"):
            BitFlipFault(at_ms=0)
        with pytest.raises(ValueError, match="probability"):
            PayloadCorruptFault(probability=0.0)
        with pytest.raises(ValueError, match="via"):
            PacketInjectFault(via="carrier-pigeon")
        with pytest.raises(ValueError, match="claimed_length"):
            PacketInjectFault(claimed_length=300)
        with pytest.raises(ValueError, match="after"):
            NodeRebootFault(checkpoint_ms=500, at_ms=500)

    def test_input_faults_are_marked(self):
        assert not BitFlipFault().perturbs_inputs
        assert not PayloadCorruptFault().perturbs_inputs
        assert PacketInjectFault().perturbs_inputs
        assert NodeKillFault().perturbs_inputs
        assert NodeRebootFault().perturbs_inputs

    def test_induced_nodes_cover_churn_and_injection_targets(self):
        assert BitFlipFault(node=1).induced_nodes() == ()
        assert PacketInjectFault(node=1).induced_nodes() == (1,)
        assert NodeKillFault(node=2).induced_nodes() == (2,)
        assert NodeRebootFault(node=2).induced_nodes() == (2,)


class TestFaultPlan:
    def test_round_trip_and_canonical_serialization(self):
        plan = FaultPlan(faults=(BitFlipFault(), PayloadCorruptFault()),
                         seed=7)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.to_dict() == plan.to_dict()

    def test_empty_plan_is_rejected(self):
        with pytest.raises(ValueError, match="at least one fault"):
            FaultPlan(faults=())

    def test_non_fault_entries_are_rejected(self):
        with pytest.raises(ValueError, match="Fault objects"):
            FaultPlan(faults=({"kind": "bit_flip"},))

    def test_labels_disambiguate_repeats(self):
        plan = FaultPlan(faults=(NodeKillFault(node=0, at_ms=100),
                                 NodeKillFault(node=0, at_ms=200),
                                 PayloadCorruptFault()))
        assert plan.labels() == ["kill@n0", "kill@n0#2", "payload-corrupt"]

    def test_max_node_spans_targeted_faults_only(self):
        plan = FaultPlan(faults=(PayloadCorruptFault(),))
        assert plan.max_node() == -1
        plan = FaultPlan(faults=(BitFlipFault(node=1), NodeKillFault(node=3)))
        assert plan.max_node() == 3

    def test_default_faults_cover_every_shorthand(self):
        for name in DEFAULT_FAULT_NAMES:
            fault = default_fault(name, node_count=3)
            assert fault_from_dict(fault.to_dict()) == fault
        with pytest.raises(KeyError, match="unknown fault name"):
            default_fault("meteor")

    def test_default_churn_targets_last_node(self):
        assert default_fault("kill", node_count=4).node == 3
        assert default_fault("reboot", node_count=4).node == 3
