"""Tests for the public SafeTinyOS facade."""

import pytest

from repro import SafeTinyOS
from repro.toolchain.variants import BASELINE, SAFE_OPTIMIZED

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import tiny_application


@pytest.fixture(scope="module")
def system():
    return SafeTinyOS()


class TestFacade:
    def test_application_listing(self, system):
        apps = system.applications()
        assert len(apps) == 12 and "Surge_Mica2" in apps

    def test_default_variant_is_the_headline_configuration(self, system):
        assert system.default_variant is SAFE_OPTIMIZED

    def test_variant_can_be_selected_by_name(self, system):
        outcome = system.build("BlinkTask_Mica2", "baseline")
        assert outcome.variant == "baseline"
        assert outcome.checks_inserted == 0

    def test_unknown_variant_raises(self, system):
        with pytest.raises(KeyError):
            system.build("BlinkTask_Mica2", "no-such-variant")

    def test_build_outcome_exposes_the_paper_metrics(self, system):
        outcome = system.build("BlinkTask_Mica2", "safe-flid")
        assert outcome.code_bytes > 0
        assert outcome.ram_bytes > 0
        assert outcome.checks_inserted > 0
        assert outcome.checks_removed == outcome.checks_inserted - \
            outcome.checks_surviving
        assert outcome.flid_table is not None

    def test_explain_failure_uses_the_flid_table(self, system):
        outcome = system.build("BlinkTask_Mica2", "safe-flid")
        flid = next(iter(outcome.flid_table.entries))
        assert "check failed" in outcome.explain_failure(flid)

    def test_explain_failure_on_unsafe_build(self, system):
        outcome = system.build("BlinkTask_Mica2", BASELINE)
        assert "unsafe build" in outcome.explain_failure(3)

    def test_custom_applications_are_supported(self, system):
        outcome = system.build(tiny_application(), "safe-flid")
        assert outcome.checks_inserted > 0

    def test_simulation_returns_duty_cycle_and_devices(self, system,
                                                       blink_baseline_build):
        from repro.core.api import BuildOutcome

        outcome = BuildOutcome(blink_baseline_build)
        run = system.simulate(outcome, seconds=1.0)
        assert 0.0 < run.duty_cycle < 0.1
        assert not run.halted
        assert run.failures == []
        assert run.node.interrupts_delivered > 0

    def test_multi_node_simulation(self, system, blink_baseline_build):
        from repro.core.api import BuildOutcome

        outcome = BuildOutcome(blink_baseline_build)
        run = system.simulate(outcome, seconds=0.5, node_count=3)
        assert len(run.duty_cycles) == 3
