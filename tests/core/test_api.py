"""Tests for the public SafeTinyOS facade."""

import pytest

from repro import SafeTinyOS
from repro.toolchain.variants import BASELINE, SAFE_OPTIMIZED

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import tiny_application


@pytest.fixture(scope="module")
def system():
    return SafeTinyOS()


class TestFacade:
    def test_application_listing(self, system):
        apps = system.applications()
        assert len(apps) == 12 and "Surge_Mica2" in apps

    def test_default_variant_is_the_headline_configuration(self, system):
        assert system.default_variant is SAFE_OPTIMIZED

    def test_variant_can_be_selected_by_name(self, system):
        outcome = system.build("BlinkTask_Mica2", "baseline")
        assert outcome.variant == "baseline"
        assert outcome.checks_inserted == 0

    def test_unknown_variant_raises(self, system):
        with pytest.raises(KeyError):
            system.build("BlinkTask_Mica2", "no-such-variant")

    def test_build_outcome_exposes_the_paper_metrics(self, system):
        outcome = system.build("BlinkTask_Mica2", "safe-flid")
        assert outcome.code_bytes > 0
        assert outcome.ram_bytes > 0
        assert outcome.checks_inserted > 0
        assert outcome.checks_removed == outcome.checks_inserted - \
            outcome.checks_surviving
        assert outcome.flid_table is not None

    def test_explain_failure_uses_the_flid_table(self, system):
        outcome = system.build("BlinkTask_Mica2", "safe-flid")
        flid = next(iter(outcome.flid_table.entries))
        assert "check failed" in outcome.explain_failure(flid)

    def test_explain_failure_on_unsafe_build(self, system):
        outcome = system.build("BlinkTask_Mica2", BASELINE)
        assert "unsafe build" in outcome.explain_failure(3)

    def test_custom_applications_are_supported(self, system):
        outcome = system.build(tiny_application(), "safe-flid")
        assert outcome.checks_inserted > 0

    def test_simulation_returns_duty_cycle_and_devices(self, system,
                                                       blink_baseline_build):
        from repro.core.api import BuildOutcome

        outcome = BuildOutcome(blink_baseline_build)
        run = system.simulate(outcome, seconds=1.0)
        assert 0.0 < run.duty_cycle < 0.1
        assert not run.halted
        assert run.failures == []
        assert run.node.interrupts_delivered > 0

    def test_multi_node_simulation(self, system, blink_baseline_build):
        from repro.core.api import BuildOutcome

        outcome = BuildOutcome(blink_baseline_build)
        run = system.simulate(outcome, seconds=0.5, node_count=3)
        assert len(run.duty_cycles) == 3


class TestFacadeDefaults:
    def test_none_variant_means_the_facade_default(self):
        """``build(app)`` must honour a non-headline default variant."""
        system = SafeTinyOS(default_variant=BASELINE)
        outcome = system.build("BlinkTask_Mica2")
        assert outcome.variant == "baseline"
        assert outcome.checks_inserted == 0

    def test_resolve_variant_none_returns_the_default(self):
        system = SafeTinyOS(default_variant="safe-flid")
        assert system._resolve_variant(None).name == "safe-flid"

    def test_facades_can_share_one_workbench(self):
        from repro.api import Workbench

        bench = Workbench()
        first = SafeTinyOS(workbench=bench)
        second = SafeTinyOS(workbench=bench)
        a = first.build("BlinkTask_Mica2", "baseline")
        b = second.build("BlinkTask_Mica2", "baseline")
        assert a.result is b.result


class TestSimulationErrors:
    def test_empty_simulation_outcome_raises_a_clear_error(self):
        from repro.core.api import SimulationOutcome

        empty = SimulationOutcome(label="simulation of X × baseline")
        with pytest.raises(ValueError, match="X × baseline"):
            empty.node
        with pytest.raises(ValueError, match="no nodes"):
            empty.duty_cycle
        # Aggregate views stay usable on an empty outcome.
        assert empty.duty_cycles == []
        assert empty.failures == []
        assert not empty.halted

    def test_zero_node_simulation_is_rejected_up_front(self, system,
                                                       blink_baseline_build):
        from repro.core.api import BuildOutcome

        outcome = BuildOutcome(blink_baseline_build)
        with pytest.raises(ValueError, match="node_count must be >= 1"):
            system.simulate(outcome, seconds=0.5, node_count=0)

    def test_summary_only_builds_cannot_be_simulated(self, system,
                                                     blink_baseline_build):
        from dataclasses import replace

        from repro.core.api import BuildOutcome

        summary_only = BuildOutcome(replace(blink_baseline_build,
                                            program=None))
        with pytest.raises(ValueError, match="summary only"):
            system.simulate(summary_only)

    def test_missing_result_cannot_be_simulated(self, system):
        from repro.core.api import BuildOutcome

        with pytest.raises(ValueError, match="process-pool"):
            system.simulate(BuildOutcome(None))
