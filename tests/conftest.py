"""Session-scoped fixtures shared across the test suite.

Building and transforming applications is deterministic but not free, so
artifacts that many tests inspect (the flattened BlinkTask program, the
instrumented Oscilloscope program, the fully optimized builds) are built
once per session.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.instrument import cure
from repro.nesc.flatten import flatten_application
from repro.nesc.hwrefactor import refactor_hardware_accesses
from repro.tinyos import suite
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import BASELINE, SAFE_FLID, SAFE_OPTIMIZED

from helpers import tiny_application


@pytest.fixture(scope="session")
def blink_program():
    """The flattened (uninstrumented) BlinkTask program."""
    return suite.build_program("BlinkTask_Mica2", suppress_norace=True)


@pytest.fixture(scope="session")
def oscilloscope_program():
    """The flattened (uninstrumented) Oscilloscope program."""
    return suite.build_program("Oscilloscope_Mica2", suppress_norace=True)


@pytest.fixture(scope="session")
def cured_oscilloscope():
    """Oscilloscope after hardware refactoring and CCured instrumentation."""
    program = suite.build_program("Oscilloscope_Mica2", suppress_norace=True)
    refactor_hardware_accesses(program)
    result = cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                                        run_optimizer=False))
    return result


@pytest.fixture(scope="session")
def blink_baseline_build():
    """BlinkTask built with the unsafe, unoptimized baseline variant."""
    return BuildPipeline(BASELINE).build_named("BlinkTask_Mica2")


@pytest.fixture(scope="session")
def blink_safe_build():
    """BlinkTask built safe (FLIDs) without whole-program optimization."""
    return BuildPipeline(SAFE_FLID).build_named("BlinkTask_Mica2")


@pytest.fixture(scope="session")
def blink_optimized_build():
    """BlinkTask built with the full Safe TinyOS pipeline."""
    return BuildPipeline(SAFE_OPTIMIZED).build_named("BlinkTask_Mica2")


@pytest.fixture(scope="session")
def oscilloscope_optimized_build():
    """Oscilloscope built with the full Safe TinyOS pipeline."""
    return BuildPipeline(SAFE_OPTIMIZED).build_named("Oscilloscope_Mica2")


@pytest.fixture(scope="session")
def tiny_app_program():
    """The flattened two-component test application from tests/helpers.py."""
    return flatten_application(tiny_application(), suppress_norace=True)
