"""Tests for the TinyOS substrate: hardware model, library and applications."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.nesc.flatten import flatten_application
from repro.tinyos import hardware as hw
from repro.tinyos import messages as msgs
from repro.tinyos import suite
from repro.tinyos.lib import (
    adc_c,
    am_standard,
    hpl_clock,
    leds_c,
    multi_hop_router,
    radio_crc_packet_c,
    timer_c,
    uart_framed_packet_c,
)

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import interfaces


class TestHardwareModel:
    def test_platform_lookup(self):
        assert hw.platform("mica2").cpu.startswith("ATmega")
        assert hw.platform("telosb").cpu.startswith("MSP430")
        with pytest.raises(KeyError):
            hw.platform("arduino")

    def test_mica2_characteristics_match_the_paper(self):
        mica2 = hw.MICA2
        assert mica2.ram_bytes == 4 * 1024
        assert mica2.flash_bytes == 128 * 1024
        assert mica2.pointer_bytes == 2
        assert mica2.strings_in_ram

    def test_telosb_characteristics_match_the_paper(self):
        telosb = hw.TELOSB
        assert telosb.ram_bytes == 10 * 1024
        assert telosb.flash_bytes == 48 * 1024
        assert not telosb.strings_in_ram

    def test_register_addresses_are_distinct(self):
        registers = [hw.LED_PORT, hw.TIMER_RATE, hw.TIMER_CTRL, hw.ADC_CTRL,
                     hw.ADC_DATA, hw.RADIO_CTRL, hw.RADIO_TXBUF, hw.RADIO_RXBUF,
                     hw.RADIO_RXLEN, hw.RADIO_TXGO, hw.UART_DATA,
                     hw.JIFFY_COUNTER_LO, hw.JIFFY_COUNTER_HI]
        assert len(registers) == len(set(registers))


class TestMessages:
    def test_tos_msg_layout(self):
        tos_msg = msgs.tos_msg_type()
        assert tos_msg.field_offset("addr") == 0
        assert tos_msg.field_offset("data") == 5
        assert tos_msg.field_type("data").length == msgs.TOSH_DATA_LENGTH
        assert tos_msg.sizeof() > msgs.TOS_MSG_WIRE_LENGTH

    def test_wire_length_matches_header_payload_crc(self):
        assert msgs.TOS_MSG_WIRE_LENGTH == 5 + msgs.TOSH_DATA_LENGTH + 2

    def test_common_source_parses(self):
        from repro.cminor.parser import parse_program

        unit = parse_program(msgs.COMMON_SOURCE, "common")
        assert unit.structs.get("TOS_Msg") is not None
        assert unit.structs.get("SurgeMsg") is not None


class TestLibraryComponents:
    @pytest.mark.parametrize("factory", [
        hpl_clock, leds_c, timer_c, adc_c, radio_crc_packet_c, am_standard,
        uart_framed_packet_c, multi_hop_router,
    ])
    def test_component_declares_consistent_interfaces(self, factory):
        component = factory(interfaces())
        component.validate()
        assert component.provides or component.uses

    def test_timer_c_provides_three_timers(self):
        component = timer_c(interfaces())
        assert {"Timer0", "Timer1", "Timer2"} <= set(component.provides)
        assert component.tasks == ["fire_timers"]

    def test_radio_driver_registers_interrupts(self):
        component = radio_crc_packet_c(interfaces())
        assert hw.VECTOR_RADIO_RX in component.interrupts
        assert hw.VECTOR_RADIO_TXDONE in component.interrupts

    def test_factories_return_fresh_instances(self):
        assert leds_c(interfaces()) is not leds_c(interfaces())


class TestApplicationSuite:
    def test_registry_contains_all_twelve_figure_apps(self):
        assert len(suite.FIGURE_APPS) == 12
        assert suite.FIGURE_APPS[0] == "BlinkTask_Mica2"
        assert suite.FIGURE_APPS[-1] == "RadioCountToLeds_TelosB"

    def test_mica2_subset_excludes_the_telosb_app(self):
        assert len(suite.MICA2_APPS) == 11
        assert "RadioCountToLeds_TelosB" not in suite.MICA2_APPS

    def test_unknown_application_raises(self):
        with pytest.raises(KeyError):
            suite.build_application("Missing_Mica2")

    @pytest.mark.parametrize("name", suite.FIGURE_APPS)
    def test_every_application_flattens_and_typechecks(self, name):
        program = suite.build_program(name)
        assert program.lookup_function("main") is not None
        assert program.interrupt_vectors, f"{name} should use interrupts"
        summary = program.summary()
        assert summary["functions"] >= 20
        assert summary["statements"] >= 100

    def test_platform_is_recorded(self):
        assert suite.build_application("RadioCountToLeds_TelosB").platform == "telosb"
        assert suite.build_application("Surge_Mica2").platform == "mica2"

    def test_surge_is_the_largest_mica2_application(self):
        sizes = {}
        for name in ("BlinkTask_Mica2", "Oscilloscope_Mica2", "Surge_Mica2"):
            sizes[name] = suite.build_program(name).summary()["statements"]
        assert sizes["Surge_Mica2"] > sizes["Oscilloscope_Mica2"] > \
            sizes["BlinkTask_Mica2"]

    def test_suppress_norace_flag_changes_race_list(self):
        relaxed = suite.build_program("BlinkTask_Mica2", suppress_norace=False)
        strict = suite.build_program("BlinkTask_Mica2", suppress_norace=True)
        assert relaxed.racy_variables <= strict.racy_variables
        assert "TimerC__timer_expired" in strict.racy_variables
        assert "TimerC__timer_expired" not in relaxed.racy_variables
