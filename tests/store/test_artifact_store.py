"""ArtifactStore: envelopes, corruption demotion, LRU eviction, counters."""

import json
import os

import pytest

from repro.store import ArtifactStore, FORMAT_VERSION, snapshot_key
from repro.store.artifacts import content_digest

SCHEMA = 2


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"), schema=SCHEMA)


class TestRecords:
    def test_round_trip(self, store):
        payload = {"kind": "build", "app": "Blink", "code_bytes": 1234}
        assert store.store_record("abc123", payload)
        assert store.load_record("abc123") == payload
        assert store.record_hits == 1 and store.stores == 1

    def test_missing_key_is_a_miss(self, store):
        assert store.load_record("nope") is None
        assert store.record_misses == 1 and store.errors == 0

    def test_corrupt_json_is_a_labelled_miss(self, store, caplog):
        store.store_record("abc123", {"x": 1})
        path = store._record_path("abc123")
        with open(path, "w") as handle:
            handle.write('{"format": 1, "schema"')  # truncated
        with caplog.at_level("WARNING"):
            assert store.load_record("abc123") is None
        assert store.errors == 1
        assert any("artifact-store" in rec.message for rec in caplog.records)

    def test_stale_schema_is_a_miss(self, store, tmp_path):
        store.store_record("abc123", {"x": 1})
        stale = ArtifactStore(store.root, schema=SCHEMA + 1)
        assert stale.load_record("abc123") is None
        assert stale.errors == 1
        # The original-schema reader still hits.
        assert store.load_record("abc123") == {"x": 1}

    def test_stale_format_is_a_miss(self, store):
        path = store._record_path("abc123")
        envelope = {"format": FORMAT_VERSION + 1, "schema": SCHEMA,
                    "key": "abc123", "digest": content_digest({"x": 1}),
                    "payload": {"x": 1}}
        os.makedirs(store.root, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert store.load_record("abc123") is None

    def test_digest_mismatch_is_a_miss(self, store):
        store.store_record("abc123", {"x": 1})
        path = store._record_path("abc123")
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["payload"]["x"] = 2  # tamper without updating the digest
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert store.load_record("abc123") is None
        assert store.errors == 1

    def test_wrong_key_in_envelope_is_a_miss(self, store):
        store.store_record("abc123", {"x": 1})
        os.rename(store._record_path("abc123"), store._record_path("def456"))
        assert store.load_record("def456") is None


class TestSnapshots:
    def test_round_trip_arbitrary_object(self, store):
        payload = {"nested": [1, 2, (3, 4)], "name": "front-end"}
        key = snapshot_key("Blink", ("nesc.flatten[x]",), SCHEMA)
        assert store.store_snapshot(key, payload)
        assert store.load_snapshot(key) == payload
        assert store.snapshot_hits == 1

    def test_truncated_pickle_is_a_miss(self, store):
        key = snapshot_key("Blink", ("nesc.flatten[x]",), SCHEMA)
        store.store_snapshot(key, {"x": 1})
        path = store._snapshot_path(key)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.load_snapshot(key) is None
        assert store.errors == 1

    def test_snapshot_key_depends_on_prefix_and_schema(self):
        base = snapshot_key("Blink", ("a", "b"), SCHEMA)
        assert snapshot_key("Blink", ("a", "c"), SCHEMA) != base
        assert snapshot_key("Blink", ("a", "b"), SCHEMA + 1) != base
        assert snapshot_key("Surge", ("a", "b"), SCHEMA) != base


class TestEviction:
    def _fill(self, store, count=5, pad=1000):
        for index in range(count):
            store.store_record(f"key{index:04d}", {"pad": "x" * pad})

    def test_gc_without_budget_measures_only(self, store):
        self._fill(store)
        report = store.gc()
        assert report["entries"] == 5 and report["evicted"] == 0
        assert report["bytes_before"] == report["bytes_after"]

    def test_gc_evicts_lru_first(self, store):
        self._fill(store, count=3)
        # Freshen key0000 so key0001 is the stalest entry.
        past = os.path.getmtime(store._record_path("key0001")) - 100
        os.utime(store._record_path("key0001"), (past, past))
        budget = store.size_bytes() - 1  # forces exactly one eviction
        report = store.gc(budget)
        assert report["evicted"] == 1
        assert store.load_record("key0001") is None
        assert store.load_record("key0000") is not None
        assert store.load_record("key0002") is not None

    def test_hits_freshen_the_lru_clock(self, store):
        self._fill(store, count=3)
        # Backdate everything, then hit key0000: it must survive a GC that
        # evicts two entries.
        for index in range(3):
            path = store._record_path(f"key{index:04d}")
            os.utime(path, (1, 1 + index))
        assert store.load_record("key0000") is not None
        sizes = [entry[1] for entry in store.entries()]
        store.gc(sum(sizes) - sizes[0] - 1)  # room for ~one entry
        assert store.load_record("key0000") is not None

    def test_budget_on_constructor_runs_gc_per_write(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"), schema=SCHEMA,
                              budget_bytes=2500)
        self._fill(store, count=8)
        assert store.size_bytes() <= 2500
        assert store.evicted > 0

    def test_stats_shape(self, store):
        stats = store.stats()
        assert set(stats) == {"record_hits", "record_misses", "snapshot_hits",
                              "snapshot_misses", "stores", "errors", "evicted"}
