"""Concurrent writers racing one store key: no torn reads, one valid entry.

Both persistent stores (:class:`repro.store.ArtifactStore` from this PR and
PR 7's :class:`repro.avrora.codestore.PlanStore`) publish with
write-temp + ``os.replace``, so racing writers for one key must each leave
the store holding *some* complete, digest-valid envelope — and because
identical specs serialize identically, the surviving entry is byte-for-byte
what any single writer would have produced.  These tests fork real
processes hammering one key while the parent reads concurrently.
"""

import json
import multiprocessing
import os

import pytest

from repro.avrora.codestore import PlanStore
from repro.store import ArtifactStore

SCHEMA = 2
ROUNDS = 60


def _artifact_writer(root: str, key: str, payload: dict, errors) -> None:
    store = ArtifactStore(root, schema=SCHEMA)
    for _ in range(ROUNDS):
        if not store.store_record(key, payload):
            errors.put("store_record returned False")


def _plan_writer(root: str, key: str, payload: dict, errors) -> None:
    store = PlanStore(root)
    for _ in range(ROUNDS):
        if not store.store(key, payload):
            errors.put("store returned False")


def _race(target, root, key, payload, reader):
    """Two writer processes vs. a reading parent; returns reader observations."""
    ctx = multiprocessing.get_context("fork")
    errors = ctx.Queue()
    writers = [ctx.Process(target=target, args=(root, key, payload, errors))
               for _ in range(2)]
    for proc in writers:
        proc.start()
    observations = []
    while any(proc.is_alive() for proc in writers):
        value = reader()
        if value is not None:
            observations.append(value)
    for proc in writers:
        proc.join()
        assert proc.exitcode == 0
    assert errors.empty()
    return observations


class TestArtifactStoreRace:
    def test_racing_writers_never_tear(self, tmp_path):
        root = str(tmp_path / "store")
        payload = {"kind": "build", "app": "Blink", "pad": "x" * 4096}
        reader = ArtifactStore(root, schema=SCHEMA)
        observations = _race(_artifact_writer, root, "deadbeef", payload,
                             lambda: reader.load_record("deadbeef"))
        # Every concurrent read that found the entry saw the full payload —
        # a torn read would have been demoted to a miss with errors > 0.
        assert reader.errors == 0
        for seen in observations:
            assert seen == payload

    def test_final_entry_is_byte_identical_to_solo_write(self, tmp_path):
        root = str(tmp_path / "store")
        payload = {"kind": "build", "app": "Blink", "code_bytes": 99}
        _race(_artifact_writer, root, "deadbeef", payload, lambda: None)
        solo_root = str(tmp_path / "solo")
        ArtifactStore(solo_root, schema=SCHEMA).store_record(
            "deadbeef", payload)
        raced = open(os.path.join(root, "deadbeef.json"), "rb").read()
        solo = open(os.path.join(solo_root, "deadbeef.json"), "rb").read()
        assert raced == solo
        envelope = json.loads(raced)
        assert envelope["payload"] == payload

    def test_no_stray_temp_files_survive(self, tmp_path):
        root = str(tmp_path / "store")
        _race(_artifact_writer, root, "deadbeef", {"x": 1}, lambda: None)
        assert [name for name in os.listdir(root)
                if name.endswith(".tmp")] == []


class TestPlanStoreRace:
    def test_racing_writers_never_tear(self, tmp_path):
        root = str(tmp_path / "plans")
        payload = {"plans": {"fn": [1, 2, 3]}, "pad": "y" * 4096}
        reader = PlanStore(root)
        observations = _race(_plan_writer, root, "cafebabe", payload,
                             lambda: reader.load("cafebabe"))
        assert reader.errors == 0
        for seen in observations:
            assert seen == payload

    def test_final_entry_loads_equal_to_solo_write(self, tmp_path):
        root = str(tmp_path / "plans")
        payload = {"plans": {"fn": [1, 2, 3]}}
        _race(_plan_writer, root, "cafebabe", payload, lambda: None)
        raced = PlanStore(root).load("cafebabe")
        solo_store = PlanStore(str(tmp_path / "solo"))
        solo_store.store("cafebabe", payload)
        assert raced == solo_store.load("cafebabe") == payload
