"""Tests for the nesC race analysis and the hardware-register refactoring."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.nesc.concurrency import analyze_concurrency, nesc_race_analysis
from repro.nesc.hwrefactor import count_register_casts, refactor_hardware_accesses

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, make_program


def concurrency_program(extra=""):
    return make_program("""
uint8_t shared_counter = 0;
uint8_t protected_counter = 0;
norace uint8_t annotated = 0;
uint8_t task_only = 0;

__interrupt("ADC") void adc_isr(void) {
  shared_counter = shared_counter + 1;
  annotated = annotated + 1;
  atomic { protected_counter = protected_counter + 1; }
}

__spontaneous void main(void) {
  uint8_t copy;
  copy = shared_counter;
  atomic { copy = protected_counter; }
  annotated = 0;
  task_only = task_only + 1;
}
""" + extra)


class TestRaceAnalysis:
    def setup_method(self):
        self.program = concurrency_program()
        self.program.interrupt_vectors["ADC"] = "adc_isr"

    def test_async_and_sync_function_sets(self):
        report = analyze_concurrency(self.program)
        assert "adc_isr" in report.async_functions
        assert "main" in report.sync_functions

    def test_unprotected_shared_variable_is_racy(self):
        report = analyze_concurrency(self.program)
        assert "shared_counter" in report.racy_variables

    def test_fully_protected_variable_is_not_racy(self):
        report = analyze_concurrency(self.program)
        assert "protected_counter" not in report.racy_variables

    def test_task_only_variable_is_not_racy(self):
        report = analyze_concurrency(self.program)
        assert "task_only" not in report.racy_variables

    def test_norace_annotation_suppresses_report(self):
        report = analyze_concurrency(self.program, suppress_norace=False)
        assert "annotated" not in report.racy_variables
        assert "annotated" in report.norace_skipped

    def test_suppressing_norace_restores_the_report(self):
        report = analyze_concurrency(self.program, suppress_norace=True)
        assert "annotated" in report.racy_variables

    def test_results_recorded_on_program(self):
        nesc_race_analysis(self.program, suppress_norace=True)
        assert "shared_counter" in self.program.racy_variables
        assert "annotated" in self.program.norace_suppressed


class TestHardwareRefactoring:
    SOURCE = """
uint8_t mirror;
__spontaneous void main(void) {
  uint16_t wide;
  *(uint8_t*)59 = 7;
  mirror = *(uint8_t*)59;
  *(uint16_t*)64 = 1024;
  wide = *(uint16_t*)64;
  *(uint8_t*)59 |= 2;
}
"""

    def test_reads_and_writes_are_rewritten(self):
        program = make_program(self.SOURCE)
        report = refactor_hardware_accesses(program)
        assert report.writes_rewritten == 3
        assert report.reads_rewritten == 3  # two loads plus the |= read
        assert count_register_casts(program) == 0

    def test_helper_calls_are_generated(self):
        program = make_program(self.SOURCE)
        refactor_hardware_accesses(program)
        assert count_calls(program, "__hw_write8") == 2
        assert count_calls(program, "__hw_write16") == 1
        assert count_calls(program, "__hw_read8") == 2
        assert count_calls(program, "__hw_read16") == 1

    def test_non_constant_addresses_are_left_alone(self):
        program = make_program("""
uint16_t port = 59;
__spontaneous void main(void) {
  *(uint8_t*)port = 1;
}
""")
        report = refactor_hardware_accesses(program)
        assert report.total == 0

    def test_program_still_typechecks_after_rewrite(self):
        program = make_program(self.SOURCE)
        refactor_hardware_accesses(program)
        from repro.cminor.typecheck import check_program

        check_program(program)

    def test_report_names_touched_functions(self):
        program = make_program(self.SOURCE)
        report = refactor_hardware_accesses(program)
        assert report.functions_touched == {"main"}
