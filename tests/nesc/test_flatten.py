"""Tests for the nesC flattener (the whole-program generator)."""

import pytest

from repro.cminor import ast_nodes as ast
from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.nesc.flatten import NescCompiler, WiringError, flatten_application
from repro.tinyos import messages as msgs

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import count_calls, interfaces, tiny_application


class TestSymbolRenaming:
    def test_component_symbols_get_prefixes(self, tiny_app_program):
        assert "ClientM__client_count" in tiny_app_program.globals
        assert "FakeTimerC__Timer_start" in tiny_app_program.functions

    def test_common_globals_are_not_prefixed(self, tiny_app_program):
        assert "TOS_LOCAL_ADDRESS" in tiny_app_program.globals

    def test_commands_resolve_through_wiring(self, tiny_app_program):
        # ClientM calls Timer_start which must resolve to the provider.
        assert count_calls(tiny_app_program, "FakeTimerC__Timer_start") >= 1

    def test_events_resolve_to_the_wired_user(self, tiny_app_program):
        # FakeTimerC signals Timer_fired which must land in ClientM.
        assert count_calls(tiny_app_program, "ClientM__Timer_fired") >= 1

    def test_unresolvable_call_raises_wiring_error(self):
        ifaces = interfaces()
        broken = Component(name="BrokenM",
                           provides={"Control": ifaces["StdControl"]},
                           source="""
uint8_t Control_init(void) { mystery(); return 1; }
uint8_t Control_start(void) { return 1; }
uint8_t Control_stop(void) { return 1; }
""")
        app = Application(name="Broken", common_source=msgs.COMMON_SOURCE)
        app.add_component(broken)
        app.boot.append(("BrokenM", "Control"))
        with pytest.raises(WiringError):
            flatten_application(app)


class TestGeneratedScheduler:
    def test_tasks_get_identifiers(self, tiny_app_program):
        assert tiny_app_program.tasks == ["ClientM__record_task"]

    def test_post_statements_are_lowered(self, tiny_app_program):
        for func in tiny_app_program.iter_functions():
            from repro.cminor.visitor import walk_statements

            assert not any(isinstance(s, ast.Post)
                           for s in walk_statements(func.body))
        assert count_calls(tiny_app_program, "__tos_post") >= 1

    def test_scheduler_functions_exist(self, tiny_app_program):
        for name in ("__tos_post", "__tos_dispatch", "__tos_run_next_or_sleep"):
            assert tiny_app_program.lookup_function(name) is not None

    def test_dispatch_calls_every_task(self, tiny_app_program):
        assert count_calls(tiny_app_program, "ClientM__record_task") >= 1

    def test_main_boots_components_and_loops(self, tiny_app_program):
        main = tiny_app_program.lookup_function("main")
        assert main is not None and main.is_spontaneous
        assert count_calls(tiny_app_program, "ClientM__Control_init") >= 1
        assert count_calls(tiny_app_program, "ClientM__Control_start") >= 1
        assert count_calls(tiny_app_program, "__enable_interrupts") >= 1


class TestInterruptsAndConcurrency:
    def test_interrupt_vectors_are_registered(self, tiny_app_program):
        assert tiny_app_program.interrupt_vectors == {
            "TIMER1_COMPA": "FakeTimerC__tick"}
        handler = tiny_app_program.lookup_function("FakeTimerC__tick")
        assert handler.is_interrupt_handler

    def test_racy_variables_are_reported(self, tiny_app_program):
        # client_count is written in the timer event (interrupt context) and
        # read in the task; the buffer accesses are protected by atomic.
        assert "ClientM__client_count" in tiny_app_program.racy_variables

    def test_wiring_the_same_vector_twice_fails(self):
        app = tiny_application()
        ifaces = interfaces()
        other = Component(name="OtherIsr", provides={}, uses={},
                          source="void isr(void) { }",
                          interrupts={"TIMER1_COMPA": "isr"})
        app.add_component(other)
        with pytest.raises(WiringError):
            flatten_application(app)


class TestFanoutAndDefaults:
    def test_unwired_event_gets_default_stub(self):
        app = tiny_application()
        # Remove the wire so the provider's signal has no receiver.
        flattened = None
        ifaces = interfaces()
        lonely = Component(
            name="LonelyC",
            provides={"Ping": ifaces["Timer"]},
            source="""
uint8_t Ping_start(uint32_t interval) { return 1; }
uint8_t Ping_stop(void) { return 1; }
void kick(void) { Ping_fired(); }
""")
        app.add_component(lonely)
        flattened = flatten_application(app)
        assert flattened.lookup_function("LonelyC__Ping_fired__default") is not None

    def test_event_fanout_generates_dispatcher(self):
        ifaces = interfaces()
        app = tiny_application()
        second = Component(
            name="SecondClientM",
            uses={"Timer": ifaces["Timer"]},
            source="""
uint16_t second_count = 0;
uint8_t Timer_fired(void) {
  second_count = second_count + 1;
  return 1;
}
""")
        app.add_component(second)
        app.wire("SecondClientM", "Timer", "FakeTimerC", "Timer")
        program = flatten_application(app)
        fanout = program.lookup_function("FakeTimerC__Timer_fired__fanout")
        assert fanout is not None
        assert count_calls(program, "ClientM__Timer_fired") >= 1
        assert count_calls(program, "SecondClientM__Timer_fired") >= 1

    def test_flattened_program_is_type_checked_and_simplified(self, tiny_app_program):
        from repro.cminor.visitor import walk_statements

        for func in tiny_app_program.iter_functions():
            for stmt in walk_statements(func.body):
                assert not isinstance(stmt, ast.For)
