"""Tests for the nesC component model: interfaces, components, applications."""

import pytest

from repro.cminor import typesys as ty
from repro.nesc.application import Application, Wire
from repro.nesc.component import Component
from repro.nesc.interface import COMMAND, EVENT, Interface, command, event, \
    standard_interfaces
from repro.tinyos import messages as msgs

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import interfaces, tiny_application


class TestInterfaces:
    def test_command_and_event_constructors(self):
        cmd = command("start", ty.UINT8, (("interval", ty.UINT32),))
        evt = event("fired", ty.UINT8)
        assert cmd.kind == COMMAND and evt.kind == EVENT

    def test_invalid_kind_rejected(self):
        from repro.nesc.interface import InterfaceFunction

        with pytest.raises(ValueError):
            InterfaceFunction("broken", "neither")

    def test_interface_lookup(self):
        timer = interfaces()["Timer"]
        assert timer.has_function("fired")
        assert timer.function("start").kind == COMMAND
        with pytest.raises(KeyError):
            timer.function("missing")

    def test_commands_and_events_split(self):
        timer = interfaces()["Timer"]
        assert {f.name for f in timer.commands()} == {"start", "stop"}
        assert {f.name for f in timer.events()} == {"fired"}

    def test_standard_interface_set_is_complete(self):
        names = set(standard_interfaces(msgs.tos_msg_type()))
        assert {"StdControl", "Timer", "Clock", "Leds", "ADC", "SendMsg",
                "ReceiveMsg", "BareSendMsg", "Send", "Intercept",
                "RouteControl", "TimeStamping", "Random"} <= names

    def test_message_interfaces_use_tos_msg_pointer(self):
        send = interfaces()["SendMsg"].function("send")
        msg_param = send.params[-1][1]
        assert isinstance(msg_param, ty.PointerType)
        assert isinstance(msg_param.target, ty.StructType)
        assert msg_param.target.name == "TOS_Msg"


class TestComponents:
    def test_interface_instances_merges_provides_and_uses(self):
        ifaces = interfaces()
        component = Component(
            name="X", provides={"Control": ifaces["StdControl"]},
            uses={"Timer": ifaces["Timer"]}, source="")
        instances = component.interface_instances()
        assert instances["Control"][1] is True
        assert instances["Timer"][1] is False

    def test_same_instance_name_in_provides_and_uses_rejected(self):
        ifaces = interfaces()
        component = Component(
            name="X", provides={"Timer": ifaces["Timer"]},
            uses={"Timer": ifaces["Timer"]}, source="")
        with pytest.raises(ValueError):
            component.interface_instances()

    def test_validate_requires_task_definitions(self):
        component = Component(name="X", source="void other(void) { }",
                              tasks=["missing_task"])
        with pytest.raises(ValueError):
            component.validate()

    def test_validate_requires_interrupt_handlers(self):
        component = Component(name="X", source="",
                              interrupts={"ADC": "handler"})
        with pytest.raises(ValueError):
            component.validate()


class TestApplications:
    def test_wire_checks_interface_compatibility(self):
        app = tiny_application()
        with pytest.raises(ValueError):
            app.wire("ClientM", "Timer", "FakeTimerC", "Control")

    def test_wire_unknown_instance_rejected(self):
        app = tiny_application()
        with pytest.raises(ValueError):
            app.wire("ClientM", "Nothing", "FakeTimerC", "Timer")

    def test_duplicate_component_rejected(self):
        app = tiny_application()
        with pytest.raises(ValueError):
            app.add_component(app.component("ClientM"))

    def test_validate_accepts_complete_wiring(self):
        tiny_application().validate()

    def test_validate_rejects_unwired_uses(self):
        app = tiny_application()
        app.wires.clear()
        with pytest.raises(ValueError):
            app.validate()

    def test_validate_rejects_double_wiring(self):
        app = tiny_application()
        app.wires.append(app.wires[0])
        with pytest.raises(ValueError):
            app.validate()

    def test_validate_rejects_bad_boot_entry(self):
        app = tiny_application()
        app.boot.append(("ClientM", "Timer"))
        with pytest.raises(ValueError):
            app.validate()

    def test_wires_from_and_to(self):
        app = tiny_application()
        assert len(app.wires_from("ClientM", "Timer")) == 1
        assert len(app.wires_to("FakeTimerC", "Timer")) == 1
        assert str(app.wires[0]) == "ClientM.Timer -> FakeTimerC.Timer"

    def test_component_lookup(self):
        app = tiny_application()
        assert app.component("ClientM").name == "ClientM"
        assert app.has_component("FakeTimerC")
        with pytest.raises(KeyError):
            app.component("Nothing")
