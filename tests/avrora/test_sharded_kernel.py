"""The sharded multi-process kernel: bit-identical fields, labelled errors.

The acceptance property of ``repro.avrora.shard``: partitioning a topology
across worker processes changes *nothing* observable — delivery logs,
per-node statement counts, duty cycles and device state are byte-equal to
the single-process kernel for every worker count.  Verified differentially
over seeded lossy chains and grids with two figure applications.
"""

from __future__ import annotations

import pytest

from repro.api.specs import SimSpec
from repro.api.workbench import run_network
from repro.avrora.network import Channel, Network
from repro.avrora.node import Node
from repro.toolchain.contexts import duty_cycle_context
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import BASELINE

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def surge_program():
    return BuildPipeline(BASELINE).build_named("Surge_Mica2").program


@pytest.fixture(scope="module")
def cnt_program():
    return BuildPipeline(BASELINE).build_named("CntToLedsAndRfm_Mica2").program


def _fingerprint(network: Network) -> dict:
    """Everything the sharded kernel promises to keep bit-identical."""
    return {
        "nodes": [(node.node_id,
                   node.interpreter.statements_executed,
                   node.time_cycles, node.busy_cycles, node.sleep_cycles,
                   node.duty_cycle(),
                   node.interrupts_delivered,
                   node.radio.packets_sent, node.radio.packets_received,
                   node.radio.packets_dropped,
                   node.leds.state.changes)
                  for node in network.nodes],
        "deliveries": [(d.sender_id, d.receiver_id, d.sent_cycles,
                        d.received_cycles, d.accepted, d.payload)
                       for d in network.deliveries],
        "delivered": network.delivered_packets,
        "lost": network.lost_packets,
    }


def _simulate(program, app: str, workers: int, seconds: float,
              node_count: int, **channel_kwargs) -> dict:
    network = run_network(
        program, seconds=seconds, node_count=node_count,
        traffic=duty_cycle_context(app),
        channel=Channel(**channel_kwargs), workers=workers)
    fingerprint = _fingerprint(network)
    if workers > 1:
        fingerprint["shards"] = network.shard_stats
    return fingerprint


def _assert_identical_across_workers(program, app, seconds, node_count,
                                     **channel_kwargs):
    runs = {}
    for workers in WORKER_COUNTS:
        runs[workers] = _simulate(program, app, workers, seconds,
                                  node_count, **channel_kwargs)
        shards = runs[workers].pop("shards", None)
        if workers > 1:
            # The run really was sharded, every shard did work, and the
            # shard ranges partition the node positions exactly.
            assert shards is not None and len(shards) == workers
            covered = []
            for stats in shards:
                lo, hi = stats["nodes"]
                covered.extend(range(lo, hi))
                assert stats["rounds"] > 0
            assert covered == list(range(node_count))
    for workers in WORKER_COUNTS[1:]:
        assert runs[workers] == runs[1], \
            f"{app}: workers={workers} diverged from the in-process kernel"


class TestBitIdenticalFields:
    def test_surge_lossy_chain(self, surge_program):
        _assert_identical_across_workers(
            surge_program, "Surge_Mica2", seconds=3.0, node_count=6,
            topology="chain", loss=0.15, seed=5, jitter_us=40)

    def test_surge_lossy_grid(self, surge_program):
        _assert_identical_across_workers(
            surge_program, "Surge_Mica2", seconds=3.0, node_count=9,
            topology="grid", grid_width=3, loss=0.1, seed=3)

    def test_cnt_to_rfm_lossy_chain(self, cnt_program):
        _assert_identical_across_workers(
            cnt_program, "CntToLedsAndRfm_Mica2", seconds=2.0, node_count=6,
            topology="chain", loss=0.2, seed=7, jitter_us=80)

    def test_cnt_to_rfm_grid(self, cnt_program):
        _assert_identical_across_workers(
            cnt_program, "CntToLedsAndRfm_Mica2", seconds=2.0, node_count=9,
            topology="grid", grid_width=3, loss=0.1, seed=11)


# ---------------------------------------------------------------------------
# Parallel-config validation: labelled errors at every layer
# ---------------------------------------------------------------------------


IDLE = "__spontaneous void main(void) { __sleep(); }"


def _tiny_network(node_count: int = 3) -> Network:
    program = make_program(IDLE)
    network = Network(channel=Channel(topology="chain"))
    for node_id in range(node_count):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    return network


class TestParallelConfigErrors:
    def test_network_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="parallel config.*>= 1"):
            _tiny_network().run(0.01, workers=0)

    def test_network_rejects_more_workers_than_nodes(self):
        with pytest.raises(ValueError,
                           match="parallel config.*exceed the node count"):
            _tiny_network(3).run(0.01, workers=4)

    def test_run_sequential_rejects_sharding(self):
        with pytest.raises(ValueError,
                           match="parallel config.*run_sequential"):
            _tiny_network().run_sequential(0.01, workers=2)

    def test_simspec_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="parallel config.*>= 1"):
            SimSpec(app="Surge_Mica2", node_count=4, workers=0)

    def test_simspec_rejects_more_workers_than_nodes(self):
        with pytest.raises(ValueError,
                           match="parallel config.*exceed the node count"):
            SimSpec(app="Surge_Mica2", node_count=4, workers=8)

    def test_simspec_workers_do_not_change_the_content_key(self):
        sequential = SimSpec(app="Surge_Mica2", node_count=4, workers=1)
        sharded = SimSpec(app="Surge_Mica2", node_count=4, workers=4)
        assert sequential.content_key() == sharded.content_key()

    def test_simspec_workers_round_trip(self):
        spec = SimSpec(app="Surge_Mica2", node_count=4, workers=2)
        assert SimSpec.from_dict(spec.to_dict()) == spec
