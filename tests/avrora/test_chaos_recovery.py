"""Chaos-driven recovery: killed workers, bit-identical results.

The tentpole property of the supervision layer in ``repro.avrora.shard``:
a sharded run whose workers are killed mid-protocol — early (before the
first checkpoint), mid-run and late, every worker index, workers 2 and 4
— recovers by checkpointed respawn and deterministic replay, and its
delivery log and per-node statement counts stay bit-equal to the
unsharded run.  Plus the failure modes that must *not* hang: recovery
disabled (checkpoint cadence 0) raises a labelled
:class:`ShardWorkerError` instead of blocking forever.
"""

from __future__ import annotations

import json

import pytest

from repro.api.specs import SimSpec
from repro.api.workbench import run_network
from repro.avrora.chaos import CHAOS_ENV_VAR, ChaosPolicy
from repro.avrora.network import Channel, Network
from repro.avrora.node import Node
from repro.avrora.shard import ShardWorkerError
from repro.toolchain.contexts import duty_cycle_context
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import BASELINE

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


SECONDS = 1.0
NODE_COUNT = 9
CHANNEL = dict(topology="grid", grid_width=3, loss=0.1, seed=3)

#: A small cadence so even the short calibration runs ship checkpoints
#: and mid/late kills restore from one instead of replaying from round 0.
CADENCE = "40"


@pytest.fixture(scope="module")
def surge_program():
    return BuildPipeline(BASELINE).build_named("Surge_Mica2").program


def _fingerprint(network: Network) -> dict:
    """Everything recovery promises to keep bit-identical."""
    return {
        "nodes": [(node.node_id,
                   node.interpreter.statements_executed,
                   node.time_cycles, node.busy_cycles, node.sleep_cycles,
                   node.duty_cycle(),
                   node.interrupts_delivered,
                   node.radio.packets_sent, node.radio.packets_received,
                   node.radio.packets_dropped,
                   node.leds.state.changes)
                  for node in network.nodes],
        "deliveries": [(d.sender_id, d.receiver_id, d.sent_cycles,
                        d.received_cycles, d.accepted, d.payload)
                       for d in network.deliveries],
        "delivered": network.delivered_packets,
        "lost": network.lost_packets,
    }


def _simulate(program, workers: int, chaos=None) -> Network:
    return run_network(
        program, seconds=SECONDS, node_count=NODE_COUNT,
        traffic=duty_cycle_context("Surge_Mica2"),
        channel=Channel(**CHANNEL), workers=workers, chaos=chaos)


@pytest.fixture(scope="module")
def baseline(surge_program):
    """The unsharded run every chaos run must reproduce bit for bit."""
    return _fingerprint(_simulate(surge_program, workers=1))


@pytest.fixture(scope="module")
def round_counts(surge_program, baseline):
    """Window rounds each worker count actually grants (for kill timing).

    The calibration runs double as the fault-free differential check —
    and they pin the small checkpoint cadence for the whole module so
    chaos runs restore from real checkpoints.
    """
    counts = {}
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_SHARD_CHECKPOINT_EVERY", CADENCE)
    yield_value = counts
    for workers in (2, 4):
        network = _simulate(surge_program, workers=workers)
        assert _fingerprint(network) == baseline, \
            f"fault-free workers={workers} diverged"
        assert network.recovery_stats["respawns"] == 0
        assert network.recovery_stats["checkpoints"] > 0
        counts[workers] = min(s["rounds"] for s in network.shard_stats)
    try:
        yield yield_value
    finally:
        mp.undo()


class TestChaosMatrix:
    """Kill every worker index at early/mid/late rounds; expect no trace."""

    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("phase", ("early", "mid", "late"))
    def test_kills_leave_results_bit_identical(self, surge_program, baseline,
                                               round_counts, workers, phase):
        rounds = round_counts[workers]
        # "late" stays well short of the calibrated total: grant counts
        # are timing-dependent (window batching under load), so a kill
        # placed at the very last calibrated round may never fire.
        base = {"early": 2, "mid": rounds // 2,
                "late": max(2, (rounds * 2) // 3)}[phase]
        # One kill per worker index, staggered so respawns overlap the
        # other shards' normal progress (and each other, at round 2).
        chaos = ChaosPolicy(kills=tuple(
            (w, base + w) for w in range(workers)))
        network = _simulate(surge_program, workers, chaos=chaos)
        assert _fingerprint(network) == baseline, \
            f"workers={workers} {phase} kills diverged from the " \
            f"unsharded run"
        recovery = network.recovery_stats
        assert recovery["respawns"] >= workers
        assert recovery["chaos_kills"] == workers
        assert recovery["replayed_rounds"] >= 0
        if phase != "early":
            # Mid/late kills land after the first checkpoint, so the
            # respawn restored state rather than replaying from round 0.
            assert recovery["checkpoints"] > 0
            assert recovery["checkpoint_bytes"] > 0

    def test_double_kill_of_one_worker(self, surge_program, baseline,
                                       round_counts):
        rounds = round_counts[2]
        chaos = ChaosPolicy(kills=((1, 3), (1, rounds // 2)))
        network = _simulate(surge_program, 2, chaos=chaos)
        assert _fingerprint(network) == baseline
        assert network.recovery_stats["respawns"] == 2
        assert network.recovery_stats["chaos_kills"] == 2


class TestFailureModes:
    def test_disabled_recovery_raises_labelled_error(self, surge_program,
                                                     monkeypatch):
        """Cadence 0: a dead worker is an error, never a hang."""
        monkeypatch.setenv("REPRO_SHARD_CHECKPOINT_EVERY", "0")
        with pytest.raises(ShardWorkerError,
                           match=r"shard worker 1 died .* at round \d+") \
                as info:
            _simulate(surge_program, 2, chaos=ChaosPolicy(kills=((1, 2),)))
        assert info.value.worker_index == 1
        assert info.value.round_number >= 2
        assert info.value.heartbeat_age_s >= 0.0

    def test_out_of_range_kills_never_fire(self, surge_program, baseline,
                                           round_counts):
        """A policy written for more workers is harmless under fewer."""
        chaos = ChaosPolicy(kills=((7, 2), (0, 10 ** 9)))
        network = _simulate(surge_program, 2, chaos=chaos)
        assert _fingerprint(network) == baseline
        assert network.recovery_stats["respawns"] == 0
        assert network.recovery_stats["chaos_kills"] == 0


IDLE = "__spontaneous void main(void) { __sleep(); }"


def test_single_process_runs_ignore_chaos():
    """workers=1 has no worker processes to kill; chaos is inert."""
    program = make_program(IDLE)
    network = Network(channel=Channel(topology="chain"))
    for node_id in range(2):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    network.chaos = ChaosPolicy(kills=((0, 1),))
    network.run(0.01)
    assert network.recovery_stats == {}


# ---------------------------------------------------------------------------
# ChaosPolicy: the data model
# ---------------------------------------------------------------------------


class TestChaosPolicy:
    def test_round_trips_through_json(self):
        policy = ChaosPolicy(kills=((1, 3), (0, 7)), seed=9)
        data = json.loads(json.dumps(policy.to_dict()))
        assert ChaosPolicy.from_dict(data) == policy

    def test_kills_canonicalize(self):
        assert ChaosPolicy(kills=((1, 3), (0, 7), (1, 3))) \
            == ChaosPolicy(kills=((0, 7), (1, 3)))

    def test_kill_rounds_by_worker(self):
        policy = ChaosPolicy(kills=((1, 3), (1, 9), (0, 7)))
        assert policy.kill_rounds(1) == frozenset({3, 9})
        assert policy.kill_rounds(2) == frozenset()

    def test_label(self):
        assert ChaosPolicy().label() == "chaos: none"
        assert ChaosPolicy(kills=((1, 3),)).label() == "chaos: kill 1@3"

    @pytest.mark.parametrize("kills", [((-1, 3),), ((0, 0),), ((True, 2),),
                                       ((0, 1.5),), ("0@3",)])
    def test_rejects_malformed_kills(self, kills):
        with pytest.raises(ValueError, match="chaos"):
            ChaosPolicy(kills=kills)

    def test_parse_compact_and_json(self):
        assert ChaosPolicy.parse("1@3,0@7") \
            == ChaosPolicy(kills=((0, 7), (1, 3)))
        assert ChaosPolicy.parse('{"kills": [[1, 3]], "seed": 2}') \
            == ChaosPolicy(kills=((1, 3),), seed=2)
        assert ChaosPolicy.parse("   ") is None

    @pytest.mark.parametrize("text", ["1-3", "1@x", "{not json"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError, match="chaos"):
            ChaosPolicy.parse(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert ChaosPolicy.from_env() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, "0@5")
        assert ChaosPolicy.from_env() == ChaosPolicy(kills=((0, 5),))

    def test_sampled_is_deterministic(self):
        first = ChaosPolicy.sampled(4, kills=3, max_round=10, seed=11)
        again = ChaosPolicy.sampled(4, kills=3, max_round=10, seed=11)
        other = ChaosPolicy.sampled(4, kills=3, max_round=10, seed=12)
        assert first == again
        assert first != other
        assert len(first.kills) == 3
        for worker, round_number in first.kills:
            assert 0 <= worker < 4
            assert 1 <= round_number <= 10


class TestSimSpecChaos:
    def test_round_trips(self):
        spec = SimSpec(app="Surge_Mica2", node_count=4, workers=2,
                       chaos=ChaosPolicy(kills=((0, 3),)))
        data = json.loads(json.dumps(spec.to_dict()))
        assert SimSpec.from_dict(data) == spec

    def test_chaos_is_not_part_of_the_content_key(self):
        plain = SimSpec(app="Surge_Mica2", node_count=4)
        chaotic = SimSpec(app="Surge_Mica2", node_count=4, workers=2,
                          chaos=ChaosPolicy(kills=((0, 3),)))
        assert plain.content_key() == chaotic.content_key()

    def test_coerces_dict_form(self):
        spec = SimSpec(app="Surge_Mica2", node_count=4,
                       chaos={"kills": [[0, 3]], "seed": 0})
        assert spec.chaos == ChaosPolicy(kills=((0, 3),))

    def test_rejects_non_policy(self):
        with pytest.raises(TypeError, match="chaos"):
            SimSpec(app="Surge_Mica2", chaos="1@3")
