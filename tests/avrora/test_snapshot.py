"""Snapshot/restore round-trips: memory, node state, mid-run resume.

The sharded network kernel (``repro.avrora.shard``) crosses process
boundaries exclusively through ``MemorySystem.snapshot()`` and
``Node.snapshot()``, so these round-trips are the foundation of its
bit-identical guarantee — and of checkpointed warm-started simulations.
"""

from __future__ import annotations

import pickle

import pytest

from repro.avrora.memory import MemorySystem, Pointer
from repro.avrora.node import Node
from repro.cminor import typesys as ty
from repro.tinyos import hardware as hw

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


# ---------------------------------------------------------------------------
# MemorySystem round-trips
# ---------------------------------------------------------------------------


class TestMemorySnapshot:
    def test_globals_round_trip_bytes(self):
        memory = MemorySystem()
        counter = memory.allocate("counter", 2)
        memory.write(Pointer(counter, 0), ty.UINT16, 0xBEEF)
        snapshot = memory.snapshot()

        memory.write(Pointer(counter, 0), ty.UINT16, 0)
        memory.restore(snapshot)
        assert memory.read(Pointer(counter, 0), ty.UINT16) == 0xBEEF
        # Restore mutates in place: the engine's baked references survive.
        assert memory.objects["counter"] is counter

    def test_snapshot_is_picklable_plain_data(self):
        memory = MemorySystem()
        holder = memory.allocate("holder", 2)
        target = memory.allocate("target", 4)
        memory.write(Pointer(holder, 0), ty.PointerType(ty.UINT8),
                     Pointer(target, 1))
        snapshot = memory.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_pointer_provenance_survives_into_fresh_system(self):
        memory = MemorySystem()
        holder = memory.allocate("holder", 2)
        target = memory.allocate("target", 4)
        memory.write(Pointer(target, 3), ty.UINT8, 42)
        memory.write(Pointer(holder, 0), ty.PointerType(ty.UINT8),
                     Pointer(target, 3))

        fresh = MemorySystem()
        fresh.restore(memory.snapshot())
        loaded = fresh.read(Pointer(fresh.objects["holder"], 0),
                            ty.PointerType(ty.UINT8))
        assert isinstance(loaded, Pointer)
        assert loaded.obj is fresh.objects["target"]
        assert loaded.offset == 3
        assert fresh.read(loaded, ty.UINT8) == 42

    def test_string_literals_round_trip(self):
        memory = MemorySystem()
        string = memory.string_literal("hello, motes")
        holder = memory.allocate("message", 2)
        memory.write(Pointer(holder, 0), ty.PointerType(ty.UINT8),
                     Pointer(string, 0))

        fresh = MemorySystem()
        fresh.restore(memory.snapshot())
        loaded = fresh.read(Pointer(fresh.objects["message"], 0),
                            ty.PointerType(ty.UINT8))
        assert fresh.read_c_string(loaded) == "hello, motes"
        # The literal is interned: a later request reuses the restored object.
        assert fresh.string_literal("hello, motes") is loaded.obj

    def test_heap_like_object_reachable_only_through_pointer(self):
        """An object with no global name must be rediscovered through the
        pointer shadow tables (the provenance walk), not lost."""
        memory = MemorySystem()
        anchor = memory.allocate("anchor", 2)
        orphan = memory.allocate("main.buffer", 8, kind="local")
        memory.write(Pointer(orphan, 5), ty.UINT8, 77)
        memory.write(Pointer(anchor, 0), ty.PointerType(ty.UINT8),
                     Pointer(orphan, 5))

        fresh = MemorySystem()
        fresh.restore(memory.snapshot())
        loaded = fresh.read(Pointer(fresh.objects["anchor"], 0),
                            ty.PointerType(ty.UINT8))
        assert loaded.obj.name == "main.buffer"
        assert loaded.obj.kind == "local"
        assert fresh.read(loaded, ty.UINT8) == 77


# ---------------------------------------------------------------------------
# Node round-trips
# ---------------------------------------------------------------------------


BLINKY = """
uint8_t leds_on = 0;
uint16_t ticks = 0;

__interrupt("TIMER1_COMPA") void fired(void) {
  ticks = ticks + 1;
  leds_on = (uint8_t)(leds_on ^ 1);
  __hw_write8(%d, leds_on);
}

__spontaneous void main(void) {
  __hw_write16(%d, 64);
  __hw_write8(%d, 1);
  __enable_interrupts();
  while (1) {
    __sleep();
  }
}
""" % (hw.LED_PORT, hw.TIMER_RATE, hw.TIMER_CTRL)


def _blinky_program():
    program = make_program(BLINKY)
    program.interrupt_vectors["TIMER1_COMPA"] = "fired"
    return program


def _observe(node: Node) -> dict:
    return {
        "time": node.time_cycles,
        "busy": node.busy_cycles,
        "sleep": node.sleep_cycles,
        "statements": node.interpreter.statements_executed,
        "interrupts": node.interrupts_delivered,
        "led_changes": node.leds.state.changes,
        "led_value": node.leds.state.value,
    }


class TestNodeSnapshot:
    def test_idle_round_trip_preserves_queue_and_counters(self):
        program = _blinky_program()
        node = Node(program)
        node.boot()
        snapshot = node.snapshot()
        assert snapshot["phase"] == "idle"
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

        fresh = Node(program)
        fresh.restore(snapshot)
        assert fresh.time_cycles == node.time_cycles
        assert sorted(e[:2] for e in fresh._event_queue) == \
            sorted(e[:2] for e in node._event_queue)

    def test_pending_interrupt_deque_order_survives(self):
        program = _blinky_program()
        # Only vectors with a registered handler are ever queued.
        program.interrupt_vectors["RADIO_RX"] = "fired"
        program.interrupt_vectors["ADC"] = "fired"
        node = Node(program)
        node.boot()
        node.interrupts_enabled = False
        node.raise_interrupt("TIMER1_COMPA")
        node.raise_interrupt("RADIO_RX")
        node.raise_interrupt("ADC")
        snapshot = node.snapshot()

        fresh = Node(program)
        fresh.restore(snapshot)
        assert list(fresh.pending_interrupts) == \
            ["TIMER1_COMPA", "RADIO_RX", "ADC"]
        assert fresh.interrupts_enabled is False

    def test_mid_computation_snapshot_is_rejected(self):
        program = _blinky_program()
        node = Node(program)
        node.boot()
        node.begin_run(0.5)
        node.run_until(node.time_cycles + 1)  # parked almost immediately
        if node._paused_in_sleep:  # pragma: no cover - timing-dependent
            pytest.skip("node reached its sleep loop in one statement")
        with pytest.raises(ValueError, match="mid-computation"):
            node.snapshot()
        node.abort_run()

    def test_sleeping_snapshot_requires_resume_flag(self):
        program = _blinky_program()
        node = Node(program)
        node.boot()
        node.begin_run(0.5)
        while not node._paused_in_sleep:
            node.run_until(node.time_cycles + 5_000)
        snapshot = node.snapshot()
        assert snapshot["phase"] == "sleeping"
        fresh = Node(program)
        with pytest.raises(ValueError, match="resume=True"):
            fresh.restore(snapshot)
        node.abort_run()

    def test_pause_snapshot_resume_is_byte_identical(self):
        """The checkpoint scenario: pause mid-run, snapshot, restore into a
        *fresh* node (fresh process in the sharded kernel), resume — the
        final state must match an uninterrupted run exactly."""
        program = _blinky_program()
        seconds = 0.5

        straight = Node(program)
        straight.boot()
        straight.begin_run(seconds)
        assert straight.run_until(straight.end_cycles) == "finished"
        expected = _observe(straight)

        paused = Node(program)
        paused.boot()
        paused.begin_run(seconds)
        while not paused._paused_in_sleep:
            paused.run_until(paused.time_cycles + 5_000)
        checkpoint = paused.snapshot()
        checkpoint = pickle.loads(pickle.dumps(checkpoint))  # cross-process
        paused.abort_run()

        resumed = Node(program)
        resumed.restore(checkpoint, resume=True)
        assert resumed.time_cycles == checkpoint["time_cycles"]
        assert resumed.run_until(checkpoint["end_cycles"]) == "finished"
        assert _observe(resumed) == expected

    def test_resume_continues_the_event_timeline(self):
        """Ticks delivered before the checkpoint are not replayed and ticks
        after it are not lost: the counts add up exactly."""
        program = _blinky_program()
        node = Node(program)
        node.boot()
        node.begin_run(0.5)
        while not node._paused_in_sleep:
            node.run_until(node.time_cycles + 5_000)
        # Advance more slices until some ticks are behind the checkpoint.
        while node.interrupts_delivered == 0 and \
                node.time_cycles < node.end_cycles - node.clock_hz // 50:
            node.run_until(node.time_cycles + node.clock_hz // 50)
        checkpoint = node.snapshot()
        ticks_before = checkpoint["interrupts_delivered"]
        assert ticks_before > 0
        node.abort_run()

        resumed = Node(program)
        resumed.restore(checkpoint, resume=True)
        resumed.run_until(checkpoint["end_cycles"])
        assert resumed.interrupts_delivered > ticks_before
