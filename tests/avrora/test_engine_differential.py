"""Differential test: compiled engine vs reference tree-walker.

The compile-to-closures engine (:mod:`repro.avrora.engine`) must be an
*observationally identical* replacement for the tree-walking interpreter:
same cycle totals, same interrupt delivery, same memory-safety verdicts,
same ``__error_report`` output, same radio traffic.  This module enforces
that on every application in the paper's figure suite plus a set of
hand-written semantic edge cases — and, for the figure suite, that
superblock fusion on vs off (``REPRO_AVRORA_SUPERBLOCKS=0``) is equally
invisible.
"""

from __future__ import annotations

import os

import pytest

from repro.avrora.network import Network
from repro.avrora.node import Node
from repro.tinyos.suite import FIGURE_APPS
from repro.toolchain.contexts import duty_cycle_context
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import BASELINE, SAFE_FLID

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program

#: Simulated seconds per engine per application (short but long enough for
#: timers, traffic injection, and interrupt delivery to all fire).
SIM_SECONDS = 0.5


def _observe(node: Node, network: Network) -> dict:
    """Everything an engine run exposes that must match across engines."""
    return {
        "busy_cycles": node.busy_cycles,
        "sleep_cycles": node.sleep_cycles,
        "time_cycles": node.time_cycles,
        "statements": node.interpreter.statements_executed,
        "interrupts": node.interrupts_delivered,
        "memory_violations": node.memory_violations,
        "halted": node.halted,
        "halt_code": node.halt_code,
        "failures": [(f.message, f.flid, f.time_cycles)
                     for f in node.failures],
        "led_changes": node.leds.state.changes,
        "radio_sent": list(node.radio.packets_sent),
        "radio_received": node.radio.packets_received,
        "radio_dropped": node.radio.packets_dropped,
        "delivered_packets": network.delivered_packets,
    }


def _pinned_node(program, engine: str, superblocks: bool, traces: bool,
                 node_id: int = 1) -> Node:
    """A node with the fusion switches pinned (don't inherit the ambient
    environment: the CI fusion-off / traces-off legs must not silently
    turn the "fused" runs unfused)."""
    previous = {name: os.environ.get(name)
                for name in ("REPRO_AVRORA_SUPERBLOCKS",
                             "REPRO_AVRORA_TRACES")}
    os.environ["REPRO_AVRORA_SUPERBLOCKS"] = "1" if superblocks else "0"
    os.environ["REPRO_AVRORA_TRACES"] = "1" if traces else "0"
    try:
        return Node(program, node_id=node_id, engine=engine)
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _simulate(program, app_name: str, engine: str,
              sequential: bool = False, superblocks: bool = True,
              traces: bool = True) -> dict:
    network = Network(traffic=duty_cycle_context(app_name))
    node = _pinned_node(program, engine, superblocks, traces)
    node.boot()
    network.add_node(node)
    if sequential:
        network.run_sequential(SIM_SECONDS)
    else:
        network.run(SIM_SECONDS)
    return _observe(node, network)


@pytest.mark.parametrize("app_name", FIGURE_APPS)
def test_figure_apps_identical_under_both_engines(app_name):
    """Unsafe baseline builds: cycle counts and traffic match exactly.

    Also the single-node acceptance bar for the lockstep kernel: the
    default ``Network.run`` (lockstep, resumable execution thread) must be
    byte-identical to the legacy sequential semantics for every figure
    application — same busy/sleep cycles, failure records, LED history
    and radio traffic.  Superblock fusion must be equally invisible: the
    fusion-off engine (the ablation configuration) produces the same
    observation under the lockstep kernel.
    """
    build = BuildPipeline(BASELINE).build_named(app_name)
    tree = _simulate(build.program, app_name, "tree")
    compiled = _simulate(build.program, app_name, "compiled")
    assert tree == compiled
    untraced = _simulate(build.program, app_name, "compiled", traces=False)
    assert compiled == untraced
    unfused = _simulate(build.program, app_name, "compiled",
                        superblocks=False)
    assert compiled == unfused
    legacy = _simulate(build.program, app_name, "compiled", sequential=True)
    assert compiled == legacy


@pytest.mark.parametrize("app_name", ["Oscilloscope_Mica2", "Surge_Mica2"])
def test_safe_builds_identical_under_both_engines(app_name):
    """Safe (FLID) builds: concrete safety checks behave identically."""
    build = BuildPipeline(SAFE_FLID).build_named(app_name)
    tree = _simulate(build.program, app_name, "tree")
    compiled = _simulate(build.program, app_name, "compiled")
    assert tree == compiled
    legacy = _simulate(build.program, app_name, "compiled", sequential=True)
    assert compiled == legacy


#: Hand-written programs targeting the engine's trickiest lowering paths:
#: loop control flow, atomic unwinding, recursion, aggregate locals, string
#: data, out-of-bounds absorption, and the CCured failure/halt path.
EDGE_PROGRAMS = {
    "loops_and_breaks": """
uint16_t out = 0;
__spontaneous void main(void) {
  uint8_t i;
  uint8_t j = 0;
  for (i = 0; i < 20; i++) {
    if (i == 5) { continue; }
    if (i == 15) { break; }
    out = out + i;
  }
  do {
    j = j + 1;
    if (j > 3) { break; }
  } while (1);
  while (j < 200) {
    j = j + 7;
    if (j > 100) { continue; }
    out = out + 1;
  }
  __sleep();
}
""",
    "atomic_unwind": """
uint16_t shared = 0;
uint16_t runs = 0;
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 10; i++) {
    atomic {
      shared = shared + 1;
      if (i == 4) { continue; }
      if (i == 8) { break; }
      shared = shared + 1;
    }
    runs = runs + 1;
  }
  __sleep();
}
""",
    "recursion_and_frames": """
uint16_t result;
uint16_t fib(uint8_t n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
__spontaneous void main(void) {
  result = fib(12);
  __sleep();
}
""",
    "aggregates_and_strings": """
struct rec { uint16_t key; uint8_t data[4]; };
struct rec table[3];
uint16_t sum = 0;
uint8_t first;
__spontaneous void main(void) {
  uint8_t i;
  char* s = "engine";
  struct rec* p;
  for (i = 0; i < 3; i++) {
    table[i].key = (uint16_t)(i * 10);
    table[i].data[1] = i;
  }
  p = &table[1];
  p->key = p->key + 1;
  for (i = 0; i < 3; i++) {
    sum = sum + table[i].key + table[i].data[1];
  }
  first = (uint8_t)s[0];
  __sleep();
}
""",
    "oob_absorbed": """
uint8_t buffer[4];
uint8_t index = 9;
uint8_t sink;
__spontaneous void main(void) {
  buffer[index] = 42;
  sink = buffer[index];
  __sleep();
}
""",
    "check_failure_halts": """
uint8_t buffer[4];
__spontaneous void main(void) {
  if (!__bounds_ok(&buffer[0] + 6, 1)) {
    __error_report_id(77);
    __halt(1);
  }
  __sleep();
}
""",
}


@pytest.mark.parametrize("name", list(EDGE_PROGRAMS))
def test_edge_programs_identical_under_both_engines(name):
    source = EDGE_PROGRAMS[name]
    results = {}
    for engine in ("tree", "compiled"):
        program = make_program(source)
        network = Network()
        node = Node(program, engine=engine)
        node.boot()
        network.add_node(node)
        network.run(0.05)
        results[engine] = _observe(node, network)
    assert results["tree"] == results["compiled"]


def test_store_before_declaration_of_address_taken_local():
    """Code motion can move a store above its VarDecl; both engines must
    absorb it into the frame (and read it back) the same way."""
    from repro.cminor import ast_nodes as ast
    from repro.cminor import typesys as ty
    from repro.cminor.program import Program
    from repro.avrora.memory import Pointer

    results = {}
    for engine in ("tree", "compiled"):
        body = ast.Block([
            ast.Assign(ast.Identifier("x"), ast.IntLiteral(7)),
            ast.Assign(ast.Identifier("sink"), ast.Identifier("x")),
            ast.VarDecl("x", ty.UINT8, None),
            ast.ExprStmt(ast.AddressOf(ast.Identifier("x"))),
        ])
        func = ast.FunctionDef("main", ty.VOID, [], body,
                               {"spontaneous": True})
        program = Program()
        program.add_function(func)
        program.add_global(ast.GlobalVar("sink", ty.UINT16))
        node = Node(program, engine=engine)
        node.boot()
        node.interpreter.call("main")
        obj = node.memory.global_object("sink")
        results[engine] = (node.memory.read(Pointer(obj, 0), ty.UINT16),
                           node.memory_violations, node.busy_cycles,
                           node.interpreter.statements_executed)
    assert results["tree"] == results["compiled"]
    assert results["tree"][0] == 7


def test_arity_mismatch_raises_for_both_engines():
    """A call with the wrong argument count fails loudly, not silently."""
    source = """
uint16_t add(uint16_t a, uint16_t b) { return a + b; }
__spontaneous void main(void) { __sleep(); }
"""
    for engine in ("tree", "compiled"):
        program = make_program(source)
        node = Node(program, engine=engine)
        node.boot()
        with pytest.raises(TypeError, match="argument"):
            node.interpreter.call("add", [1])
        assert node.interpreter.call("add", [1, 2]) == 3


def test_lossy_lockstep_chain_identical_across_all_configurations():
    """Seeded 3-node lossy chain: tree vs fused vs traces-off vs fusion-off.

    The multi-node acceptance bar for trace inlining — cross-node packet
    timing, per-node cycle totals and channel loss decisions must be
    byte-identical in every engine configuration, under the full lockstep
    kernel with a lossy seeded channel.
    """
    from repro.avrora.network import Channel

    app_name = "Surge_Mica2"
    build = BuildPipeline(BASELINE).build_named(app_name)

    def run_chain(engine: str, superblocks: bool = True,
                  traces: bool = True) -> list[dict]:
        network = Network(traffic=duty_cycle_context(app_name),
                          channel=Channel(topology="chain", loss=0.2,
                                          seed=7))
        for index in range(3):
            node = _pinned_node(build.program, engine, superblocks,
                                traces, node_id=index)
            node.boot()
            network.add_node(node)
        network.run(SIM_SECONDS)
        return [_observe(node, network) for node in network.nodes]

    tree = run_chain("tree")
    fused = run_chain("compiled")
    assert tree == fused
    assert fused == run_chain("compiled", traces=False)
    assert fused == run_chain("compiled", superblocks=False)
