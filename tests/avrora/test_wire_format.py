"""TOS wire format: CRC parity with the CMinor driver, traffic injection.

``encode_tos_msg``/``crc16`` (Python) and ``RadioCRCPacketC``'s
``calc_crc`` (CMinor, executed in the simulator) must agree bit for bit —
otherwise injected traffic is rejected at the driver's CRC check and every
"listening" benchmark silently measures an idle node.  Also covers the
``TrafficGenerator`` UART injection path, which feeds frames byte-by-byte
through the UART receive interrupt.
"""

from __future__ import annotations

import pytest

from repro.avrora.memory import Pointer
from repro.avrora.network import (
    TrafficGenerator,
    crc16,
    encode_tos_msg,
    simulate,
)
from repro.avrora.node import Node
from repro.cminor import typesys as ty
from repro.tinyos import hardware as hw
from repro.tinyos import messages as msgs

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program

#: The CMinor radio driver's CRC routine, verbatim from
#: ``repro.tinyos.lib.radio.radio_crc_packet_c`` — kept in sync by the
#: differential test below, which would fail on any drift.
DRIVER_CRC_SOURCE = """
uint8_t crc_input[%d];
uint16_t crc_output = 0;

uint16_t calc_crc(uint8_t* packet, uint8_t count) {
  uint16_t crc = 0;
  uint8_t i;
  uint8_t b;
  for (i = 0; i < count; i++) {
    b = packet[i];
    crc = crc ^ ((uint16_t)b << 8);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
  }
  return crc;
}

__spontaneous void main(void) {
  crc_output = calc_crc(crc_input, %d);
  __sleep();
}
""" % (msgs.TOS_MSG_WIRE_LENGTH, msgs.TOS_MSG_WIRE_LENGTH - 2)


def _driver_crc(frame: bytes) -> int:
    """Run the CMinor driver's calc_crc over ``frame`` in the simulator."""
    program = make_program(DRIVER_CRC_SOURCE)
    node = Node(program)
    node.boot()
    buffer = node.memory.global_object("crc_input")
    buffer.data[0:len(frame)] = frame
    node.run(0.05)
    out = node.memory.global_object("crc_output")
    return node.memory.read(Pointer(out, 0), ty.UINT16)


class TestCrcParity:
    @pytest.mark.parametrize("payload", [
        bytes(),
        bytes([1, 0, 0, 0]),
        bytes([0xFF] * msgs.TOSH_DATA_LENGTH),
        bytes(range(17)),
    ])
    def test_python_crc_matches_the_cminor_driver(self, payload):
        frame = encode_tos_msg(msgs.TOS_BCAST_ADDR, msgs.AM_INT_MSG, payload)
        checked = frame[:msgs.TOS_MSG_WIRE_LENGTH - 2]
        assert crc16(checked) == _driver_crc(frame)

    def test_encoded_frame_carries_its_own_crc_little_endian(self):
        frame = encode_tos_msg(7, msgs.AM_COUNT, bytes([9, 0]))
        crc = crc16(frame[:msgs.TOS_MSG_WIRE_LENGTH - 2])
        assert frame[-2] == crc & 0xFF
        assert frame[-1] == (crc >> 8) & 0xFF


class TestWireLayout:
    def test_round_trip_through_the_tos_msg_layout(self):
        payload = bytes([3, 1, 4, 1, 5])
        frame = encode_tos_msg(0x1234, msgs.AM_OSCOPE, payload, group=0x42)
        assert len(frame) == msgs.TOS_MSG_WIRE_LENGTH
        assert frame[0] | (frame[1] << 8) == 0x1234      # addr
        assert frame[2] == msgs.AM_OSCOPE                # type
        assert frame[3] == 0x42                          # group
        assert frame[4] == len(payload)                  # length
        assert frame[5:5 + len(payload)] == payload      # data
        assert all(b == 0 for b in frame[5 + len(payload):-2])

    def test_full_payload_is_accepted(self):
        payload = bytes(range(msgs.TOSH_DATA_LENGTH))
        frame = encode_tos_msg(1, msgs.AM_INT_MSG, payload)
        assert frame[5:5 + msgs.TOSH_DATA_LENGTH] == payload

    def test_oversized_payload_raises_a_labelled_error(self):
        payload = bytes(msgs.TOSH_DATA_LENGTH + 1)
        with pytest.raises(ValueError, match="TOSH_DATA_LENGTH"):
            encode_tos_msg(1, msgs.AM_INT_MSG, payload)
        with pytest.raises(ValueError, match="30 bytes"):
            encode_tos_msg(1, msgs.AM_INT_MSG, payload)


UART_SINK = """
uint16_t uart_bytes = 0;
uint16_t uart_sum = 0;

__interrupt("UART_RX") void uart_rx(void) {
  uint8_t b;
  b = __hw_read8(%d);
  uart_bytes = uart_bytes + 1;
  uart_sum = uart_sum + b;
}

__spontaneous void main(void) {
  __enable_interrupts();
  while (1) {
    __sleep();
  }
}
""" % hw.UART_DATA


class TestUartInjection:
    def _run(self, seconds: float = 1.0) -> tuple[Node, TrafficGenerator]:
        program = make_program(UART_SINK)
        program.interrupt_vectors[hw.VECTOR_UART_RX] = "uart_rx"
        generator = TrafficGenerator(uart_period_s=0.3,
                                     payload=bytes([2, 0, 7]))
        nodes = simulate(program, seconds=seconds, traffic=generator)
        return nodes[0], nodes[0].traffic_generator

    def test_injected_frames_reach_the_program_byte_by_byte(self):
        node, generator = self._run()
        assert generator.injected_uart == 3
        obj = node.memory.global_object("uart_bytes")
        received = node.memory.read(Pointer(obj, 0), ty.UINT16)
        assert received == generator.injected_uart * msgs.TOS_MSG_WIRE_LENGTH

    def test_injected_bytes_carry_the_encoded_frame(self):
        node, generator = self._run()
        frame = generator.packet()
        obj = node.memory.global_object("uart_sum")
        checksum = node.memory.read(Pointer(obj, 0), ty.UINT16)
        assert checksum == (sum(frame) * generator.injected_uart) & 0xFFFF
