"""Trace-level call inlining and the persistent plan store.

Trace superblocks splice leaf-callee bodies under the caller's poll-window
guard; every observable — cycle totals, statement counts, interrupt
delivery order, pause points — must be bit-identical to the tree-walker
and to the compiled engine with traces (or all fusion) disabled.  The
persistent :class:`~repro.avrora.codestore.PlanStore` must round-trip
lowered plans across "processes" (independently parsed programs), reject
corrupt or stale entries with a labelled warning, and miss (never
mis-read) when the program changes.
"""

from __future__ import annotations

import logging
import pickle

import pytest

from repro.avrora.codestore import FORMAT_VERSION, PlanStore, plan_key
from repro.avrora.engine import LOWERING_VERSION, CompiledEngine
from repro.avrora.memory import Pointer
from repro.avrora.node import Node
from repro.cminor import typesys as ty
from repro.tinyos import hardware as hw

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


#: A call-heavy compute loop whose callee is a textbook trace leaf: a
#: branchy, call-free body with one trailing return.  No events, so only
#: run_until's horizon sentinel can interrupt it.
LEAF_CALLS = """
uint32_t acc = 0;
uint16_t mix(uint16_t a, uint16_t b) {
  uint16_t r = a * 3 + b;
  if (r > 900) { r = r - 900; }
  return r;
}
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    acc = acc + mix(i, (uint16_t)(acc & 255));
    i = i + 1;
  }
}
"""

#: The same trace shape preempted by a fast timer: interrupts land *inside*
#: the trace's cycle window, forcing the guard's slow path, and the handler
#: folds its delivery order into ``order`` so any reordering is visible.
LEAF_CALLS_INTERRUPTS = """
uint16_t ticks = 0;
uint32_t order = 1;
uint32_t acc = 0;
__interrupt("TIMER1_COMPA") void fired(void) {
  ticks = ticks + 1;
  order = (order * 33 + acc) %% 65521;
}
__spontaneous void main(void) {
  uint16_t i;
  __hw_write16(%d, 2);
  __hw_write8(%d, 1);
  __enable_interrupts();
  while (1) {
    acc = acc + mix(i, (uint16_t)(acc & 255));
    i = i + 1;
  }
}
uint16_t mix(uint16_t a, uint16_t b) {
  uint16_t r = a * 3 + b;
  if (r > 900) { r = r - 900; }
  return r;
}
""" % (hw.TIMER_RATE, hw.TIMER_CTRL)

#: A self-recursive callee: its body contains a call, so it has no leaf
#: cost and must run through the ordinary CALL machinery.
RECURSIVE_CALLS = """
uint32_t acc = 0;
uint16_t down(uint16_t n) {
  uint16_t r = 0;
  if (n > 0) { r = down(n - 1) + 1; }
  return r;
}
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    acc = acc + down(3);
    i = i + 1;
  }
}
"""

#: A callee that takes a local's address: flattening its frame into the
#: caller's slots would break the pointer, so it must not be inlined.
ADDRESS_TAKEN_CALLS = """
uint32_t acc = 0;
uint16_t bump(uint16_t n) {
  uint16_t x = n;
  uint16_t* p = &x;
  *p = *p + 1;
  return x;
}
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    acc = acc + bump(i);
    i = i + 1;
  }
}
"""


def _node(source: str, engine: str = "compiled", traces: bool = True,
          vectors: dict | None = None, *,
          monkeypatch: pytest.MonkeyPatch) -> Node:
    """Build and boot one node with the fusion switches pinned.

    Superblocks are always forced on (traces require them) and the trace
    switch is pinned explicitly, so these tests stay meaningful under CI
    legs that set ``REPRO_AVRORA_SUPERBLOCKS=0`` or
    ``REPRO_AVRORA_TRACES=0`` globally.
    """
    program = make_program(source)
    if vectors:
        program.interrupt_vectors.update(vectors)
    monkeypatch.setenv("REPRO_AVRORA_SUPERBLOCKS", "1")
    monkeypatch.setenv("REPRO_AVRORA_TRACES", "1" if traces else "0")
    node = Node(program, engine=engine)
    node.boot()
    return node


def _observe(node: Node) -> dict:
    return {
        "time": node.time_cycles,
        "busy": node.busy_cycles,
        "sleep": node.sleep_cycles,
        "statements": node.interpreter.statements_executed,
        "interrupts": node.interrupts_delivered,
        "violations": node.memory_violations,
    }


def _read_u32(node: Node, name: str) -> int:
    obj = node.memory.global_object(name)
    return node.memory.read(Pointer(obj, 0), ty.UINT32)


class TestTraceFormation:
    def test_leaf_calls_form_traces_and_run_inline(self, monkeypatch):
        node = _node(LEAF_CALLS, monkeypatch=monkeypatch)
        node.run(0.02)
        engine = node.interpreter._impl
        assert isinstance(engine, CompiledEngine)
        stats = engine.superblock_stats()
        assert stats["traces_enabled"]
        assert stats["traces"] >= 1
        assert stats["inlined_call_sites"] >= 1
        assert stats["inlined_calls"] > 0

    def test_trace_switch_disables_inlining(self, monkeypatch):
        node = _node(LEAF_CALLS, traces=False, monkeypatch=monkeypatch)
        node.run(0.02)
        stats = node.interpreter.superblock_stats()
        assert stats["enabled"], "fusion itself must stay on"
        assert not stats["traces_enabled"]
        assert stats["traces"] == 0
        assert stats["inlined_calls"] == 0

    def test_recursive_callee_not_inlined(self, monkeypatch):
        node = _node(RECURSIVE_CALLS, monkeypatch=monkeypatch)
        node.run(0.02)
        stats = node.interpreter.superblock_stats()
        assert stats["traces"] == 0
        assert stats["inlined_call_sites"] == 0
        assert stats["inlined_calls"] == 0

    def test_address_taken_callee_not_inlined(self, monkeypatch):
        node = _node(ADDRESS_TAKEN_CALLS, monkeypatch=monkeypatch)
        node.run(0.02)
        stats = node.interpreter.superblock_stats()
        assert stats["traces"] == 0
        assert stats["inlined_calls"] == 0


class TestTraceDifferential:
    def test_pure_compute_identical_to_tree_and_no_trace(self, monkeypatch):
        results = []
        for engine, traces in (("tree", True), ("compiled", True),
                               ("compiled", False)):
            node = _node(LEAF_CALLS, engine=engine, traces=traces,
                         monkeypatch=monkeypatch)
            node.run(0.05)
            results.append((_observe(node), _read_u32(node, "acc")))
        assert results[0] == results[1] == results[2]

    def test_mid_trace_interrupt_delivered_at_identical_cycle(
            self, monkeypatch):
        vectors = {"TIMER1_COMPA": "fired"}
        results = []
        for engine, traces in (("tree", True), ("compiled", True),
                               ("compiled", False)):
            node = _node(LEAF_CALLS_INTERRUPTS, engine=engine,
                         traces=traces, vectors=vectors,
                         monkeypatch=monkeypatch)
            node.run(0.05)
            observed = _observe(node)
            assert observed["interrupts"] > 0
            results.append((observed, _read_u32(node, "order"),
                            _read_u32(node, "acc")))
        assert results[0] == results[1] == results[2]

    def test_horizon_sentinel_pauses_at_same_poll_point(self, monkeypatch):
        reference = _node(LEAF_CALLS, monkeypatch=monkeypatch)
        reference.run(0.2)

        sliced = _node(LEAF_CALLS, monkeypatch=monkeypatch)
        sliced.begin_run(0.2)
        horizon = 0
        status = "paused"
        while status == "paused":
            horizon += 99991
            status = sliced.run_until(horizon)
        assert _observe(sliced) == _observe(reference)
        assert _read_u32(sliced, "acc") == _read_u32(reference, "acc")


class TestPlanStore:
    def _lowered_cache(self, source: str):
        program = make_program(source)
        node = Node(program, engine="compiled")
        node.boot()
        node.interpreter.warm()
        cache = program.analysis().code_cache()
        cache.lower_all(program, cache.costs)
        return program, cache

    def test_round_trip_warm_start_zero_lowerings(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_AVRORA_SUPERBLOCKS", "1")
        monkeypatch.setenv("REPRO_AVRORA_TRACES", "1")
        store = PlanStore(str(tmp_path))
        key = plan_key("prog-a", "mica2")
        program, cache = self._lowered_cache(LEAF_CALLS)
        assert store.store(key, cache.export_portable(program))
        assert store.stats()["stores"] == 1
        assert not list(tmp_path.glob("*.tmp")), "temp file leaked"

        cold = Node(program, engine="compiled")
        cold.boot()
        cold.run(0.05)

        # A second, independently parsed program stands in for a second
        # process: nothing is shared but the bytes on disk.
        warm_program = make_program(LEAF_CALLS)
        warm_cache = warm_program.analysis().code_cache()
        payload = store.load(key)
        assert payload is not None
        assert warm_cache.hydrate_portable(warm_program, payload) >= 2
        warm = Node(warm_program, engine="compiled")
        warm.boot()
        warm.interpreter.warm()
        assert warm_cache.lowerings == 0
        assert warm_cache.stats()["disk_loads"] >= 2
        warm.run(0.05)
        assert _observe(warm) == _observe(cold)
        assert _read_u32(warm, "acc") == _read_u32(cold, "acc")

    def test_mutated_program_misses_instead_of_misreading(self, tmp_path):
        store = PlanStore(str(tmp_path))
        program, cache = self._lowered_cache(LEAF_CALLS)
        store.store(plan_key("prog-a", "mica2"),
                    cache.export_portable(program))

        # Keying: a mutated program has a different content key, so the
        # store simply misses.
        assert plan_key("prog-b", "mica2") != plan_key("prog-a", "mica2")
        assert store.load(plan_key("prog-b", "mica2")) is None
        assert store.stats()["misses"] == 1

        # Defense in depth: hydrating an artifact into a program whose
        # function bodies changed shape rejects the mismatched functions
        # (statement-count check) rather than binding stale facts to the
        # wrong statements; the content-addressed key above is what makes
        # this path unreachable in the supported flow.
        mutated = make_program(LEAF_CALLS.replace(
            "if (r > 900) { r = r - 900; }\n", ""))
        payload = store.load(plan_key("prog-a", "mica2"))
        mutated_cache = mutated.analysis().code_cache()
        mutated_cache.hydrate_portable(mutated, payload)
        assert "mix" not in mutated_cache.plans, \
            "stale plan bound to a mutated function"

    def test_corrupt_entry_falls_back_with_warning(self, tmp_path, caplog):
        store = PlanStore(str(tmp_path))
        key = plan_key("prog-a", "mica2")
        (tmp_path / f"{key}.plan").write_bytes(b"not a pickle at all")
        with caplog.at_level(logging.WARNING):
            assert store.load(key) is None
        assert store.stats()["errors"] == 1
        assert any("plan-cache" in record.message
                   for record in caplog.records)

    def test_truncated_entry_falls_back_with_warning(self, tmp_path,
                                                     caplog):
        store = PlanStore(str(tmp_path))
        key = plan_key("prog-a", "mica2")
        program, cache = self._lowered_cache(LEAF_CALLS)
        store.store(key, cache.export_portable(program))
        path = tmp_path / f"{key}.plan"
        path.write_bytes(path.read_bytes()[:40])
        with caplog.at_level(logging.WARNING):
            assert store.load(key) is None
        assert store.stats()["errors"] == 1
        assert any("plan-cache" in record.message
                   for record in caplog.records)

    def test_version_stale_entry_falls_back_with_warning(self, tmp_path,
                                                         caplog):
        store = PlanStore(str(tmp_path))
        key = plan_key("prog-a", "mica2")
        blob = pickle.dumps({"fake": "payload"})
        import hashlib
        (tmp_path / f"{key}.plan").write_bytes(pickle.dumps({
            "format": FORMAT_VERSION,
            "engine": LOWERING_VERSION - 1,
            "key": key,
            "digest": hashlib.sha256(blob).hexdigest(),
            "payload": blob,
        }))
        with caplog.at_level(logging.WARNING):
            assert store.load(key) is None
        assert store.stats()["errors"] == 1
        assert any("version-stale" in record.message
                   for record in caplog.records)

    def test_digest_mismatch_falls_back_with_warning(self, tmp_path,
                                                     caplog):
        store = PlanStore(str(tmp_path))
        key = plan_key("prog-a", "mica2")
        blob = pickle.dumps({"fake": "payload"})
        (tmp_path / f"{key}.plan").write_bytes(pickle.dumps({
            "format": FORMAT_VERSION,
            "engine": LOWERING_VERSION,
            "key": key,
            "digest": "0" * 64,
            "payload": blob,
        }))
        with caplog.at_level(logging.WARNING):
            assert store.load(key) is None
        assert store.stats()["errors"] == 1
        assert any("digest mismatch" in record.message
                   for record in caplog.records)

    def test_concurrent_style_rewrites_are_atomic(self, tmp_path):
        """Repeated stores over the same key (the concurrent-writer
        pattern, serialized) always leave one complete, loadable entry."""
        store = PlanStore(str(tmp_path))
        key = plan_key("prog-a", "mica2")
        program, cache = self._lowered_cache(LEAF_CALLS)
        payload = cache.export_portable(program)
        for _ in range(3):
            assert store.store(key, payload)
        assert len(list(tmp_path.glob("*.plan"))) == 1
        assert not list(tmp_path.glob("*.tmp"))
        assert store.load(key) is not None
