"""Tests for the interpreter, node execution, and the network harness."""

import pytest

from repro.avrora.network import Network, TrafficGenerator, simulate
from repro.avrora.node import Node
from repro.cminor import typesys as ty
from repro.tinyos import hardware as hw
from repro.tinyos import messages as msgs

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


def run_main(source, seconds=0.05):
    """Build a program, run it briefly, and return the node."""
    program = make_program(source)
    node = Node(program)
    node.boot()
    node.run(seconds)
    return node


def global_value(node, name, ctype=ty.UINT16):
    from repro.avrora.memory import Pointer

    obj = node.memory.global_object(name)
    assert obj is not None, f"no global named {name}"
    return node.memory.read(Pointer(obj, 0), ctype)


class TestInterpreter:
    def test_arithmetic_and_loops(self):
        node = run_main("""
uint16_t total = 0;
__spontaneous void main(void) {
  uint8_t i;
  for (i = 0; i < 10; i++) {
    total = total + i;
  }
  __sleep();
}
""")
        assert global_value(node, "total") == 45

    def test_unsigned_wraparound(self):
        node = run_main("""
uint8_t narrow = 250;
__spontaneous void main(void) {
  narrow = narrow + 10;
  __sleep();
}
""")
        assert global_value(node, "narrow", ty.UINT8) == 4

    def test_struct_and_pointer_access(self):
        node = run_main("""
struct rec { uint16_t key; uint8_t data[4]; };
struct rec item;
uint16_t out;
__spontaneous void main(void) {
  struct rec* p = &item;
  uint8_t* bytes = (uint8_t*)p;
  p->key = 0x1234;
  p->data[2] = 7;
  out = (uint16_t)bytes[0] | ((uint16_t)bytes[1] << 8);
  __sleep();
}
""")
        assert global_value(node, "out") == 0x1234

    def test_function_calls_and_recursion(self):
        node = run_main("""
uint16_t result;
uint16_t fib(uint8_t n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
__spontaneous void main(void) {
  result = fib(10);
  __sleep();
}
""")
        assert global_value(node, "result") == 55

    def test_string_literals_and_char_access(self):
        node = run_main("""
uint8_t first;
__spontaneous void main(void) {
  char* s = "mote";
  first = (uint8_t)s[0];
  __sleep();
}
""")
        assert global_value(node, "first", ty.UINT8) == ord("m")

    def test_bounds_ok_builtin_reports_truthfully(self):
        node = run_main("""
uint8_t table[4];
uint8_t inside;
uint8_t outside;
__spontaneous void main(void) {
  inside = (uint8_t)__bounds_ok(&table[3], 1);
  outside = (uint8_t)__bounds_ok(&table[0] + 4, 1);
  __sleep();
}
""")
        assert global_value(node, "inside", ty.UINT8) == 1
        assert global_value(node, "outside", ty.UINT8) == 0

    def test_unsafe_out_of_bounds_is_absorbed_and_counted(self):
        node = run_main("""
uint8_t table[2];
uint8_t index = 5;
uint8_t sink;
__spontaneous void main(void) {
  table[index] = 1;
  sink = table[index];
  __sleep();
}
""")
        assert node.memory_violations == 2
        assert not node.halted

    def test_ccured_failure_halts_the_node(self):
        node = run_main("""
__spontaneous void main(void) {
  __error_report_id(42);
  __halt(1);
}
""")
        assert node.halted
        assert node.failures and node.failures[0].flid == 42


class TestNodeExecution:
    BLINKY = """
uint8_t leds_on = 0;
uint16_t ticks = 0;

__interrupt("TIMER1_COMPA") void fired(void) {
  ticks = ticks + 1;
  leds_on = (uint8_t)(leds_on ^ 1);
  __hw_write8(%d, leds_on);
}

__spontaneous void main(void) {
  __hw_write16(%d, 64);
  __hw_write8(%d, 1);
  __enable_interrupts();
  while (1) {
    __sleep();
  }
}
""" % (hw.LED_PORT, hw.TIMER_RATE, hw.TIMER_CTRL)

    def _run(self, seconds=1.0):
        program = make_program(self.BLINKY)
        program.interrupt_vectors["TIMER1_COMPA"] = "fired"
        node = Node(program)
        node.boot()
        node.run(seconds)
        return node

    def test_interrupts_wake_the_node_from_sleep(self):
        node = self._run()
        # 1024 / 64 = 16 clock interrupts per second.
        assert 12 <= node.interrupts_delivered <= 20
        assert global_value(node, "ticks") == node.interrupts_delivered

    def test_duty_cycle_is_low_for_a_mostly_sleeping_node(self):
        node = self._run()
        assert 0.0 < node.duty_cycle() < 0.05

    def test_led_history_matches_interrupt_count(self):
        node = self._run()
        assert node.leds.state.changes == node.interrupts_delivered

    def test_longer_runs_accumulate_proportionally(self):
        short = self._run(0.5)
        longer = self._run(1.5)
        assert longer.interrupts_delivered > short.interrupts_delivered

    def test_node_id_lands_in_tos_local_address(self):
        program = make_program(
            msgs.COMMON_SOURCE + "\n__spontaneous void main(void) { __sleep(); }")
        node = Node(program, node_id=42)
        node.boot()
        assert global_value(node, "TOS_LOCAL_ADDRESS") == 42


class TestNetworkHarness:
    def test_traffic_generator_builds_valid_frames(self):
        generator = TrafficGenerator(radio_period_s=1.0, am_type=7,
                                     payload=bytes([1, 2, 3]))
        frame = generator.packet()
        assert len(frame) == msgs.TOS_MSG_WIRE_LENGTH
        assert frame[2] == 7

    def test_simulate_runs_multiple_nodes(self, blink_baseline_build):
        nodes = simulate(blink_baseline_build.program, seconds=0.5, node_count=2)
        assert len(nodes) == 2
        assert all(n.interrupts_delivered > 0 for n in nodes)

    def test_injected_traffic_reaches_the_program(self, blink_baseline_build):
        generator = TrafficGenerator(radio_period_s=0.2)
        nodes = simulate(blink_baseline_build.program, seconds=1.0,
                         traffic=generator)
        # Blink has no radio stack wired, so the packets are dropped at the
        # device, but the node's generator must have produced them.
        assert nodes[0].traffic_generator.injected_radio >= 3
        # The template is never installed directly: each node gets a copy,
        # so counters are per-node and the template stays untouched.
        assert generator.injected_radio == 0

    def test_traffic_counters_are_per_node(self, blink_baseline_build):
        generator = TrafficGenerator(radio_period_s=0.25)
        nodes = simulate(blink_baseline_build.program, seconds=1.0,
                         node_count=2, traffic=generator)
        generators = [node.traffic_generator for node in nodes]
        assert generators[0] is not generators[1]
        for per_node in generators:
            assert per_node.injected_radio >= 3
        assert generator.injected_radio == 0
