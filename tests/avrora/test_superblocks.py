"""Superblock fusion and the shared code cache.

The poll-window guard must make fusion observationally invisible: an
interrupt scheduled to land mid-block forces the slow path and is delivered
at the identical cycle as the tree-walker; a lockstep horizon sentinel
inside a block pauses at the same poll point; the shared
:class:`~repro.avrora.engine.CodeCache` lowers every function once per
program and is dropped by analysis-cache invalidation.
"""

from __future__ import annotations

import pytest

from repro.avrora.engine import CompiledEngine
from repro.avrora.memory import Pointer
from repro.avrora.node import Node
from repro.cminor import typesys as ty
from repro.tinyos import hardware as hw

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


#: A straight-line run of simple statements inside a hot loop, preempted by
#: a fast timer: interrupts constantly land *inside* the fused block's
#: cycle window, so the guard must route those entries to the slow path.
MID_BLOCK_INTERRUPTS = """
uint16_t ticks = 0;
uint32_t a = 0;
uint32_t b = 0;
uint32_t c = 0;
__interrupt("TIMER1_COMPA") void fired(void) {
  ticks = ticks + 1;
  c = c + a + b;
}
__spontaneous void main(void) {
  uint16_t i;
  __hw_write16(%d, 2);
  __hw_write8(%d, 1);
  __enable_interrupts();
  while (1) {
    for (i = 0; i < 40; i++) {
      a = a + 1;
      b = b + a;
      a = a ^ b;
      b = b + 3;
    }
  }
}
""" % (hw.TIMER_RATE, hw.TIMER_CTRL)

#: A pure compute loop (no sleep, no events): only run_until's horizon
#: sentinel can pause it, and it must do so at a poll point mid-block.
COMPUTE_ONLY = """
uint32_t acc = 0;
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    for (i = 0; i < 100; i++) {
      acc = acc + i;
      acc = acc ^ 21845;
    }
  }
}
"""


def _node(source: str, engine: str = "compiled", superblocks: bool = True,
          vectors: dict | None = None,
          monkeypatch: pytest.MonkeyPatch | None = None) -> Node:
    """Build and boot one node, pinning the fusion switch when asked.

    Passing ``monkeypatch`` forces ``REPRO_AVRORA_SUPERBLOCKS`` to the
    requested state for the rest of the test, so these tests stay
    meaningful under CI legs that set the variable globally.
    """
    program = make_program(source)
    if vectors:
        program.interrupt_vectors.update(vectors)
    if monkeypatch is not None:
        monkeypatch.setenv("REPRO_AVRORA_SUPERBLOCKS",
                           "1" if superblocks else "0")
    else:
        assert superblocks, "disabling fusion requires monkeypatch"
    node = Node(program, engine=engine)
    node.boot()
    return node


def _observe(node: Node) -> dict:
    return {
        "time": node.time_cycles,
        "busy": node.busy_cycles,
        "sleep": node.sleep_cycles,
        "statements": node.interpreter.statements_executed,
        "interrupts": node.interrupts_delivered,
        "violations": node.memory_violations,
    }


def _read_u32(node: Node, name: str) -> int:
    obj = node.memory.global_object(name)
    return node.memory.read(Pointer(obj, 0), ty.UINT32)


class TestSuperblockFormation:
    def test_straight_line_runs_fuse_and_stats_move(self, monkeypatch):
        node = _node(COMPUTE_ONLY, monkeypatch=monkeypatch)
        node.run(0.02)
        engine = node.interpreter._impl
        assert isinstance(engine, CompiledEngine)
        stats = engine.superblock_stats()
        assert stats["enabled"]
        assert stats["superblocks"] + stats["loop_superblocks"] >= 1
        assert stats["fused_statements"] > 0
        assert stats["fused_statements"] <= stats["statements_total"]
        assert 0.0 < stats["fused_fraction"] <= 1.0

    def test_env_switch_disables_fusion(self, monkeypatch):
        node = _node(COMPUTE_ONLY, superblocks=False,
                     monkeypatch=monkeypatch)
        node.run(0.02)
        stats = node.interpreter.superblock_stats()
        assert not stats["enabled"]
        assert stats["fused_statements"] == 0
        assert stats["superblocks"] == 0

    def test_tree_walker_reports_zero_stats(self):
        node = _node(COMPUTE_ONLY, engine="tree")
        node.run(0.01)
        stats = node.interpreter.superblock_stats()
        assert not stats["enabled"]
        assert stats["fused_statements"] == 0
        assert stats["statements_total"] > 0


class TestPollWindowBoundaries:
    VECTORS = {"TIMER1_COMPA": "fired"}

    def test_mid_block_interrupt_delivers_at_identical_cycle(
            self, monkeypatch):
        """A timer landing inside a fused block's window forces the slow
        path; delivery time, handler effects and statement stream match
        the tree-walker and the fusion-off engine exactly."""
        results = {}
        for label, engine, superblocks in (
                ("tree", "tree", True),
                ("fused", "compiled", True),
                ("nosb", "compiled", False)):
            node = _node(MID_BLOCK_INTERRUPTS, engine=engine,
                         superblocks=superblocks, vectors=self.VECTORS,
                         monkeypatch=monkeypatch)
            node.run(0.2)
            results[label] = _observe(node)
            results[label]["c"] = _read_u32(node, "c")
            if label == "fused":
                stats = node.interpreter.superblock_stats()
                # The guard really exercised both paths.
                assert stats["entries_fast"] > 0
                assert stats["entries_slow"] > 0
        assert results["tree"]["interrupts"] > 0
        assert results["tree"] == results["fused"] == results["nosb"]

    @pytest.mark.parametrize("horizon_step", [104729, 31337])
    def test_horizon_sentinel_mid_block_pauses_at_same_poll_point(
            self, horizon_step, monkeypatch):
        """run_until horizons that land inside fused blocks must pause at
        exactly the poll point the tree-walker pauses at — the sentinel
        event makes the window guard take the slow path."""
        paused_times = {}
        for engine in ("tree", "compiled"):
            node = _node(COMPUTE_ONLY, engine=engine,
                         monkeypatch=monkeypatch)
            node.begin_run(0.5)
            times = []
            horizon = 0
            status = "paused"
            while status == "paused" and len(times) < 25:
                horizon += horizon_step
                status = node.run_until(horizon)
                times.append(node.time_cycles)
            node.abort_run()
            paused_times[engine] = times
        assert paused_times["tree"] == paused_times["compiled"]

    def test_sliced_and_single_runs_identical_with_fusion(
            self, monkeypatch):
        """The BLINKY-style invariant, but for a compute-bound program:
        arbitrary horizon slicing must not change fused execution."""
        reference = _node(COMPUTE_ONLY, monkeypatch=monkeypatch)
        reference.run(0.3)

        sliced = _node(COMPUTE_ONLY, monkeypatch=monkeypatch)
        sliced.begin_run(0.3)
        horizon = 0
        status = "paused"
        while status == "paused":
            horizon += 77777
            status = sliced.run_until(horizon)
        assert _observe(sliced) == _observe(reference)
        assert _read_u32(sliced, "acc") == _read_u32(reference, "acc")


class TestCodeCache:
    def test_functions_lower_once_across_nodes(self):
        program = make_program(COMPUTE_ONLY)
        cache = program.analysis().code_cache()
        assert cache.lowerings == 0

        first = Node(program, engine="compiled")
        first.boot()
        lowered = first.interpreter.warm()
        assert lowered >= 1
        assert cache.lowerings == lowered
        assert cache.plan_hits == 0

        second = Node(program, engine="compiled")
        second.boot()
        assert second.interpreter.warm() == lowered
        assert cache.lowerings == lowered, "second node re-lowered"
        assert cache.plan_hits == lowered
        assert second.interpreter.code_cache_stats() == {
            "functions": lowered, "lowerings": lowered,
            "plan_hits": lowered, "disk_loads": 0}

    def test_shared_plans_change_nothing(self):
        program = make_program(MID_BLOCK_INTERRUPTS)
        program.interrupt_vectors.update({"TIMER1_COMPA": "fired"})
        observations = []
        for _ in range(2):  # the second node compiles purely from plans
            node = Node(program, engine="compiled")
            node.boot()
            node.run(0.05)
            observations.append((_observe(node), _read_u32(node, "c")))
        assert observations[0] == observations[1]

    def test_full_invalidation_drops_plans(self):
        program = make_program(COMPUTE_ONLY)
        node = Node(program, engine="compiled")
        node.boot()
        lowered = node.interpreter.warm()
        cache = program.analysis().code_cache()
        assert len(cache.plans) == lowered

        program.invalidate_analysis()
        assert len(cache.plans) == 0
        fresh = Node(program, engine="compiled")
        fresh.boot()
        fresh.interpreter.warm()
        assert cache.lowerings == 2 * lowered

    def test_per_function_invalidation_drops_one_plan(self):
        program = make_program(COMPUTE_ONLY)
        node = Node(program, engine="compiled")
        node.boot()
        node.interpreter.warm()
        cache = program.analysis().code_cache()
        assert "main" in cache.plans
        program.invalidate_analysis("main")
        assert "main" not in cache.plans

    def test_custom_cost_model_does_not_share_cached_plans(self):
        """Plans bake per-statement cycle costs: a node with a different
        cost model (same platform) must lower privately, not reuse — or
        poison — the shared cache."""
        from dataclasses import replace

        from repro.backend.target import cost_model_for

        program = make_program(COMPUTE_ONLY)
        default = Node(program, engine="compiled")
        default.boot()
        default.run(0.02)

        tweaked_costs = cost_model_for(program.platform)
        tweaked_costs = replace(
            tweaked_costs,
            cycles_per_alu_byte=tweaked_costs.cycles_per_alu_byte + 1)
        tweaked = Node(program, engine="compiled", costs=tweaked_costs)
        tweaked.boot()
        tweaked.run(0.02)
        assert tweaked.busy_cycles != default.busy_cycles

        # The shared cache still carries the default-cost plans: a third
        # default node charges exactly what the first did.
        again = Node(program, engine="compiled")
        again.boot()
        again.run(0.02)
        assert again.busy_cycles == default.busy_cycles
        assert again.interpreter.statements_executed == \
            default.interpreter.statements_executed


class TestAblationParity:
    """Byte-identical execution with fusion on vs off on engine-stressing
    shapes (the figure applications are covered by the differential
    suite)."""

    PROGRAMS = {
        "nested_rotated_loops": """
uint32_t out = 0;
__spontaneous void main(void) {
  uint16_t i;
  uint16_t j;
  for (i = 0; i < 60; i++) {
    for (j = 0; j < 30; j++) {
      out = out + j;
    }
    out = out ^ i;
  }
  __sleep();
}
""",
        "oob_inside_block": """
uint8_t buffer[4];
uint8_t index = 7;
uint16_t sum = 0;
uint8_t sink = 0;
__spontaneous void main(void) {
  uint16_t i;
  for (i = 0; i < 50; i++) {
    buffer[index] = (uint8_t)i;
    sink = buffer[index];
    sum = sum + sink;
  }
  __sleep();
}
""",
        "vardecl_in_block": """
uint32_t total = 0;
uint16_t helper(uint16_t n) {
  uint16_t base = n * 3;
  uint16_t twist = base ^ 5;
  uint16_t mix = twist + base;
  return mix;
}
__spontaneous void main(void) {
  uint16_t i;
  for (i = 0; i < 40; i++) {
    total = total + helper(i);
  }
  __sleep();
}
""",
    }

    @pytest.mark.parametrize("name", list(PROGRAMS))
    def test_fusion_on_off_identical(self, name, monkeypatch):
        results = {}
        for label, superblocks in (("fused", True), ("nosb", False)):
            node = _node(self.PROGRAMS[name], superblocks=superblocks,
                         monkeypatch=monkeypatch)
            node.run(0.05)
            results[label] = _observe(node)
        assert results["fused"] == results["nosb"]
