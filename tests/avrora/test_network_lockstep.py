"""The lockstep network kernel: topologies, causality, reproducibility.

Covers the discrete-event scheduler (resumable ``run_until`` slices must
not change what a node computes), the channel model (topology wiring,
seeded loss), and the acceptance scenario: a packet originated at a leaf
Surge mote reaching the base station through an intermediate hop in a
``chain`` topology with causally ordered delivery timestamps.
"""

from __future__ import annotations

import pytest

from repro.avrora.memory import Pointer
from repro.avrora.network import Channel, Network, simulate
from repro.avrora.node import Node
from repro.cminor import typesys as ty
from repro.tinyos import hardware as hw
from repro.tinyos import messages as msgs
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import BASELINE

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


# ---------------------------------------------------------------------------
# Channel model
# ---------------------------------------------------------------------------


class TestChannel:
    def test_broadcast_connects_every_pair(self):
        channel = Channel(topology="broadcast")
        assert channel.neighbors(1, 4) == [0, 2, 3]

    def test_chain_connects_adjacent_positions(self):
        channel = Channel(topology="chain")
        assert channel.neighbors(0, 4) == [1]
        assert channel.neighbors(2, 4) == [1, 3]
        assert channel.neighbors(3, 4) == [2]

    def test_star_routes_through_the_hub(self):
        channel = Channel(topology="star")
        assert channel.neighbors(0, 4) == [1, 2, 3]
        assert channel.neighbors(3, 4) == [0]

    def test_grid_connects_four_neighbors(self):
        channel = Channel(topology="grid", grid_width=3)
        # 3x3 grid: position 4 is the centre.
        assert sorted(channel.neighbors(4, 9)) == [1, 3, 5, 7]
        assert sorted(channel.neighbors(0, 9)) == [1, 3]
        # Ragged last row: position 7 of 8 has no south neighbour.
        assert sorted(channel.neighbors(7, 8)) == [4, 6]

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            Channel(topology="ring")
        with pytest.raises(ValueError, match="loss"):
            Channel(loss=1.0)
        with pytest.raises(ValueError, match="latency"):
            Channel(latency_us=0)

    def test_simulate_numbers_non_broadcast_topologies_from_zero(self):
        """The first node of a routed topology must be the base station
        (``TOS_LOCAL_ADDRESS == 0``), or multihop collection never forms."""
        program = make_program(
            "__spontaneous void main(void) { __sleep(); }")
        chained = simulate(program, seconds=0.05, node_count=2,
                           channel=Channel(topology="chain"))
        assert [node.node_id for node in chained] == [0, 1]
        broadcast = simulate(program, seconds=0.05, node_count=2)
        assert [node.node_id for node in broadcast] == [1, 2]

    def test_link_latency_jitter_is_deterministic_and_per_link(self):
        channel = Channel(jitter_us=500, seed=3)
        first = channel.link_latency_us(0, 1)
        assert first == channel.link_latency_us(0, 1)
        assert channel.latency_us <= first <= channel.latency_us + 500
        spread = {channel.link_latency_us(a, b)
                  for a in range(4) for b in range(4) if a != b}
        assert len(spread) > 1


# ---------------------------------------------------------------------------
# Resumable execution (run_until)
# ---------------------------------------------------------------------------


BLINKY = """
uint8_t leds_on = 0;
uint16_t ticks = 0;

__interrupt("TIMER1_COMPA") void fired(void) {
  ticks = ticks + 1;
  leds_on = (uint8_t)(leds_on ^ 1);
  __hw_write8(%d, leds_on);
}

__spontaneous void main(void) {
  __hw_write16(%d, 64);
  __hw_write8(%d, 1);
  __enable_interrupts();
  while (1) {
    __sleep();
  }
}
""" % (hw.LED_PORT, hw.TIMER_RATE, hw.TIMER_CTRL)


def _observe_node(node: Node) -> dict:
    return {
        "time": node.time_cycles,
        "busy": node.busy_cycles,
        "sleep": node.sleep_cycles,
        "statements": node.interpreter.statements_executed,
        "interrupts": node.interrupts_delivered,
        "led_changes": node.leds.state.changes,
    }


class TestRunUntil:
    @pytest.mark.parametrize("engine", ["tree", "compiled"])
    def test_sliced_execution_is_byte_identical_to_one_run(self, engine):
        """Arbitrary pause horizons must not change what the node computes."""
        program = make_program(BLINKY)
        program.interrupt_vectors["TIMER1_COMPA"] = "fired"

        reference = Node(program, engine=engine)
        reference.boot()
        reference.run(1.0)

        sliced = Node(program, engine=engine)
        sliced.boot()
        sliced.begin_run(1.0)
        # Deliberately awkward horizon steps: prime-sized, far smaller than
        # the timer period, so the node pauses both mid-sleep and mid-run.
        horizon = 0
        status = "paused"
        while status == "paused":
            horizon += 104729
            status = sliced.run_until(horizon)
        assert status == "finished"
        assert _observe_node(sliced) == _observe_node(reference)

    def test_run_until_reports_pause_and_finish(self):
        program = make_program(BLINKY)
        program.interrupt_vectors["TIMER1_COMPA"] = "fired"
        node = Node(program)
        node.boot()
        node.begin_run(0.5)
        assert node.run_until(node.clock_hz // 10) == "paused"
        assert node.time_cycles < node.end_cycles
        assert node.run_until(node.end_cycles) == "finished"
        assert node.run_until(node.end_cycles + 1) == "finished"


# ---------------------------------------------------------------------------
# Lockstep causality and the multi-hop acceptance scenario
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def surge_program():
    return BuildPipeline(BASELINE).build_named("Surge_Mica2").program


def _chain_network(program, node_count: int, **channel_kwargs) -> Network:
    network = Network(channel=Channel(topology="chain", **channel_kwargs))
    for node_id in range(node_count):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    return network


_multihop_header = msgs.decode_multihop_header


class TestMultiHop:
    SIM_SECONDS = 45.0

    def test_leaf_packet_reaches_base_via_intermediate_hop(
            self, surge_program):
        """The acceptance scenario: 0 (base) <- 1 <- 2 (leaf), with the
        leaf's reading forwarded by mote 1 and causally ordered
        cross-node delivery timestamps."""
        network = _chain_network(surge_program, 3)
        network.run(self.SIM_SECONDS)

        # Every delivery is causal: latency is positive and a receiver
        # never processes a packet before it was sent.
        assert network.deliveries
        for record in network.deliveries:
            assert record.received_cycles > record.sent_cycles

        # The leaf's readings were forwarded: the base accepted multihop
        # data packets whose origin is mote 2 but whose last hop is mote 1.
        forwarded = [
            record for record in network.deliveries
            if record.receiver_id == 0 and record.accepted
            and _multihop_header(record.payload) == (msgs.AM_MULTIHOP, 1, 2)
        ]
        assert forwarded, "no leaf reading was forwarded to the base"

        # Each forwarded reading was seen hopping: a matching origin-2
        # delivery from the leaf to mote 1 strictly precedes the base's
        # reception of the forwarded copy — monotone along the path.
        leaf_to_relay = [
            record for record in network.deliveries
            if record.sender_id == 2 and record.receiver_id == 1
            and record.accepted
            and _multihop_header(record.payload) == (msgs.AM_MULTIHOP, 2, 2)
        ]
        assert leaf_to_relay
        first_hop = min(r.received_cycles for r in leaf_to_relay)
        for record in forwarded:
            assert record.received_cycles > first_hop

        # The relay really did the forwarding work.
        relay = network.nodes[1]
        obj = relay.memory.global_object("MultiHopRouterM__route_forwarded")
        forwarded_count = relay.memory.read(Pointer(obj, 0), ty.UINT16)
        assert forwarded_count >= len(forwarded)

    def test_chain_wiring_prevents_direct_leaf_to_base_delivery(
            self, surge_program):
        network = _chain_network(surge_program, 3)
        network.run(20.0)
        assert not any(record.sender_id == 2 and record.receiver_id == 0
                       for record in network.deliveries)
        assert any(record.sender_id == 2 and record.receiver_id == 1
                   for record in network.deliveries)

    def test_lockstep_nodes_finish_at_their_own_end_times(
            self, surge_program):
        network = _chain_network(surge_program, 3)
        network.run(5.0)
        for node in network.nodes:
            assert node.time_cycles >= node.end_cycles


class TestReproducibility:
    def _run(self, program, seed: int):
        network = _chain_network(program, 3, loss=0.25, seed=seed)
        network.run(20.0)
        return (
            [_observe_node(node) for node in network.nodes],
            [(r.sender_id, r.receiver_id, r.sent_cycles, r.received_cycles,
              r.accepted, r.payload) for r in network.deliveries],
            network.delivered_packets,
            network.lost_packets,
        )

    def test_seeded_lossy_runs_are_bit_reproducible(self, surge_program):
        first = self._run(surge_program, seed=11)
        second = self._run(surge_program, seed=11)
        assert first == second
        assert first[3] > 0, "the lossy channel never dropped a packet"

    def test_different_seeds_diverge(self, surge_program):
        first = self._run(surge_program, seed=11)
        other = self._run(surge_program, seed=12)
        assert first[1] != other[1]

    def test_superblock_fusion_is_invisible_in_lockstep_networks(
            self, surge_program, monkeypatch):
        """Fusion on vs off across a 3-node lossy chain: identical per-node
        cycle counts and an identical cross-node delivery log (sender,
        receiver, timestamps, payloads) — horizon sentinels land inside
        fused blocks and must pause the nodes at the same poll points."""
        monkeypatch.setenv("REPRO_AVRORA_SUPERBLOCKS", "1")
        fused = self._run(surge_program, seed=11)
        monkeypatch.setenv("REPRO_AVRORA_SUPERBLOCKS", "0")
        unfused = self._run(surge_program, seed=11)
        assert fused == unfused
