"""Tests for the simulator's memory model and device models."""

import pytest
from hypothesis import given, strategies as st

from repro.avrora.devices import Adc, Clock, Leds, Radio, Uart
from repro.avrora.memory import MemoryError_, MemorySystem, Pointer
from repro.avrora.network import crc16, encode_tos_msg
from repro.avrora.node import Node
from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.tinyos import hardware as hw
from repro.tinyos import messages as msgs

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import make_program


class TestMemorySystem:
    def setup_method(self):
        self.memory = MemorySystem()

    def test_allocate_and_rw_scalars(self):
        obj = self.memory.allocate("counter", 2)
        self.memory.write(Pointer(obj, 0), ty.UINT16, 0xBEEF)
        assert self.memory.read(Pointer(obj, 0), ty.UINT16) == 0xBEEF
        assert self.memory.read(Pointer(obj, 0), ty.UINT8) == 0xEF

    def test_signed_reads_sign_extend(self):
        obj = self.memory.allocate("v", 1)
        self.memory.write(Pointer(obj, 0), ty.UINT8, 0xFF)
        assert self.memory.read(Pointer(obj, 0), ty.INT8) == -1

    def test_out_of_bounds_access_raises(self):
        obj = self.memory.allocate("buf", 4)
        with pytest.raises(MemoryError_):
            self.memory.read(Pointer(obj, 3), ty.UINT16)
        with pytest.raises(MemoryError_):
            self.memory.write(Pointer(obj, -1), ty.UINT8, 0)

    def test_pointer_values_round_trip_through_memory(self):
        holder = self.memory.allocate("holder", 2)
        target = self.memory.allocate("target", 8)
        self.memory.write(Pointer(holder, 0), ty.PointerType(ty.UINT8),
                          Pointer(target, 3))
        loaded = self.memory.read(Pointer(holder, 0), ty.PointerType(ty.UINT8))
        assert isinstance(loaded, Pointer)
        assert loaded.obj is target and loaded.offset == 3

    def test_string_literals_are_interned(self):
        a = self.memory.string_literal("hello")
        b = self.memory.string_literal("hello")
        assert a is b
        assert self.memory.read_c_string(Pointer(a, 0)) == "hello"

    def test_global_initialization_from_ast(self):
        var = ast.GlobalVar("table", ty.ArrayType(ty.UINT16, 3),
                            ast.InitList([ast.IntLiteral(5), ast.IntLiteral(6)]))
        obj = self.memory.initialize_global(var, pointer_size=2)
        assert self.memory.read(Pointer(obj, 0), ty.UINT16) == 5
        assert self.memory.read(Pointer(obj, 2), ty.UINT16) == 6
        assert self.memory.read(Pointer(obj, 4), ty.UINT16) == 0

    @given(st.integers(0, 6), st.integers(1, 2))
    def test_in_bounds_predicate_matches_read_behaviour(self, offset, size):
        obj = self.memory.allocate("probe", 8)
        pointer = Pointer(obj, offset)
        ctype = ty.UINT8 if size == 1 else ty.UINT16
        assert pointer.in_bounds(size)
        self.memory.read(pointer, ctype)


def make_node(source="__spontaneous void main(void) { __sleep(); }"):
    program = make_program(source)
    node = Node(program)
    node.boot()
    return node


class TestDevices:
    def test_led_port_tracks_state_and_toggles(self):
        node = make_node()
        node.bus.write(hw.LED_PORT, 1, 0x5)
        node.bus.write(hw.LED_PORT, 1, 0x4)
        assert node.leds.state.value == 4
        assert node.leds.state.changes == 2
        assert node.leds.state.red_toggles == 2

    def test_clock_fires_periodically(self):
        node = make_node()
        node.bus.write(hw.TIMER_RATE, 2, 32)
        node.bus.write(hw.TIMER_CTRL, 1, 1)
        # Step virtual time one period at a time and let due events fire.
        for _ in range(16):
            node.time_cycles += node.cycles_per_jiffy * 32
            node._run_due_events()
        assert node.clock.ticks >= 10

    def test_adc_completes_a_conversion(self):
        node = make_node()
        node.bus.write(hw.ADC_CTRL, 1, 0x80 | hw.ADC_CHANNEL_PHOTO)
        assert node.adc.busy
        node.time_cycles += node.cycles_for_us(300)
        node._run_due_events()
        assert not node.adc.busy
        assert node.adc.conversions == 1
        assert 0 <= node.bus.read(hw.ADC_DATA, 2) <= 0x3FF

    def test_radio_transmit_and_deliver(self):
        node = make_node()
        sent = []
        node.radio.on_transmit = sent.append
        node.bus.write(hw.RADIO_CTRL, 1, 3)
        for byte in (1, 2, 3):
            node.bus.write(hw.RADIO_TXBUF, 1, byte)
        node.bus.write(hw.RADIO_TXGO, 1, 3)
        node.time_cycles += node.cycles_for_us(5000)
        node._run_due_events()
        assert sent == [bytes([1, 2, 3])]
        # Reception fills the FIFO and reports the length register.
        assert node.radio.deliver(bytes([9, 8, 7]))
        assert node.bus.read(hw.RADIO_RXLEN, 1) == 3
        assert [node.bus.read(hw.RADIO_RXBUF, 1) for _ in range(3)] == [9, 8, 7]

    def test_radio_drops_packets_when_disabled_or_busy(self):
        node = make_node()
        assert not node.radio.deliver(b"x")      # rx not enabled yet
        node.bus.write(hw.RADIO_CTRL, 1, 3)
        assert node.radio.deliver(b"ab")
        assert not node.radio.deliver(b"cd")     # previous frame not drained
        assert node.radio.packets_dropped == 2

    def test_uart_transmits_one_byte_per_interrupt(self):
        node = make_node()
        node.bus.write(hw.UART_DATA, 1, 0x41)
        assert node.uart.sent_bytes == [0x41]
        assert node.uart.tx_busy

    def test_jiffy_counter_follows_time(self):
        node = make_node()
        node.time_cycles = node.cycles_per_jiffy * 5
        assert node.bus.read(hw.JIFFY_COUNTER_LO, 2) == 5


class TestWireFormat:
    def test_crc_matches_the_cminor_drivers_algorithm(self):
        assert crc16(b"") == 0
        assert crc16(b"123456789") == crc16(b"123456789")
        assert crc16(b"a") != crc16(b"b")

    def test_encoded_message_has_valid_layout_and_crc(self):
        frame = encode_tos_msg(msgs.TOS_BCAST_ADDR, msgs.AM_INT_MSG, bytes([5, 0]))
        assert len(frame) == msgs.TOS_MSG_WIRE_LENGTH
        assert frame[2] == msgs.AM_INT_MSG
        assert frame[3] == msgs.TOS_DEFAULT_GROUP
        stored_crc = frame[-2] | (frame[-1] << 8)
        assert stored_crc == crc16(frame[:-2])
