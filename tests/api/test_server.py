"""Job service over HTTP: dedup, store sharing, protocol errors, CLI client."""

import io
import json
import threading

import pytest

from repro.api.cli import main
from repro.api.client import RemoteClient, RemoteError
from repro.api.records import BuildRecord
from repro.api.server import JobService, build_httpd
from repro.api.specs import BuildSpec, SimSpec, spec_from_dict


@pytest.fixture
def service(tmp_path):
    service = JobService(str(tmp_path / "artifacts"), workers=4)
    yield service
    service.shutdown()


@pytest.fixture
def client(service):
    httpd = build_httpd(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield RemoteClient(f"http://127.0.0.1:{httpd.server_address[1]}")
    httpd.shutdown()
    httpd.server_close()


BUILD = BuildSpec(app="BlinkTask_Mica2", variant="safe-flid")


class TestSpecFromDict:
    def test_round_trips_every_kind(self):
        for spec in (BUILD, SimSpec(app="BlinkTask_Mica2", seconds=0.05)):
            assert spec_from_dict(spec.to_dict()) == spec

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown spec kind"):
            spec_from_dict({"kind": "nonsense"})

    def test_non_dict_raises(self):
        with pytest.raises(TypeError):
            spec_from_dict(["not", "a", "dict"])


class TestProtocol:
    def test_healthz(self, client):
        assert client.healthz()

    def test_submit_status_result_roundtrip(self, client):
        job = client.submit(BUILD)
        assert job["key"] == BUILD.content_key()
        assert job["kind"] == "build"
        record = BuildRecord.from_dict(client.result(job["key"]))
        assert record.app == "BlinkTask_Mica2"
        assert client.status(job["key"])["state"] == "done"

    def test_bare_spec_dict_accepted(self, client):
        job = client.submit(BUILD.to_dict())
        assert job["key"] == BUILD.content_key()

    def test_invalid_spec_is_400(self, client):
        with pytest.raises(RemoteError) as info:
            client.submit({"kind": "nonsense"})
        assert info.value.status == 400

    def test_undecodable_body_is_400(self, client):
        with pytest.raises(RemoteError) as info:
            client._request("/submit", body={"spec": "not an object"})
        assert info.value.status == 400

    def test_unknown_key_is_404(self, client):
        for path in ("/status/deadbeef", "/result/deadbeef"):
            with pytest.raises(RemoteError) as info:
                client._request(path)
            assert info.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(RemoteError) as info:
            client._request("/nope")
        assert info.value.status == 404

    def test_failing_job_is_500_with_detail(self, service, client,
                                            monkeypatch):
        def explode(spec):
            raise RuntimeError("boom")

        monkeypatch.setattr(service, "_run", explode)
        with pytest.raises(RemoteError) as info:
            client.run(BUILD)
        assert info.value.status == 500
        assert "boom" in str(info.value)


class TestDeduplication:
    def test_two_racing_identical_submissions_build_once(self, service,
                                                         client):
        results = [None, None]

        def submit(index):
            results[index] = client.run(BUILD)

        threads = [threading.Thread(target=submit, args=(index,))
                   for index in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert json.dumps(results[0], sort_keys=True) == \
            json.dumps(results[1], sort_keys=True)
        stats = client.stats()
        assert stats["submitted"] == 2
        assert stats["dedup_inflight"] + stats["dedup_done"] == 1
        assert stats["workbench"]["builds_executed"] == 1

    def test_resubmit_after_completion_reuses_the_job(self, client):
        first = client.run(BUILD)
        second = client.run(BUILD)
        assert first == second
        stats = client.stats()
        assert stats["dedup_done"] == 1
        assert stats["workbench"]["builds_executed"] == 1

    def test_failed_job_is_retryable(self, service, client, monkeypatch):
        original = JobService._run
        calls: list = []

        def flaky(self, spec):
            calls.append(spec)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return original(self, spec)

        monkeypatch.setattr(JobService, "_run", flaky)
        with pytest.raises(RemoteError) as info:
            client.run(BUILD)
        assert info.value.status == 500
        # The resubmission replaced the failed job instead of being
        # deduplicated onto a poisoned future.
        record = client.run(BUILD)
        assert record["app"] == "BlinkTask_Mica2"
        stats = client.stats()
        assert stats["submitted"] == 2
        assert stats["dedup_inflight"] == 0 and stats["dedup_done"] == 0

    def test_server_store_warms_across_service_restarts(self, tmp_path):
        store = str(tmp_path / "artifacts")
        first = JobService(store)
        try:
            first._run(BUILD)
            assert first.workbench.stats()["builds_executed"] == 1
        finally:
            first.shutdown()
        second = JobService(store)
        try:
            second._run(BUILD)
            stats = second.workbench.stats()
            assert stats["builds_executed"] == 0
            assert stats["passes_executed"] == 0
        finally:
            second.shutdown()


class TestCliRemote:
    def test_build_remote_round_trips_the_record(self, client):
        out = io.StringIO()
        assert main(["build", "BlinkTask_Mica2", "--variant", "safe-flid",
                     "--remote", client.base_url, "--json"], out=out) == 0
        record = BuildRecord.from_dict(json.loads(out.getvalue()))
        assert record.content_key == BUILD.content_key()

    def test_remote_stats_come_from_the_service(self, client):
        client.run(BUILD)
        out = io.StringIO()
        assert main(["build", "BlinkTask_Mica2", "--variant", "safe-flid",
                     "--remote", client.base_url, "--json", "--stats"],
                    out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["stats"]["dedup_done"] == 1
        assert payload["stats"]["workbench"]["builds_executed"] == 1

    def test_unreachable_service_exits_3(self, capsys):
        assert main(["build", "BlinkTask_Mica2",
                     "--remote", "http://127.0.0.1:9",
                     "--timeout", "1"]) == 3
        assert "error:" in capsys.readouterr().err
