"""The hardened job service: retries, failure taxonomy, graceful drain.

Client side: transport retries with backoff survive an injected HTTP 500
and connection failures, exhausted retries surface as a typed
:class:`RemoteServiceError` (URL, attempt count, retry-after hint), and a
malformed response is never retried.  Server side: per-job timeouts land
in the failure taxonomy, ``drain()`` finishes in-flight jobs into the
store while rejecting new ones with a 503, and a real SIGTERM against a
``python -m repro serve`` subprocess drains the in-flight job's record
into the artifact store before the process exits.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.client import RemoteClient, RemoteServiceError
from repro.api.server import (
    JobService,
    JobTimeout,
    ServiceDraining,
    build_httpd,
)
from repro.api.specs import SCHEMA_VERSION, BuildSpec
from repro.store import ArtifactStore

SRC = Path(__file__).resolve().parents[2] / "src"

BUILD = BuildSpec(app="BlinkTask_Mica2", variant="safe-flid")


@pytest.fixture
def service(tmp_path):
    service = JobService(str(tmp_path / "artifacts"), workers=2)
    yield service
    service.shutdown()


@pytest.fixture
def httpd(service):
    httpd = build_httpd(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()


def _client(httpd, **kwargs) -> RemoteClient:
    kwargs.setdefault("backoff_s", 0.01)
    return RemoteClient(f"http://127.0.0.1:{httpd.server_address[1]}",
                        **kwargs)


# ---------------------------------------------------------------------------
# Client retries
# ---------------------------------------------------------------------------


class TestClientRetries:
    def test_survives_one_injected_500(self, service, httpd):
        service.chaos_http = 1
        stats = _client(httpd).stats()
        assert stats["submitted"] == 0
        assert service.chaos_http == 0

    def test_exhausted_retries_raise_typed_error(self, service, httpd):
        service.chaos_http = 99
        client = _client(httpd, retries=2)
        with pytest.raises(RemoteServiceError) as info:
            client.stats()
        assert info.value.attempts == 2
        assert info.value.status == 500
        assert info.value.url.endswith("/stats")
        # Two failures consumed, the rest of the budget untouched.
        assert service.chaos_http == 97

    def test_healthz_is_exempt_from_chaos(self, service, httpd):
        service.chaos_http = 99
        assert _client(httpd, retries=1).healthz()

    def test_unreachable_service_raises_typed_error(self):
        # Bind-then-close guarantees a port nothing is listening on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = RemoteClient(f"http://127.0.0.1:{port}", retries=2,
                              backoff_s=0.01)
        with pytest.raises(RemoteServiceError) as info:
            client.healthz()
        assert info.value.attempts == 2
        assert info.value.status is None
        assert "cannot reach" in str(info.value)

    def test_malformed_json_is_not_retried(self, monkeypatch):
        calls = []

        class _FakeResponse:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def read(self):
                return b"<html>not json</html>"

        def fake_urlopen(request, timeout=None):
            calls.append(request.full_url)
            return _FakeResponse()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        client = RemoteClient("http://example.invalid", retries=3,
                              backoff_s=0.01)
        with pytest.raises(RemoteServiceError) as info:
            client.stats()
        assert info.value.attempts == 1
        assert len(calls) == 1
        assert "malformed JSON" in str(info.value)

    def test_retries_must_be_positive(self):
        with pytest.raises(ValueError, match="retries"):
            RemoteClient("http://example.invalid", retries=0)


# ---------------------------------------------------------------------------
# Failure taxonomy + per-job timeouts
# ---------------------------------------------------------------------------


class TestFailureTaxonomy:
    def test_job_timeout_is_classified(self, tmp_path, monkeypatch):
        service = JobService(str(tmp_path / "artifacts"), workers=1,
                             job_timeout_s=0.05)
        monkeypatch.setattr(JobService, "_run",
                            lambda self, spec: time.sleep(1.0))
        try:
            job = service.submit(BUILD.to_dict())
            with pytest.raises(JobTimeout, match="exceeded the per-job"):
                service.result(job["key"], timeout=10.0)
            described = service.job(job["key"]).describe()
            assert described["state"] == "failed"
            assert described["error_kind"] == "timeout"
        finally:
            service.shutdown()

    @pytest.mark.parametrize("exc,kind", [
        (ValueError("bad spec semantics"), "rejected"),
        (RuntimeError("boom"), "crashed"),
    ])
    def test_failures_are_classified(self, service, monkeypatch, exc, kind):
        def explode(self, spec):
            raise exc

        monkeypatch.setattr(JobService, "_run", explode)
        job = service.submit(BUILD.to_dict())
        with pytest.raises(type(exc)):
            service.result(job["key"], timeout=10.0)
        assert service.job(job["key"]).describe()["error_kind"] == kind

    def test_rejects_non_positive_timeout(self, tmp_path):
        with pytest.raises(ValueError, match="job_timeout_s"):
            JobService(str(tmp_path / "artifacts"), job_timeout_s=0.0)


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_inflight_job_into_store(self, tmp_path):
        store_dir = str(tmp_path / "artifacts")
        service = JobService(store_dir, workers=2)
        try:
            service.submit(BUILD.to_dict())
            service.drain()
            # The in-flight build completed and its record hit the disk
            # store, where the next service instance will find it.
            stored = ArtifactStore(store_dir, schema=SCHEMA_VERSION).load_record(
                BUILD.content_key())
            assert stored is not None
            assert stored["app"] == "BlinkTask_Mica2"
            with pytest.raises(ServiceDraining):
                service.submit(BUILD.to_dict())
        finally:
            service.shutdown()

    def test_drain_is_503_with_retry_after_over_http(self, service, httpd):
        service.drain()
        client = _client(httpd, retries=1)
        with pytest.raises(RemoteServiceError) as info:
            client.submit(BUILD)
        assert info.value.status == 503
        assert info.value.retry_after == 1.0

    def test_sigterm_drains_serve_subprocess(self, tmp_path):
        """The real thing: SIGTERM a ``repro serve`` process mid-job."""
        store_dir = str(tmp_path / "artifacts")
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--store", store_dir,
             "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            for line in proc.stdout:
                if "repro job service on http://" in line:
                    base_url = line.split("on ", 1)[1].split(" ", 1)[0]
                    break
            else:  # pragma: no cover - server died before binding
                pytest.fail("serve never announced its address")
            client = RemoteClient(base_url, retries=2, backoff_s=0.05)
            job = client.submit(BUILD)
            assert job["key"] == BUILD.content_key()
            # The job is in flight (or at best just finished); SIGTERM
            # must let it drain into the store either way.
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=180)
            assert proc.returncode == 0
            stored = ArtifactStore(store_dir, schema=SCHEMA_VERSION).load_record(
                BUILD.content_key())
            assert stored is not None
            assert stored["app"] == "BlinkTask_Mica2"
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup only
                proc.kill()
                proc.wait(timeout=30)
