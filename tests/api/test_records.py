"""Record schemas: JSON round-trips and summary compatibility."""

import json

import pytest

from repro.api.records import BuildRecord, SimRecord

BUILD = BuildRecord(app="BlinkTask_Mica2", variant="safe-flid",
                    content_key="abc123", code_bytes=2948, ram_bytes=35,
                    checks_inserted=12, checks_surviving=11,
                    passes=("nesc.flatten", "gcc"), wall_time_s=0.125)

SIM = SimRecord(app="Surge_Mica2", variant="safe-optimized",
                content_key="def456", node_count=2, seconds=3.0,
                duty_cycles=(0.01, 0.02), failures=0, halted=False,
                led_changes=14,
                superblocks={"fused_statements": 10,
                             "statements_total": 40,
                             "entries_fast": 3, "entries_slow": 1,
                             "fused_fraction": 0.25})


class TestBuildRecord:
    def test_json_round_trip(self):
        wire = json.dumps(BUILD.to_dict())
        assert BuildRecord.from_dict(json.loads(wire)) == BUILD

    def test_summary_matches_build_result_schema(self):
        assert BUILD.summary() == {
            "application": "BlinkTask_Mica2",
            "variant": "safe-flid",
            "code_bytes": 2948,
            "ram_bytes": 35,
            "checks_inserted": 12,
            "checks_surviving": 11,
        }

    def test_check_accounting(self):
        assert BUILD.checks_removed == 1
        assert BUILD.checks_removed_fraction == pytest.approx(1 / 12)
        unsafe = BuildRecord(app="a", variant="baseline", content_key="k",
                             code_bytes=1, ram_bytes=1, checks_inserted=0,
                             checks_surviving=0)
        assert unsafe.checks_removed_fraction == 0.0

    def test_from_summary_round_trips_the_summary(self):
        record = BuildRecord.from_summary(BUILD.summary(), "abc123",
                                          passes=BUILD.passes,
                                          wall_time_s=BUILD.wall_time_s)
        assert record == BUILD

    def test_records_are_frozen(self):
        with pytest.raises(AttributeError):
            BUILD.code_bytes = 0


class TestSimRecord:
    def test_json_round_trip(self):
        wire = json.dumps(SIM.to_dict())
        assert SimRecord.from_dict(json.loads(wire)) == SIM

    def test_duty_cycle_is_the_first_node(self):
        assert SIM.duty_cycle == pytest.approx(0.01)

    def test_duty_cycle_with_no_nodes_raises_a_clear_error(self):
        empty = SimRecord(app="Surge_Mica2", variant="baseline",
                          content_key="k", node_count=1, seconds=1.0,
                          duty_cycles=(), failures=0, halted=False,
                          led_changes=0)
        with pytest.raises(ValueError, match="Surge_Mica2"):
            empty.duty_cycle

    def test_records_predating_superblocks_load_with_an_empty_dict(self):
        wire = {k: v for k, v in SIM.to_dict().items()
                if k != "superblocks"}
        assert SimRecord.from_dict(wire).superblocks == {}

    def test_records_stay_hashable_despite_the_stats_dict(self):
        # frozen dataclass: the superblocks field is excluded from the
        # generated __hash__ (dicts are unhashable) but not from equality.
        assert hash(SIM) == hash(SIM)
        assert len({SIM, SIM}) == 1
