"""Workbench routed through the artifact store: warm hits execute nothing."""

import pytest

from repro.api.records import BuildRecord
from repro.api.specs import BuildSpec, ScenarioSpec, SimSpec, SweepSpec
from repro.api.workbench import Workbench
from repro.scenarios.faults import FaultPlan, default_fault
from repro.toolchain.passes import PassManager

from helpers import tiny_application  # noqa: F401  (asserts tests/ on path)


def _counting(monkeypatch, counter):
    original = PassManager.run

    def counted(self, *args, **kwargs):
        counter.append(True)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(PassManager, "run", counted)


BUILD = BuildSpec(app="BlinkTask_Mica2", variant="safe-flid")


class TestWarmBuilds:
    def test_cold_session_with_warm_store_builds_nothing(self, tmp_path,
                                                         monkeypatch):
        store = str(tmp_path / "artifacts")
        with Workbench(store=store) as writer:
            original = writer.build(BUILD)
            assert writer.stats()["passes_executed"] > 0

        executed: list = []
        _counting(monkeypatch, executed)
        with Workbench(store=store) as reader:
            record = reader.build(BUILD)
            stats = reader.stats()
        assert executed == []
        assert stats["passes_executed"] == 0
        assert stats["builds_executed"] == 0
        assert stats["lowerings"] == 0
        assert stats["store"]["record_hits"] == 1
        assert record.to_dict() == original.to_dict()

    def test_warm_sweep_serves_every_record_from_disk(self, tmp_path):
        store = str(tmp_path / "artifacts")
        spec = SweepSpec(apps=("BlinkTask_Mica2",),
                         variants=("baseline", "safe-flid"))
        with Workbench(store=store) as writer:
            originals = writer.sweep(spec)
        with Workbench(store=store) as reader:
            records = reader.sweep(spec)
            assert reader.stats()["passes_executed"] == 0
        assert [r.to_dict() for r in records] == \
            [r.to_dict() for r in originals]

    def test_novel_variant_resumes_from_stored_snapshot(self, tmp_path):
        store = str(tmp_path / "artifacts")
        with Workbench(store=store) as writer:
            writer.build(BUILD)

        # safe-optimized shares the nesC front end *and* the CCured stage
        # with safe-flid; a fresh session must resume from the stored
        # snapshot instead of re-running the shared prefix.
        with Workbench(store=store) as novel:
            novel.build(BuildSpec(app="BlinkTask_Mica2",
                                  variant="safe-optimized"))
            warm_passes = novel.stats()["passes_executed"]
            assert novel.store.snapshot_hits >= 1
        with Workbench() as cold:
            cold.build(BuildSpec(app="BlinkTask_Mica2",
                                 variant="safe-optimized"))
            cold_passes = cold.stats()["passes_executed"]
        assert 0 < warm_passes < cold_passes

    def test_snapshot_resume_builds_identical_summary(self, tmp_path):
        store = str(tmp_path / "artifacts")
        spec = BuildSpec(app="BlinkTask_Mica2", variant="safe-optimized")
        with Workbench(store=store) as writer:
            writer.build(BUILD)
        with Workbench(store=store) as warm:
            resumed = warm.build(spec)
        with Workbench() as cold:
            full = cold.build(spec)
        assert resumed.summary() == full.summary()

    def test_build_result_still_available_after_store_hit(self, tmp_path):
        store = str(tmp_path / "artifacts")
        with Workbench(store=store) as writer:
            writer.build(BUILD)
        with Workbench(store=store) as reader:
            record = reader.build(BUILD)     # served from disk
            result = reader.build_result(BUILD)  # needs a live program
            assert result.summary() == record.summary()


class TestWarmSimulationsAndScenarios:
    SIM = SimSpec(app="BlinkTask_Mica2", variant="safe-flid", seconds=0.05)

    def test_sim_record_served_from_store(self, tmp_path, monkeypatch):
        store = str(tmp_path / "artifacts")
        with Workbench(store=store) as writer:
            original = writer.simulate(self.SIM)

        executed: list = []
        _counting(monkeypatch, executed)
        with Workbench(store=store) as reader:
            record = reader.simulate(self.SIM)
            stats = reader.stats()
        assert executed == []
        assert stats["simulations_executed"] == 0
        assert stats["lowerings"] == 0
        assert record.to_dict() == original.to_dict()

    def test_scenario_record_served_from_store(self, tmp_path):
        store = str(tmp_path / "artifacts")
        spec = ScenarioSpec(
            app="BlinkTask_Mica2", variants=("safe-flid",),
            plan=FaultPlan(faults=(default_fault("bit-flip", 1),)),
            node_count=1, seconds=0.05)
        with Workbench(store=store) as writer:
            original = writer.run_scenario(spec)
        with Workbench(store=store) as reader:
            record = reader.run_scenario(spec)
            stats = reader.stats()
        assert stats["scenarios_executed"] == 0
        assert stats["passes_executed"] == 0
        assert record.to_dict() == original.to_dict()


class TestStoreResilience:
    def test_corrupt_record_falls_back_to_building(self, tmp_path):
        store = str(tmp_path / "artifacts")
        with Workbench(store=store) as writer:
            original = writer.build(BUILD)
        path = writer.store._record_path(BUILD.content_key())
        with open(path, "w") as handle:
            handle.write("not json at all")
        with Workbench(store=store) as reader:
            rebuilt = reader.build(BUILD)
            stats = reader.stats()
        assert stats["builds_executed"] == 1
        assert stats["store"]["errors"] >= 1
        # Deterministic content matches; wall time is the rebuild's own.
        assert rebuilt.summary() == original.summary()
        assert rebuilt.passes == original.passes

    def test_gc_eviction_degrades_to_rebuild(self, tmp_path):
        store = str(tmp_path / "artifacts")
        with Workbench(store=store) as writer:
            writer.build(BUILD)
            writer.store.gc(0)  # evict everything
        with Workbench(store=store) as reader:
            reader.build(BUILD)
            stats = reader.stats()
        assert stats["builds_executed"] == 1
        assert stats["store"]["record_misses"] >= 1
