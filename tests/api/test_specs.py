"""Spec validation, JSON round-trips and content-key stability."""

import json

import pytest

from repro.api.specs import BuildSpec, SimSpec, SweepSpec, variant_pass_keys
from repro.tinyos.suite import FIGURE_APPS


class TestBuildSpec:
    def test_json_round_trip(self):
        spec = BuildSpec(app="BlinkTask_Mica2", variant="safe-flid")
        wire = json.dumps(spec.to_dict())
        assert BuildSpec.from_dict(json.loads(wire)) == spec

    def test_default_variant_is_the_headline_configuration(self):
        assert BuildSpec(app="BlinkTask_Mica2").variant == "safe-optimized"

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            BuildSpec(app="NoSuchApp_Mica2")

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            BuildSpec(app="BlinkTask_Mica2", variant="no-such-variant")

    def test_content_key_is_stable_across_equal_specs(self):
        first = BuildSpec(app="Surge_Mica2", variant="safe-optimized")
        second = BuildSpec(app="Surge_Mica2", variant="safe-optimized")
        assert first == second
        assert first.content_key() == second.content_key()

    def test_content_key_distinguishes_apps_and_variants(self):
        keys = {BuildSpec(app=app, variant=variant).content_key()
                for app in FIGURE_APPS[:3]
                for variant in ("baseline", "safe-flid", "safe-optimized")}
        assert len(keys) == 9

    def test_aliased_variants_do_not_collide(self):
        """Some registered variants lower to identical pass lists; their
        specs must still produce distinctly-labelled records."""
        assert variant_pass_keys("safe-optimized") == \
            variant_pass_keys("fig2-ccured-inline-cxprop-gcc")
        optimized = BuildSpec(app="BlinkTask_Mica2",
                              variant="safe-optimized")
        fig2 = BuildSpec(app="BlinkTask_Mica2",
                         variant="fig2-ccured-inline-cxprop-gcc")
        assert optimized.content_key() != fig2.content_key()

    def test_content_key_derives_from_pass_cache_keys(self):
        """Variants lowering to identical pass lists share a content key."""
        keys = variant_pass_keys("safe-flid")
        assert any("flid" in key or "ccured" in key for key in keys)
        # Same app, same pass-key sequence => same content key by digest.
        spec = BuildSpec(app="BlinkTask_Mica2", variant="safe-flid")
        again = BuildSpec(app="BlinkTask_Mica2", variant="safe-flid")
        assert spec.content_key() == again.content_key()


class TestSweepSpec:
    def test_json_round_trip(self):
        spec = SweepSpec(apps=("BlinkTask_Mica2", "Surge_Mica2"),
                         variants=("baseline", "safe-optimized"))
        wire = json.dumps(spec.to_dict())
        assert SweepSpec.from_dict(json.loads(wire)) == spec

    def test_lists_are_coerced_to_tuples(self):
        spec = SweepSpec(apps=["BlinkTask_Mica2"], variants=["baseline"])
        assert spec == SweepSpec(apps=("BlinkTask_Mica2",),
                                 variants=("baseline",))

    def test_build_specs_enumerate_in_app_then_variant_order(self):
        spec = SweepSpec(apps=("BlinkTask_Mica2", "Surge_Mica2"),
                         variants=("baseline", "safe-flid"))
        pairs = [(s.app, s.variant) for s in spec.build_specs()]
        assert pairs == [("BlinkTask_Mica2", "baseline"),
                        ("BlinkTask_Mica2", "safe-flid"),
                        ("Surge_Mica2", "baseline"),
                        ("Surge_Mica2", "safe-flid")]

    def test_empty_sweeps_are_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(apps=(), variants=("baseline",))
        with pytest.raises(ValueError):
            SweepSpec(apps=("BlinkTask_Mica2",), variants=())

    def test_content_key_covers_every_build(self):
        small = SweepSpec(apps=("BlinkTask_Mica2",), variants=("baseline",))
        large = SweepSpec(apps=("BlinkTask_Mica2",),
                          variants=("baseline", "safe-flid"))
        assert small.content_key() != large.content_key()


class TestSimSpec:
    def test_json_round_trip(self):
        spec = SimSpec(app="Surge_Mica2", variant="safe-optimized",
                       node_count=3, seconds=2.5, traffic="none")
        wire = json.dumps(spec.to_dict())
        assert SimSpec.from_dict(json.loads(wire)) == spec

    def test_zero_nodes_rejected_at_spec_validation_time(self):
        with pytest.raises(ValueError, match="node_count must be >= 1"):
            SimSpec(app="BlinkTask_Mica2", node_count=0)

    def test_validation_error_names_the_spec(self):
        with pytest.raises(ValueError, match="BlinkTask_Mica2"):
            SimSpec(app="BlinkTask_Mica2", node_count=-2)

    def test_non_positive_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds must be positive"):
            SimSpec(app="BlinkTask_Mica2", seconds=0.0)

    def test_unknown_traffic_mode_rejected(self):
        with pytest.raises(ValueError, match="traffic"):
            SimSpec(app="BlinkTask_Mica2", traffic="storm")

    def test_content_key_includes_simulation_parameters(self):
        base = SimSpec(app="BlinkTask_Mica2", seconds=1.0)
        assert base.content_key() != \
            SimSpec(app="BlinkTask_Mica2", seconds=2.0).content_key()
        assert base.content_key() != \
            SimSpec(app="BlinkTask_Mica2", seconds=1.0,
                    node_count=2).content_key()
        assert base.content_key() == \
            SimSpec(app="BlinkTask_Mica2", seconds=1.0).content_key()

    def test_topology_round_trip_and_content_key(self):
        spec = SimSpec(app="Surge_Mica2", node_count=3, seconds=2.0,
                       topology="chain", loss=0.25, seed=7, traffic="none")
        wire = json.dumps(spec.to_dict())
        assert SimSpec.from_dict(json.loads(wire)) == spec
        base = SimSpec(app="Surge_Mica2", node_count=3, seconds=2.0)
        assert spec.content_key() != base.content_key()
        assert spec.content_key() != \
            SimSpec(app="Surge_Mica2", node_count=3, seconds=2.0,
                    topology="chain", loss=0.25, seed=8,
                    traffic="none").content_key()

    def test_old_serialized_specs_still_load(self):
        """Dictionaries written before the topology fields existed."""
        spec = SimSpec.from_dict({
            "app": "BlinkTask_Mica2", "variant": "baseline",
            "node_count": 1, "seconds": 1.0})
        assert spec.topology == "broadcast"
        assert spec.loss == 0.0
        assert spec.seed == 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            SimSpec(app="BlinkTask_Mica2", topology="ring")

    def test_invalid_loss_and_seed_rejected(self):
        with pytest.raises(ValueError, match="loss"):
            SimSpec(app="BlinkTask_Mica2", loss=1.0)
        with pytest.raises(ValueError, match="seed"):
            SimSpec(app="BlinkTask_Mica2", seed=-1)

    def test_base_traffic_profile_is_accepted(self):
        assert SimSpec(app="Surge_Mica2", traffic="base").traffic == "base"
