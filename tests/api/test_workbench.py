"""Workbench routing: memoization, prefix sharing, pool mode, simulation."""

import pytest

from repro.api.records import BuildRecord
from repro.api.specs import BuildSpec, SimSpec, SweepSpec
from repro.api.workbench import Workbench, is_registered_variant
from repro.ccured.passes import CurePass
from repro.nesc.passes import FlattenPass
from repro.tinyos.suite import FIGURE_APPS
from repro.toolchain.config import BuildVariant
from repro.toolchain.passes import PassManager
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import (
    BASELINE,
    FIGURE3_VARIANTS,
    SAFE_OPTIMIZED,
    variant_by_name,
)

from helpers import tiny_application


def _counting(monkeypatch, cls, counter):
    original = cls.run

    def counted(self, *args, **kwargs):
        counter.append(getattr(self, "name", type(self).__name__))
        return original(self, *args, **kwargs)

    monkeypatch.setattr(cls, "run", counted)


class TestMemoization:
    def test_second_identical_build_does_not_rerun_passes(self, monkeypatch):
        bench = Workbench()
        first = bench.build("BlinkTask_Mica2", "safe-flid")
        first_result = bench.build_result("BlinkTask_Mica2", "safe-flid")

        executed: list[str] = []
        _counting(monkeypatch, PassManager, executed)
        second = bench.build("BlinkTask_Mica2", "safe-flid")
        second_result = bench.build_result("BlinkTask_Mica2", "safe-flid")

        assert executed == []
        assert second is first
        assert second_result is first_result
        # The build's trace is the original object — no pass re-ran.
        assert second_result.trace is first_result.trace
        assert tuple(second_result.trace.pass_names()) == first.passes

    def test_record_and_result_share_one_summary(self):
        bench = Workbench()
        record = bench.build(BuildSpec(app="BlinkTask_Mica2",
                                       variant="safe-optimized"))
        result = bench.build_result("BlinkTask_Mica2", "safe-optimized")
        assert record.summary() == result.summary()
        assert record.content_key == BuildSpec(
            app="BlinkTask_Mica2", variant="safe-optimized").content_key()

    def test_aliased_variants_return_correctly_labelled_records(self):
        """Variants with identical pass lists must not hijack each other's
        cache entries: the record carries the requested variant's name."""
        bench = Workbench()
        optimized = bench.build("BlinkTask_Mica2", "safe-optimized")
        fig2 = bench.build("BlinkTask_Mica2", "fig2-ccured-inline-cxprop-gcc")
        assert optimized.variant == "safe-optimized"
        assert fig2.variant == "fig2-ccured-inline-cxprop-gcc"
        assert optimized.content_key != fig2.content_key
        # Identical pass lists still produce identical numbers.
        assert optimized.code_bytes == fig2.code_bytes

    def test_sweep_reuses_memoized_builds(self):
        bench = Workbench()
        single = bench.build("BlinkTask_Mica2", "baseline")
        records = bench.sweep(SweepSpec(apps=("BlinkTask_Mica2",),
                                        variants=("baseline", "safe-flid")))
        assert records[0] is single
        again = bench.sweep(SweepSpec(apps=("BlinkTask_Mica2",),
                                      variants=("baseline", "safe-flid")))
        assert [r is s for r, s in zip(again, records)] == [True, True]


class TestPrefixSharing:
    def test_flid_variants_share_front_end_and_ccured_across_calls(
            self, monkeypatch):
        """Two interactive builds of FLID-cured variants run the nesC front
        end (and the CCured stage) exactly once between them."""
        flattens: list[str] = []
        cures: list[str] = []
        _counting(monkeypatch, FlattenPass, flattens)
        _counting(monkeypatch, CurePass, cures)

        bench = Workbench()
        first = bench.build_result("Oscilloscope_Mica2", "safe-flid")
        second = bench.build_result("Oscilloscope_Mica2", "safe-optimized")

        assert flattens == ["nesc.flatten"]
        assert cures == ["ccured.cure"]
        # Asserted via pass traces too: the shared prefix reports are the
        # very same objects in both builds' traces.
        assert first.trace.passes[0] is second.trace.passes[0]
        assert second.trace.pass_names()[:4] == \
            ["nesc.flatten", "nesc.hwrefactor", "ccured.cure",
             "ccured.optimize"]
        # And the shared stage never leaks state: each result's ccured
        # report points at its own program.
        assert first.ccured.program is first.program
        assert second.ccured.program is second.program

    def test_unshared_workbench_still_memoizes(self, monkeypatch):
        flattens: list[str] = []
        _counting(monkeypatch, FlattenPass, flattens)
        bench = Workbench(share_front_end=False)
        bench.build("BlinkTask_Mica2", "baseline")
        bench.build("BlinkTask_Mica2", "baseline")
        assert flattens == ["nesc.flatten"]


class TestDifferential:
    def test_workbench_matches_direct_pipeline_for_all_figure3_builds(self):
        """Workbench summaries are byte-identical to direct BuildPipeline
        builds for every FIGURE_APPS × Figure-3 variant combination."""
        variants = [BASELINE] + FIGURE3_VARIANTS
        bench = Workbench()
        records = bench.sweep(SweepSpec(
            apps=tuple(FIGURE_APPS),
            variants=tuple(v.name for v in variants)))
        expected = []
        for app in FIGURE_APPS:
            for variant in variants:
                expected.append(
                    BuildPipeline(variant).build_named(app).summary())
        assert [record.summary() for record in records] == expected


class TestProcessPool:
    def test_submit_matches_in_process_builds(self):
        spec = SweepSpec(apps=("BlinkTask_Mica2",),
                         variants=("baseline", "safe-flid"))
        pooled_bench = Workbench()
        with pooled_bench:
            records = pooled_bench.submit(spec, processes=1).result()
        assert [r.app for r in records] == ["BlinkTask_Mica2"] * 2
        # Pooled records carry summaries only (no trace, no passes) ...
        assert records[0].passes == ()
        # ... and match what an in-process workbench produces.
        local = Workbench().sweep(spec)
        assert [r.summary() for r in records] == \
            [r.summary() for r in local]

    def test_build_result_rebuilds_in_process_after_pooled_sweep(self):
        spec = SweepSpec(apps=("BlinkTask_Mica2",), variants=("baseline",))
        bench = Workbench()
        with bench:
            (record,) = bench.submit(spec, processes=1).result()
        assert record.passes == ()
        result = bench.build_result("BlinkTask_Mica2", "baseline")
        assert result.program is not None
        assert result.summary() == record.summary()
        # The in-process rebuild upgrades the summary-only record: build()
        # now reports the executed pass list.
        upgraded = bench.build("BlinkTask_Mica2", "baseline")
        assert upgraded.passes == tuple(result.trace.pass_names())
        assert upgraded.summary() == record.summary()


class TestUnregisteredBuilds:
    def test_custom_applications_are_memoized_by_identity(self):
        bench = Workbench()
        app = tiny_application()
        first = bench.build_unregistered(app, variant_by_name("safe-flid"))
        second = bench.build_unregistered(app, variant_by_name("safe-flid"))
        assert second is first
        assert first.checks_inserted > 0

    def test_custom_variants_share_the_app_snapshot_store(self, monkeypatch):
        flattens: list[str] = []
        _counting(monkeypatch, FlattenPass, flattens)
        bench = Workbench()
        custom = BuildVariant(name="custom-tweak",
                              description="ad-hoc",
                              run_inliner=True, run_cxprop=False)
        assert not is_registered_variant(custom)
        bench.build("BlinkTask_Mica2", "safe-flid")
        result = bench.build_unregistered("BlinkTask_Mica2", custom)
        # The unregistered build resumed from the registered build's
        # front-end snapshot: no second flatten.
        assert flattens == ["nesc.flatten"]
        assert result.image.code_bytes > 0

    def test_registered_variant_objects_use_the_content_key_path(self):
        assert is_registered_variant(SAFE_OPTIMIZED)
        assert is_registered_variant(variant_by_name("baseline"))


class TestLifecycle:
    def test_clear_drops_every_session_cache(self):
        bench = Workbench()
        record = bench.build("BlinkTask_Mica2", "baseline")
        bench.build_unregistered(tiny_application(),
                                 variant_by_name("baseline"))
        bench.simulate(SimSpec(app="BlinkTask_Mica2", variant="baseline",
                               seconds=0.5))
        assert bench.cached_builds() == 2
        bench.clear()
        assert bench.cached_builds() == 0
        rebuilt = bench.build("BlinkTask_Mica2", "baseline")
        assert rebuilt is not record
        assert rebuilt.summary() == record.summary()


class TestSimulation:
    def test_simulate_returns_a_memoized_record(self):
        bench = Workbench()
        spec = SimSpec(app="BlinkTask_Mica2", variant="baseline", seconds=1.0)
        first = bench.simulate(spec)
        second = bench.simulate(SimSpec(app="BlinkTask_Mica2",
                                        variant="baseline", seconds=1.0))
        assert second is first
        assert len(first.duty_cycles) == 1
        assert 0.0 < first.duty_cycle < 0.1
        assert not first.halted and first.failures == 0

    def test_multi_node_simulation_records_every_node(self):
        bench = Workbench()
        record = bench.simulate(SimSpec(app="BlinkTask_Mica2",
                                        variant="baseline", node_count=3,
                                        seconds=0.5))
        assert record.node_count == 3
        assert len(record.duty_cycles) == 3
        assert len(record.packets_sent) == 3
        assert len(record.injected_radio) == 3

    def test_chain_topology_simulation_reports_cross_node_packets(self):
        bench = Workbench()
        record = bench.simulate(SimSpec(
            app="Surge_Mica2", variant="baseline", node_count=3,
            seconds=20.0, traffic="none", topology="chain"))
        assert record.topology == "chain"
        assert record.packets_delivered > 0
        assert all(sent > 0 for sent in record.packets_sent)
        # The relay hears both ends; the leaf only its chain neighbour.
        assert record.packets_received[1] >= record.packets_received[2]
        # Lossless channel: nothing charged to the loss model.
        assert record.packets_lost == 0
        assert record.to_dict()["topology"] == "chain"

    def test_seeded_lossy_simulations_memoize_by_seed(self):
        bench = Workbench()
        lossy = SimSpec(app="BlinkTask_Mica2", variant="baseline",
                        node_count=2, seconds=0.5, loss=0.5, seed=3)
        other_seed = SimSpec(app="BlinkTask_Mica2", variant="baseline",
                             node_count=2, seconds=0.5, loss=0.5, seed=4)
        assert bench.simulate(lossy) is bench.simulate(lossy)
        assert bench.simulate(lossy) is not bench.simulate(other_seed)
