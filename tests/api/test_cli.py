"""The ``python -m repro`` command line: JSON and table output."""

import io
import json

from repro.api.cli import main, resolve_apps, resolve_variants
from repro.api.records import BuildRecord, SimRecord
from repro.tinyos.suite import FIGURE_APPS, MICA2_APPS
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import variant_by_name


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestTokenResolution:
    def test_app_sets(self):
        assert resolve_apps("all") == FIGURE_APPS
        assert resolve_apps("mica2") == MICA2_APPS
        assert resolve_apps("A_Mica2, B_Mica2") == ["A_Mica2", "B_Mica2"]

    def test_variant_sets(self):
        figure3 = resolve_variants("figure3")
        assert figure3[0] == "baseline" and len(figure3) == 8
        assert len(resolve_variants("figure2")) == 4
        assert "safe-optimized" in resolve_variants("all")
        assert resolve_variants("baseline,safe-flid") == \
            ["baseline", "safe-flid"]


class TestListCommand:
    def test_json_listing(self):
        status, output = run_cli("list", "--json")
        assert status == 0
        data = json.loads(output)
        assert data["applications"] == FIGURE_APPS
        assert "safe-optimized" in data["variants"]
        assert data["variant_sets"]["figure3"][0] == "baseline"

    def test_table_listing(self):
        status, output = run_cli("list")
        assert status == 0
        assert "BlinkTask_Mica2" in output and "safe-optimized" in output


class TestBuildCommand:
    def test_json_record_round_trips(self):
        status, output = run_cli("build", "BlinkTask_Mica2",
                                 "--variant", "safe-flid", "--json")
        assert status == 0
        record = BuildRecord.from_dict(json.loads(output))
        expected = BuildPipeline(variant_by_name("safe-flid")) \
            .build_named("BlinkTask_Mica2").summary()
        assert record.summary() == expected

    def test_table_output(self):
        status, output = run_cli("build", "BlinkTask_Mica2",
                                 "--variant", "baseline")
        assert status == 0
        assert "BlinkTask_Mica2" in output and "baseline" in output

    def test_unknown_app_fails_cleanly(self):
        status, _output = run_cli("build", "NoSuchApp")
        assert status == 2

    def test_unknown_variant_fails_cleanly(self):
        status, _output = run_cli("build", "BlinkTask_Mica2",
                                  "--variant", "bogus")
        assert status == 2


class TestSweepCommand:
    def test_json_records_round_trip_and_match_the_pipeline(self):
        status, output = run_cli(
            "sweep", "--apps", "BlinkTask_Mica2",
            "--variants", "baseline,safe-optimized", "--json")
        assert status == 0
        data = json.loads(output)
        assert data["spec"]["apps"] == ["BlinkTask_Mica2"]
        records = [BuildRecord.from_dict(entry) for entry in data["records"]]
        for record in records:
            expected = BuildPipeline(variant_by_name(record.variant)) \
                .build_named(record.app).summary()
            assert record.summary() == expected


class TestSimulateCommand:
    def test_json_record_round_trips(self):
        status, output = run_cli("simulate", "BlinkTask_Mica2",
                                 "--variant", "baseline",
                                 "--seconds", "1", "--json")
        assert status == 0
        record = SimRecord.from_dict(json.loads(output))
        assert record.node_count == 1
        assert 0.0 < record.duty_cycle < 0.1

    def test_zero_nodes_is_a_spec_error(self):
        status, _output = run_cli("simulate", "BlinkTask_Mica2",
                                  "--nodes", "0")
        assert status == 2

    def test_topology_loss_and_seed_flags_reach_the_record(self):
        status, output = run_cli("simulate", "Surge_Mica2",
                                 "--variant", "baseline",
                                 "--seconds", "10", "--nodes", "3",
                                 "--topology", "chain", "--loss", "0.2",
                                 "--seed", "9", "--traffic", "none",
                                 "--json")
        assert status == 0
        record = SimRecord.from_dict(json.loads(output))
        assert record.topology == "chain"
        assert record.node_count == 3
        assert len(record.packets_sent) == 3

    def test_invalid_loss_is_a_spec_error(self):
        status, _output = run_cli("simulate", "BlinkTask_Mica2",
                                  "--loss", "1.5")
        assert status == 2


class TestFiguresCommand:
    def test_figure3a_json(self):
        status, output = run_cli("figures", "--figure", "3a",
                                 "--apps", "BlinkTask_Mica2", "--json")
        assert status == 0
        (table,) = json.loads(output)
        assert "3(a)" in table["title"]
        (row,) = table["rows"]
        assert row["application"] == "BlinkTask_Mica2"
        assert row["baseline"] > 0
        assert row["safe-optimized"] is not None


class TestStoreFlag:
    def test_warm_build_executes_nothing(self, tmp_path):
        store = str(tmp_path / "artifacts")
        status, _ = run_cli("build", "BlinkTask_Mica2", "--store", store)
        assert status == 0

        status, output = run_cli("build", "BlinkTask_Mica2",
                                 "--store", store, "--stats", "--json")
        assert status == 0
        payload = json.loads(output)
        stats = payload["stats"]
        assert stats["passes_executed"] == 0
        assert stats["builds_executed"] == 0
        assert stats["lowerings"] == 0
        assert stats["store"]["record_hits"] == 1
        BuildRecord.from_dict(payload["record"])  # round-trippable

    def test_cold_and_warm_emit_byte_identical_records(self, tmp_path):
        store = str(tmp_path / "artifacts")
        _, cold = run_cli("build", "BlinkTask_Mica2", "--json",
                          "--store", store)
        _, warm = run_cli("build", "BlinkTask_Mica2", "--json",
                          "--store", store)
        assert cold == warm

    def test_stats_table_mode_prints_counters(self, tmp_path):
        store = str(tmp_path / "artifacts")
        run_cli("build", "BlinkTask_Mica2", "--store", store)
        status, output = run_cli("build", "BlinkTask_Mica2",
                                 "--store", store, "--stats")
        assert status == 0
        assert "executed   : 0 passes" in output
        assert "1 record hit(s)" in output

    def test_gc_command_reports_and_evicts(self, tmp_path):
        store = str(tmp_path / "artifacts")
        run_cli("build", "BlinkTask_Mica2", "--store", store)
        status, output = run_cli("gc", "--store", store, "--json")
        assert status == 0
        report = json.loads(output)
        assert report["entries"] > 0 and report["evicted"] == 0

        status, output = run_cli("gc", "--store", store,
                                 "--budget-bytes", "1", "--json")
        assert status == 0
        report = json.loads(output)
        assert report["evicted"] > 0
        assert report["bytes_after"] <= 1
