"""``python -m repro`` — the command-line face of the Workbench API.

Usage::

    python -m repro list [--json]
    python -m repro build APP [--variant NAME] [--json]
    python -m repro sweep [--apps all|mica2|A,B,...]
                          [--variants figure3|figure2|all|V,W,...]
                          [--processes N] [--json]
    python -m repro simulate APP [--variant NAME] [--seconds S]
                          [--nodes N] [--topology T] [--loss P] [--seed N]
                          [--traffic default|base|none] [--workers N]
                          [--plan-cache DIR] [--chaos SPEC] [--json]
    python -m repro scenarios APP [--variants V,W,...] [--faults F,G,...]
                          [--nodes N] [--seconds S] [--topology T]
                          [--loss P] [--seed N] [--fault-seed N]
                          [--traffic default|base|none] [--workers N] [--json]
    python -m repro figures [--figure 2|3a|3b|3c] [--apps ...] [--json]
    python -m repro serve [--store DIR] [--host H] [--port P] [--workers N]
                          [--job-timeout S]
    python -m repro gc --store DIR [--budget-bytes N] [--json]

Every command speaks the ``repro.api`` schemas: ``--json`` emits the
``to_dict()`` form of the spec's records (round-trippable through
``BuildRecord.from_dict`` / ``SimRecord.from_dict``); without it, aligned
tables are printed.  ``sweep --variants figure3`` is the paper's full
Figure-3 configuration set (the unsafe baseline plus the seven figure
bars), matching ``benchmarks/bench_pipeline_sweep.py``.

``build``, ``sweep``, ``simulate`` and ``scenarios`` additionally accept:

``--store DIR``
    Route the session through a persistent content-addressed
    :class:`~repro.store.ArtifactStore`: previously recorded identical
    specs are served from disk without executing a single pass, and new
    records (plus front-end prefix snapshots) are written back.
``--remote URL``
    Submit the spec to a ``python -m repro serve`` job service instead of
    executing locally; racing identical submissions share one build.
``--stats``
    Append execution counters (passes, builds, lowerings, store hits)
    proving what actually ran — a warm store shows zeros across the board.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.api.figures import (
    FIGURE3C_SIM_SECONDS,
    figure2_table,
    figure3a_table,
    figure3b_table,
    figure3c_table,
)
from repro.api.client import RemoteClient, RemoteError
from repro.api.records import BuildRecord, ScenarioRecord, SimRecord
from repro.api.specs import (
    SCHEMA_VERSION,
    TRAFFIC_DEFAULT,
    TRAFFIC_NONE,
    TRAFFIC_PROFILES,
    BuildSpec,
    ScenarioSpec,
    SimSpec,
    SweepSpec,
)
from repro.api.workbench import Workbench
from repro.avrora.chaos import ChaosPolicy
from repro.avrora.network import TOPOLOGIES
from repro.store import ArtifactStore
from repro.scenarios.faults import DEFAULT_FAULT_NAMES, FaultPlan, default_fault
from repro.tinyos.suite import FIGURE_APPS, MICA2_APPS
from repro.toolchain.contexts import DEFAULT_DUTY_CYCLE_SECONDS
from repro.toolchain.report import FigureTable
from repro.toolchain.variants import (
    BASELINE,
    FIGURE2_STRATEGIES,
    FIGURE3_VARIANTS,
    SAFE_OPTIMIZED,
    all_variant_names,
)

#: Named variant sets accepted by ``--variants`` (``all`` is handled in
#: :func:`resolve_variants`, resolving to every registered variant).
VARIANT_SETS = {
    "figure3": [BASELINE.name] + [v.name for v in FIGURE3_VARIANTS],
    "figure2": [v.name for v in FIGURE2_STRATEGIES],
}

#: Named application sets accepted by ``--apps``.
APP_SETS = {"all": FIGURE_APPS, "mica2": MICA2_APPS}


def resolve_apps(token: str) -> list[str]:
    """``all``, ``mica2``, or a comma-separated list of figure labels."""
    if token in APP_SETS:
        return list(APP_SETS[token])
    return [name.strip() for name in token.split(",") if name.strip()]


def resolve_variants(token: str) -> list[str]:
    """``figure3``, ``figure2``, ``all``, or a comma-separated name list."""
    if token == "all":
        return all_variant_names()
    if token in VARIANT_SETS:
        return list(VARIANT_SETS[token])
    return [name.strip() for name in token.split(",") if name.strip()]


class UsageError(Exception):
    """Invalid command-line input (unknown name, malformed spec)."""


def validated(factory):
    """Build a spec, mapping validation errors to a clean usage error.

    Spec construction is the documented validation boundary (unknown names
    raise ``KeyError``, malformed parameters ``ValueError``); errors raised
    later, during execution, are genuine defects and propagate with a
    traceback instead of being disguised as usage errors.
    """
    try:
        return factory()
    except (KeyError, ValueError) as error:
        # str() of a KeyError is the repr of its argument (extra quotes);
        # unwrap it for a clean message.
        message = error.args[0] if isinstance(error, KeyError) and error.args \
            else str(error)
        raise UsageError(message) from error


# ---------------------------------------------------------------------------
# Output formatting
# ---------------------------------------------------------------------------


def _emit_json(payload: object, out) -> None:
    json.dump(payload, out, indent=2)
    out.write("\n")


def _remote(args) -> RemoteClient:
    return RemoteClient(args.remote, timeout=args.timeout)


def _gather_stats(args, workbench: Workbench) -> dict:
    """Execution counters for ``--stats``: local session or remote service."""
    if getattr(args, "remote", None):
        return _remote(args).stats()
    return workbench.stats()


def format_stats(stats: dict) -> str:
    """Human form of the counter-proof (see ``Workbench.stats``)."""
    if "workbench" in stats:  # job-service stats envelope
        service = (f"service    : {stats.get('submitted', 0)} submitted, "
                   f"{stats.get('dedup_inflight', 0)} in-flight dedup, "
                   f"{stats.get('dedup_done', 0)} completed dedup")
        return service + "\n" + format_stats(stats["workbench"])
    line = (f"executed   : {stats.get('passes_executed', 0)} passes, "
            f"{stats.get('builds_executed', 0)} builds, "
            f"{stats.get('simulations_executed', 0)} simulations, "
            f"{stats.get('lowerings', 0)} lowerings")
    store = stats.get("store") or {}
    if store:
        line += (f"\nstore      : {store.get('record_hits', 0)} record hit(s) "
                 f"/ {store.get('record_misses', 0)} miss(es), "
                 f"{store.get('snapshot_hits', 0)} snapshot hit(s), "
                 f"{store.get('stores', 0)} written, "
                 f"{store.get('evicted', 0)} evicted")
    return line


def _emit_record(args, out, payload: object, text: str,
                 workbench: Workbench) -> int:
    """Shared ``--json``/``--stats`` output tail of the record commands."""
    stats = _gather_stats(args, workbench) if args.stats else None
    if args.json:
        if stats is not None:
            payload = {"record": payload, "stats": stats}
        _emit_json(payload, out)
    else:
        out.write(text + "\n")
        if stats is not None:
            out.write(format_stats(stats) + "\n")
    return 0


def format_build_records(records: Sequence[BuildRecord]) -> str:
    app_width = max([len("application")] + [len(r.app) for r in records])
    var_width = max([len("variant")] + [len(r.variant) for r in records])
    header = (f"{'application'.ljust(app_width)}  {'variant'.ljust(var_width)}"
              f"  {'code (B)':>9}  {'RAM (B)':>8}  {'checks':>11}"
              f"  {'key':>16}")
    lines = [header, "-" * len(header)]
    for record in records:
        checks = (f"{record.checks_surviving}/{record.checks_inserted}"
                  if record.checks_inserted else "-")
        lines.append(
            f"{record.app.ljust(app_width)}  {record.variant.ljust(var_width)}"
            f"  {record.code_bytes:>9}  {record.ram_bytes:>8}  {checks:>11}"
            f"  {record.content_key:>16}")
    return "\n".join(lines)


def format_sim_record(record: SimRecord) -> str:
    lines = [
        f"{record.app} × {record.variant}: {record.node_count} node(s), "
        f"{record.seconds}s simulated, {record.topology} topology",
        f"  duty cycle : " + ", ".join(f"{cycle * 100:.3f}%"
                                       for cycle in record.duty_cycles),
        f"  failures   : {record.failures}  halted: {record.halted}  "
        f"LED changes: {record.led_changes}",
    ]
    superblocks = record.superblocks
    if superblocks.get("statements_total"):
        lines.append(
            f"  superblocks: {superblocks['fused_statements']:,}/"
            f"{superblocks['statements_total']:,} statements fused "
            f"({superblocks.get('fused_fraction', 0.0) * 100:.1f}%), "
            f"{superblocks.get('entries_fast', 0):,} fast / "
            f"{superblocks.get('entries_slow', 0):,} slow entries")
        if superblocks.get("traces"):
            lines.append(
                f"  traces     : {superblocks['traces']:,} formed, "
                f"{superblocks.get('inlined_call_sites', 0):,} call sites "
                f"inlined, {superblocks.get('inlined_calls', 0):,} calls "
                f"executed inline")
    cache = record.code_cache
    if cache.get("functions"):
        line = (f"  plan cache : {cache['functions']} plans, "
                f"{cache.get('lowerings', 0)} lowered here, "
                f"{cache.get('disk_loads', 0)} from disk")
        if "store_hits" in cache:
            line += (f" (store: {cache.get('store_hits', 0)} hit / "
                     f"{cache.get('store_misses', 0)} miss, "
                     f"{cache.get('store_stores', 0)} written)")
        lines.append(line)
    if record.packets_sent:
        lines.append(
            f"  radio tx   : " + ", ".join(map(str, record.packets_sent)) +
            f"  rx: " + ", ".join(map(str, record.packets_received)))
        lines.append(
            f"  air        : {record.packets_delivered} delivered, "
            f"{record.packets_lost} lost on the channel")
    if any(record.injected_radio) or any(record.injected_uart):
        lines.append(
            f"  injected   : radio " +
            ", ".join(map(str, record.injected_radio)) +
            f"  uart " + ", ".join(map(str, record.injected_uart)))
    if record.shards:
        for shard in record.shards:
            lo, hi = shard.get("nodes", (0, 0))
            lines.append(
                f"  shard {shard.get('worker', '?')}    : nodes "
                f"[{lo}, {hi}), {shard.get('rounds', 0)} rounds, "
                f"{shard.get('packets_in', 0)} in / "
                f"{shard.get('packets_out', 0)} out boundary packets, "
                f"sync {shard.get('sync_wait_s', 0.0):.2f}s of "
                f"{shard.get('wall_s', 0.0):.2f}s wall")
    recovery = record.recovery
    if recovery.get("respawns") or recovery.get("checkpoints"):
        lines.append(
            f"  recovery   : {recovery.get('respawns', 0)} respawn(s), "
            f"{recovery.get('replayed_rounds', 0)} round(s) replayed, "
            f"{recovery.get('checkpoints', 0)} checkpoint(s) "
            f"({recovery.get('checkpoint_bytes', 0):,} B), "
            f"{recovery.get('chaos_kills', 0)} chaos kill(s), "
            f"{recovery.get('recovery_wall_s', 0.0):.2f}s recovering")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_list(args, workbench: Workbench, out) -> int:
    apps = workbench.applications()
    variants = workbench.variant_names()
    if args.json:
        _emit_json({"applications": apps, "variants": variants,
                    "variant_sets": {"figure3": VARIANT_SETS["figure3"],
                                     "figure2": VARIANT_SETS["figure2"]}}, out)
        return 0
    out.write("applications:\n")
    for app in apps:
        out.write(f"  {app}\n")
    out.write("variants:\n")
    for variant in variants:
        out.write(f"  {variant}\n")
    return 0


def cmd_build(args, workbench: Workbench, out) -> int:
    spec = validated(lambda: BuildSpec(app=args.app, variant=args.variant))
    if args.remote:
        record = BuildRecord.from_dict(_remote(args).run(spec))
    else:
        record = workbench.build(spec)
    return _emit_record(args, out, record.to_dict(),
                        format_build_records([record]), workbench)


def cmd_sweep(args, workbench: Workbench, out) -> int:
    spec = validated(lambda: SweepSpec(
        apps=tuple(resolve_apps(args.apps)),
        variants=tuple(resolve_variants(args.variants))))
    if args.remote:
        records = [BuildRecord.from_dict(data)
                   for data in _remote(args).run(spec)["records"]]
    elif args.processes:
        records = workbench.submit(spec, processes=args.processes).result()
    else:
        records = workbench.sweep(spec)
    payload = {"spec": spec.to_dict(),
               "records": [record.to_dict() for record in records]}
    return _emit_record(args, out, payload,
                        format_build_records(records), workbench)


def cmd_simulate(args, workbench: Workbench, out) -> int:
    traffic = TRAFFIC_NONE if args.no_traffic else args.traffic
    spec = validated(lambda: SimSpec(
        app=args.app, variant=args.variant,
        node_count=args.nodes, seconds=args.seconds,
        traffic=traffic, topology=args.topology,
        loss=args.loss, seed=args.seed, workers=args.workers,
        plan_cache=args.plan_cache,
        chaos=ChaosPolicy.parse(args.chaos or "")))
    if args.remote:
        record = SimRecord.from_dict(_remote(args).run(spec))
    else:
        record = workbench.simulate(spec)
    return _emit_record(args, out, record.to_dict(),
                        format_sim_record(record), workbench)


# -- scenarios --------------------------------------------------------------


def resolve_faults(token: str, node_count: int) -> list:
    """Comma-separated fault shorthand names → canonical fault instances."""
    names = [name.strip() for name in token.split(",") if name.strip()]
    if not names:
        raise UsageError(f"--faults needs at least one of "
                         f"{','.join(DEFAULT_FAULT_NAMES)}")
    return [default_fault(name, node_count) for name in names]


def format_scenario_record(record: ScenarioRecord) -> str:
    """The verdict matrix as an aligned fault × variant table."""
    fault_width = max([len("fault")] + [len(f) for f in record.faults])
    cell_widths = [max(len(variant), len("silent-corruption"))
                   for variant in record.variants]
    header = "fault".ljust(fault_width) + "".join(
        f"  {variant.ljust(width)}"
        for variant, width in zip(record.variants, cell_widths))
    lines = [
        f"{record.app}: {record.node_count} node(s), {record.seconds}s, "
        f"{record.topology} topology, seed {record.seed}",
        "",
        header,
        "-" * len(header),
    ]
    for fault, row in zip(record.faults, record.verdicts):
        lines.append(fault.ljust(fault_width) + "".join(
            f"  {verdict.ljust(width)}"
            for verdict, width in zip(row, cell_widths)))
    golden = record.golden
    lines.append("")
    lines.append(
        f"golden runs: {golden.get('runs', 0)} executed, "
        f"{golden.get('cache_hits', 0)} cache hit(s)  "
        f"key: {record.content_key}")
    return "\n".join(lines)


def cmd_scenarios(args, workbench: Workbench, out) -> int:
    faults = resolve_faults(args.faults, args.nodes)
    spec = validated(lambda: ScenarioSpec(
        app=args.app,
        variants=tuple(resolve_variants(args.variants)),
        plan=FaultPlan(faults=tuple(faults), seed=args.fault_seed),
        node_count=args.nodes, seconds=args.seconds,
        traffic=args.traffic, topology=args.topology,
        loss=args.loss, seed=args.seed, workers=args.workers,
        plan_cache=args.plan_cache))
    if args.remote:
        record = ScenarioRecord.from_dict(_remote(args).run(spec))
    else:
        record = workbench.run_scenario(spec)
    return _emit_record(args, out, record.to_dict(),
                        format_scenario_record(record), workbench)


# -- the store and the job service ------------------------------------------


def cmd_serve(args, workbench: Workbench, out) -> int:
    from repro.api.server import serve

    serve(args.store, host=args.host, port=args.port, workers=args.workers,
          job_timeout_s=args.job_timeout)
    return 0


def cmd_gc(args, workbench: Workbench, out) -> int:
    store = ArtifactStore(args.store, schema=SCHEMA_VERSION)
    report = store.gc(args.budget_bytes)
    if args.json:
        _emit_json(report, out)
    else:
        budget = report["budget_bytes"]
        out.write(
            f"{args.store}: {report['entries']} entrie(s), "
            f"{report['bytes_before']} -> {report['bytes_after']} bytes "
            f"({report['evicted']} evicted, budget "
            f"{'none' if budget < 0 else budget})\n")
    return 0


# -- figures ----------------------------------------------------------------


def cmd_figures(args, workbench: Workbench, out) -> int:
    apps = resolve_apps(args.apps)
    # Validates both the application names and the simulation seconds.
    validated(lambda: [SimSpec(app=app, seconds=args.seconds)
                       for app in apps])
    tables: list[FigureTable] = []
    which = args.figure
    if which in ("2", "all"):
        tables.append(figure2_table(workbench, apps))
    if which in ("3a", "all"):
        tables.append(figure3a_table(workbench, apps))
    if which in ("3b", "all"):
        tables.append(figure3b_table(workbench, apps))
    if which in ("3c", "all"):
        tables.append(figure3c_table(workbench, apps, args.seconds))
    if args.json:
        _emit_json([{"title": table.title, "metric": table.metric,
                     "rows": table.rows()} for table in tables], out)
    else:
        out.write("\n\n".join(table.format() for table in tables) + "\n")
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Build, sweep and simulate Safe TinyOS applications.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p):
        p.add_argument("--json", action="store_true",
                       help="emit JSON records instead of a table")

    def add_store(p):
        p.add_argument("--store", default=None, metavar="DIR",
                       help="persistent content-addressed artifact store; "
                            "previously recorded identical specs are served "
                            "from disk without executing a single pass")
        p.add_argument("--remote", default=None, metavar="URL",
                       help="submit the spec to a `repro serve` job service "
                            "instead of executing locally")
        p.add_argument("--timeout", type=float, default=300.0,
                       help="seconds to wait for a --remote result")
        p.add_argument("--stats", action="store_true",
                       help="append execution counters (passes, builds, "
                            "lowerings, store hits) proving what ran")

    p_list = sub.add_parser("list", help="registered applications and variants")
    add_json(p_list)
    p_list.set_defaults(func=cmd_list)

    p_build = sub.add_parser("build", help="build one application")
    p_build.add_argument("app", help="figure label, e.g. BlinkTask_Mica2")
    p_build.add_argument("--variant", default=SAFE_OPTIMIZED.name,
                         help=f"build variant (default: {SAFE_OPTIMIZED.name})")
    add_json(p_build)
    add_store(p_build)
    p_build.set_defaults(func=cmd_build)

    p_sweep = sub.add_parser("sweep", help="build an N-app × M-variant sweep")
    p_sweep.add_argument("--apps", default="all",
                         help="all | mica2 | comma-separated labels")
    p_sweep.add_argument("--variants", default="figure3",
                         help="figure3 | figure2 | all | comma-separated names")
    p_sweep.add_argument("--processes", type=int, default=0,
                         help="run on a process pool with N workers")
    add_json(p_sweep)
    add_store(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_sim = sub.add_parser("simulate", help="build and simulate one application")
    p_sim.add_argument("app", help="figure label, e.g. BlinkTask_Mica2")
    p_sim.add_argument("--variant", default=SAFE_OPTIMIZED.name)
    p_sim.add_argument("--seconds", type=float,
                       default=DEFAULT_DUTY_CYCLE_SECONDS)
    p_sim.add_argument("--nodes", type=int, default=1)
    p_sim.add_argument("--topology", default="broadcast", choices=TOPOLOGIES,
                       help="radio-channel wiring of the simulated network")
    p_sim.add_argument("--loss", type=float, default=0.0,
                       help="per-link packet loss probability in [0, 1)")
    p_sim.add_argument("--seed", type=int, default=0,
                       help="seed of the channel's loss RNG (reproducible)")
    p_sim.add_argument("--traffic", default=TRAFFIC_DEFAULT,
                       choices=list(TRAFFIC_PROFILES),
                       help="synthetic traffic profile: every node, the "
                            "first node only, or none")
    p_sim.add_argument("--no-traffic", action="store_true",
                       help="shorthand for --traffic none")
    p_sim.add_argument("--workers", type=int, default=1,
                       help="shard the network across N worker processes "
                            "(bit-identical to --workers 1)")
    p_sim.add_argument("--plan-cache", default=None, metavar="DIR",
                       help="persist lowered function plans under DIR so a "
                            "repeat run skips the lowering front end "
                            "(bit-identical to running without)")
    p_sim.add_argument("--chaos", default=None, metavar="SPEC",
                       help="kill shard workers at chosen window rounds, "
                            "e.g. '1@3' or '0@5,1@40' (or the JSON form); "
                            "checkpointed recovery keeps the results "
                            "bit-identical — requires --workers > 1 to "
                            "have anything to kill")
    add_json(p_sim)
    add_store(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_scen = sub.add_parser(
        "scenarios",
        help="run seeded fault injections across build variants")
    p_scen.add_argument("app", help="figure label, e.g. Surge_Mica2")
    p_scen.add_argument("--variants", default="baseline,safe-optimized",
                        help="figure3 | figure2 | all | comma-separated "
                             "names (matrix columns)")
    p_scen.add_argument("--faults", default="bit-flip,payload,packet",
                        help="comma-separated fault kinds: " +
                             ",".join(DEFAULT_FAULT_NAMES))
    p_scen.add_argument("--nodes", type=int, default=2)
    p_scen.add_argument("--seconds", type=float,
                        default=DEFAULT_DUTY_CYCLE_SECONDS)
    p_scen.add_argument("--topology", default="chain", choices=TOPOLOGIES)
    p_scen.add_argument("--loss", type=float, default=0.0,
                        help="per-link packet loss probability in [0, 1)")
    p_scen.add_argument("--seed", type=int, default=0,
                        help="channel seed shared by every run")
    p_scen.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault plan's injection decisions")
    p_scen.add_argument("--traffic", default=TRAFFIC_DEFAULT,
                        choices=list(TRAFFIC_PROFILES),
                        help="synthetic traffic profile (default: the "
                             "app's duty-cycle context on every node)")
    p_scen.add_argument("--workers", type=int, default=1,
                        help="shard each run across N worker processes "
                             "(verdicts bit-identical to --workers 1)")
    p_scen.add_argument("--plan-cache", default=None, metavar="DIR",
                        help="persist lowered function plans under DIR so "
                             "the golden and faulted runs of a repeated "
                             "matrix lower nothing")
    add_json(p_scen)
    add_store(p_scen)
    p_scen.set_defaults(func=cmd_scenarios)

    p_fig = sub.add_parser("figures", help="reproduce the paper's figure tables")
    p_fig.add_argument("--figure", default="all",
                       choices=["2", "3a", "3b", "3c", "all"])
    p_fig.add_argument("--apps", default="all",
                       help="all | mica2 | comma-separated labels")
    p_fig.add_argument("--seconds", type=float, default=FIGURE3C_SIM_SECONDS,
                       help="simulated seconds per duty-cycle measurement (3c)")
    add_json(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_serve = sub.add_parser(
        "serve", help="run the async job service over HTTP")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="artifact store shared by every client "
                              "(omit for an in-memory session)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8400,
                         help="listening port (0 picks an ephemeral one)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="job executor threads")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="S",
                         help="per-job wall-clock limit in seconds; a job "
                              "exceeding it fails with error_kind=timeout "
                              "(default: no limit)")
    p_serve.set_defaults(func=cmd_serve)

    p_gc = sub.add_parser(
        "gc", help="evict least-recently-used artifact-store entries")
    p_gc.add_argument("--store", required=True, metavar="DIR")
    p_gc.add_argument("--budget-bytes", type=int, default=None,
                      help="evict stalest entries until the store fits "
                           "(omit for a pure measurement pass)")
    add_json(p_gc)
    p_gc.set_defaults(func=cmd_gc)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    out = out if out is not None else sys.stdout
    # ``serve`` and ``gc`` manage the store directory themselves — the
    # record commands route their session workbench through it.
    store = getattr(args, "store", None) \
        if args.command not in ("serve", "gc") else None
    with Workbench(store=store) as workbench:
        try:
            return args.func(args, workbench, out)
        except UsageError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except RemoteError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
