"""Declarative request specs: what to build, sweep or simulate.

A spec is *data*: a frozen dataclass naming registered applications and
build variants, with no references to live programs or pass objects.  Every
spec round-trips through JSON (``from_dict(to_dict(spec)) == spec``) and has
a stable :meth:`content_key` — a digest of the pass list the spec lowers to,
derived from each pass's
:meth:`~repro.toolchain.passes.Pass.cache_key` — so two equal specs name the
same deterministic build output across sessions and processes.  The
:class:`~repro.api.workbench.Workbench` memoizes on exactly that key.

Validation happens at construction time: unknown applications and variants
raise :class:`KeyError` (matching the suite and variant registries), and
malformed simulation parameters (``node_count < 1``, non-positive
``seconds``) raise :class:`ValueError` immediately instead of failing deep
inside the simulator.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.avrora.chaos import ChaosPolicy
from repro.avrora.network import TOPOLOGIES
from repro.scenarios.faults import FaultPlan
from repro.tinyos import suite
from repro.toolchain.contexts import DEFAULT_DUTY_CYCLE_SECONDS
from repro.toolchain.lower import variant_passes
from repro.toolchain.variants import SAFE_OPTIMIZED, variant_by_name

#: Version stamped into every serialized spec and record; bump when the
#: dictionary layout changes incompatibly *or* when simulation semantics
#: change enough that previously recorded results no longer reproduce.
#: v2: the channel derives loss and jitter from a stable per-packet hash
#: of (seed, src, dst, sequence) instead of a shared ``random.Random``
#: stream, so v1 simulation records name different trajectories.
SCHEMA_VERSION = 2

#: ``SimSpec.traffic`` profiles: simulate inside the application's default
#: duty-cycle context (Section 3.4) on every node, on the first node only
#: (e.g. stimulating just the base station of a topology), or with no
#: synthetic traffic at all — real cross-node traffic only.
TRAFFIC_DEFAULT = "default"
TRAFFIC_BASE = "base"
TRAFFIC_NONE = "none"

TRAFFIC_PROFILES = (TRAFFIC_DEFAULT, TRAFFIC_BASE, TRAFFIC_NONE)


@lru_cache(maxsize=None)
def variant_pass_keys(variant_name: str) -> tuple[str, ...]:
    """The cache-key sequence a registered variant's pass list lowers to."""
    variant = variant_by_name(variant_name)
    return tuple(pass_.cache_key(variant) for pass_ in variant_passes(variant))


def _digest(material: dict) -> str:
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _check_app(app: str) -> None:
    if app not in suite.FIGURE_APPS:
        raise KeyError(f"unknown application {app!r}; known: "
                       f"{suite.FIGURE_APPS}")


@dataclass(frozen=True)
class BuildSpec:
    """Build one registered application with one registered variant."""

    app: str
    variant: str = SAFE_OPTIMIZED.name

    def __post_init__(self):
        _check_app(self.app)
        variant_by_name(self.variant)

    def content_key(self) -> str:
        """Stable identity of this build: app × variant × pass cache keys.

        The variant name is part of the material: a few registered variants
        lower to identical pass lists (e.g. ``safe-optimized`` and
        ``fig2-ccured-inline-cxprop-gcc``) and would otherwise collide,
        returning records labelled with the other variant's name.
        """
        return _digest({
            "schema": SCHEMA_VERSION,
            "kind": "build",
            "app": self.app,
            "variant": self.variant,
            "passes": list(variant_pass_keys(self.variant)),
        })

    def to_dict(self) -> dict[str, object]:
        return {"kind": "build", "schema": SCHEMA_VERSION,
                "app": self.app, "variant": self.variant}

    @classmethod
    def from_dict(cls, data: dict) -> "BuildSpec":
        return cls(app=data["app"], variant=data["variant"])


@dataclass(frozen=True)
class SweepSpec:
    """Build the cross product of N applications × M variants, in order."""

    apps: tuple[str, ...]
    variants: tuple[str, ...]

    def __post_init__(self):
        # Tolerate lists (the natural JSON shape) by coercing to tuples so
        # equality and hashing behave; frozen dataclasses need object.__setattr__.
        object.__setattr__(self, "apps", tuple(self.apps))
        object.__setattr__(self, "variants", tuple(self.variants))
        if not self.apps:
            raise ValueError("SweepSpec needs at least one application")
        if not self.variants:
            raise ValueError("SweepSpec needs at least one variant")
        for app in self.apps:
            _check_app(app)
        for variant in self.variants:
            variant_by_name(variant)

    def build_specs(self) -> list[BuildSpec]:
        """The sweep's builds in (application, variant) order."""
        return [BuildSpec(app=app, variant=variant)
                for app in self.apps for variant in self.variants]

    def content_key(self) -> str:
        return _digest({
            "schema": SCHEMA_VERSION,
            "kind": "sweep",
            "builds": [spec.content_key() for spec in self.build_specs()],
        })

    def to_dict(self) -> dict[str, object]:
        return {"kind": "sweep", "schema": SCHEMA_VERSION,
                "apps": list(self.apps), "variants": list(self.variants)}

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        return cls(apps=tuple(data["apps"]), variants=tuple(data["variants"]))


@dataclass(frozen=True)
class SimSpec:
    """Simulate one build in a network context for some virtual seconds.

    Attributes:
        app: Registered application (its build is resolved via
            :class:`BuildSpec`).
        variant: Registered build variant.
        node_count: Number of motes in the simulated network (>= 1).
        seconds: Virtual seconds to simulate (> 0).
        traffic: ``"default"`` runs every node inside the application's
            duty-cycle traffic context (Section 3.4); ``"base"`` stimulates
            only the first node (the base station / hub of a topology);
            ``"none"`` disables synthetic traffic entirely.
        topology: Radio-channel wiring: ``broadcast`` (every pair),
            ``chain``, ``star`` or ``grid``.  Non-broadcast topologies
            number nodes from 0 so the first node is the routing base
            station (``TOS_LOCAL_ADDRESS == 0``).
        loss: Per-link, per-packet drop probability in [0, 1).
        seed: Seed of the channel's loss RNG; equal seeds give
            bit-identical simulations.
        workers: Worker processes for the sharded kernel (>= 1, at most
            ``node_count``).  Results are bit-identical for every worker
            count, so ``workers`` is an execution knob, not part of the
            simulation's identity: it is excluded from
            :meth:`content_key` and records cached under one worker
            count satisfy requests made with another.
        plan_cache: Directory of the persistent lowering-plan store
            (:class:`~repro.avrora.codestore.PlanStore`), or None to keep
            lowering in-process only.  Like ``workers``, the cache merely
            changes *how* the simulation executes (warm starts skip the
            lowering front end); results are bit-identical either way, so
            it is excluded from :meth:`content_key`.
        chaos: Optional :class:`~repro.avrora.chaos.ChaosPolicy` killing
            shard workers at chosen window rounds; the kernel's
            checkpointed recovery replays the lost windows, so results
            are bit-identical to a fault-free run.  A third execution
            knob, excluded from :meth:`content_key` like ``workers`` —
            only meaningful for ``workers > 1``.
    """

    app: str
    variant: str = SAFE_OPTIMIZED.name
    node_count: int = 1
    seconds: float = DEFAULT_DUTY_CYCLE_SECONDS
    traffic: str = TRAFFIC_DEFAULT
    topology: str = "broadcast"
    loss: float = 0.0
    seed: int = 0
    workers: int = 1
    plan_cache: Optional[str] = None
    chaos: Optional[ChaosPolicy] = None

    def __post_init__(self):
        if self.plan_cache is not None:
            # PathLike in, plain string out: specs stay JSON-serializable.
            object.__setattr__(self, "plan_cache", os.fspath(self.plan_cache))
        if isinstance(self.chaos, dict):
            # The natural JSON shape coerces, like SweepSpec's lists.
            object.__setattr__(self, "chaos",
                               ChaosPolicy.from_dict(self.chaos))
        if self.chaos is not None \
                and not isinstance(self.chaos, ChaosPolicy):
            raise TypeError(
                f"{self.describe()}: chaos must be a ChaosPolicy or None, "
                f"got {type(self.chaos).__name__}")
        _check_app(self.app)
        variant_by_name(self.variant)
        if self.node_count < 1:
            raise ValueError(
                f"{self.describe()}: node_count must be >= 1, "
                f"got {self.node_count}")
        if not self.seconds > 0:
            raise ValueError(
                f"{self.describe()}: seconds must be positive, "
                f"got {self.seconds}")
        if self.traffic not in TRAFFIC_PROFILES:
            raise ValueError(
                f"{self.describe()}: traffic must be one of "
                f"{TRAFFIC_PROFILES}, got {self.traffic!r}")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"{self.describe()}: topology must be one of "
                f"{TOPOLOGIES}, got {self.topology!r}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(
                f"{self.describe()}: loss must be in [0, 1), "
                f"got {self.loss}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(
                f"{self.describe()}: seed must be a non-negative integer, "
                f"got {self.seed!r}")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(
                f"{self.describe()}: parallel config: workers must be "
                f">= 1, got {self.workers!r}")
        if self.workers > self.node_count:
            raise ValueError(
                f"{self.describe()}: parallel config: workers "
                f"({self.workers}) must not exceed the node count "
                f"({self.node_count})")

    def describe(self) -> str:
        return (f"SimSpec({self.app} × {self.variant}, "
                f"{self.node_count} node(s), {self.seconds}s)")

    def build_spec(self) -> BuildSpec:
        return BuildSpec(app=self.app, variant=self.variant)

    def content_key(self) -> str:
        # ``workers``, ``plan_cache`` and ``chaos`` are intentionally
        # absent: the sharded kernel, the persistent plan store and the
        # chaos-recovery layer are bit-identical to their undisturbed
        # counterparts, so none is part of what the simulation *is* —
        # only of how it is executed.
        return _digest({
            "schema": SCHEMA_VERSION,
            "kind": "sim",
            "build": self.build_spec().content_key(),
            "node_count": self.node_count,
            "seconds": self.seconds,
            "traffic": self.traffic,
            "topology": self.topology,
            "loss": self.loss,
            "seed": self.seed,
        })

    def to_dict(self) -> dict[str, object]:
        return {"kind": "sim", "schema": SCHEMA_VERSION,
                "app": self.app, "variant": self.variant,
                "node_count": self.node_count, "seconds": self.seconds,
                "traffic": self.traffic, "topology": self.topology,
                "loss": self.loss, "seed": self.seed,
                "workers": self.workers, "plan_cache": self.plan_cache,
                "chaos": None if self.chaos is None
                else self.chaos.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "SimSpec":
        chaos = data.get("chaos")
        return cls(app=data["app"], variant=data["variant"],
                   node_count=data["node_count"], seconds=data["seconds"],
                   traffic=data.get("traffic", TRAFFIC_DEFAULT),
                   topology=data.get("topology", "broadcast"),
                   loss=data.get("loss", 0.0),
                   seed=data.get("seed", 0),
                   workers=data.get("workers", 1),
                   plan_cache=data.get("plan_cache"),
                   chaos=None if chaos is None
                   else ChaosPolicy.from_dict(chaos))


@dataclass(frozen=True)
class ScenarioSpec:
    """Run one seeded fault plan against N build variants of one app.

    The scenario layer's request object: every (variant, fault) pair in
    the cross product runs the *same* simulation — same topology, same
    channel seed, same plan seed — differing only in which safety passes
    the build carries, so the resulting verdict matrix isolates what the
    variant contributes.

    Defaults differ from :class:`SimSpec` where adversity demands it:
    two nodes in a ``chain``, because payload corruption and packet loss
    act on *cross-node* transmissions, which a single-node broadcast
    never has.  The default duty-cycle traffic context stays on — it
    exercises every node's receive path from the first second, while the
    application's own multihop exchange supplies the real cross-node
    packets the corruptor mutates.

    Attributes:
        app: Registered application, built once per variant.
        variants: Build variants to compare, in matrix-column order.
        plan: The seeded :class:`~repro.scenarios.faults.FaultPlan`; one
            simulation runs per fault, per variant.
        node_count: Motes in the network (>= 1; every fault targeting a
            node position must fit).
        seconds: Virtual seconds per run (> 0).
        traffic: Synthetic-traffic profile, as in :class:`SimSpec`.
        topology: Channel wiring, as in :class:`SimSpec`.
        loss: Per-link drop probability in [0, 1).
        seed: Channel seed (the plan's fault seed is separate, in
            ``plan.seed``).
        workers: Sharded-kernel worker count — an execution knob,
            excluded from :meth:`content_key` like :class:`SimSpec`'s.
        plan_cache: Directory of the persistent lowering-plan store, as
            in :class:`SimSpec` — the golden and every faulted run
            hydrate their lowering plans from it, so a repeated scenario
            matrix in a fresh session lowers nothing.  An execution knob,
            excluded from :meth:`content_key`.
    """

    app: str
    variants: tuple[str, ...]
    plan: FaultPlan
    node_count: int = 2
    seconds: float = DEFAULT_DUTY_CYCLE_SECONDS
    traffic: str = TRAFFIC_DEFAULT
    topology: str = "chain"
    loss: float = 0.0
    seed: int = 0
    workers: int = 1
    plan_cache: Optional[str] = None

    def __post_init__(self):
        if self.plan_cache is not None:
            # PathLike in, plain string out: specs stay JSON-serializable.
            object.__setattr__(self, "plan_cache", os.fspath(self.plan_cache))
        object.__setattr__(self, "variants", tuple(self.variants))
        _check_app(self.app)
        if not self.variants:
            raise ValueError(
                f"{self.describe()}: needs at least one variant")
        for variant in self.variants:
            variant_by_name(variant)
        if not isinstance(self.plan, FaultPlan):
            raise TypeError(
                f"{self.describe()}: plan must be a FaultPlan, "
                f"got {type(self.plan).__name__}")
        if self.node_count < 1:
            raise ValueError(
                f"{self.describe()}: node_count must be >= 1, "
                f"got {self.node_count}")
        if self.plan.max_node() >= self.node_count:
            raise ValueError(
                f"{self.describe()}: plan targets node "
                f"{self.plan.max_node()} but the network has only "
                f"{self.node_count} node(s)")
        if not self.seconds > 0:
            raise ValueError(
                f"{self.describe()}: seconds must be positive, "
                f"got {self.seconds}")
        if self.traffic not in TRAFFIC_PROFILES:
            raise ValueError(
                f"{self.describe()}: traffic must be one of "
                f"{TRAFFIC_PROFILES}, got {self.traffic!r}")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"{self.describe()}: topology must be one of "
                f"{TOPOLOGIES}, got {self.topology!r}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(
                f"{self.describe()}: loss must be in [0, 1), "
                f"got {self.loss}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(
                f"{self.describe()}: seed must be a non-negative integer, "
                f"got {self.seed!r}")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(
                f"{self.describe()}: parallel config: workers must be "
                f">= 1, got {self.workers!r}")
        if self.workers > self.node_count:
            raise ValueError(
                f"{self.describe()}: parallel config: workers "
                f"({self.workers}) must not exceed the node count "
                f"({self.node_count})")

    def describe(self) -> str:
        return (f"ScenarioSpec({self.app} × {len(self.variants)} "
                f"variant(s) × {len(self.plan.faults)} fault(s))")

    def build_specs(self) -> list[BuildSpec]:
        """One build per variant, in matrix-column order."""
        return [BuildSpec(app=self.app, variant=variant)
                for variant in self.variants]

    def content_key(self) -> str:
        # ``workers`` and ``plan_cache`` are excluded for the same reason
        # as in SimSpec: the verdict matrix is bit-identical at every
        # worker count and with or without hydrated lowering plans.
        return _digest({
            "schema": SCHEMA_VERSION,
            "kind": "scenario",
            "builds": [spec.content_key() for spec in self.build_specs()],
            "plan": self.plan.to_dict(),
            "node_count": self.node_count,
            "seconds": self.seconds,
            "traffic": self.traffic,
            "topology": self.topology,
            "loss": self.loss,
            "seed": self.seed,
        })

    def to_dict(self) -> dict[str, object]:
        return {"kind": "scenario", "schema": SCHEMA_VERSION,
                "app": self.app, "variants": list(self.variants),
                "plan": self.plan.to_dict(),
                "node_count": self.node_count, "seconds": self.seconds,
                "traffic": self.traffic, "topology": self.topology,
                "loss": self.loss, "seed": self.seed,
                "workers": self.workers, "plan_cache": self.plan_cache}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        return cls(app=data["app"], variants=tuple(data["variants"]),
                   plan=FaultPlan.from_dict(data["plan"]),
                   node_count=data.get("node_count", 2),
                   seconds=data.get("seconds",
                                    DEFAULT_DUTY_CYCLE_SECONDS),
                   traffic=data.get("traffic", TRAFFIC_DEFAULT),
                   topology=data.get("topology", "chain"),
                   loss=data.get("loss", 0.0),
                   seed=data.get("seed", 0),
                   workers=data.get("workers", 1),
                   plan_cache=data.get("plan_cache"))


#: ``to_dict()["kind"]`` → spec class, the job service's dispatch table.
SPEC_KINDS = {
    "build": BuildSpec,
    "sweep": SweepSpec,
    "sim": SimSpec,
    "scenario": ScenarioSpec,
}


def spec_from_dict(data: dict):
    """Rebuild any spec from its ``to_dict()`` form, dispatching on ``kind``.

    The job service's single deserialization entry point: one JSON object
    over the wire names any of the four request kinds.  Unknown kinds
    raise :class:`ValueError`; field validation then happens in the spec
    constructor as usual.
    """
    if not isinstance(data, dict):
        raise TypeError(f"spec must be a JSON object, got "
                        f"{type(data).__name__}")
    kind = data.get("kind")
    cls = SPEC_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown spec kind {kind!r}; known: "
                         f"{sorted(SPEC_KINDS)}")
    return cls.from_dict(data)
