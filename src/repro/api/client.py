"""A stdlib HTTP client for the :mod:`repro.api.server` job service.

The CLI's ``--remote URL`` paths route through :class:`RemoteClient`:
specs are serialized with their own ``to_dict``, submitted, and the
resulting record dictionaries are rehydrated by the caller (the spec
kinds map one-to-one onto record classes).  Only :mod:`urllib.request`
is used — the client works anywhere the package imports.

Transport failures are retried with exponential backoff and jitter.
This is safe because the protocol is idempotent end to end: submits are
deduplicated by content key server-side, and every GET is a pure read,
so re-sending a request whose response was lost cannot double-run a job.
Retryable failures are connection-level errors (``URLError``) and the
5xx statuses a proxy or a draining server emits transiently (500, 502,
503); a 504 from ``/result`` means "job still running", and 4xx means
the request itself is wrong — neither is retried.  Exhausted retries and
malformed responses surface as :class:`RemoteServiceError` carrying the
URL, the attempt count and the server's retry-after hint.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Optional, Union

from repro.api.specs import BuildSpec, ScenarioSpec, SimSpec, SweepSpec

_Spec = Union[BuildSpec, SweepSpec, SimSpec, ScenarioSpec]

#: Matches the server's default ``/result`` blocking window.
DEFAULT_TIMEOUT_S = 60.0

#: Default attempt budget per request (the first try plus retries).
DEFAULT_RETRIES = 3

#: Base delay of the exponential backoff schedule (doubles per attempt,
#: jittered to half-to-1.5x so synchronized clients fan out).
DEFAULT_BACKOFF_S = 0.25

#: HTTP statuses worth retrying: transient server-side conditions.  504
#: is deliberately absent — the service uses it for "result not ready
#: within the blocking window", which retrying with the same window
#: would just repeat, and callers handle it as a timeout.
RETRYABLE_STATUSES = frozenset({500, 502, 503})


class RemoteError(RuntimeError):
    """An HTTP-level or job-level failure reported by the job service."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class RemoteServiceError(RemoteError):
    """The service stayed unreachable or unusable after every retry.

    A :class:`RemoteError` (so existing handlers keep working) that
    additionally records which URL failed, how many attempts were spent,
    and the server's ``Retry-After`` hint in seconds, when one was sent.
    """

    def __init__(self, message: str, *, url: str, attempts: int,
                 status: Optional[int] = None,
                 retry_after: Optional[float] = None):
        super().__init__(message, status=status)
        self.url = url
        self.attempts = attempts
        self.retry_after = retry_after


def _retry_after_hint(exc: urllib.error.HTTPError) -> Optional[float]:
    """The server's Retry-After header in seconds, if parseable."""
    value = exc.headers.get("Retry-After") if exc.headers else None
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class RemoteClient:
    """Talks JSON to one job service at ``base_url``.

    ``run`` is the one-call path the CLI uses: submit, block on the
    result, return the record dict.  ``submit``/``status``/``result``
    expose the asynchronous protocol directly.  ``retries`` and
    ``backoff_s`` tune the transport retry schedule (``retries=1``
    disables retrying entirely).
    """

    def __init__(self, base_url: str, *,
                 timeout: float = DEFAULT_TIMEOUT_S,
                 retries: int = DEFAULT_RETRIES,
                 backoff_s: float = DEFAULT_BACKOFF_S):
        if retries < 1:
            raise ValueError(f"retries must be >= 1, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s

    # -- transport -------------------------------------------------------------

    def _request(self, path: str, body: Optional[dict] = None,
                 timeout: Optional[float] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # The socket timeout pads the server's own blocking window so the
        # server's 504 arrives before the socket gives up.
        socket_timeout = (timeout if timeout is not None else self.timeout) + 10
        last_reason = ""
        last_status: Optional[int] = None
        retry_after: Optional[float] = None
        for attempt in range(1, self.retries + 1):
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(
                        request, timeout=socket_timeout) as response:
                    raw = response.read()
            except urllib.error.HTTPError as exc:
                detail = ""
                try:
                    detail = json.loads(
                        exc.read().decode("utf-8")).get("error", "")
                except (ValueError, UnicodeDecodeError):
                    pass
                if exc.code in RETRYABLE_STATUSES:
                    last_reason = f"HTTP {exc.code}" \
                        + (f": {detail}" if detail else "")
                    last_status = exc.code
                    retry_after = _retry_after_hint(exc)
                    self._backoff(attempt, retry_after)
                    continue
                raise RemoteError(
                    f"{url} -> HTTP {exc.code}"
                    + (f": {detail}" if detail else ""),
                    status=exc.code) from exc
            except urllib.error.URLError as exc:
                last_reason = f"cannot reach service: {exc.reason}"
                last_status = None
                retry_after = None
                self._backoff(attempt, None)
                continue
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                # A successful status with an undecodable body is a
                # broken server or a mangling middlebox, not a transient
                # condition — retrying the same request would just fetch
                # the same garbage.
                raise RemoteServiceError(
                    f"{url} returned malformed JSON after {attempt} "
                    f"attempt(s): {exc}",
                    url=url, attempts=attempt) from exc
            if not isinstance(payload, dict):
                raise RemoteServiceError(
                    f"{url} returned non-object JSON after {attempt} "
                    f"attempt(s)",
                    url=url, attempts=attempt)
            return payload
        raise RemoteServiceError(
            f"{url} failed after {self.retries} attempt(s): {last_reason}",
            url=url, attempts=self.retries, status=last_status,
            retry_after=retry_after)

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> None:
        """Sleep before the next attempt (no-op after the last one)."""
        if attempt >= self.retries:
            return
        delay = self.backoff_s * (2 ** (attempt - 1))
        delay *= 0.5 + random.random()  # jitter: 0.5x .. 1.5x
        if retry_after is not None:
            # Honor the server's hint when it asks for more patience
            # than the schedule would grant.
            delay = max(delay, retry_after)
        time.sleep(delay)

    # -- protocol --------------------------------------------------------------

    def healthz(self) -> bool:
        return bool(self._request("/healthz").get("ok"))

    def submit(self, spec: Union[_Spec, dict]) -> dict:
        """Submit a spec (object or dict); returns the job description."""
        data = spec if isinstance(spec, dict) else spec.to_dict()
        return self._request("/submit", body={"spec": data})

    def status(self, key: str) -> dict:
        return self._request(f"/status/{key}")

    def result(self, key: str, *, timeout: Optional[float] = None) -> dict:
        """The finished record dict; blocks server-side while the job runs."""
        window = timeout if timeout is not None else self.timeout
        return self._request(f"/result/{key}?timeout={window}",
                             timeout=window)

    def run(self, spec: Union[_Spec, dict], *,
            timeout: Optional[float] = None) -> dict:
        """Submit and wait: the synchronous convenience path."""
        job = self.submit(spec)
        return self.result(job["key"], timeout=timeout)

    def stats(self) -> dict:
        return self._request("/stats")
