"""A stdlib HTTP client for the :mod:`repro.api.server` job service.

The CLI's ``--remote URL`` paths route through :class:`RemoteClient`:
specs are serialized with their own ``to_dict``, submitted, and the
resulting record dictionaries are rehydrated by the caller (the spec
kinds map one-to-one onto record classes).  Only :mod:`urllib.request`
is used — the client works anywhere the package imports.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional, Union

from repro.api.specs import BuildSpec, ScenarioSpec, SimSpec, SweepSpec

_Spec = Union[BuildSpec, SweepSpec, SimSpec, ScenarioSpec]

#: Matches the server's default ``/result`` blocking window.
DEFAULT_TIMEOUT_S = 60.0


class RemoteError(RuntimeError):
    """An HTTP-level or job-level failure reported by the job service."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class RemoteClient:
    """Talks JSON to one job service at ``base_url``.

    ``run`` is the one-call path the CLI uses: submit, block on the
    result, return the record dict.  ``submit``/``status``/``result``
    expose the asynchronous protocol directly.
    """

    def __init__(self, base_url: str, *,
                 timeout: float = DEFAULT_TIMEOUT_S):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(self, path: str, body: Optional[dict] = None,
                 timeout: Optional[float] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        # The socket timeout pads the server's own blocking window so the
        # server's 504 arrives before the socket gives up.
        socket_timeout = (timeout if timeout is not None else self.timeout) + 10
        try:
            with urllib.request.urlopen(request,
                                        timeout=socket_timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                pass
            raise RemoteError(
                f"{url} -> HTTP {exc.code}" + (f": {detail}" if detail else ""),
                status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise RemoteError(f"cannot reach {url}: {exc.reason}") from exc
        if not isinstance(payload, dict):
            raise RemoteError(f"{url} returned non-object JSON")
        return payload

    # -- protocol --------------------------------------------------------------

    def healthz(self) -> bool:
        return bool(self._request("/healthz").get("ok"))

    def submit(self, spec: Union[_Spec, dict]) -> dict:
        """Submit a spec (object or dict); returns the job description."""
        data = spec if isinstance(spec, dict) else spec.to_dict()
        return self._request("/submit", body={"spec": data})

    def status(self, key: str) -> dict:
        return self._request(f"/status/{key}")

    def result(self, key: str, *, timeout: Optional[float] = None) -> dict:
        """The finished record dict; blocks server-side while the job runs."""
        window = timeout if timeout is not None else self.timeout
        return self._request(f"/result/{key}?timeout={window}",
                             timeout=window)

    def run(self, spec: Union[_Spec, dict], *,
            timeout: Optional[float] = None) -> dict:
        """Submit and wait: the synchronous convenience path."""
        job = self.submit(spec)
        return self.result(job["key"], timeout=timeout)

    def stats(self) -> dict:
        return self._request("/stats")
