"""The Workbench: one session object, one execution engine.

Every build — interactive or batched, facade or CLI — funnels through a
:class:`Workbench`, which routes it through
:class:`~repro.toolchain.sweep.SweepRunner` with a session-persistent
prefix-snapshot store.  That gives three properties for free:

* **Prefix sharing everywhere.**  Even two single ``build()`` calls made
  minutes apart share the nesC front end (and, where their variants agree,
  the CCured stage): the first call leaves snapshots in the store, the
  second resumes from them.
* **Memoization by content key.**  Results are cached on the spec's
  :meth:`~repro.api.specs.BuildSpec.content_key`, so an identical request
  never re-runs a pass.
* **One record schema.**  Every build yields a
  :class:`~repro.api.records.BuildRecord`, whether it ran in-process (full
  :class:`~repro.toolchain.pipeline.BuildResult` retained and available via
  :meth:`Workbench.build_result`) or on the process pool
  (:meth:`Workbench.submit`, summaries only).

The session caches assume applications and variants are not mutated after
their first build, and cached results are *shared*: a second identical
request returns the same :class:`~repro.toolchain.pipeline.BuildResult`
(and its live program) as the first, so treat returned results as
read-only — run further ad-hoc passes on a
:meth:`~repro.cminor.program.Program.clone`, or call :meth:`clear` to drop
the session caches.  In-process methods are intended for one driving
thread, while :meth:`submit` futures admit their records under a lock.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, Union

from repro.api.records import BuildRecord, ScenarioRecord, SimRecord
from repro.api.specs import (
    SCHEMA_VERSION,
    TRAFFIC_BASE,
    TRAFFIC_DEFAULT,
    BuildSpec,
    ScenarioSpec,
    SimSpec,
    SweepSpec,
)
from repro.avrora.chaos import ChaosPolicy
from repro.avrora.network import Channel, Network, TrafficGenerator
from repro.avrora.node import Node
from repro.nesc.application import Application
from repro.store import ArtifactStore, snapshot_key
from repro.tinyos import suite
from repro.toolchain.config import BuildVariant
from repro.toolchain.contexts import duty_cycle_context
from repro.toolchain.passes import executed_pass_count
from repro.toolchain.pipeline import BuildResult
from repro.toolchain.sweep import SweepRunner, persistent_prefixes
from repro.toolchain.variants import all_variant_names, variant_by_name


def run_network(program, *, seconds: float, node_count: int = 1,
                traffic: Optional[TrafficGenerator] = None,
                channel: Optional[Channel] = None,
                traffic_first_node_only: bool = False,
                workers: int = 1,
                chaos=None,
                prepare: Optional[Callable[[Network], None]] = None,
                ) -> Network:
    """Boot ``node_count`` motes running ``program`` and co-simulate them.

    Nodes advance in lockstep over the given ``channel`` (default:
    lossless broadcast).  Broadcast networks number nodes from 1 (the
    historical convention); every other topology numbers them from 0, so
    the first node is the routing base station (``TOS_LOCAL_ADDRESS == 0``
    — what ``MultiHopRouterM`` treats as the collection root).
    ``traffic_first_node_only`` installs the synthetic traffic generator
    on the first node only.  ``workers > 1`` shards the topology across
    that many worker processes with bit-identical results.  ``chaos``
    (a :class:`~repro.avrora.chaos.ChaosPolicy`) kills shard workers at
    chosen window rounds; checkpointed recovery keeps the results
    bit-identical, with the fallout in ``network.recovery_stats``.
    ``prepare`` runs against the fully assembled network after the nodes
    boot and before the clock starts — the scenario layer's hook for
    arming fault injections.
    """
    if node_count < 1:
        raise ValueError(f"node_count must be >= 1, got {node_count}")
    channel = channel or Channel()
    network = Network(traffic=traffic, channel=channel)
    first_id = 1 if channel.topology == "broadcast" else 0
    for index in range(node_count):
        node = Node(program, node_id=first_id + index)
        node.boot()
        network.add_node(
            node, traffic=(index == 0 or not traffic_first_node_only))
    network.chaos = chaos
    if prepare is not None:
        prepare(network)
    network.run(seconds, workers=workers)
    return network


def is_registered_variant(variant: BuildVariant) -> bool:
    """Whether ``variant`` is (equal to) a predefined registry variant."""
    try:
        return variant_by_name(variant.name) == variant
    except KeyError:
        return False


def plan_store_attach(plan_cache: Optional[str], build_key: str,
                      program) -> Optional[tuple]:
    """Hydrate a program's code cache from a persistent plan store.

    Shared by :meth:`Workbench.simulate` and the scenario runner's golden
    and faulted runs.  Returns ``(store, key)`` for
    :func:`plan_store_persist` to write back into, or None when no plan
    cache is configured.
    """
    if plan_cache is None:
        return None
    from repro.avrora.codestore import PlanStore, plan_key

    store = PlanStore(plan_cache)
    key = plan_key(build_key, program.platform)
    payload = store.load(key)
    if payload is not None:
        program.analysis().code_cache().hydrate_portable(program, payload)
    return store, key


def plan_store_persist(attach: Optional[tuple], program) -> dict:
    """Persist the (now fully lowered) plans and assemble the record's
    ``code_cache`` telemetry dictionary."""
    cache = program.analysis().code_cache()
    telemetry: dict = dict(cache.stats())
    if attach is None:
        return telemetry
    store, key = attach
    # Freshly lowered plans (a cold start, or functions the artifact
    # did not cover) are worth persisting; an already-complete warm
    # start skips the write.  ``cache.costs is None`` means nothing
    # was lowered at all (tree engine) — nothing to persist.
    if cache.costs is not None and cache.lowerings > 0:
        cache.lower_all(program, cache.costs)
        payload = cache.export_portable(program)
        if payload is not None:
            store.store(key, payload)
    telemetry.update(
        {f"store_{name}": value
         for name, value in store.stats().items()},
        store_dir=store.root)
    return telemetry


class Workbench:
    """Cache-routed execution engine for builds, sweeps and simulations.

    Args:
        share_front_end: Route builds over shared pass-list-prefix
            snapshots (disable only to benchmark the unshared baseline).
        processes: Default worker-process count for :meth:`submit`
            (defaults to ``min(4, cpu_count)`` at submit time).
        store: Persistent artifact store — a directory path or a
            :class:`repro.store.ArtifactStore` — shared across sessions.
            Records are looked up there before any pass runs (a warm hit
            executes nothing, proven by :meth:`stats`), newly built
            records and persistent prefix snapshots are written back, and
            a novel variant of a known application resumes from a stored
            front-end snapshot instead of re-flattening.
    """

    def __init__(self, *, share_front_end: bool = True,
                 processes: Optional[int] = None,
                 store: Union[str, os.PathLike, ArtifactStore, None] = None):
        self.share_front_end = share_front_end
        self.processes = processes
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(os.fspath(store), schema=SCHEMA_VERSION)
        self.store: Optional[ArtifactStore] = store
        self._records: dict[str, BuildRecord] = {}
        self._results: dict[str, BuildResult] = {}
        self._sim_records: dict[str, SimRecord] = {}
        self._scenario_records: dict[str, ScenarioRecord] = {}
        # Created on first use (lazy import keeps api importable without
        # the scenarios package and vice versa); session-persistent so
        # its golden-run fingerprint cache spans scenarios.
        self._scenario_runner = None
        self._snapshots: dict[str, dict] = {}
        # Snapshot-store keys already persisted (or hydrated) this session,
        # so repeat builds do not rewrite identical entries.
        self._snapshot_keys_done: set[str] = set()
        # Unregistered builds (custom Application objects / ad-hoc variants)
        # have no content key; they are memoized by identity for the session,
        # pinning the application object so ``id`` stays unambiguous.
        self._unregistered: dict[tuple, tuple[object, BuildResult]] = {}
        self._object_snapshots: dict[int, dict[str, dict]] = {}
        self._lock = threading.Lock()
        # Serializes the heavy execution paths (pass pipelines, network
        # runs) so concurrent driving threads — the job service runs each
        # request on its own thread — never race on the shared snapshot
        # store or a shared program.  Re-entrant because simulations and
        # scenarios build through the same engine on the same thread.
        self._execute_lock = threading.RLock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._builds_executed = 0
        self._simulations_executed = 0
        self._scenarios_executed = 0
        self._passes_at_init = executed_pass_count()

    # -- introspection ---------------------------------------------------------

    def applications(self) -> list[str]:
        """Names of the registered benchmark applications."""
        return suite.all_application_names()

    def variant_names(self) -> list[str]:
        """Names of the registered build variants."""
        return all_variant_names()

    def cached_builds(self) -> int:
        """Number of memoized build records in this session."""
        with self._lock:
            return len(self._records) + len(self._unregistered)

    # -- building --------------------------------------------------------------

    @staticmethod
    def _as_build_spec(spec: Union[BuildSpec, str],
                       variant: Union[str, BuildVariant, None]) -> BuildSpec:
        if isinstance(spec, BuildSpec):
            if variant is not None:
                raise TypeError("pass the variant inside the BuildSpec")
            return spec
        if variant is None:
            return BuildSpec(app=spec)
        name = variant.name if isinstance(variant, BuildVariant) else variant
        return BuildSpec(app=spec, variant=name)

    def build(self, spec: Union[BuildSpec, str],
              variant: Union[str, BuildVariant, None] = None) -> BuildRecord:
        """Build one registered application; memoized by content key.

        Accepts a :class:`BuildSpec` or an application name plus optional
        variant (default: the paper's headline ``safe-optimized``).
        """
        spec = self._as_build_spec(spec, variant)
        key = spec.content_key()
        with self._lock:
            record = self._records.get(key)
        if record is not None:
            return record
        if self._missing_after_store([spec]):
            self._execute([spec])
        with self._lock:
            return self._records[key]

    def build_result(self, spec: Union[BuildSpec, str],
                     variant: Union[str, BuildVariant, None] = None,
                     ) -> BuildResult:
        """Like :meth:`build`, but returns the full in-process result.

        If the record was admitted by a process-pool sweep (summary only),
        the build is re-run in-process — programs do not cross process
        boundaries.
        """
        spec = self._as_build_spec(spec, variant)
        key = spec.content_key()
        with self._lock:
            result = self._results.get(key)
        if result is not None:
            return result
        # The artifact store holds records, not live programs — a full
        # result always builds in-process (resuming from any stored
        # front-end snapshot of the application).
        self._execute([spec])
        with self._lock:
            return self._results[key]

    def sweep(self, spec: Union[SweepSpec, None] = None, *,
              apps: Optional[list[str]] = None,
              variants: Optional[list[str]] = None) -> list[BuildRecord]:
        """Build an N-app × M-variant cross product, in (app, variant) order.

        Builds already memoized are not re-run; the rest are batched through
        :class:`~repro.toolchain.sweep.SweepRunner` with prefix sharing.
        """
        if spec is None:
            spec = SweepSpec(apps=tuple(apps or ()),
                             variants=tuple(variants or ()))
        specs = spec.build_specs()
        with self._lock:
            missing = [s for s in specs
                       if s.content_key() not in self._records]
        missing = self._missing_after_store(missing)
        if missing:
            self._execute(missing)
        with self._lock:
            return [self._records[s.content_key()] for s in specs]

    def submit(self, spec: SweepSpec, *,
               processes: Optional[int] = None) -> "Future[list[BuildRecord]]":
        """Run a sweep concurrently on the process pool; returns a future.

        The future resolves to the sweep's records in (app, variant) order.
        Pooled builds carry summaries only — use :meth:`build_result` when a
        program or image is needed (it rebuilds in-process).
        """
        workers = processes or self.processes or min(4, os.cpu_count() or 1)

        def run_pooled() -> list[BuildRecord]:
            specs = spec.build_specs()
            with self._lock:
                missing = [s for s in specs
                           if s.content_key() not in self._records]
            missing = self._missing_after_store(missing)
            with self._execute_lock:
                for variant_names, apps in self._grouped(missing):
                    runner = SweepRunner(
                        apps,
                        [variant_by_name(name) for name in variant_names],
                        share_front_end=self.share_front_end,
                        processes=workers)
                    for build in runner.run():
                        self._admit(build)
            with self._lock:
                return [self._records[s.content_key()] for s in specs]

        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="workbench")
            return self._executor.submit(run_pooled)

    def build_unregistered(self, app: Union[str, Application],
                           variant: BuildVariant) -> BuildResult:
        """Build a custom application and/or an unregistered variant.

        This is the compatibility path behind
        :meth:`repro.core.SafeTinyOS.build`: the build still routes through
        the sweep runner (sharing front-end snapshots where possible) but is
        memoized by identity instead of content key, since ad-hoc
        applications and variants have no stable serialized name.
        """
        if isinstance(app, str):
            ident: tuple = ("app", app)
            store = self._snapshots  # keyed by pass cache keys: shareable
        else:
            ident = ("object", id(app))
            store = self._object_snapshots.get(id(app), {})
        key = (ident, variant)
        with self._lock:
            cached = self._unregistered.get(key)
        if cached is not None:
            return cached[1]
        with self._execute_lock:
            runner = SweepRunner([app], [variant],
                                 share_front_end=self.share_front_end,
                                 snapshot_store=store)
            build = runner.run().builds[0]
        with self._lock:
            self._unregistered[key] = (app, build.result)
            if not isinstance(app, str):
                # Commit the object's snapshot store only after a successful
                # build: the pin above keeps ``id(app)`` unambiguous, and a
                # failed build leaves no stale snapshots behind for a later
                # object that happens to reuse the id.
                self._object_snapshots[id(app)] = store
        return build.result

    # -- simulation ------------------------------------------------------------

    def simulate(self, spec: SimSpec) -> SimRecord:
        """Build (memoized) and simulate one application; returns a record.

        The simulation runs on the lockstep network kernel with the
        spec's topology, loss rate and seed; per-node packet and traffic
        statistics land in the record.  With ``spec.plan_cache`` set, the
        program's lowering plans are hydrated from the persistent store
        before the run (a warm start performs zero lowerings — including
        the sharded kernel's pre-fork warm) and persisted after it.  With
        a session :attr:`store`, a previously recorded identical spec is
        served straight from disk — no build, no simulation.

        Chaos: ``spec.chaos`` (or, when that is None, the ``REPRO_CHAOS``
        environment variable) arms the sharded kernel's fault injection.
        An execution knob like ``spec.workers`` — recovery keeps the
        results bit-identical, so the memoization key is unchanged and a
        cached fault-free record legitimately satisfies a chaos request.
        """
        key = spec.content_key()
        with self._lock:
            cached = self._sim_records.get(key)
        if cached is not None:
            return cached
        stored = self._record_from_store(key, SimRecord.from_dict)
        if stored is not None:
            with self._lock:
                return self._sim_records.setdefault(key, stored)
        with self._execute_lock:
            result = self.build_result(spec.build_spec())
            attach = plan_store_attach(
                spec.plan_cache, spec.build_spec().content_key(),
                result.program)
            traffic = duty_cycle_context(spec.app) \
                if spec.traffic in (TRAFFIC_DEFAULT, TRAFFIC_BASE) else None
            channel = Channel(topology=spec.topology, loss=spec.loss,
                              seed=spec.seed)
            chaos = spec.chaos if spec.chaos is not None \
                else ChaosPolicy.from_env()
            network = run_network(
                result.program, seconds=spec.seconds,
                node_count=spec.node_count, traffic=traffic, channel=channel,
                traffic_first_node_only=(spec.traffic == TRAFFIC_BASE),
                workers=spec.workers, chaos=chaos)
            code_cache = plan_store_persist(attach, result.program)
        stats = network.node_stats()
        record = SimRecord(
            app=spec.app,
            variant=spec.variant,
            content_key=key,
            node_count=spec.node_count,
            seconds=spec.seconds,
            topology=spec.topology,
            duty_cycles=tuple(node.duty_cycle() for node in network.nodes),
            packets_sent=tuple(s["packets_sent"] for s in stats),
            packets_received=tuple(s["packets_received"] for s in stats),
            injected_radio=tuple(s["injected_radio"] for s in stats),
            injected_uart=tuple(s["injected_uart"] for s in stats),
            packets_delivered=network.delivered_packets,
            packets_lost=network.lost_packets,
            failures=sum(len(node.failures) for node in network.nodes),
            halted=any(node.halted for node in network.nodes),
            led_changes=sum(node.leds.state.changes for node in network.nodes),
            superblocks=network.superblock_stats(),
            workers=spec.workers,
            shards=tuple(network.shard_stats),
            code_cache=code_cache,
            recovery=dict(network.recovery_stats),
        )
        with self._lock:
            self._simulations_executed += 1
            record = self._sim_records.setdefault(key, record)
        if self.store is not None:
            self.store.store_record(key, record.to_dict())
        return record

    # -- scenarios -------------------------------------------------------------

    def run_scenario(self, spec: ScenarioSpec) -> ScenarioRecord:
        """Execute one fault plan across build variants; returns the matrix.

        Builds are memoized as usual; each variant then gets one fault-free
        golden run (cached on the session-persistent scenario runner) plus
        one faulted run per fault in the plan, and every (variant, fault)
        cell is classified against the verdict lattice of
        :mod:`repro.scenarios.runner`.  The record is memoized by the
        spec's content key — like simulations, a scenario is a pure
        function of its spec, so equal specs share one execution.
        """
        key = spec.content_key()
        with self._lock:
            cached = self._scenario_records.get(key)
        if cached is not None:
            return cached
        stored = self._record_from_store(key, ScenarioRecord.from_dict)
        if stored is not None:
            with self._lock:
                return self._scenario_records.setdefault(key, stored)
        with self._lock:
            if self._scenario_runner is None:
                from repro.scenarios.runner import ScenarioRunner
                self._scenario_runner = ScenarioRunner(self)
            runner = self._scenario_runner
        with self._execute_lock:
            outcome = runner.run(spec)
        record = ScenarioRecord(
            app=spec.app,
            content_key=key,
            node_count=spec.node_count,
            seconds=spec.seconds,
            topology=spec.topology,
            seed=spec.seed,
            variants=spec.variants,
            faults=tuple(spec.plan.labels()),
            verdicts=outcome["verdicts"],
            details=outcome["details"],
            golden=outcome["golden"],
            workers=spec.workers,
        )
        with self._lock:
            self._scenarios_executed += 1
            record = self._scenario_records.setdefault(key, record)
        if self.store is not None:
            self.store.store_record(key, record.to_dict())
        return record

    # -- engine ----------------------------------------------------------------

    @staticmethod
    def _grouped(specs: list[BuildSpec]) -> list[tuple[tuple[str, ...],
                                                       list[str]]]:
        """Group build specs so applications requesting the same variant set
        batch into one runner call (maximal prefix sharing)."""
        by_app: dict[str, list[str]] = {}
        for spec in specs:
            variants = by_app.setdefault(spec.app, [])
            if spec.variant not in variants:
                variants.append(spec.variant)
        groups: dict[tuple[str, ...], list[str]] = {}
        for app, variant_names in by_app.items():
            groups.setdefault(tuple(variant_names), []).append(app)
        return list(groups.items())

    def _execute(self, specs: list[BuildSpec]) -> None:
        """Run builds in-process via the sweep runner and admit the results.

        With a session :attr:`store`, each application's persistent prefix
        snapshots are hydrated from disk first (so even a cold session
        skips the nesC front end for known applications) and any snapshots
        this execution minted are persisted back afterwards.
        """
        with self._execute_lock:
            for variant_names, apps in self._grouped(specs):
                variants = [variant_by_name(name) for name in variant_names]
                if self.store is not None:
                    for app in apps:
                        self._hydrate_snapshots(app, variants)
                runner = SweepRunner(
                    apps, variants,
                    share_front_end=self.share_front_end,
                    snapshot_store=self._snapshots)
                for build in runner.run():
                    self._admit(build)
                if self.store is not None:
                    for app in apps:
                        self._persist_snapshots(app, variants)

    def _admit(self, build) -> None:
        """Merge one :class:`~repro.toolchain.sweep.SweepBuild` into the caches."""
        key = BuildSpec(app=build.application,
                        variant=build.variant_name).content_key()
        passes: tuple[str, ...] = ()
        wall_time_s = 0.0
        if build.result is not None and build.result.trace is not None:
            passes = tuple(build.result.trace.pass_names())
            wall_time_s = build.result.trace.wall_time_s
        record = BuildRecord.from_summary(build.summary, key,
                                          passes=passes,
                                          wall_time_s=wall_time_s)
        with self._lock:
            self._builds_executed += 1
            existing = self._records.get(key)
            if existing is None or (not existing.passes and passes):
                # First admission wins, except that an in-process rebuild
                # upgrades a summary-only record from a pooled sweep with
                # its pass trace.
                self._records[key] = record
            if build.result is not None and key not in self._results:
                self._results[key] = build.result
            admitted = self._records[key]
        if self.store is not None:
            self.store.store_record(key, admitted.to_dict())

    # -- artifact store --------------------------------------------------------

    def _record_from_store(self, key: str, loader) -> Optional[object]:
        """One record from the artifact store, deserialized, or None."""
        if self.store is None:
            return None
        payload = self.store.load_record(key)
        if payload is None:
            return None
        return loader(payload)

    def _missing_after_store(self, specs: list[BuildSpec]) -> list[BuildSpec]:
        """Admit store-served build records; return the specs still missing.

        This is the warm-hit fast path: a spec served here executes zero
        passes and zero lowerings (:meth:`stats` proves it).
        """
        if self.store is None:
            return list(specs)
        missing: list[BuildSpec] = []
        for spec in specs:
            key = spec.content_key()
            record = self._record_from_store(key, BuildRecord.from_dict)
            if record is None:
                missing.append(spec)
                continue
            with self._lock:
                self._records.setdefault(key, record)
        return missing

    def _snapshot_entries(self, app: str,
                          variants: list[BuildVariant]) -> list[tuple]:
        """(store key, prefix) for every persistent snapshot point."""
        entries: list[tuple] = []
        seen: set[tuple[str, ...]] = set()
        for variant in variants:
            for prefix in persistent_prefixes(variant):
                if prefix in seen:
                    continue
                seen.add(prefix)
                entries.append(
                    (snapshot_key(app, prefix, SCHEMA_VERSION), prefix))
        return entries

    def _hydrate_snapshots(self, app: str,
                           variants: list[BuildVariant]) -> None:
        """Fill the session snapshot store from disk before building.

        Builds resume from the *longest* snapshotted prefix, so for each
        variant disk is probed longest-first and the probe stops at the
        first hit — shorter prefixes could never be resumed from anyway.
        """
        snapshots = self._snapshots.setdefault(app, {})
        for variant in variants:
            for prefix in reversed(persistent_prefixes(variant)):
                if prefix in snapshots:
                    break  # the longest available prefix wins
                key = snapshot_key(app, prefix, SCHEMA_VERSION)
                if key in self._snapshot_keys_done:
                    continue
                payload = self.store.load_snapshot(key)
                # Hit or miss, never consult disk for this key again: a
                # miss means the build right below mints (and persists)
                # the snapshot itself.
                self._snapshot_keys_done.add(key)
                if payload is not None:
                    snapshots[prefix] = payload
                    break

    def _persist_snapshots(self, app: str,
                           variants: list[BuildVariant]) -> None:
        """Write snapshots this session minted at persistent points."""
        snapshots = self._snapshots.get(app, {})
        for key, prefix in self._snapshot_entries(app, variants):
            snapshot = snapshots.get(prefix)
            if snapshot is None:
                continue
            if key in self._snapshot_keys_done and \
                    self.store.has_snapshot(key):
                continue
            self.store.store_snapshot(key, snapshot)
            self._snapshot_keys_done.add(key)

    # -- telemetry -------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Counter-proof of what this session actually executed.

        ``passes_executed`` counts passes run by this process since the
        workbench was constructed (prefix-snapshot resumes and store hits
        never run a pass), ``lowerings`` counts simulator front-end
        lowerings across the session's live programs, and ``store`` is
        the artifact store's hit/miss/store/eviction counters.  A warm
        store serving a previously recorded spec shows zeros across the
        board — that is the claim the CI smoke legs assert.
        """
        with self._lock:
            results = list(self._results.values())
            counters = {
                "builds_executed": self._builds_executed,
                "simulations_executed": self._simulations_executed,
                "scenarios_executed": self._scenarios_executed,
            }
            store_stats = dict(self.store.stats()) \
                if self.store is not None else {}
        lowerings = 0
        for result in results:
            lowerings += result.program.analysis().code_cache().lowerings
        return {
            "passes_executed": executed_pass_count() - self._passes_at_init,
            **counters,
            "lowerings": lowerings,
            "store": store_stats,
        }

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        """Drop every session cache (records, results, snapshots, sims).

        Long-lived sessions retain full build results and per-application
        prefix snapshots indefinitely; call this to release them without
        discarding the Workbench itself.
        """
        with self._lock:
            self._records.clear()
            self._results.clear()
            self._sim_records.clear()
            self._scenario_records.clear()
            self._scenario_runner = None
            self._snapshots.clear()
            self._snapshot_keys_done.clear()
            self._unregistered.clear()
            self._object_snapshots.clear()

    def shutdown(self) -> None:
        """Stop the background executor (pending futures still complete)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "Workbench":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
