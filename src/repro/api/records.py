"""Typed, JSON-round-trippable result records.

Records are the serializable projection of a build or simulation: plain
frozen dataclasses of numbers and strings that survive process boundaries
(the process-pool sweep mode returns exactly these), can be written to disk,
and reload with ``from_dict(to_dict(record)) == record``.  The live objects
— programs, memory images, FLID tables — stay inside the
:class:`~repro.api.workbench.Workbench` session that produced them; ask it
for the full :class:`~repro.toolchain.pipeline.BuildResult` when you need
them.

``BuildRecord.summary()`` reproduces ``BuildResult.summary()`` field for
field, so records and the sweep benchmarks
(``benchmarks/bench_pipeline_sweep.py``) speak the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.specs import SCHEMA_VERSION


@dataclass(frozen=True)
class BuildRecord:
    """One finished build: the numbers the paper's figures report.

    Attributes:
        app: Figure label of the application.
        variant: Build variant name.
        content_key: The producing :class:`~repro.api.specs.BuildSpec`'s
            content key (memoization identity).
        code_bytes: Flash footprint of the final image.
        ram_bytes: Static RAM footprint (data + bss + RAM strings).
        checks_inserted: Safety checks CCured inserted (0 for unsafe builds).
        checks_surviving: Checks remaining in the final image.
        passes: Names of the executed passes, in order (empty when the
            producing sweep carried summaries only).
        wall_time_s: Build wall time attributed to this build's pass list.
    """

    app: str
    variant: str
    content_key: str
    code_bytes: int
    ram_bytes: int
    checks_inserted: int
    checks_surviving: int
    passes: tuple[str, ...] = ()
    wall_time_s: float = 0.0

    @property
    def checks_removed(self) -> int:
        return self.checks_inserted - self.checks_surviving

    @property
    def checks_removed_fraction(self) -> float:
        if self.checks_inserted == 0:
            return 0.0
        return self.checks_removed / self.checks_inserted

    def summary(self) -> dict[str, object]:
        """The exact ``BuildResult.summary()`` dictionary for this build."""
        return {
            "application": self.app,
            "variant": self.variant,
            "code_bytes": self.code_bytes,
            "ram_bytes": self.ram_bytes,
            "checks_inserted": self.checks_inserted,
            "checks_surviving": self.checks_surviving,
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "build-record",
            "schema": SCHEMA_VERSION,
            "app": self.app,
            "variant": self.variant,
            "content_key": self.content_key,
            "code_bytes": self.code_bytes,
            "ram_bytes": self.ram_bytes,
            "checks_inserted": self.checks_inserted,
            "checks_surviving": self.checks_surviving,
            "passes": list(self.passes),
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BuildRecord":
        return cls(
            app=data["app"],
            variant=data["variant"],
            content_key=data["content_key"],
            code_bytes=data["code_bytes"],
            ram_bytes=data["ram_bytes"],
            checks_inserted=data["checks_inserted"],
            checks_surviving=data["checks_surviving"],
            passes=tuple(data.get("passes", ())),
            wall_time_s=data.get("wall_time_s", 0.0),
        )

    @classmethod
    def from_summary(cls, summary: dict, content_key: str,
                     passes: tuple[str, ...] = (),
                     wall_time_s: float = 0.0) -> "BuildRecord":
        """Build a record from a ``BuildResult.summary()`` dictionary."""
        return cls(
            app=summary["application"],
            variant=summary["variant"],
            content_key=content_key,
            code_bytes=summary["code_bytes"],
            ram_bytes=summary["ram_bytes"],
            checks_inserted=summary["checks_inserted"],
            checks_surviving=summary["checks_surviving"],
            passes=passes,
            wall_time_s=wall_time_s,
        )


@dataclass(frozen=True)
class SimRecord:
    """One finished simulation: per-node duty cycles, packets and failures.

    Attributes:
        app: Figure label of the simulated application.
        variant: Build variant that produced the simulated image.
        content_key: The producing :class:`~repro.api.specs.SimSpec`'s
            content key.
        node_count: Number of simulated motes.
        seconds: Simulated virtual seconds.
        topology: Radio-channel topology the nodes were wired in.
        duty_cycles: Per-node duty cycle, in node order.
        packets_sent: Per-node radio transmissions, in node order.
        packets_received: Per-node packets accepted by the radio.
        injected_radio: Per-node synthetic radio packets injected.
        injected_uart: Per-node synthetic UART frames injected.
        packets_delivered: Packets delivered across the air, network-wide.
        packets_lost: Packets the lossy channel dropped, network-wide.
        failures: Total safety failures reported across all nodes.
        halted: Whether any node halted.
        led_changes: Total LED state changes across all nodes (the cheap
            behavioural fingerprint the examples compare).
        superblocks: Engine superblock/fast-path statistics summed over
            every node (``Network.superblock_stats``): fused statement
            counts, fast/slow entry counts, burst iterations and the
            fused fraction.  Empty for records predating the field.
        workers: Worker processes the simulation actually ran with.
            Informational only: results are bit-identical across worker
            counts, so two records differing only here are the same
            simulation.
        shards: Per-shard execution statistics from the sharded kernel
            (``Network.shard_stats``): node range, window-grant rounds,
            boundary packet traffic, sync-wait and wall time.  Empty for
            in-process runs and records predating the field.
        code_cache: Lowering/plan-cache telemetry: the shared in-process
            ``CodeCache`` counters (``functions``, ``lowerings``,
            ``plan_hits``, ``disk_loads``) plus, when a persistent plan
            store was configured, its ``store_*`` counters and directory.
            A warm start shows ``lowerings == 0`` here.  Execution
            telemetry like ``workers``/``shards``: not part of the
            simulation's identity.  Empty for records predating the
            field.
        recovery: Fault-tolerance telemetry from the sharded kernel
            (``Network.recovery_stats``): worker respawns, replayed
            window rounds, checkpoints shipped and their total bytes,
            chaos kills consumed, recovery wall time.  All zeros for an
            undisturbed run; empty for in-process runs and records
            predating the field.  Execution telemetry — the simulation
            results are bit-identical whether or not recovery ran.
    """

    app: str
    variant: str
    content_key: str
    node_count: int
    seconds: float
    duty_cycles: tuple[float, ...]
    failures: int
    halted: bool
    led_changes: int
    topology: str = "broadcast"
    packets_sent: tuple[int, ...] = ()
    packets_received: tuple[int, ...] = ()
    injected_radio: tuple[int, ...] = ()
    injected_uart: tuple[int, ...] = ()
    packets_delivered: int = 0
    packets_lost: int = 0
    #: hash=False keeps the frozen record hashable (dicts are not); the
    #: field still participates in equality.
    superblocks: dict = field(default_factory=dict, hash=False)
    workers: int = 1
    shards: tuple = field(default=(), hash=False)
    code_cache: dict = field(default_factory=dict, hash=False)
    recovery: dict = field(default_factory=dict, hash=False)

    @property
    def duty_cycle(self) -> float:
        """Duty cycle of the first node (the paper's single-mote metric)."""
        if not self.duty_cycles:
            raise ValueError(f"simulation of {self.app} × {self.variant} "
                             f"recorded no nodes")
        return self.duty_cycles[0]

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "sim-record",
            "schema": SCHEMA_VERSION,
            "app": self.app,
            "variant": self.variant,
            "content_key": self.content_key,
            "node_count": self.node_count,
            "seconds": self.seconds,
            "topology": self.topology,
            "duty_cycles": list(self.duty_cycles),
            "packets_sent": list(self.packets_sent),
            "packets_received": list(self.packets_received),
            "injected_radio": list(self.injected_radio),
            "injected_uart": list(self.injected_uart),
            "packets_delivered": self.packets_delivered,
            "packets_lost": self.packets_lost,
            "failures": self.failures,
            "halted": self.halted,
            "led_changes": self.led_changes,
            "superblocks": dict(self.superblocks),
            "workers": self.workers,
            "shards": [dict(shard) for shard in self.shards],
            "code_cache": dict(self.code_cache),
            "recovery": dict(self.recovery),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimRecord":
        return cls(
            app=data["app"],
            variant=data["variant"],
            content_key=data["content_key"],
            node_count=data["node_count"],
            seconds=data["seconds"],
            topology=data.get("topology", "broadcast"),
            duty_cycles=tuple(data["duty_cycles"]),
            packets_sent=tuple(data.get("packets_sent", ())),
            packets_received=tuple(data.get("packets_received", ())),
            injected_radio=tuple(data.get("injected_radio", ())),
            injected_uart=tuple(data.get("injected_uart", ())),
            packets_delivered=data.get("packets_delivered", 0),
            packets_lost=data.get("packets_lost", 0),
            failures=data["failures"],
            halted=data["halted"],
            led_changes=data["led_changes"],
            superblocks=dict(data.get("superblocks", {})),
            workers=data.get("workers", 1),
            shards=tuple(dict(shard) for shard in data.get("shards", ())),
            code_cache=dict(data.get("code_cache", {})),
            recovery=dict(data.get("recovery", {})),
        )


@dataclass(frozen=True)
class ScenarioRecord:
    """One finished fault scenario: the variant × fault verdict matrix.

    Attributes:
        app: Application every variant built.
        content_key: The producing
            :class:`~repro.api.specs.ScenarioSpec`'s content key.
        node_count: Motes per simulated network.
        seconds: Virtual seconds per run.
        topology: Channel topology the runs were wired in.
        seed: Channel seed shared by every run.
        variants: Matrix columns, in build order.
        faults: Matrix rows — human-readable fault labels from
            ``FaultPlan.labels()`` (unique within the plan).
        verdicts: ``verdicts[fault_index][variant_index]`` — one of
            ``detected`` / ``crash`` / ``silent-corruption`` / ``benign``
            (see :mod:`repro.scenarios.runner`).  A pure function of the
            spec: bit-identical across reruns and worker counts.
        details: Per-cell diagnostics keyed ``"<fault label>|<variant>"``
            (failure totals, halted/diverged node positions, memory
            violations) — worker-invariant by construction.
        golden: Golden-run cache statistics of the producing runner:
            ``{"runs": ..., "cache_hits": ...}``.  Execution telemetry,
            not identity.
        workers: Worker processes the runs actually used (informational,
            like :class:`SimRecord`'s).
    """

    app: str
    content_key: str
    node_count: int
    seconds: float
    topology: str
    seed: int
    variants: tuple[str, ...]
    faults: tuple[str, ...]
    verdicts: tuple[tuple[str, ...], ...]
    details: dict = field(default_factory=dict, hash=False)
    golden: dict = field(default_factory=dict, hash=False)
    workers: int = 1

    def verdict(self, fault: str, variant: str) -> str:
        """The verdict for one (fault label, variant) cell."""
        return self.verdicts[self.faults.index(fault)][
            self.variants.index(variant)]

    def counts(self, variant: str) -> dict[str, int]:
        """How many faults landed in each verdict class for ``variant``."""
        column = self.variants.index(variant)
        tally: dict[str, int] = {}
        for row in self.verdicts:
            tally[row[column]] = tally.get(row[column], 0) + 1
        return tally

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "scenario-record",
            "schema": SCHEMA_VERSION,
            "app": self.app,
            "content_key": self.content_key,
            "node_count": self.node_count,
            "seconds": self.seconds,
            "topology": self.topology,
            "seed": self.seed,
            "variants": list(self.variants),
            "faults": list(self.faults),
            "verdicts": [list(row) for row in self.verdicts],
            "details": {key: dict(value)
                        for key, value in self.details.items()},
            "golden": dict(self.golden),
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioRecord":
        return cls(
            app=data["app"],
            content_key=data["content_key"],
            node_count=data["node_count"],
            seconds=data["seconds"],
            topology=data.get("topology", "chain"),
            seed=data.get("seed", 0),
            variants=tuple(data["variants"]),
            faults=tuple(data["faults"]),
            verdicts=tuple(tuple(row) for row in data["verdicts"]),
            details={key: dict(value)
                     for key, value in data.get("details", {}).items()},
            golden=dict(data.get("golden", {})),
            workers=data.get("workers", 1),
        )
