"""``repro.api`` v1 — the declarative, cache-routed Workbench API.

The paper's whole evaluation is "N apps × M variants, build, then measure";
this package makes that the shape of the public surface:

* **Specs** (:mod:`repro.api.specs`) — frozen, JSON-round-trippable request
  dataclasses (:class:`BuildSpec`, :class:`SweepSpec`, :class:`SimSpec`)
  with stable content keys derived from the pass list's cache keys.
* **Workbench** (:mod:`repro.api.workbench`) — the single execution engine:
  every build routes through the sweep runner's prefix-sharing front-end
  cache, results are memoized by content key for the session, and
  ``submit()`` runs sweeps concurrently on the process pool.
* **Records** (:mod:`repro.api.records`) — typed results
  (:class:`BuildRecord`, :class:`SimRecord`) with ``to_dict``/``from_dict``
  so they survive process boundaries and can be written to disk.
* **CLI** (:mod:`repro.api.cli`) — ``python -m repro`` with ``list``,
  ``build``, ``sweep``, ``simulate`` and ``figures`` subcommands emitting
  JSON or aligned tables.
* **Store** (:mod:`repro.store`) — a persistent content-addressed
  :class:`ArtifactStore` the workbench routes through (``--store DIR``):
  identical specs are served from disk in microseconds, with zero passes
  executed.
* **Job service** (:mod:`repro.api.server` / :mod:`repro.api.client`) —
  ``python -m repro serve`` shares one workbench and one store across
  HTTP clients, deduplicating racing identical submissions onto one job.

Example::

    from repro.api import BuildSpec, SweepSpec, Workbench

    with Workbench() as bench:
        record = bench.build(BuildSpec(app="BlinkTask_Mica2",
                                       variant="safe-optimized"))
        print(record.code_bytes, record.checks_removed)
        sweep = bench.sweep(SweepSpec(apps=("Surge_Mica2", "Ident_Mica2"),
                                      variants=("baseline", "safe-optimized")))
"""

from repro.api.client import RemoteClient, RemoteError
from repro.api.records import BuildRecord, ScenarioRecord, SimRecord
from repro.api.specs import (
    SCHEMA_VERSION,
    BuildSpec,
    ScenarioSpec,
    SimSpec,
    SweepSpec,
    spec_from_dict,
)
from repro.api.workbench import Workbench, run_network
from repro.scenarios.faults import FaultPlan
from repro.store import ArtifactStore

__all__ = [
    "BuildSpec",
    "SweepSpec",
    "SimSpec",
    "ScenarioSpec",
    "FaultPlan",
    "BuildRecord",
    "SimRecord",
    "ScenarioRecord",
    "Workbench",
    "run_network",
    "SCHEMA_VERSION",
    "spec_from_dict",
    "ArtifactStore",
    "RemoteClient",
    "RemoteError",
]
