"""The paper's figures, reconstructed from Workbench records.

One definition of each figure — its variant set, metric and percent-change
math — shared by the figure benchmarks (``benchmarks/bench_fig2...``,
``bench_fig3a/3b/3c``) and ``python -m repro figures``, so the two surfaces
can never drift apart.  Each builder takes a
:class:`~repro.api.workbench.Workbench` and assembles a
:class:`~repro.toolchain.report.FigureTable` purely from records; builds
and simulations are memoized by the session, so assembling several figures
reuses one build per configuration, exactly like the paper's evaluation.
"""

from __future__ import annotations

from repro.api.specs import SimSpec
from repro.api.workbench import Workbench
from repro.tinyos.suite import MICA2_APPS
from repro.toolchain.report import FigureTable, percent_change
from repro.toolchain.variants import (
    BASELINE,
    FIGURE2_STRATEGIES,
    FIGURE3_VARIANTS,
    SAFE_FLID,
    SAFE_FLID_CXPROP,
    SAFE_OPTIMIZED,
    UNSAFE_OPTIMIZED,
)

#: Bar labels of Figure 2, in ``FIGURE2_STRATEGIES`` order.
FIGURE2_LABELS = ["gcc", "ccured+gcc", "ccured+cxprop+gcc",
                  "ccured+inline+cxprop+gcc"]

#: The four build variants measured in Figure 3(c), in figure order.
FIGURE3C_VARIANTS = [SAFE_FLID, SAFE_FLID_CXPROP, SAFE_OPTIMIZED,
                     UNSAFE_OPTIMIZED]

#: Simulated seconds per Figure 3(c) measurement (the paper uses 180 s;
#: these workloads are periodic, so a shorter window converges to the same
#: duty cycle).
FIGURE3C_SIM_SECONDS = 3.0


def figure2_table(workbench: Workbench, apps: list[str]) -> FigureTable:
    """Figure 2: checks removed, as a percentage of checks CCured inserted."""
    table = FigureTable(
        title="Figure 2: checks removed (percent of checks inserted by CCured)",
        metric="checks removed (%)",
        applications=list(apps),
    )
    series = [table.add_series(label) for label in FIGURE2_LABELS]
    for app in apps:
        for index, variant in enumerate(FIGURE2_STRATEGIES):
            record = workbench.build(app, variant)
            table.baselines[app] = float(record.checks_inserted)
            series[index].values[app] = 100.0 * record.checks_removed_fraction
    return table


def _figure3_size_table(workbench: Workbench, apps: list[str], metric: str,
                        title: str) -> FigureTable:
    table = FigureTable(title=title, metric=metric, applications=list(apps))
    series = {variant.name: table.add_series(variant.name)
              for variant in FIGURE3_VARIANTS}
    for app in apps:
        baseline = workbench.build(app, BASELINE)
        base_value = getattr(baseline, metric)
        table.baselines[app] = float(base_value)
        for variant in FIGURE3_VARIANTS:
            record = workbench.build(app, variant)
            series[variant.name].values[app] = percent_change(
                getattr(record, metric), base_value)
    return table


def figure3a_table(workbench: Workbench, apps: list[str]) -> FigureTable:
    """Figure 3(a): change in code (flash) size vs the unsafe baseline."""
    return _figure3_size_table(
        workbench, apps, "code_bytes",
        "Figure 3(a): change in code size vs unsafe/unoptimized baseline")


def figure3b_table(workbench: Workbench, apps: list[str]) -> FigureTable:
    """Figure 3(b): change in static data size vs the unsafe baseline."""
    return _figure3_size_table(
        workbench, apps, "ram_bytes",
        "Figure 3(b): change in static data size vs baseline (unclipped)")


def figure3c_table(workbench: Workbench, apps: list[str],
                   seconds: float = FIGURE3C_SIM_SECONDS) -> FigureTable:
    """Figure 3(c): change in processor duty cycle vs the unsafe baseline.

    Mica2 applications only (Avrora models the Mica2); each is simulated in
    its duty-cycle traffic context for ``seconds`` virtual seconds.
    """
    mica2 = [app for app in apps if app in MICA2_APPS]
    table = FigureTable(
        title="Figure 3(c): change in duty cycle vs unsafe/unoptimized baseline",
        metric="duty cycle change (%)",
        applications=mica2,
    )
    series = {variant.name: table.add_series(variant.name)
              for variant in FIGURE3C_VARIANTS}
    for app in mica2:
        baseline = workbench.simulate(
            SimSpec(app=app, variant=BASELINE.name, seconds=seconds))
        baseline_duty = baseline.duty_cycle * 100.0
        table.baselines[app] = baseline_duty
        for variant in FIGURE3C_VARIANTS:
            run = workbench.simulate(
                SimSpec(app=app, variant=variant.name, seconds=seconds))
            series[variant.name].values[app] = percent_change(
                run.duty_cycle * 100.0, baseline_duty)
    return table
