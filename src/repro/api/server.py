"""A thin async job service over one shared :class:`Workbench`.

``python -m repro serve --store DIR`` starts an HTTP front end that turns
spec dictionaries into records: clients POST a serialized spec to
``/submit`` and poll (or block on) ``/result/<key>``.  Three properties
make the service cheap to run and cheap to call:

* **Content-keyed jobs.**  A job's identity *is* its spec's content key,
  so submitting the same spec twice — from one client or from two racing
  clients — never creates a second job: the second submission attaches to
  the first job's future (``dedup_inflight``), and a spec whose job
  already finished is answered from the completed future (``dedup_done``).
* **One workbench, one store.**  Every job runs through a single
  :class:`~repro.api.workbench.Workbench` bound to the server's artifact
  store, so the session caches, prefix snapshots and disk store are shared
  across all clients — a spec any client ever built is a warm hit for
  every later client, across server restarts.
* **Stdlib only.**  The server is a
  :class:`~http.server.ThreadingHTTPServer` plus a
  :class:`~concurrent.futures.ThreadPoolExecutor`; the workbench's
  execution lock serializes the heavy pass pipelines, so concurrency buys
  admission and store-served reads, not parallel builds.

Protocol (all bodies JSON)::

    POST /submit          {"spec": {...}} or a bare spec dict
                          -> {"key", "kind", "state"}
    GET  /status/<key>    -> {"key", "kind", "state"}   (pending|running|
                                                         done|failed)
    GET  /result/<key>    -> the record dict; blocks up to ?timeout=S
                             (default 60) while the job runs
    GET  /stats           -> service + workbench + store counters
    GET  /healthz         -> {"ok": true}

Errors: 400 for an undecodable or unknown-kind spec, 404 for an unknown
key, 504 when a result times out, 500 (with the exception text and a
failure-taxonomy ``error_kind``) when the job itself failed, 503 with a
``Retry-After`` hint while the service drains.

**Robustness.**  Jobs can carry a server-side wall-clock limit
(``job_timeout_s``): a job that outlives it is marked failed with
``error_kind: "timeout"`` instead of silently occupying a worker slot
forever (the stuck thread is abandoned — Python threads cannot be
killed — but the job table moves on and the client gets an answer).
Failed jobs record a taxonomy — ``timeout`` / ``rejected`` (the spec
itself was unusable) / ``crashed`` (an unexpected exception) — in their
descriptions and ``/result`` errors.  ``serve`` installs a SIGTERM
handler for graceful shutdown: the listener stops accepting, in-flight
jobs drain to completion (their records land in the artifact store), and
only then does the process exit.  ``REPRO_CHAOS_HTTP=N`` makes the next
N non-health requests fail with an injected HTTP 500 — the hook the
client's retry tests and CI chaos leg use.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.api.specs import (
    BuildSpec,
    ScenarioSpec,
    SimSpec,
    SweepSpec,
    spec_from_dict,
)
from repro.api.workbench import Workbench

logger = logging.getLogger(__name__)

#: Default seconds a ``/result`` request blocks on a running job.
RESULT_TIMEOUT_S = 60.0


class ServiceDraining(RuntimeError):
    """Submission rejected: the service is shutting down gracefully."""


class JobTimeout(RuntimeError):
    """A job exceeded the service's per-job wall-clock limit."""


def _classify_failure(exc: BaseException) -> str:
    """The failure taxonomy: why did this job fail?

    ``rejected`` means the spec itself was unusable (validation-style
    errors surfacing at execution time); ``crashed`` is everything
    unexpected.  ``timeout`` is assigned at the timeout site, not here.
    """
    if isinstance(exc, (KeyError, TypeError, ValueError)):
        return "rejected"
    return "crashed"


class _Job:
    """One submitted spec: its future plus displayable metadata.

    ``future`` is assigned immediately after construction (the job must
    exist before the executor callback can classify its failure).
    ``error_kind`` is None until the job fails, then one of the
    taxonomy strings.
    """

    __slots__ = ("key", "kind", "future", "error_kind")

    def __init__(self, key: str, kind: str,
                 future: "Optional[Future[dict]]" = None):
        self.key = key
        self.kind = kind
        self.future = future
        self.error_kind: Optional[str] = None

    def state(self) -> str:
        if not self.future.done():
            return "running" if self.future.running() else "pending"
        return "failed" if self.future.exception() is not None else "done"

    def describe(self) -> dict:
        description = {"key": self.key, "kind": self.kind,
                       "state": self.state()}
        if self.error_kind is not None:
            description["error_kind"] = self.error_kind
        return description


class JobService:
    """Content-keyed job table in front of one :class:`Workbench`.

    The service owns the workbench unless one is passed in (tests share a
    pre-warmed session that way).  ``submit`` is the only mutating entry
    point; everything else reads the job table.
    """

    def __init__(self, store_dir: Optional[str] = None, *,
                 workbench: Optional[Workbench] = None, workers: int = 2,
                 job_timeout_s: Optional[float] = None):
        if job_timeout_s is not None and not job_timeout_s > 0:
            raise ValueError(
                f"job_timeout_s must be positive or None, "
                f"got {job_timeout_s}")
        self.workbench = workbench if workbench is not None \
            else Workbench(store=store_dir)
        self.job_timeout_s = job_timeout_s
        self._jobs: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job")
        # The timeout wrapper needs a second pool: the job thread waits
        # with a deadline on an inner future doing the real work.  Built
        # lazily only when a limit is configured.
        self._timeout_executor = None if job_timeout_s is None else \
            ThreadPoolExecutor(max_workers=workers,
                               thread_name_prefix="repro-job-inner")
        self.submitted = 0
        self.dedup_inflight = 0
        self.dedup_done = 0
        #: Remaining injected HTTP failures (``REPRO_CHAOS_HTTP``): each
        #: non-health request consumes one and fails with a 500.
        self.chaos_http = 0

    # -- job execution ---------------------------------------------------------

    def _run(self, spec) -> dict:
        """Execute one spec on the shared workbench; returns a plain dict."""
        if isinstance(spec, BuildSpec):
            return self.workbench.build(spec).to_dict()
        if isinstance(spec, SweepSpec):
            return {"kind": "sweep-result",
                    "records": [record.to_dict()
                                for record in self.workbench.sweep(spec)]}
        if isinstance(spec, SimSpec):
            return self.workbench.simulate(spec).to_dict()
        if isinstance(spec, ScenarioSpec):
            return self.workbench.run_scenario(spec).to_dict()
        raise TypeError(f"unsupported spec type {type(spec).__name__}")

    def _execute(self, spec, job: _Job) -> dict:
        """Run one job, enforcing the per-job limit and the taxonomy."""
        if self._timeout_executor is None:
            try:
                return self._run(spec)
            except Exception as exc:
                job.error_kind = _classify_failure(exc)
                raise
        inner = self._timeout_executor.submit(self._run, spec)
        try:
            return inner.result(timeout=self.job_timeout_s)
        except FutureTimeout:
            job.error_kind = "timeout"
            raise JobTimeout(
                f"job {job.key!r} exceeded the per-job limit of "
                f"{self.job_timeout_s}s") from None
        except Exception as exc:
            job.error_kind = _classify_failure(exc)
            raise

    def submit(self, data: dict) -> dict:
        """Queue one spec dict; identical in-flight specs share a job.

        Returns the job description.  Raises ``ValueError``/``TypeError``
        (mapped to HTTP 400 by the handler) for malformed specs and
        :class:`ServiceDraining` (mapped to 503) during shutdown.
        """
        spec = spec_from_dict(data)
        key = spec.content_key()
        with self._lock:
            if self._draining:
                raise ServiceDraining(
                    "service is draining; resubmit to the next instance")
            self.submitted += 1
            job = self._jobs.get(key)
            if job is not None:
                if job.future.done() and job.future.exception() is None:
                    self.dedup_done += 1
                elif job.future.exception() is None:
                    self.dedup_inflight += 1
                else:
                    # A failed job is retryable: resubmit replaces it.
                    job = None
            if job is None:
                job = _Job(key, data.get("kind", "?"))
                job.future = self._executor.submit(self._execute, spec, job)
                self._jobs[key] = job
        return job.describe()

    def consume_chaos_failure(self, path: str) -> bool:
        """Whether this request should fail with an injected 500.

        Health checks are exempt so orchestration keeps seeing the
        service as alive — the injection models a flaky service, not a
        dead one.
        """
        if path == "/healthz":
            return False
        with self._lock:
            if self.chaos_http > 0:
                self.chaos_http -= 1
                return True
        return False

    # -- job table reads -------------------------------------------------------

    def job(self, key: str) -> Optional[_Job]:
        with self._lock:
            return self._jobs.get(key)

    def result(self, key: str,
               timeout: float = RESULT_TIMEOUT_S) -> Optional[dict]:
        """The finished record for ``key``; blocks while the job runs.

        Returns None for an unknown key; re-raises the job's exception if
        it failed; raises :class:`concurrent.futures.TimeoutError` when
        the job outlives ``timeout``.
        """
        job = self.job(key)
        if job is None:
            return None
        return job.future.result(timeout=timeout)

    def stats(self) -> dict:
        with self._lock:
            jobs = [job.describe() for job in self._jobs.values()]
        states: dict[str, int] = {}
        for job in jobs:
            states[job["state"]] = states.get(job["state"], 0) + 1
        return {
            "submitted": self.submitted,
            "dedup_inflight": self.dedup_inflight,
            "dedup_done": self.dedup_done,
            "jobs": states,
            "draining": self._draining,
            "workbench": self.workbench.stats(),
        }

    def drain(self) -> None:
        """Stop admitting jobs and wait for the in-flight ones to finish.

        Idempotent.  Every job that was running or queued when the drain
        began completes normally — its record lands in the workbench's
        artifact store — before this returns; new submissions raise
        :class:`ServiceDraining` meanwhile.
        """
        with self._lock:
            self._draining = True
        # Safe to call repeatedly and concurrently: every caller blocks
        # until the worker threads have joined.
        self._executor.shutdown(wait=True)
        if self._timeout_executor is not None:
            self._timeout_executor.shutdown(wait=True)

    def shutdown(self) -> None:
        self.drain()
        self.workbench.shutdown()


class _Handler(BaseHTTPRequestHandler):
    """Maps the JSON protocol onto a :class:`JobService` (``server.service``)."""

    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    @property
    def service(self) -> JobService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _reply(self, status: int, payload: dict,
               headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[dict] = None, **extra) -> None:
        self._reply(status, {"error": message, **extra}, headers=headers)

    # -- routes ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if urlparse(self.path).path != "/submit":
            return self._error(404, f"no such endpoint: {self.path}")
        if self.service.consume_chaos_failure("/submit"):
            return self._error(500, "injected failure (chaos)")
        try:
            length = int(self.headers.get("Content-Length", 0))
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return self._error(400, f"undecodable request body: {exc}")
        if isinstance(data, dict) and isinstance(data.get("spec"), dict):
            data = data["spec"]
        if not isinstance(data, dict):
            return self._error(400, "expected a spec object")
        try:
            job = self.service.submit(data)
        except ServiceDraining as exc:
            return self._error(503, str(exc), headers={"Retry-After": "1"})
        except (KeyError, TypeError, ValueError) as exc:
            return self._error(400, f"invalid spec: {exc}")
        self._reply(200, job)

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if url.path == "/healthz":
            return self._reply(200, {"ok": True})
        if self.service.consume_chaos_failure(url.path):
            return self._error(500, "injected failure (chaos)")
        if url.path == "/stats":
            return self._reply(200, self.service.stats())
        if len(parts) == 2 and parts[0] == "status":
            job = self.service.job(parts[1])
            if job is None:
                return self._error(404, f"unknown job key {parts[1]!r}")
            return self._reply(200, job.describe())
        if len(parts) == 2 and parts[0] == "result":
            query = parse_qs(url.query)
            try:
                timeout = float(query.get("timeout", [RESULT_TIMEOUT_S])[0])
            except ValueError:
                return self._error(400, "timeout must be a number")
            try:
                record = self.service.result(parts[1], timeout=timeout)
            except FutureTimeout:
                return self._error(
                    504, f"job {parts[1]!r} still running after {timeout}s")
            except Exception as exc:  # job raised: surface it to the client
                job = self.service.job(parts[1])
                kind = job.error_kind if job is not None else None
                return self._error(500, f"job failed: {exc}",
                                   error_kind=kind)
            if record is None:
                return self._error(404, f"unknown job key {parts[1]!r}")
            return self._reply(200, record)
        return self._error(404, f"no such endpoint: {url.path}")


def build_httpd(service: JobService, host: str = "127.0.0.1",
                port: int = 8400) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``service`` (port 0 = ephemeral)."""
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.service = service  # type: ignore[attr-defined]
    return httpd


def serve(store_dir: Optional[str], host: str = "127.0.0.1",
          port: int = 8400, workers: int = 2,
          job_timeout_s: Optional[float] = None) -> None:
    """Run the job service until interrupted (the ``repro serve`` command).

    SIGTERM (the orchestrator's stop signal) and Ctrl-C both shut down
    gracefully: the listener stops, in-flight jobs drain to completion —
    their records land in the artifact store — and only then does the
    call return.
    """
    service = JobService(store_dir, workers=workers,
                         job_timeout_s=job_timeout_s)
    chaos_http = int(os.environ.get("REPRO_CHAOS_HTTP", "0") or 0)
    if chaos_http > 0:
        service.chaos_http = chaos_http
        print(f"chaos: the next {chaos_http} non-health request(s) "
              f"will fail with HTTP 500", flush=True)
    httpd = build_httpd(service, host, port)
    bound = httpd.server_address
    print(f"repro job service on http://{bound[0]}:{bound[1]} "
          f"(store: {store_dir or 'none — in-memory session only'})",
          flush=True)

    def _on_sigterm(signum, frame):
        # serve_forever() must be stopped from *another* thread:
        # httpd.shutdown() blocks until the serve loop exits, and the
        # signal handler runs on the main thread inside that very loop.
        threading.Thread(target=httpd.shutdown, daemon=True,
                         name="repro-sigterm-shutdown").start()

    # Signal handlers are a main-thread privilege; when serve() runs on a
    # worker thread (tests), SIGTERM keeps its default disposition.
    in_main = threading.current_thread() is threading.main_thread()
    previous = signal.signal(signal.SIGTERM, _on_sigterm) if in_main \
        else None
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if in_main:
            signal.signal(signal.SIGTERM, previous)
        httpd.server_close()
        service.shutdown()
        print("repro job service drained and stopped", flush=True)
