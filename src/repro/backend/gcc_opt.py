"""GCC-strength optimizations.

The paper's Figure 2 shows that plain GCC already removes a surprising
number of CCured's checks — "primarily the easy checks such as redundant
null-pointer checks" — while its dead-code elimination is noticeably weaker
than cXprop's.  This module models exactly that amount of power:

* local constant folding of literal arithmetic,
* removal of *easy* safety checks: a check whose pointer argument is
  syntactically the address of a named object, the decay of a named array,
  or a string literal; plus exact duplicates in straight-line code,
* removal of uncalled internal functions (everything in the flattened
  program is file-static, so the compiler can drop unreferenced ones),
* removal of branches whose condition is a literal constant.

It runs as the last stage of every build variant, safe or unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.callgraph import build_call_graph
from repro.cminor.program import Program
from repro.cminor.typecheck import check_program, local_types
from repro.cminor.visitor import (
    expressions_equal,
    map_expression,
    replace_statement_expressions,
    transform_block,
)
from repro.ccured.optimizer import (
    _assigned_variables,
    _pointer_variables,
    check_pointer_argument,
    is_check_statement,
    pointer_is_statically_safe,
)


@dataclass
class GccOptReport:
    """Statistics from the backend optimization pass."""

    constants_folded: int = 0
    easy_checks_removed: int = 0
    duplicate_checks_removed: int = 0
    branches_folded: int = 0
    functions_removed: int = 0

    @property
    def checks_removed(self) -> int:
        return self.easy_checks_removed + self.duplicate_checks_removed


_FOLDABLE_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b if 0 <= b <= 31 else None,
    ">>": lambda a, b: a >> b if 0 <= b <= 31 else None,
    "/": lambda a, b: a // b if b != 0 else None,
    "%": lambda a, b: a % b if b != 0 else None,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


def _fold_expression(expr: ast.Expr, report: GccOptReport) -> ast.Expr:
    if isinstance(expr, ast.BinaryOp) and \
            isinstance(expr.left, ast.IntLiteral) and \
            isinstance(expr.right, ast.IntLiteral):
        folder = _FOLDABLE_OPS.get(expr.op)
        if folder is not None:
            value = folder(expr.left.value, expr.right.value)
            if value is not None:
                report.constants_folded += 1
                literal = ast.IntLiteral(int(value))
                literal.loc = expr.loc
                literal.ctype = expr.ctype
                return literal
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.operand, ast.IntLiteral):
        if expr.op == "-":
            report.constants_folded += 1
            literal = ast.IntLiteral(-expr.operand.value)
            literal.loc = expr.loc
            literal.ctype = expr.ctype
            return literal
        if expr.op == "!":
            report.constants_folded += 1
            literal = ast.IntLiteral(0 if expr.operand.value else 1)
            literal.loc = expr.loc
            literal.ctype = expr.ctype
            return literal
    if isinstance(expr, ast.Cast) and isinstance(expr.operand, ast.IntLiteral) and \
            expr.target_type.is_integer():
        report.constants_folded += 1
        literal = ast.IntLiteral(ty.wrap_to(expr.target_type, expr.operand.value))
        literal.loc = expr.loc
        literal.ctype = expr.target_type
        return literal
    return expr


def _fold_constants(program: Program, report: GccOptReport) -> None:
    for func in program.iter_functions():
        for stmt_block in [func.body]:
            def rewrite(stmt: ast.Stmt):
                replace_statement_expressions(
                    stmt, lambda e: _fold_expression(e, report))
                return stmt

            transform_block(stmt_block, rewrite)


def _remove_easy_checks(program: Program, report: GccOptReport) -> None:
    for func in program.iter_functions():
        locals_ = local_types(func)

        def optimize_block(block: ast.Block) -> None:
            # The compiler's value numbering catches a re-check of a pointer
            # it can see has not changed within the basic block; anything
            # involving calls, stores through memory, or assignments to the
            # pointer's variables resets that knowledge.
            previous_check: ast.Stmt | None = None
            new_stmts: list[ast.Stmt] = []
            for stmt in block.stmts:
                for inner in _nested_blocks(stmt):
                    optimize_block(inner)
                if is_check_statement(stmt):
                    pointer = check_pointer_argument(stmt)
                    if pointer is not None and pointer_is_statically_safe(
                            pointer, program, locals_):
                        report.easy_checks_removed += 1
                        continue
                    if previous_check is not None and \
                            _same_check(previous_check, stmt):
                        report.duplicate_checks_removed += 1
                        continue
                    previous_check = stmt
                else:
                    if previous_check is not None:
                        assigned = _assigned_variables(stmt)
                        guarded = check_pointer_argument(previous_check)
                        mentioned = _pointer_variables(guarded) if guarded is not None \
                            else set()
                        mentions_global = any(name not in locals_
                                              and name in program.globals
                                              for name in mentioned)
                        has_call = _statement_calls(stmt)
                        if (mentioned & assigned) or _nested_blocks(stmt) or \
                                ("*" in assigned and (mentions_global or has_call)):
                            previous_check = None
                new_stmts.append(stmt)
            block.stmts = new_stmts

        optimize_block(func.body)


def _nested_blocks(stmt: ast.Stmt) -> list[ast.Block]:
    from repro.cminor.visitor import child_blocks

    return [b for b in child_blocks(stmt) if b is not stmt]


def _statement_calls(stmt: ast.Stmt) -> bool:
    from repro.cminor.visitor import statement_expressions, walk_expression

    for expr in statement_expressions(stmt):
        for node in walk_expression(expr):
            if isinstance(node, ast.Call):
                return True
    return False


def _same_check(left: ast.Stmt, right: ast.Stmt) -> bool:
    call_left = left.expr  # type: ignore[union-attr]
    call_right = right.expr  # type: ignore[union-attr]
    if call_left.callee != call_right.callee:
        return False
    if len(call_left.args) != len(call_right.args):
        return False
    # Compare all but the unique identifier argument.
    for a, b in zip(call_left.args[:-1], call_right.args[:-1]):
        if not expressions_equal(a, b):
            return False
    return True


def _fold_literal_branches(program: Program, report: GccOptReport) -> None:
    def rewrite(stmt: ast.Stmt):
        if isinstance(stmt, ast.If) and isinstance(stmt.cond, ast.IntLiteral):
            report.branches_folded += 1
            if stmt.cond.value:
                return list(stmt.then_body.stmts)
            return list(stmt.else_body.stmts) if stmt.else_body is not None else []
        return stmt

    for func in program.iter_functions():
        transform_block(func.body, rewrite)


def _remove_uncalled_functions(program: Program, report: GccOptReport) -> None:
    graph = build_call_graph(program)
    reachable = graph.reachable_from(program.root_functions())
    for func in list(program.iter_functions()):
        if func.name in reachable or func.is_spontaneous:
            continue
        program.remove_function(func.name)
        report.functions_removed += 1


def gcc_optimize(program: Program) -> GccOptReport:
    """Apply the backend's (deliberately weak) optimizations in place."""
    report = GccOptReport()
    _fold_constants(program, report)
    _fold_literal_branches(program, report)
    _remove_easy_checks(program, report)
    _remove_uncalled_functions(program, report)
    program.invalidate_analysis()
    check_program(program)
    return report
