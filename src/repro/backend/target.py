"""Per-target instruction cost models.

The Mica2's ATmega128 is an 8-bit machine: every 16-bit or 32-bit operation
is synthesized from byte operations, pointers occupy register pairs, and
multi-byte loads/stores cost proportionally more code and cycles.  The
TelosB's MSP430 is a 16-bit machine, so 16-bit arithmetic is native and only
32-bit operations pay a penalty.

The cost model is intentionally simple — a table of bytes/cycles per AST
operation, scaled by operand width — because the paper's evaluation cares
about *relative* sizes between build variants of the same application, not
about binary-exact code generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.tinyos.hardware import Platform, platform as lookup_platform


def _width(ctype: Optional[ty.CType], pointer_size: int) -> int:
    """Operand width in bytes (defaults to 2 when unknown)."""
    if ctype is None:
        return 2
    try:
        size = ctype.decay().sizeof(pointer_size)
    except NotImplementedError:
        return 2
    return max(1, min(size, 4))


@dataclass(frozen=True)
class CostModel:
    """Code-size and cycle costs for one target platform.

    Attributes:
        platform: The platform description (clock, memory budgets, string
            placement).
        word_bytes: Natural operand width of the CPU.
        bytes_per_alu_byte: Code bytes per byte of operand width for simple
            ALU operations.
        cycles_per_alu_byte: Cycles per byte of operand width.
        ...
    """

    platform: Platform
    word_bytes: int
    bytes_per_alu_byte: int
    cycles_per_alu_byte: int
    load_store_global_bytes: int
    load_store_cycles: int
    pointer_access_bytes: int
    pointer_access_cycles: int
    call_bytes: int
    call_cycles: int
    branch_bytes: int
    branch_cycles: int
    mul_bytes: int
    mul_cycles: int
    div_bytes: int
    div_cycles: int
    prologue_bytes: int
    prologue_cycles: int
    atomic_save_bytes: int
    atomic_save_cycles: int
    atomic_nosave_bytes: int
    atomic_nosave_cycles: int
    literal_bytes_per_byte: int

    # -- helpers -------------------------------------------------------------

    def _alu_units(self, width: int) -> int:
        """Number of native operations needed for a ``width``-byte operand."""
        return max(1, (width + self.word_bytes - 1) // self.word_bytes)

    # -- expression costs -------------------------------------------------------

    def expr_bytes(self, expr: ast.Expr) -> int:
        """Code bytes contributed by one expression node (children excluded)."""
        pointer_size = self.platform.pointer_bytes
        width = _width(expr.ctype, pointer_size)
        units = self._alu_units(width)
        if isinstance(expr, ast.IntLiteral):
            return self.literal_bytes_per_byte * units
        if isinstance(expr, ast.StringLiteral):
            return self.literal_bytes_per_byte * 2
        if isinstance(expr, ast.Identifier):
            if isinstance(expr.ctype, ty.ArrayType):
                return self.literal_bytes_per_byte * 2
            return self.load_store_global_bytes * units
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "*":
                return self.mul_bytes * units
            if expr.op in ("/", "%"):
                return self.div_bytes * units
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return self.branch_bytes + self.bytes_per_alu_byte * units
            return self.bytes_per_alu_byte * units
        if isinstance(expr, ast.UnaryOp):
            return self.bytes_per_alu_byte * units
        if isinstance(expr, (ast.Deref, ast.Index)):
            return self.pointer_access_bytes + self.bytes_per_alu_byte * (units - 1)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                return self.pointer_access_bytes + self.bytes_per_alu_byte * (units - 1)
            return self.load_store_global_bytes * units
        if isinstance(expr, ast.AddressOf):
            return self.literal_bytes_per_byte * 2
        if isinstance(expr, ast.Call):
            arg_bytes = sum(
                self.bytes_per_alu_byte * self._alu_units(_width(a.ctype, pointer_size))
                for a in expr.args)
            return self.call_bytes + arg_bytes
        if isinstance(expr, ast.Cast):
            source = _width(expr.operand.ctype, pointer_size)
            if width > source:
                return self.bytes_per_alu_byte * (self._alu_units(width) -
                                                  self._alu_units(source))
            return 0
        if isinstance(expr, ast.Ternary):
            return self.branch_bytes
        return 0

    def expr_cycles(self, expr: ast.Expr) -> int:
        """Execution cycles for one expression node (children excluded)."""
        pointer_size = self.platform.pointer_bytes
        width = _width(expr.ctype, pointer_size)
        units = self._alu_units(width)
        if isinstance(expr, (ast.IntLiteral, ast.StringLiteral, ast.AddressOf,
                             ast.SizeOf)):
            return units
        if isinstance(expr, ast.Identifier):
            return self.load_store_cycles * units
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "*":
                return self.mul_cycles * units
            if expr.op in ("/", "%"):
                return self.div_cycles * units
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return self.branch_cycles + self.cycles_per_alu_byte * units
            return self.cycles_per_alu_byte * units
        if isinstance(expr, ast.UnaryOp):
            return self.cycles_per_alu_byte * units
        if isinstance(expr, (ast.Deref, ast.Index)):
            return self.pointer_access_cycles * units
        if isinstance(expr, ast.Member):
            if expr.arrow:
                return self.pointer_access_cycles * units
            return self.load_store_cycles * units
        if isinstance(expr, ast.Call):
            return self.call_cycles + len(expr.args)
        if isinstance(expr, ast.Cast):
            return 1
        if isinstance(expr, ast.Ternary):
            return self.branch_cycles
        return 1

    # -- statement costs -----------------------------------------------------------

    def stmt_bytes(self, stmt: ast.Stmt) -> int:
        """Code bytes contributed by the statement's own control structure."""
        if isinstance(stmt, (ast.Assign, ast.VarDecl)):
            width = _width(getattr(stmt, "ctype", None) or
                           getattr(stmt.lvalue, "ctype", None)
                           if isinstance(stmt, ast.Assign) else stmt.ctype,
                           self.platform.pointer_bytes)
            return self.load_store_global_bytes * self._alu_units(width)
        if isinstance(stmt, ast.If):
            return self.branch_bytes
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            return self.branch_bytes * 2
        if isinstance(stmt, ast.Return):
            return self.branch_bytes
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return self.branch_bytes
        if isinstance(stmt, ast.Atomic):
            return self.atomic_save_bytes if stmt.save_irq else self.atomic_nosave_bytes
        if isinstance(stmt, ast.Post):
            return self.call_bytes
        return 0

    def stmt_cycles(self, stmt: ast.Stmt) -> int:
        """Cycles charged for the statement's own control structure."""
        if isinstance(stmt, (ast.Assign, ast.VarDecl)):
            return self.load_store_cycles
        if isinstance(stmt, ast.If):
            return self.branch_cycles
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            return self.branch_cycles
        if isinstance(stmt, ast.Return):
            return self.branch_cycles
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return self.branch_cycles
        if isinstance(stmt, ast.Atomic):
            return self.atomic_save_cycles if stmt.save_irq else self.atomic_nosave_cycles
        if isinstance(stmt, ast.Post):
            return self.call_cycles
        return 0

    def function_overhead_bytes(self, func: ast.FunctionDef) -> int:
        """Prologue/epilogue and frame setup bytes."""
        return self.prologue_bytes + 2 * len(func.params)

    def function_overhead_cycles(self) -> int:
        return self.prologue_cycles

    def interrupt_overhead_cycles(self) -> int:
        """Extra cycles for interrupt entry/exit (register save/restore)."""
        return self.prologue_cycles * 2


#: Cost model for the Mica2 (ATmega128L, 8-bit AVR).
MICA2_COSTS = dict(
    word_bytes=1,
    bytes_per_alu_byte=2,
    cycles_per_alu_byte=1,
    load_store_global_bytes=4,
    load_store_cycles=2,
    pointer_access_bytes=6,
    pointer_access_cycles=3,
    call_bytes=8,
    call_cycles=8,
    branch_bytes=4,
    branch_cycles=2,
    mul_bytes=6,
    mul_cycles=4,
    div_bytes=14,
    div_cycles=40,
    prologue_bytes=14,
    prologue_cycles=10,
    atomic_save_bytes=8,
    atomic_save_cycles=6,
    atomic_nosave_bytes=4,
    atomic_nosave_cycles=2,
    literal_bytes_per_byte=2,
)

#: Cost model for the TelosB (MSP430F1611, 16-bit).
TELOSB_COSTS = dict(
    word_bytes=2,
    bytes_per_alu_byte=3,
    cycles_per_alu_byte=1,
    load_store_global_bytes=4,
    load_store_cycles=3,
    pointer_access_bytes=4,
    pointer_access_cycles=3,
    call_bytes=6,
    call_cycles=6,
    branch_bytes=4,
    branch_cycles=2,
    mul_bytes=8,
    mul_cycles=8,
    div_bytes=16,
    div_cycles=40,
    prologue_bytes=10,
    prologue_cycles=8,
    atomic_save_bytes=6,
    atomic_save_cycles=5,
    atomic_nosave_bytes=4,
    atomic_nosave_cycles=2,
    literal_bytes_per_byte=2,
)


def cost_model_for(platform_name: str) -> CostModel:
    """Cost model for ``"mica2"`` or ``"telosb"``."""
    plat = lookup_platform(platform_name)
    params = MICA2_COSTS if plat.name == "mica2" else TELOSB_COSTS
    return CostModel(platform=plat, **params)
