"""Lowering a program into a memory image.

``build_image`` walks the final, optimized program with the target's cost
model and produces a :class:`MemoryImage` with the numbers the paper's
figures are built from:

* ``text_bytes`` — code (flash),
* ``data_bytes`` — initialized static data (occupies RAM *and* flash, since
  the initializers are copied out of flash at boot),
* ``bss_bytes`` — zero-initialized static data (RAM only),
* ``string_ram_bytes`` / ``string_rom_bytes`` — string literals; on the AVR
  they live in RAM unless explicitly placed in program memory, which is the
  entire story of the paper's "verbose error messages" bars.

The image also records per-symbol sizes and the set of surviving check
identifiers so the evaluation harness can reproduce Figure 2's counting
methodology directly from the artifact it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.visitor import statement_expressions, walk_expression, walk_statements
from repro.backend.target import CostModel, cost_model_for
from repro.ccured.instrument import surviving_check_ids


@dataclass
class MemoryImage:
    """Size accounting for one built application image.

    All sizes are in bytes.
    """

    name: str
    platform: str
    text_bytes: int = 0
    data_bytes: int = 0
    bss_bytes: int = 0
    string_ram_bytes: int = 0
    string_rom_bytes: int = 0
    function_sizes: dict[str, int] = field(default_factory=dict)
    global_sizes: dict[str, int] = field(default_factory=dict)
    surviving_checks: set[int] = field(default_factory=set)

    @property
    def code_bytes(self) -> int:
        """Flash occupied by code and read-only strings (the Figure 3(a) metric)."""
        return self.text_bytes + self.string_rom_bytes

    @property
    def ram_bytes(self) -> int:
        """Static RAM usage (the Figure 3(b) metric)."""
        return self.data_bytes + self.bss_bytes + self.string_ram_bytes

    @property
    def rom_bytes(self) -> int:
        """Total flash usage: code, read-only strings, and data initializers."""
        return self.text_bytes + self.string_rom_bytes + self.data_bytes + \
            self.string_ram_bytes

    def symbols_matching(self, prefix: str) -> dict[str, int]:
        """Function and global sizes whose name starts with ``prefix``."""
        sizes: dict[str, int] = {}
        for name, size in self.function_sizes.items():
            if name.startswith(prefix):
                sizes[name] = size
        for name, size in self.global_sizes.items():
            if name.startswith(prefix):
                sizes[name] = size
        return sizes

    def footprint_of(self, origin_functions: set[str],
                     origin_globals: set[str]) -> tuple[int, int]:
        """(ROM, RAM) bytes attributable to the named symbols."""
        rom = sum(size for name, size in self.function_sizes.items()
                  if name in origin_functions)
        ram = sum(size for name, size in self.global_sizes.items()
                  if name in origin_globals)
        return rom, ram

    def summary(self) -> dict[str, int]:
        return {
            "code_bytes": self.code_bytes,
            "text_bytes": self.text_bytes,
            "ram_bytes": self.ram_bytes,
            "data_bytes": self.data_bytes,
            "bss_bytes": self.bss_bytes,
            "string_ram_bytes": self.string_ram_bytes,
            "string_rom_bytes": self.string_rom_bytes,
            "functions": len(self.function_sizes),
            "globals": len(self.global_sizes),
            "surviving_checks": len(self.surviving_checks),
        }


def _function_code_bytes(func: ast.FunctionDef, costs: CostModel) -> int:
    total = costs.function_overhead_bytes(func)
    for stmt in walk_statements(func.body):
        total += costs.stmt_bytes(stmt)
        for expr in statement_expressions(stmt):
            for node in walk_expression(expr):
                total += costs.expr_bytes(node)
    return total


def _collect_strings(func: ast.FunctionDef) -> list[ast.StringLiteral]:
    strings: list[ast.StringLiteral] = []
    for stmt in walk_statements(func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expression(expr):
                if isinstance(node, ast.StringLiteral):
                    strings.append(node)
    return strings


def _global_data_size(var: ast.GlobalVar, pointer_size: int) -> int:
    return var.ctype.sizeof(pointer_size)


def build_image(program: Program, costs: Optional[CostModel] = None) -> MemoryImage:
    """Lower ``program`` to a memory image using the platform cost model."""
    costs = costs or cost_model_for(program.platform)
    pointer_size = costs.platform.pointer_bytes
    image = MemoryImage(name=program.name, platform=program.platform)

    seen_strings: dict[tuple[str, bool], int] = {}
    for func in program.iter_functions():
        size = _function_code_bytes(func, costs)
        image.function_sizes[func.name] = size
        image.text_bytes += size
        for literal in _collect_strings(func):
            key = (literal.value, literal.in_rom)
            if key in seen_strings:
                continue
            seen_strings[key] = len(literal.value) + 1
            size_bytes = len(literal.value) + 1
            if literal.in_rom or not costs.platform.strings_in_ram:
                image.string_rom_bytes += size_bytes
            else:
                image.string_ram_bytes += size_bytes

    for var in program.iter_globals():
        size = _global_data_size(var, pointer_size)
        image.global_sizes[var.name] = size
        if var.in_rom:
            image.string_rom_bytes += size
            continue
        if var.init is None:
            image.bss_bytes += size
        else:
            image.data_bytes += size
        if isinstance(var.init, ast.StringLiteral) and var.ctype.is_pointer():
            # A global char* initialized with a literal also owns the literal.
            key = (var.init.value, var.init.in_rom)
            if key not in seen_strings:
                seen_strings[key] = len(var.init.value) + 1
                if var.init.in_rom or not costs.platform.strings_in_ram:
                    image.string_rom_bytes += len(var.init.value) + 1
                else:
                    image.string_ram_bytes += len(var.init.value) + 1

    image.surviving_checks = surviving_check_ids(program)
    return image
