"""The back end: the role GCC plays in the paper's toolchain.

The real toolchain hands the optimized C program to avr-gcc / msp430-gcc,
which performs its (comparatively weak) optimizations and emits the final
image whose ``.text``/``.data``/``.bss`` sections the paper measures.  This
package reproduces that step with a deterministic cost model:

* :mod:`repro.backend.target` — per-platform instruction cost models
  (code bytes and cycles per operation),
* :mod:`repro.backend.gcc_opt` — the "GCC-strength" optimizations: local
  constant folding, removal of the easy safety checks, and dropping of
  uncalled static functions,
* :mod:`repro.backend.image` — lowering of a whole program into a
  :class:`~repro.backend.image.MemoryImage` with per-symbol code and data
  accounting.
"""

from repro.backend.target import CostModel, cost_model_for
from repro.backend.gcc_opt import GccOptReport, gcc_optimize
from repro.backend.image import MemoryImage, build_image

__all__ = [
    "CostModel",
    "cost_model_for",
    "GccOptReport",
    "gcc_optimize",
    "MemoryImage",
    "build_image",
]
