"""The backend layer's registered pipeline passes."""

from __future__ import annotations

from typing import Optional

from repro.backend.gcc_opt import gcc_optimize
from repro.backend.image import build_image
from repro.backend.target import cost_model_for
from repro.cminor.program import Program
from repro.toolchain.passes import Pass, PassContext, PassOutcome, register_pass


@register_pass("gcc")
class GccOptimizePass(Pass):
    """The GCC-strength backend optimizations (last transformation stage)."""

    name = "gcc"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "gcc needs a program"
        report = gcc_optimize(program)
        changed = (report.constants_folded + report.checks_removed +
                   report.branches_folded + report.functions_removed)
        return PassOutcome(changed=changed, detail=report)


@register_pass("image")
class BuildImagePass(Pass):
    """Lower the program to a memory image via the platform cost model.

    The image is stored on the context (``ctx.image``) and is also the
    pass's detail report, so it lands in the build trace.
    """

    name = "image"
    invalidates_analysis = False

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "image needs a program"
        image = build_image(program, cost_model_for(program.platform))
        ctx.image = image
        return PassOutcome(changed=0, detail=image)
