"""CCured: the type- and memory-safety transformer.

This package reproduces the role CCured plays in the paper's toolchain: it
analyzes a whole CMinor program, classifies every pointer (SAFE / SEQ /
WILD), inserts the dynamic checks needed to make the program memory safe,
links in a runtime library, encodes the failure messages according to the
configured strategy (verbose, verbose-in-ROM, terse, or FLIDs), wraps checks
that touch racy variables in atomic sections (the concurrency modification
of Section 2.2), and finally runs CCured's own redundant-check optimizer.

The main entry point is :func:`cure`.
"""

from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.checks import CheckKind, CheckSite
from repro.ccured.kinds import PointerKind
from repro.ccured.infer import KindInference, infer_pointer_kinds
from repro.ccured.instrument import CCuredResult, cure
from repro.ccured.optimizer import optimize_checks
from repro.ccured.runtime import RuntimeLibrary, build_runtime
from repro.ccured.flid import FlidTable, decompress_failure

__all__ = [
    "CCuredConfig",
    "MessageStrategy",
    "CheckKind",
    "CheckSite",
    "PointerKind",
    "KindInference",
    "infer_pointer_kinds",
    "CCuredResult",
    "cure",
    "optimize_checks",
    "RuntimeLibrary",
    "build_runtime",
    "FlidTable",
    "decompress_failure",
]
