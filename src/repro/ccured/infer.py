"""Pointer-kind inference.

A light-weight reproduction of CCured's whole-program pointer-kind
inference.  The algorithm has the same structure as the original:

1. every pointer-typed storage location (global, local, parameter, struct
   field, function return) becomes a *slot*;
2. a single pass over the program generates **base constraints** — uses that
   force a slot upward in the SAFE < SEQ < WILD lattice (pointer arithmetic
   and indexing force SEQ, surviving integer-to-pointer casts force WILD,
   byte-view casts force SEQ) — and **flow edges** between slots that
   exchange values (assignments, argument passing, returns);
3. kinds are propagated along the flow edges to a fixpoint.

The result drives check insertion (which checks each access needs) and the
fat-pointer representation (how much static data each pointer costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.typecheck import local_types
from repro.cminor.visitor import statement_expressions, walk_statements
from repro.ccured.kinds import (
    KindMap,
    PointerKind,
    Slot,
    field_slot,
    global_slot,
    local_slot,
    param_slot,
    return_slot,
)


@dataclass
class KindInference:
    """Constraint generation and fixpoint solving for pointer kinds."""

    program: Program
    kinds: KindMap = field(default_factory=KindMap)
    edges: dict[Slot, set[Slot]] = field(default_factory=dict)

    # -- public API -------------------------------------------------------------

    def run(self) -> KindMap:
        """Infer kinds for every pointer slot in the program."""
        self._register_slots()
        for func in self.program.iter_functions():
            self._scan_function(func)
        self._propagate()
        return self.kinds

    # -- slot registration ------------------------------------------------------

    def _register_slots(self) -> None:
        for var in self.program.iter_globals():
            if self._is_pointerish(var.ctype):
                self.kinds.raise_to(global_slot(var.name), PointerKind.SAFE)
        for name, struct in self.program.structs.all().items():
            for struct_field in struct.fields:
                if self._is_pointerish(struct_field.ctype):
                    self.kinds.raise_to(field_slot(name, struct_field.name),
                                        PointerKind.SAFE)
        for func in self.program.iter_functions():
            if self._is_pointerish(func.return_type):
                self.kinds.raise_to(return_slot(func.name), PointerKind.SAFE)
            for param in func.params:
                if self._is_pointerish(param.ctype):
                    self.kinds.raise_to(param_slot(func.name, param.name),
                                        PointerKind.SAFE)
            for name, ctype in local_types(func).items():
                if self._is_pointerish(ctype):
                    self.kinds.raise_to(local_slot(func.name, name),
                                        PointerKind.SAFE)

    @staticmethod
    def _is_pointerish(ctype: Optional[ty.CType]) -> bool:
        return ctype is not None and ctype.is_pointer()

    # -- constraint generation ----------------------------------------------------

    def _scan_function(self, func: ast.FunctionDef) -> None:
        locals_ = local_types(func)
        param_names = {p.name for p in func.params}

        def name_slot(name: str) -> Optional[Slot]:
            if name in param_names:
                return param_slot(func.name, name)
            if name in locals_:
                return local_slot(func.name, name)
            if name in self.program.globals:
                return global_slot(name)
            return None

        def expr_slots(expr: ast.Expr) -> list[Slot]:
            """Slots whose value may flow out of a pointer-valued expression."""
            if isinstance(expr, ast.Identifier):
                slot = name_slot(expr.name)
                return [slot] if slot is not None else []
            if isinstance(expr, ast.Member):
                base_type = expr.base.ctype
                if expr.arrow and isinstance(base_type, ty.PointerType):
                    base_type = base_type.target
                if isinstance(base_type, ty.StructType):
                    return [field_slot(base_type.name, expr.fieldname)]
                return []
            if isinstance(expr, ast.Call):
                if expr.callee in self.program.functions:
                    return [return_slot(expr.callee)]
                return []
            if isinstance(expr, ast.Cast):
                return expr_slots(expr.operand)
            if isinstance(expr, ast.BinaryOp):
                return expr_slots(expr.left) + expr_slots(expr.right)
            if isinstance(expr, ast.Ternary):
                return expr_slots(expr.then) + expr_slots(expr.otherwise)
            return []

        def visit_expr(expr: ast.Expr) -> None:
            """Generate base constraints for one expression tree."""
            if isinstance(expr, ast.Index):
                base_type = expr.base.ctype
                if base_type is not None and base_type.is_pointer():
                    for slot in expr_slots(expr.base):
                        self.kinds.raise_to(slot, PointerKind.SEQ)
                visit_expr(expr.base)
                visit_expr(expr.index)
                return
            if isinstance(expr, ast.BinaryOp):
                if expr.op in ("+", "-"):
                    left_t = expr.left.ctype
                    right_t = expr.right.ctype
                    if left_t is not None and left_t.decay().is_pointer():
                        for slot in expr_slots(expr.left):
                            self.kinds.raise_to(slot, PointerKind.SEQ)
                    if right_t is not None and right_t.decay().is_pointer():
                        for slot in expr_slots(expr.right):
                            self.kinds.raise_to(slot, PointerKind.SEQ)
                visit_expr(expr.left)
                visit_expr(expr.right)
                return
            if isinstance(expr, ast.Cast):
                self._cast_constraints(expr, expr_slots)
                visit_expr(expr.operand)
                return
            if isinstance(expr, ast.Call):
                self._call_flow(expr, expr_slots)
                for arg in expr.args:
                    visit_expr(arg)
                return
            for child in _children(expr):
                visit_expr(child)

        for stmt in walk_statements(func.body):
            for expr in statement_expressions(stmt):
                visit_expr(expr)
            if isinstance(stmt, ast.Assign):
                self._flow(expr_slots(stmt.lvalue), expr_slots(stmt.rvalue),
                           stmt.rvalue)
            elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
                slot = name_slot(stmt.name)
                if slot is not None and self._is_pointerish(stmt.ctype):
                    self._flow([slot], expr_slots(stmt.init), stmt.init)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if self._is_pointerish(func.return_type):
                    self._flow([return_slot(func.name)],
                               expr_slots(stmt.value), stmt.value)

    def _cast_constraints(self, expr: ast.Cast, expr_slots) -> None:
        """Casts: integer-to-pointer is WILD; pointer reinterpretation is SEQ."""
        target = expr.target_type
        source = expr.operand.ctype
        if not isinstance(target, ty.PointerType) or source is None:
            return
        slots = expr_slots(expr.operand)
        if source.is_integer():
            # An integer-to-pointer cast that survived the hardware register
            # refactoring: CCured has no choice but WILD.  The kind lands on
            # whatever slot the value is stored into, via the flow edges; it
            # also lands on the operand's slots if the integer came from a
            # pointer round-trip.
            for slot in slots:
                self.kinds.raise_to(slot, PointerKind.WILD)
            self._pending_cast_kind = PointerKind.WILD
            return
        source = source.decay()
        if isinstance(source, ty.PointerType) and source.target != target.target:
            # Reinterpreting casts (struct <-> byte views) need bounds
            # metadata on whichever pointer they flow into.
            for slot in slots:
                self.kinds.raise_to(slot, PointerKind.SEQ)
            self._pending_cast_kind = PointerKind.SEQ

    _pending_cast_kind: Optional[PointerKind] = None

    def _call_flow(self, expr: ast.Call, expr_slots) -> None:
        func = self.program.lookup_function(expr.callee)
        if func is None:
            return
        for param, arg in zip(func.params, expr.args):
            if self._is_pointerish(param.ctype):
                self._flow([param_slot(func.name, param.name)],
                           expr_slots(arg), arg)

    def _flow(self, dest_slots: list[Slot], src_slots: list[Slot],
              rvalue: ast.Expr) -> None:
        """Record bidirectional flow edges between destination and source slots."""
        cast_kind = self._rvalue_cast_kind(rvalue)
        for dest in dest_slots:
            if cast_kind is not None:
                self.kinds.raise_to(dest, cast_kind)
            for src in src_slots:
                self.edges.setdefault(dest, set()).add(src)
                self.edges.setdefault(src, set()).add(dest)

    def _rvalue_cast_kind(self, rvalue: ast.Expr) -> Optional[PointerKind]:
        """Kind forced on the destination by a cast at the top of the rvalue."""
        if isinstance(rvalue, ast.Cast):
            target = rvalue.target_type
            source = rvalue.operand.ctype
            if isinstance(target, ty.PointerType) and source is not None:
                if source.is_integer():
                    return PointerKind.WILD
                source = source.decay()
                if isinstance(source, ty.PointerType) and \
                        source.target != target.target:
                    return PointerKind.SEQ
        return None

    # -- fixpoint -----------------------------------------------------------------

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for slot, neighbours in self.edges.items():
                kind = self.kinds.get(slot)
                for other in neighbours:
                    if self.kinds.raise_to(other, kind):
                        changed = True
                    other_kind = self.kinds.get(other)
                    if self.kinds.raise_to(slot, other_kind):
                        changed = True


def _children(expr: ast.Expr) -> list[ast.Expr]:
    from repro.cminor.visitor import child_expressions

    return child_expressions(expr)


def infer_pointer_kinds(program: Program) -> KindMap:
    """Convenience wrapper: run kind inference over ``program``."""
    return KindInference(program).run()
