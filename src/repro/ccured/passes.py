"""The CCured layer's registered pipeline passes."""

from __future__ import annotations

from typing import Optional

from repro.ccured.config import CCuredConfig
from repro.ccured.instrument import cure
from repro.ccured.optimizer import optimize_checks
from repro.cminor.program import Program
from repro.toolchain.passes import Pass, PassContext, PassOutcome, register_pass


@register_pass("ccured.cure")
class CurePass(Pass):
    """Run CCured: kind inference, check insertion, locks, runtime, messages.

    The CCured configuration is either given explicitly or derived from the
    context's build variant (message strategy, runtime mode, lock
    insertion); CCured's own optimizer always runs as a separate pass
    (``ccured.optimize``) so Figure 2 can measure it independently.
    """

    name = "ccured.cure"

    def __init__(self, config: Optional[CCuredConfig] = None):
        self.config = config

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "ccured.cure needs a flattened program"
        config = self.config or self._config_from_context(program, ctx)
        result = cure(program, config)
        return PassOutcome(changed=result.checks_inserted, detail=result)

    def cache_key(self, variant=None) -> str:
        if self.config is not None:
            config = self.config
        elif variant is not None:
            # Mirror _config_from_context: run_optimizer is pinned off and
            # application_name is the swept application (constant per app).
            config = CCuredConfig(
                message_strategy=variant.message_strategy,
                runtime_mode=variant.runtime_mode,
                insert_locks=variant.insert_locks,
                run_optimizer=False,
                application_name="",
            )
        else:
            # Unknown configuration: an unshareable unique key.
            return f"{self.name}[{id(self)}]"
        return f"{self.name}[{config.message_strategy.value}," \
               f"{config.runtime_mode.value}," \
               f"locks={int(config.insert_locks)}," \
               f"opt={int(config.run_optimizer)}," \
               f"reads={int(config.check_reads)}," \
               f"app={config.application_name}]"

    @staticmethod
    def _config_from_context(program: Program, ctx: PassContext) -> CCuredConfig:
        variant = ctx.variant
        assert variant is not None, \
            "ccured.cure needs an explicit CCuredConfig or a build variant"
        app_name = getattr(ctx.application, "name", "") or program.name
        return CCuredConfig(
            message_strategy=variant.message_strategy,
            runtime_mode=variant.runtime_mode,
            insert_locks=variant.insert_locks,
            run_optimizer=False,
            application_name=app_name,
        )


@register_pass("ccured.optimize")
class CCuredOptimizerPass(Pass):
    """CCured's own local redundant-check optimizer."""

    name = "ccured.optimize"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "ccured.optimize needs a cured program"
        removed = optimize_checks(program)
        return PassOutcome(changed=removed, detail=removed)
