"""The CCured runtime library, ported to the motes.

CCured's stock runtime is several thousand lines of desktop C: check
implementations, fat-pointer helpers, checked wrappers for libc functions, a
garbage collector, and error reporting that assumes files and signals.
Section 2.3 of the paper describes porting it to the Mica2/TelosB: the OS
and x86 dependencies are removed by hand, garbage collection is compiled
out, and the improved dead-code elimination strips whatever the application
does not use — shrinking the footprint from 1.6 KB RAM / 33 KB ROM to
2 bytes of RAM / 314 bytes of ROM.

``build_runtime`` generates either library as CMinor source:

* ``RuntimeMode.FULL`` — the naive port: every helper and table is present
  and marked as linked-in (``spontaneous``), so no optimizer may drop it.
* ``RuntimeMode.TRIMMED`` — the embedded-adapted runtime: only the check
  helpers, the failure handler, and a two-byte failure counter; everything
  is eligible for dead-code elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import ast_nodes as ast
from repro.cminor.parser import parse_program
from repro.cminor.program import Program
from repro.ccured.config import CCuredConfig, MessageStrategy, RuntimeMode

#: Name of the translation unit the runtime is parsed as.
RUNTIME_UNIT = "__ccured_runtime"


@dataclass
class RuntimeLibrary:
    """The generated runtime library, before it is linked into a program."""

    mode: RuntimeMode
    strategy: MessageStrategy
    functions: list[ast.FunctionDef] = field(default_factory=list)
    globals: list[ast.GlobalVar] = field(default_factory=list)

    def function_names(self) -> set[str]:
        return {f.name for f in self.functions}

    def add_to_program(self, program: Program) -> None:
        """Link the runtime into ``program`` (replacing earlier versions)."""
        for var in self.globals:
            program.add_global(var, replace=True)
        for func in self.functions:
            program.add_function(func, replace=True)


def _message_param(strategy: MessageStrategy) -> tuple[str, str]:
    """The (type, reporting call) used for the failure-message parameter."""
    if strategy is MessageStrategy.FLID:
        return "uint16_t", "__error_report_id(msg);"
    return "char*", "__error_report(msg);"


def _check_helpers_source(strategy: MessageStrategy, full: bool) -> str:
    """CMinor source for the failure handler and the check helpers."""
    msg_type, report_call = _message_param(strategy)
    alignment_check = ""
    if full:
        alignment_check = """
  if (!__align_ok(p, 4)) {
    __ccured_fail(msg);
  }"""
    return f"""
volatile uint16_t __ccured_fail_count = 0;

void __ccured_fail({msg_type} msg) {{
  __ccured_fail_count = __ccured_fail_count + 1;
  {report_call}
  __halt(1);
}}

__inline void __ccured_check_null(void* p, {msg_type} msg) {{
  if (p == NULL) {{
    __ccured_fail(msg);
  }}
}}

__inline void __ccured_check_ptr(void* p, uint16_t size, {msg_type} msg) {{
  if (!__bounds_ok(p, size)) {{
    __ccured_fail(msg);
  }}
}}

__inline void __ccured_check_wild(void* p, uint16_t size, {msg_type} msg) {{
  if (p == NULL) {{
    __ccured_fail(msg);
  }}
  if (!__bounds_ok(p, size)) {{
    __ccured_fail(msg);
  }}{alignment_check}
}}
"""


#: Extra library code present only in the naive (FULL) port: checked libc
#: wrappers, fat-pointer helpers, the garbage collector, and error logging
#: with its buffers and format strings.  Everything here is what Section 2.3
#: removes or lets dead-code elimination strip.
_FULL_RUNTIME_EXTRAS = """
uint8_t __ccured_gc_heap[1024];
uint16_t __ccured_gc_free = 0;
uint16_t __ccured_gc_allocations = 0;
uint16_t __ccured_gc_collections = 0;
char __ccured_error_buffer[128];
uint8_t __ccured_error_length = 0;
uint16_t __ccured_wrapper_calls = 0;
uint8_t __ccured_log_open = 0;
char* __ccured_version = "CCured runtime 1.3.4 (desktop port)";
char* __ccured_fmt_null = "Null pointer dereference at %s";
char* __ccured_fmt_bounds = "Pointer out of bounds at %s";
char* __ccured_fmt_wild = "Wild pointer access at %s";
char* __ccured_fmt_align = "Misaligned pointer access at %s";
char* __ccured_fmt_stack = "Stack pointer escape at %s";
char* __ccured_fmt_seq = "Sequence pointer underflow at %s";
char* __ccured_fmt_rtti = "RTTI cast failure at %s";
char* __ccured_fmt_free = "Invalid free at %s";

__spontaneous void __ccured_gc_init(void) {
  uint16_t i;
  for (i = 0; i < 1024; i++) {
    __ccured_gc_heap[i] = 0;
  }
  __ccured_gc_free = 0;
}

__spontaneous void* __ccured_gc_malloc(uint16_t size) {
  uint16_t start;
  if (size == 0) {
    return NULL;
  }
  if (__ccured_gc_free + size > 1024) {
    __ccured_gc_collect();
    if (__ccured_gc_free + size > 1024) {
      return NULL;
    }
  }
  start = __ccured_gc_free;
  __ccured_gc_free = __ccured_gc_free + size;
  __ccured_gc_allocations = __ccured_gc_allocations + 1;
  return &__ccured_gc_heap[start];
}

__spontaneous void __ccured_gc_collect(void) {
  uint16_t i;
  uint16_t live;
  live = 0;
  for (i = 0; i < 1024; i++) {
    if (__ccured_gc_heap[i] != 0) {
      live = live + 1;
    }
  }
  if (live == 0) {
    __ccured_gc_free = 0;
  }
  __ccured_gc_collections = __ccured_gc_collections + 1;
}

__spontaneous void __ccured_memcpy(uint8_t* dst, uint8_t* src, uint16_t n) {
  uint16_t i;
  __ccured_wrapper_calls = __ccured_wrapper_calls + 1;
  for (i = 0; i < n; i++) {
    dst[i] = src[i];
  }
}

__spontaneous void __ccured_memset(uint8_t* dst, uint8_t value, uint16_t n) {
  uint16_t i;
  __ccured_wrapper_calls = __ccured_wrapper_calls + 1;
  for (i = 0; i < n; i++) {
    dst[i] = value;
  }
}

__spontaneous uint16_t __ccured_strlen(char* s) {
  uint16_t n = 0;
  __ccured_wrapper_calls = __ccured_wrapper_calls + 1;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

__spontaneous void __ccured_strcpy(char* dst, char* src) {
  uint16_t i = 0;
  __ccured_wrapper_calls = __ccured_wrapper_calls + 1;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
}

__spontaneous int16_t __ccured_strcmp(char* a, char* b) {
  uint16_t i = 0;
  while (a[i] != 0 && b[i] != 0) {
    if (a[i] != b[i]) {
      return (int16_t)a[i] - (int16_t)b[i];
    }
    i = i + 1;
  }
  return (int16_t)a[i] - (int16_t)b[i];
}

__spontaneous void __ccured_format_dec(uint16_t value, char* buffer) {
  uint8_t digits[5];
  uint8_t count = 0;
  uint8_t i;
  if (value == 0) {
    buffer[0] = 48;
    buffer[1] = 0;
    return;
  }
  while (value > 0 && count < 5) {
    digits[count] = (uint8_t)(value % 10);
    value = value / 10;
    count = count + 1;
  }
  for (i = 0; i < count; i++) {
    buffer[i] = (char)(48 + digits[count - 1 - i]);
  }
  buffer[count] = 0;
}

__spontaneous void __ccured_log_error(char* msg) {
  uint16_t len;
  uint16_t i;
  len = __ccured_strlen(msg);
  if (len > 127) {
    len = 127;
  }
  for (i = 0; i < len; i++) {
    __ccured_error_buffer[i] = msg[i];
  }
  __ccured_error_buffer[len] = 0;
  __ccured_error_length = (uint8_t)len;
}

__spontaneous void __ccured_open_log(void) {
  __ccured_log_open = 1;
}

__spontaneous void __ccured_close_log(void) {
  __ccured_log_open = 0;
}

__spontaneous void __ccured_write_log(char* msg) {
  if (__ccured_log_open == 0) {
    __ccured_open_log();
  }
  __ccured_log_error(msg);
}

__spontaneous void __ccured_signal_handler(uint16_t signal_number) {
  __ccured_error_length = 0;
  __ccured_format_dec(signal_number, __ccured_error_buffer);
  __halt(2);
}

__spontaneous void __ccured_abort(void) {
  __halt(3);
}
"""


def build_runtime(config: CCuredConfig) -> RuntimeLibrary:
    """Generate the runtime library dictated by ``config``."""
    full = config.runtime_mode is RuntimeMode.FULL
    source = _check_helpers_source(config.message_strategy, full)
    if full:
        source = source + _FULL_RUNTIME_EXTRAS
    unit = parse_program(source, RUNTIME_UNIT)
    library = RuntimeLibrary(mode=config.runtime_mode,
                             strategy=config.message_strategy)
    for var in unit.globals:
        var.origin = RUNTIME_UNIT
        library.globals.append(var)
    for func in unit.functions:
        func.origin = RUNTIME_UNIT
        func.attributes["runtime"] = True
        if func.name.startswith("__ccured_check"):
            func.attributes["check"] = True
            func.attributes["inline"] = True
        library.functions.append(func)
    return library


def runtime_symbol_names(program: Program) -> set[str]:
    """Names of runtime functions and globals present in ``program``."""
    names = {f.name for f in program.iter_functions() if f.origin == RUNTIME_UNIT}
    names |= {v.name for v in program.iter_globals() if v.origin == RUNTIME_UNIT}
    return names
