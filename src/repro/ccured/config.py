"""Configuration of the CCured stage.

The knobs here correspond one-to-one to the build variants in the paper's
Figure 3: how failure messages are encoded (the first four bars), whether
the runtime library is the naive port or the embedded-adapted one
(Section 2.3), whether checks touching racy variables get locks
(Section 2.2), and whether CCured's own check optimizer runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MessageStrategy(enum.Enum):
    """How run-time failure messages are represented in the image.

    * ``VERBOSE`` — full ``file:line: function: check`` strings.  On the
      Mica2 these strings live in RAM (AVR string literals are copied to
      SRAM at boot), which is what makes this variant so expensive.
    * ``VERBOSE_ROM`` — the same strings, explicitly placed in flash.
    * ``TERSE`` — short strings with the source location stripped.
    * ``FLID`` — each failure site is a 16-bit failure-location identifier;
      an offline table (:mod:`repro.ccured.flid`) maps identifiers back to
      the full message.
    """

    VERBOSE = "verbose"
    VERBOSE_ROM = "verbose_rom"
    TERSE = "terse"
    FLID = "flid"

    @property
    def uses_strings(self) -> bool:
        return self is not MessageStrategy.FLID

    @property
    def strings_in_rom(self) -> bool:
        return self is MessageStrategy.VERBOSE_ROM


class RuntimeMode(enum.Enum):
    """Which CCured runtime library is linked into the program.

    ``FULL`` is the naive port of the desktop runtime (operating-system and
    x86 dependencies stubbed, garbage collector still present); ``TRIMMED``
    is the embedded-adapted runtime of Section 2.3, with the OS/x86
    dependencies removed and GC support compiled out.
    """

    FULL = "full"
    TRIMMED = "trimmed"


@dataclass
class CCuredConfig:
    """Options controlling the safety transformation.

    Attributes:
        message_strategy: Failure-message encoding (Figure 3 variants).
        runtime_mode: Naive or embedded-adapted runtime library.
        insert_locks: Wrap checks involving racy variables in atomic
            sections (the Section 2.2 concurrency modification).  Disabling
            this reproduces the unsound "sequential CCured" behaviour.
        run_optimizer: Run CCured's own redundant-check optimizer after
            instrumentation.
        check_reads: Instrument loads as well as stores.
        application_name: Used in verbose failure messages.
    """

    message_strategy: MessageStrategy = MessageStrategy.VERBOSE
    runtime_mode: RuntimeMode = RuntimeMode.TRIMMED
    insert_locks: bool = True
    run_optimizer: bool = True
    check_reads: bool = True
    application_name: str = "app"
