"""Lock insertion for safety checks on racy variables (Section 2.2).

CCured's invariants assume sequential execution: a pointer that was just
bounds-checked must not change before it is dereferenced.  Interrupt-driven
TinyOS code can violate that assumption for variables the nesC concurrency
analysis reports as racy.  The paper's modified CCured therefore wraps the
"safety-critical section" — the injected checks plus the guarded access —
in an atomic section whenever a racy variable is involved.

This module provides the decision logic and the wrapping helper used by the
instrumenter.
"""

from __future__ import annotations

from repro.cminor import ast_nodes as ast
from repro.cminor.program import Program
from repro.cminor.visitor import (
    statement_expressions,
    walk_expression,
)


def expression_variables(expr: ast.Expr) -> set[str]:
    """Names of all identifiers appearing anywhere in ``expr``."""
    return {node.name for node in walk_expression(expr)
            if isinstance(node, ast.Identifier)}


def statement_variables(stmt: ast.Stmt) -> set[str]:
    """Names of all identifiers in the statement's top-level expressions."""
    names: set[str] = set()
    for expr in statement_expressions(stmt):
        names |= expression_variables(expr)
    return names


def involves_racy_variable(exprs: list[ast.Expr], stmt: ast.Stmt,
                           racy: set[str]) -> bool:
    """Whether any checked pointer expression or the statement touches a racy variable."""
    if not racy:
        return False
    touched: set[str] = set()
    for expr in exprs:
        touched |= expression_variables(expr)
    touched |= statement_variables(stmt)
    return bool(touched & racy)


def statement_contains_call(stmt: ast.Stmt, exclude_prefixes: tuple[str, ...] = ("__ccured_",)
                            ) -> bool:
    """Whether a statement calls anything other than the check helpers."""
    for expr in statement_expressions(stmt):
        for node in walk_expression(expr):
            if isinstance(node, ast.Call):
                if not node.callee.startswith(exclude_prefixes):
                    return True
    return False


def wrap_checks(checks: list[ast.Stmt], stmt: ast.Stmt,
                include_statement: bool) -> list[ast.Stmt]:
    """Wrap the injected checks (and optionally the guarded access) atomically.

    Args:
        checks: The injected check statements.
        stmt: The guarded access statement.
        include_statement: Whether the access itself goes inside the lock.
            When the statement performs further calls (event signalling,
            sends) only the checks are protected, mirroring the paper's
            "locks around safety-critical sections" placement.

    Returns:
        The replacement statement list.
    """
    if include_statement:
        body = ast.Block(list(checks) + [stmt])
        atomic = ast.Atomic(body, synthetic=True)
        atomic.loc = stmt.loc
        return [atomic]
    body = ast.Block(list(checks))
    atomic = ast.Atomic(body, synthetic=True)
    atomic.loc = stmt.loc
    return [atomic, stmt]


def protect_statement(checks: list[ast.Stmt], checked_exprs: list[ast.Expr],
                      stmt: ast.Stmt, program: Program,
                      insert_locks: bool) -> tuple[list[ast.Stmt], bool]:
    """Combine checks and the guarded statement, adding a lock if required.

    Returns:
        (replacement statement list, whether a lock was added)
    """
    if not checks:
        return [stmt], False
    if not insert_locks:
        return list(checks) + [stmt], False
    if not involves_racy_variable(checked_exprs, stmt, program.racy_variables):
        return list(checks) + [stmt], False
    include_statement = (isinstance(stmt, (ast.Assign, ast.ExprStmt))
                         and not statement_contains_call(stmt))
    return wrap_checks(checks, stmt, include_statement), True
