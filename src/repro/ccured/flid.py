"""FLIDs: failure-location identifiers and their offline decompression.

With the FLID message strategy, the program carries only a 16-bit integer
per failure site; the mapping from identifier back to the full diagnostic
(file, line, function, check kind) lives in a table kept on the host.  This
module is both halves: the table builder used during instrumentation and the
decompression tool from the right-hand side of the paper's Figure 1.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.ccured.checks import CheckSite


@dataclass
class FlidEntry:
    """One decompression-table entry."""

    flid: int
    kind: str
    function: str
    location: str
    description: str

    def format_message(self, application: str = "app") -> str:
        """Reconstruct the verbose failure message for this identifier."""
        return (f"{application}: {self.location}: {self.function}: "
                f"{self.kind} check failed ({self.description}) [flid {self.flid}]")


@dataclass
class FlidTable:
    """The host-side decompression table for one application build."""

    application: str = "app"
    entries: dict[int, FlidEntry] = field(default_factory=dict)

    def add_site(self, site: CheckSite) -> FlidEntry:
        """Register a check site and return its table entry."""
        entry = FlidEntry(
            flid=site.check_id,
            kind=site.kind.value,
            function=site.function,
            location=str(site.loc) if site.loc is not None else "<unknown>",
            description=site.description,
        )
        self.entries[entry.flid] = entry
        return entry

    def lookup(self, flid: int) -> Optional[FlidEntry]:
        return self.entries.get(flid)

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence ----------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the table (one line per entry) for storage on the host."""
        payload = {
            "application": self.application,
            "entries": [
                {
                    "flid": e.flid,
                    "kind": e.kind,
                    "function": e.function,
                    "location": e.location,
                    "description": e.description,
                }
                for e in sorted(self.entries.values(), key=lambda e: e.flid)
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FlidTable":
        payload = json.loads(text)
        table = cls(application=payload.get("application", "app"))
        for raw in payload.get("entries", []):
            entry = FlidEntry(
                flid=int(raw["flid"]),
                kind=raw["kind"],
                function=raw["function"],
                location=raw["location"],
                description=raw["description"],
            )
            table.entries[entry.flid] = entry
        return table


def decompress_failure(table: FlidTable, flid: int,
                       application: Optional[str] = None) -> str:
    """Turn a reported FLID back into a human-readable failure message.

    This is the "error message decompression" step of the paper's Figure 1:
    the mote reports only the 16-bit identifier, and the host reconstructs
    the full diagnostic.
    """
    entry = table.lookup(flid)
    if entry is None:
        return f"unknown failure location {flid}"
    return entry.format_message(application or table.application)
