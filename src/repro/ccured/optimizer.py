"""CCured's own redundant-check optimizer.

CCured tries not to rely on downstream compilers: after instrumentation it
runs a local optimizer over its own checks.  The reproduction implements the
two families of simplifications the original performs (and that Figure 2
credits it with):

* **statically safe checks** — a check whose pointer argument is the address
  of a named object (``&x``, ``&arr[3]`` with a constant in-range index, the
  decay of a named array, or a string literal) can never fail and is
  deleted;
* **redundant checks** — within one basic block, a second check of the same
  kind on a syntactically identical pointer is deleted if none of the
  variables appearing in the pointer have been assigned in between.

The optimizer is intentionally *intra-procedural and local*: that is what
leaves plenty of work for cXprop and the inliner, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.visitor import (
    expressions_equal,
    statement_expressions,
    walk_expression,
)
from repro.ccured.checks import CHECK_HELPER_NAMES

_CHECK_HELPERS = set(CHECK_HELPER_NAMES.values())


def is_check_statement(stmt: ast.Stmt) -> bool:
    """Whether ``stmt`` is an injected CCured check."""
    return (isinstance(stmt, ast.ExprStmt)
            and isinstance(stmt.expr, ast.Call)
            and stmt.expr.callee in _CHECK_HELPERS)


def check_pointer_argument(stmt: ast.Stmt) -> Optional[ast.Expr]:
    """The checked pointer expression of a check statement."""
    if not is_check_statement(stmt):
        return None
    call = stmt.expr  # type: ignore[union-attr]
    return call.args[0] if call.args else None


def pointer_is_statically_safe(pointer: ast.Expr, program: Program,
                               locals_: Optional[dict[str, ty.CType]] = None) -> bool:
    """Whether a checked pointer can be proven valid purely syntactically."""
    if isinstance(pointer, ast.StringLiteral):
        return True
    if isinstance(pointer, ast.Cast):
        source = pointer.operand.ctype
        if source is not None and source.is_integer():
            return False
        return pointer_is_statically_safe(pointer.operand, program, locals_)
    if isinstance(pointer, ast.AddressOf):
        return _lvalue_is_static_object(pointer.lvalue, program, locals_)
    if isinstance(pointer, ast.Identifier):
        ctype = None
        if locals_ and pointer.name in locals_:
            ctype = locals_[pointer.name]
        else:
            var = program.lookup_global(pointer.name)
            ctype = var.ctype if var is not None else None
        return isinstance(ctype, ty.ArrayType)
    return False


def _declared_type(expr: ast.Expr, program: Program,
                   locals_: Optional[dict[str, ty.CType]]) -> Optional[ty.CType]:
    """Best-effort type of an lvalue, falling back to declarations."""
    if expr.ctype is not None:
        return expr.ctype
    if isinstance(expr, ast.Identifier):
        if locals_ and expr.name in locals_:
            return locals_[expr.name]
        var = program.lookup_global(expr.name)
        if var is not None:
            return var.ctype
    return None


def _lvalue_is_static_object(lvalue: ast.Expr, program: Program,
                             locals_: Optional[dict[str, ty.CType]]) -> bool:
    """Whether ``&lvalue`` certainly points into a named object, in bounds."""
    if isinstance(lvalue, ast.Identifier):
        return True
    if isinstance(lvalue, ast.Member) and not lvalue.arrow:
        return _lvalue_is_static_object(lvalue.base, program, locals_)
    if isinstance(lvalue, ast.Index):
        if not isinstance(lvalue.index, ast.IntLiteral):
            return False
        base_type = _declared_type(lvalue.base, program, locals_)
        if isinstance(base_type, ty.ArrayType) and \
                0 <= lvalue.index.value < base_type.length:
            return _lvalue_is_static_object(lvalue.base, program, locals_)
        return False
    return False


def _assigned_variables(stmt: ast.Stmt) -> set[str]:
    """Variables whose value may change when ``stmt`` executes.

    The special marker ``"*"`` means "memory may have changed through a
    pointer or a call": checks whose pointer expression involves a global
    variable are then invalidated, while checks on parameters and locals
    (which cannot be reassigned behind the optimizer's back in this code
    base) survive — the same heuristic CCured's own optimizer uses.
    """
    assigned: set[str] = set()
    if isinstance(stmt, ast.Assign):
        root = stmt.lvalue
        through_memory = False
        while isinstance(root, (ast.Index, ast.Member, ast.Deref)):
            if isinstance(root, ast.Deref) or \
                    (isinstance(root, ast.Member) and root.arrow):
                through_memory = True
                break
            root = root.base
        if through_memory:
            assigned.add("*")
        elif isinstance(root, ast.Identifier):
            if isinstance(stmt.lvalue, ast.Identifier):
                assigned.add(root.name)
            # Stores into fields/elements of a named aggregate do not change
            # any pointer value the established checks guard.
    if isinstance(stmt, ast.VarDecl):
        assigned.add(stmt.name)
    for expr in statement_expressions(stmt):
        for node in walk_expression(expr):
            if isinstance(node, ast.Call) and node.callee not in _CHECK_HELPERS:
                # Calls may modify globals (and, through pointers, locals).
                assigned.add("*")
    return assigned


def _pointer_variables(pointer: ast.Expr) -> set[str]:
    return {node.name for node in walk_expression(pointer)
            if isinstance(node, ast.Identifier)}


class CheckOptimizer:
    """Removes statically safe and locally redundant checks from one program."""

    def __init__(self, program: Program):
        self.program = program
        self.removed = 0

    def run(self) -> int:
        from repro.cminor.typecheck import local_types

        for func in self.program.iter_functions():
            if func.is_runtime:
                continue
            locals_ = local_types(func)
            self._optimize_block(func.body, locals_)
        return self.removed

    def _optimize_block(self, block: ast.Block,
                        locals_: dict[str, ty.CType]) -> None:
        # (check kind, rendered pointer) pairs already established in this
        # straight-line region.
        established: list[tuple[str, ast.Expr]] = []
        new_stmts: list[ast.Stmt] = []
        for stmt in block.stmts:
            if is_check_statement(stmt):
                call = stmt.expr  # type: ignore[union-attr]
                pointer = call.args[0] if call.args else None
                if pointer is not None and pointer_is_statically_safe(
                        pointer, self.program, locals_):
                    self.removed += 1
                    continue
                if pointer is not None and self._is_redundant(call.callee, pointer,
                                                              established):
                    self.removed += 1
                    continue
                if pointer is not None:
                    established.append((call.callee, pointer))
                new_stmts.append(stmt)
                continue
            # Non-check statement: recurse into nested blocks and invalidate
            # established checks whose pointers may have changed.
            self._recurse(stmt, locals_)
            assigned = _assigned_variables(stmt)
            if assigned:
                established = [
                    (helper, pointer) for helper, pointer in established
                    if not (_pointer_variables(pointer) & assigned)
                    and not ("*" in assigned and
                             self._mentions_global(pointer, locals_))
                ]
            new_stmts.append(stmt)
        block.stmts = new_stmts

    def _recurse(self, stmt: ast.Stmt, locals_: dict[str, ty.CType]) -> None:
        from repro.cminor.visitor import child_blocks

        for inner in child_blocks(stmt):
            if inner is stmt:
                continue
            self._optimize_block(inner, locals_)
        if isinstance(stmt, ast.Block):
            self._optimize_block(stmt, locals_)

    def _mentions_global(self, pointer: ast.Expr,
                         locals_: dict[str, ty.CType]) -> bool:
        """Whether the checked pointer expression reads any global variable."""
        for name in _pointer_variables(pointer):
            if name not in locals_ and name in self.program.globals:
                return True
        return False

    @staticmethod
    def _is_redundant(helper: str, pointer: ast.Expr,
                      established: list[tuple[str, ast.Expr]]) -> bool:
        for known_helper, known_pointer in established:
            if known_helper == helper and expressions_equal(known_pointer, pointer):
                return True
        return False


def optimize_checks(program: Program) -> int:
    """Run CCured's redundant-check optimizer; returns the number removed."""
    return CheckOptimizer(program).run()
