"""The catalogue of dynamic checks CCured can insert.

Every inserted check is recorded as a :class:`CheckSite` with a unique
integer identifier.  The identifier is also embedded in the program (as the
last argument of the check call), which is how the evaluation counts the
checks surviving optimization — the same "unique string per check"
methodology the paper uses for Figure 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cminor.errors import SourceLocation

#: Names of the runtime helper functions implementing each check, and of the
#: failure handlers.  The check-identifier argument is always last.
CHECK_HELPER_NAMES = {
    "null": "__ccured_check_null",
    "ptr": "__ccured_check_ptr",
    "wild": "__ccured_check_wild",
}

FAIL_HANDLER_NAMES = ("__ccured_fail",)

#: All functions whose final argument is a check/failure identifier.
ID_CARRYING_FUNCTIONS = tuple(CHECK_HELPER_NAMES.values()) + FAIL_HANDLER_NAMES


class CheckKind(enum.Enum):
    """The kind of dynamic check inserted at a site."""

    NULL = "null"          #: Null check on a SAFE pointer dereference.
    BOUNDS = "bounds"      #: Null + bounds check on a SEQ pointer access.
    INDEX = "index"        #: Bounds check on an array access with a computed index.
    WILD = "wild"          #: Full metadata check on a WILD pointer access.

    @property
    def helper(self) -> str:
        """Name of the runtime helper that implements this check."""
        if self is CheckKind.NULL:
            return CHECK_HELPER_NAMES["null"]
        if self is CheckKind.WILD:
            return CHECK_HELPER_NAMES["wild"]
        return CHECK_HELPER_NAMES["ptr"]


@dataclass
class CheckSite:
    """One inserted dynamic check.

    Attributes:
        check_id: Unique identifier (also embedded in the program).
        kind: What the check verifies.
        function: Name of the function the check was inserted into.
        description: Human-readable description of the guarded access.
        loc: Source location of the guarded access.
        guards_write: Whether the guarded access is a store.
        racy: Whether the guarded access involves a racy variable (and the
            check was therefore wrapped in an atomic section).
    """

    check_id: int
    kind: CheckKind
    function: str
    description: str = ""
    loc: Optional[SourceLocation] = None
    guards_write: bool = False
    racy: bool = False

    def verbose_message(self, application: str) -> str:
        """The full failure message used by the VERBOSE strategies."""
        where = str(self.loc) if self.loc is not None else "<unknown>"
        return (f"{application}: {where}: {self.function}: "
                f"{self.kind.value} check failed ({self.description}) "
                f"[chk{self.check_id}]")

    def terse_message(self) -> str:
        """The short failure message used by the TERSE strategy."""
        return f"{self.kind.value[0]}{self.check_id}"


@dataclass
class CheckInventory:
    """All checks inserted into one program."""

    sites: list[CheckSite] = field(default_factory=list)

    def add(self, site: CheckSite) -> None:
        self.sites.append(site)

    def by_id(self, check_id: int) -> Optional[CheckSite]:
        for site in self.sites:
            if site.check_id == check_id:
                return site
        return None

    def by_function(self, function: str) -> list[CheckSite]:
        return [s for s in self.sites if s.function == function]

    def count(self) -> int:
        return len(self.sites)

    def count_by_kind(self) -> dict[CheckKind, int]:
        histogram = {kind: 0 for kind in CheckKind}
        for site in self.sites:
            histogram[site.kind] += 1
        return histogram

    def ids(self) -> set[int]:
        return {s.check_id for s in self.sites}
