"""Check insertion: the instrumentation half of CCured.

``cure`` is the paper's "run CCured" pipeline box.  It infers pointer
kinds, walks every application function and inserts a dynamic check in
front of each memory access it cannot prove safe statically, wraps checks
that involve racy variables in atomic sections, links in the runtime
library, materializes the fat-pointer metadata for SEQ/WILD globals, and
optionally runs CCured's own redundant-check optimizer.

Every inserted check carries a unique identifier as its final argument —
a string for the verbose/terse message strategies, a 16-bit FLID otherwise.
Counting the identifiers that survive optimization reproduces the
methodology behind Figure 2.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.typecheck import check_program, local_types
from repro.cminor.pretty import PrettyPrinter
from repro.cminor.visitor import (
    clone_expression,
    statement_expressions,
    transform_block,
    walk_expression,
)
from repro.ccured.checks import (
    CheckInventory,
    CheckKind,
    CheckSite,
    ID_CARRYING_FUNCTIONS,
)
from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.flid import FlidTable
from repro.ccured.infer import infer_pointer_kinds
from repro.ccured.kinds import (
    KindMap,
    PointerKind,
    field_slot,
    global_slot,
    local_slot,
    param_slot,
    return_slot,
)
from repro.ccured.locks import protect_statement
from repro.ccured.runtime import RUNTIME_UNIT, RuntimeLibrary, build_runtime

#: Origin tag for the fat-pointer metadata globals added by instrumentation.
METADATA_ORIGIN = "__ccured_meta"

#: Prefix of the fat-pointer metadata globals.
METADATA_PREFIX = "__cc_meta_"


@dataclass
class _Access:
    """One memory access that needs a dynamic check."""

    kind: CheckKind
    pointer: ast.Expr
    size: int
    description: str
    is_write: bool
    loc: Optional[object] = None


@dataclass
class CCuredResult:
    """Everything produced by the CCured stage for one program."""

    program: Program
    config: CCuredConfig
    inventory: CheckInventory
    kinds: KindMap
    runtime: RuntimeLibrary
    flid_table: FlidTable
    locked_checks: int = 0
    optimizer_removed: int = 0

    @property
    def checks_inserted(self) -> int:
        return self.inventory.count()

    def report(self) -> dict[str, int]:
        """Summary numbers used by the pipeline report and the tests."""
        kind_counts = self.inventory.count_by_kind()
        pointer_counts = self.kinds.counts()
        return {
            "checks_inserted": self.checks_inserted,
            "null_checks": kind_counts[CheckKind.NULL],
            "bounds_checks": kind_counts[CheckKind.BOUNDS],
            "index_checks": kind_counts[CheckKind.INDEX],
            "wild_checks": kind_counts[CheckKind.WILD],
            "locked_checks": self.locked_checks,
            "safe_pointers": pointer_counts[PointerKind.SAFE],
            "seq_pointers": pointer_counts[PointerKind.SEQ],
            "wild_pointers": pointer_counts[PointerKind.WILD],
            "optimizer_removed": self.optimizer_removed,
        }


class Instrumenter:
    """Inserts dynamic checks into one program."""

    def __init__(self, program: Program, config: CCuredConfig, kinds: KindMap):
        self.program = program
        self.config = config
        self.kinds = kinds
        self.inventory = CheckInventory()
        self.flid_table = FlidTable(application=config.application_name)
        self.locked_checks = 0
        self._printer = PrettyPrinter()
        self._next_id = 1
        self._current_function = ""
        self._locals: dict[str, ty.CType] = {}

    # -- driving ---------------------------------------------------------------

    def run(self) -> None:
        for func in self.program.iter_functions():
            if func.is_runtime or func.origin == RUNTIME_UNIT:
                continue
            self._instrument_function(func)

    def _instrument_function(self, func: ast.FunctionDef) -> None:
        self._current_function = func.name
        self._locals = local_types(func)

        def rewrite(stmt: ast.Stmt):
            if isinstance(stmt, (ast.Block, ast.Atomic, ast.If, ast.While,
                                 ast.DoWhile, ast.For)) and not \
                    statement_expressions(stmt):
                return stmt
            accesses = self._statement_accesses(stmt)
            if not accesses:
                return stmt
            checks: list[ast.Stmt] = []
            checked_exprs: list[ast.Expr] = []
            for access in accesses:
                site, check_stmt = self._build_check(access)
                checks.append(check_stmt)
                checked_exprs.append(access.pointer)
            replacement, locked = protect_statement(
                checks, checked_exprs, stmt, self.program,
                self.config.insert_locks)
            if locked:
                self.locked_checks += len(checks)
                for site in self.inventory.sites[-len(checks):]:
                    site.racy = True
            return replacement

        transform_block(func.body, rewrite)

    # -- access discovery --------------------------------------------------------

    def _statement_accesses(self, stmt: ast.Stmt) -> list[_Access]:
        accesses: list[_Access] = []
        if isinstance(stmt, ast.Assign):
            self._collect(stmt.lvalue, True, accesses)
            self._collect(stmt.rvalue, False, accesses)
            return accesses
        for expr in statement_expressions(stmt):
            self._collect(expr, False, accesses)
        return accesses

    def _collect(self, expr: ast.Expr, is_write: bool,
                 accesses: list[_Access]) -> None:
        if isinstance(expr, ast.Deref):
            self._add_pointer_access(expr.pointer, self._type_size(expr.ctype),
                                     is_write, accesses, describe=expr)
            self._collect(expr.pointer, False, accesses)
            return
        if isinstance(expr, ast.Index):
            self._add_index_access(expr, is_write, accesses)
            self._collect(expr.base, False, accesses)
            self._collect(expr.index, False, accesses)
            return
        if isinstance(expr, ast.Member):
            if expr.arrow:
                struct_type = self._pointee(expr.base.ctype)
                self._add_pointer_access(expr.base, self._type_size(struct_type),
                                         is_write, accesses, describe=expr)
            self._collect(expr.base, False, accesses)
            return
        if isinstance(expr, ast.AddressOf):
            # Taking an address performs no memory access; only index
            # expressions inside the lvalue are evaluated.
            self._collect_address(expr.lvalue, accesses)
            return
        for child in _child_expressions(expr):
            self._collect(child, False, accesses)

    def _collect_address(self, lvalue: ast.Expr, accesses: list[_Access]) -> None:
        if isinstance(lvalue, ast.Index):
            self._collect(lvalue.index, False, accesses)
            self._collect_address(lvalue.base, accesses)
        elif isinstance(lvalue, ast.Member):
            self._collect_address(lvalue.base, accesses)
        elif isinstance(lvalue, ast.Deref):
            self._collect(lvalue.pointer, False, accesses)

    def _add_pointer_access(self, pointer: ast.Expr, size: int, is_write: bool,
                            accesses: list[_Access], describe: ast.Expr) -> None:
        classification = self._classify_pointer(pointer)
        if classification == "static":
            return
        kind = classification
        if kind is PointerKind.SAFE:
            check = CheckKind.NULL
        elif kind is PointerKind.SEQ:
            check = CheckKind.BOUNDS
        else:
            check = CheckKind.WILD
        accesses.append(_Access(
            kind=check,
            pointer=clone_expression(pointer),
            size=max(size, 1),
            description=self._describe(describe),
            is_write=is_write,
            loc=describe.loc or pointer.loc,
        ))

    def _add_index_access(self, expr: ast.Index, is_write: bool,
                          accesses: list[_Access]) -> None:
        base_type = expr.base.ctype
        elem_size = self._type_size(expr.ctype)
        if isinstance(base_type, ty.ArrayType):
            if isinstance(expr.index, ast.IntLiteral) and \
                    0 <= expr.index.value < base_type.length:
                return
            check = CheckKind.INDEX
        else:
            classification = self._classify_pointer(expr.base)
            if classification == "static":
                # Indexing the decay of a known object with a computed index
                # still needs a bounds check.
                check = CheckKind.INDEX
            elif classification is PointerKind.WILD:
                check = CheckKind.WILD
            else:
                check = CheckKind.BOUNDS
        address = ast.AddressOf(ast.Index(clone_expression(expr.base),
                                          clone_expression(expr.index)))
        address.loc = expr.loc
        accesses.append(_Access(
            kind=check,
            pointer=address,
            size=max(elem_size, 1),
            description=self._describe(expr),
            is_write=is_write,
            loc=expr.loc,
        ))

    # -- classification ------------------------------------------------------------

    def _classify_pointer(self, pointer: ast.Expr):
        """Classify the pointer of an access: ``"static"`` or a PointerKind."""
        if isinstance(pointer, ast.AddressOf):
            return "static"
        if isinstance(pointer, ast.StringLiteral):
            return "static"
        if isinstance(pointer, ast.Identifier):
            ctype = self._locals.get(pointer.name)
            if ctype is None:
                var = self.program.lookup_global(pointer.name)
                ctype = var.ctype if var is not None else None
            if isinstance(ctype, ty.ArrayType):
                # Array decay of a named object: the object is known, only
                # the offset can go wrong, and plain decay has offset zero.
                return "static"
        if isinstance(pointer, ast.Cast):
            inner = self._classify_pointer(pointer.operand)
            source = pointer.operand.ctype
            if source is not None and source.is_integer():
                return PointerKind.WILD
            if inner == "static":
                return PointerKind.SEQ if self._is_reinterpret(pointer) else "static"
            return PointerKind.join(inner, PointerKind.SEQ
                                    if self._is_reinterpret(pointer)
                                    else PointerKind.SAFE)
        kinds = [self.kinds.get(slot) for slot in self._expr_slots(pointer)]
        if not kinds:
            return PointerKind.SAFE
        result = PointerKind.SAFE
        for kind in kinds:
            result = PointerKind.join(result, kind)
        return result

    @staticmethod
    def _is_reinterpret(cast: ast.Cast) -> bool:
        target = cast.target_type
        source = cast.operand.ctype
        if not isinstance(target, ty.PointerType) or source is None:
            return False
        source = source.decay()
        return isinstance(source, ty.PointerType) and source.target != target.target

    def _expr_slots(self, expr: ast.Expr):
        if isinstance(expr, ast.Identifier):
            if expr.name in self._locals:
                func = self._current_function
                if any(p == expr.name for p in self._param_names()):
                    return [param_slot(func, expr.name)]
                return [local_slot(func, expr.name)]
            if expr.name in self.program.globals:
                return [global_slot(expr.name)]
            return []
        if isinstance(expr, ast.Member):
            base_type = expr.base.ctype
            if expr.arrow and isinstance(base_type, ty.PointerType):
                base_type = base_type.target
            if isinstance(base_type, ty.StructType):
                return [field_slot(base_type.name, expr.fieldname)]
            return []
        if isinstance(expr, ast.Call) and expr.callee in self.program.functions:
            return [return_slot(expr.callee)]
        if isinstance(expr, ast.Cast):
            return self._expr_slots(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            return self._expr_slots(expr.left) + self._expr_slots(expr.right)
        if isinstance(expr, ast.Ternary):
            return self._expr_slots(expr.then) + self._expr_slots(expr.otherwise)
        return []

    def _param_names(self) -> list[str]:
        func = self.program.lookup_function(self._current_function)
        return func.param_names() if func is not None else []

    # -- check construction ----------------------------------------------------------

    def _build_check(self, access: _Access) -> tuple[CheckSite, ast.Stmt]:
        site = CheckSite(
            check_id=self._next_id,
            kind=access.kind,
            function=self._current_function,
            description=access.description,
            loc=access.loc,
            guards_write=access.is_write,
        )
        self._next_id += 1
        self.inventory.add(site)
        self.flid_table.add_site(site)

        args: list[ast.Expr] = [access.pointer]
        if access.kind is not CheckKind.NULL:
            args.append(ast.IntLiteral(access.size))
        args.append(self._message_argument(site))
        call = ast.Call(access.kind.helper, args)
        call.loc = access.loc
        stmt = ast.ExprStmt(call)
        stmt.loc = access.loc
        return site, stmt

    def _message_argument(self, site: CheckSite) -> ast.Expr:
        strategy = self.config.message_strategy
        if strategy is MessageStrategy.FLID:
            return ast.IntLiteral(site.check_id)
        if strategy is MessageStrategy.TERSE:
            return ast.StringLiteral(site.terse_message())
        literal = ast.StringLiteral(
            site.verbose_message(self.config.application_name))
        literal.in_rom = strategy is MessageStrategy.VERBOSE_ROM
        return literal

    # -- helpers ----------------------------------------------------------------------

    def _describe(self, expr: ast.Expr) -> str:
        text = self._printer.format_expr(expr)
        if len(text) > 40:
            text = text[:37] + "..."
        return text

    def _type_size(self, ctype: Optional[ty.CType]) -> int:
        if ctype is None:
            return 1
        try:
            return ctype.sizeof(pointer_size=2)
        except NotImplementedError:
            return 1

    @staticmethod
    def _pointee(ctype: Optional[ty.CType]) -> Optional[ty.CType]:
        if isinstance(ctype, ty.PointerType):
            return ctype.target
        return ctype


def _child_expressions(expr: ast.Expr):
    from repro.cminor.visitor import child_expressions

    return child_expressions(expr)


# ---------------------------------------------------------------------------
# Fat-pointer metadata
# ---------------------------------------------------------------------------


def add_fat_pointer_metadata(program: Program, kinds: KindMap) -> int:
    """Materialize the static cost of fat pointers for global pointer slots.

    Every global pointer classified SEQ or WILD gains a metadata global
    holding its base and bound (and tag pointer for WILD).  The metadata is
    kept alive by dead-code elimination for as long as the pointer itself is
    alive, modelling the RAM cost of CCured's fat-pointer representation.

    Returns:
        Number of metadata globals added.
    """
    added = 0
    for var in list(program.iter_globals()):
        if not var.ctype.is_pointer():
            continue
        kind = kinds.get(global_slot(var.name))
        if kind is PointerKind.SAFE:
            continue
        meta_name = f"{METADATA_PREFIX}{var.name}"
        if meta_name in program.globals:
            continue
        words = kind.words - 1
        meta = ast.GlobalVar(
            name=meta_name,
            ctype=ty.ArrayType(ty.UINT16, words),
            init=None,
            qualifiers=frozenset(),
            origin=METADATA_ORIGIN,
        )
        program.add_global(meta)
        added += 1
    return added


# ---------------------------------------------------------------------------
# Survivor counting (the Figure 2 methodology)
# ---------------------------------------------------------------------------

_CHECK_ID_PATTERN = re.compile(r"\[(?:chk|flid )?(\d+)\]|^[a-z](\d+)$")


def extract_check_id(expr: ast.Expr) -> Optional[int]:
    """Extract the check identifier from a check/fail call argument."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.StringLiteral):
        match = _CHECK_ID_PATTERN.search(expr.value)
        if match:
            return int(match.group(1) or match.group(2))
    return None


def surviving_check_ids(program: Program) -> set[int]:
    """Identifiers of the checks still present anywhere in ``program``.

    This mirrors the paper's methodology: a check counts as eliminated only
    when its unique identifier no longer appears in the executable — whether
    the check survived as a helper call or was inlined down to a bare
    ``__ccured_fail`` site.
    """
    survivors: set[int] = set()
    for func in program.iter_functions():
        for expr in _all_expressions(func):
            if isinstance(expr, ast.Call) and expr.callee in ID_CARRYING_FUNCTIONS:
                if not expr.args:
                    continue
                check_id = extract_check_id(expr.args[-1])
                if check_id is not None:
                    survivors.add(check_id)
    return survivors


def _all_expressions(func: ast.FunctionDef):
    from repro.cminor.visitor import walk_function_expressions

    return walk_function_expressions(func.body)


# ---------------------------------------------------------------------------
# The main entry point
# ---------------------------------------------------------------------------


def cure(program: Program, config: Optional[CCuredConfig] = None) -> CCuredResult:
    """Make ``program`` type- and memory-safe, in place.

    Args:
        program: A flattened, type-checked whole program (the nesC compiler
            output, ideally after hardware-register refactoring).
        config: Safety-transformation options; defaults mirror the paper's
            standard safe build (trimmed runtime, verbose messages, locks).

    Returns:
        A :class:`CCuredResult` describing the inserted checks, pointer
        kinds, runtime library and FLID table.
    """
    from repro.ccured.optimizer import optimize_checks

    config = config or CCuredConfig()
    if config.application_name == "app":
        config.application_name = program.name

    kinds = infer_pointer_kinds(program)
    instrumenter = Instrumenter(program, config, kinds)
    instrumenter.run()

    runtime = build_runtime(config)
    runtime.add_to_program(program)
    add_fat_pointer_metadata(program, kinds)
    program.invalidate_analysis()
    check_program(program)

    result = CCuredResult(
        program=program,
        config=config,
        inventory=instrumenter.inventory,
        kinds=kinds,
        runtime=runtime,
        flid_table=instrumenter.flid_table,
        locked_checks=instrumenter.locked_checks,
    )
    if config.run_optimizer:
        result.optimizer_removed = optimize_checks(program)
        check_program(program)
    return result
