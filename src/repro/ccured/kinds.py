"""Pointer kinds: the CCured type system's classification of pointers.

CCured statically partitions the pointers of a program into kinds that
determine how much run-time machinery each needs:

* ``SAFE`` — the pointer is only dereferenced, never used in arithmetic or
  suspicious casts.  It needs only a null check at dereference time and is
  represented by a single machine word.
* ``SEQ`` (sequence) — the pointer participates in arithmetic or indexing.
  It becomes a *fat pointer* carrying the base and bound of its home area,
  and dereferences need a bounds check as well as a null check.
* ``WILD`` — the pointer is involved in casts the type system cannot
  verify (in practice, integer-to-pointer casts that survive the hardware
  register refactoring).  It carries full metadata and every access is
  checked.

The kinds form a lattice SAFE < SEQ < WILD; inference joins upward.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


class PointerKind(enum.IntEnum):
    """The CCured pointer-kind lattice (ordered by increasing run-time cost)."""

    SAFE = 0
    SEQ = 1
    WILD = 2

    @staticmethod
    def join(left: "PointerKind", right: "PointerKind") -> "PointerKind":
        """Least upper bound of two kinds."""
        return PointerKind(max(int(left), int(right)))

    @property
    def needs_bounds(self) -> bool:
        """Whether dereferences through this kind require a bounds check."""
        return self is not PointerKind.SAFE

    @property
    def words(self) -> int:
        """Number of pointer-sized words in the run-time representation.

        SAFE pointers stay one word; SEQ fat pointers carry value, base and
        bound; WILD pointers additionally carry a tag-area pointer.
        """
        if self is PointerKind.SAFE:
            return 1
        if self is PointerKind.SEQ:
            return 3
        return 4

    def extra_bytes(self, pointer_size: int = 2) -> int:
        """Extra static bytes this kind adds to a single pointer object."""
        return (self.words - 1) * pointer_size


@dataclass(frozen=True)
class Slot:
    """A pointer-typed storage location tracked by kind inference.

    Slots identify globals, locals, parameters, struct fields, and function
    return values.  ``scope`` is one of ``"global"``, ``"local"``,
    ``"param"``, ``"field"``, ``"return"``; ``owner`` is the function or
    struct the slot belongs to (empty for globals).
    """

    scope: str
    owner: str
    name: str

    def __str__(self) -> str:
        if self.scope == "global":
            return self.name
        if self.scope == "field":
            return f"struct {self.owner}.{self.name}"
        if self.scope == "return":
            return f"{self.owner}()"
        return f"{self.owner}:{self.name}"


def global_slot(name: str) -> Slot:
    return Slot("global", "", name)


def local_slot(func: str, name: str) -> Slot:
    return Slot("local", func, name)


def param_slot(func: str, name: str) -> Slot:
    return Slot("param", func, name)


def field_slot(struct: str, field: str) -> Slot:
    return Slot("field", struct, field)


def return_slot(func: str) -> Slot:
    return Slot("return", func, "")


class KindMap:
    """Mapping from slots to pointer kinds with monotone updates."""

    def __init__(self) -> None:
        self._kinds: dict[Slot, PointerKind] = {}

    def get(self, slot: Slot) -> PointerKind:
        return self._kinds.get(slot, PointerKind.SAFE)

    def raise_to(self, slot: Slot, kind: PointerKind) -> bool:
        """Join ``kind`` into the slot; returns True if the slot changed."""
        current = self._kinds.get(slot, PointerKind.SAFE)
        joined = PointerKind.join(current, kind)
        if joined != current:
            self._kinds[slot] = joined
            return True
        if slot not in self._kinds:
            self._kinds[slot] = joined
        return False

    def items(self) -> list[tuple[Slot, PointerKind]]:
        return sorted(self._kinds.items(), key=lambda item: str(item[0]))

    def counts(self) -> dict[PointerKind, int]:
        """Histogram of kinds over all tracked slots."""
        histogram = {kind: 0 for kind in PointerKind}
        for kind in self._kinds.values():
            histogram[kind] += 1
        return histogram

    def __len__(self) -> int:
        return len(self._kinds)

    def __contains__(self, slot: Slot) -> bool:
        return slot in self._kinds
