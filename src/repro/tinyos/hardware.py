"""Hardware model shared by the component library, backend, and simulator.

The register map below is a simplified composite of the Mica2's ATmega128
peripherals.  The TelosB reuses the same register layout (our own hardware
abstraction) but differs in the parameters that matter to the paper's
results: pointer width behaviour of string literals (flash vs. RAM), clock
frequency, memory budgets and per-operation cycle costs.
"""

from __future__ import annotations

from dataclasses import dataclass


# ---------------------------------------------------------------------------
# Memory-mapped registers (shared by both platforms in this model)
# ---------------------------------------------------------------------------

#: LED output port: bit0 = red, bit1 = green, bit2 = yellow.
LED_PORT = 0x3B

#: Clock (Timer1) compare period, in jiffies (1 jiffy = 1/1024 s). 16-bit.
TIMER_RATE = 0x40
#: Clock control: bit0 enables the periodic compare interrupt.
TIMER_CTRL = 0x42

#: Micro timer (Timer3) period in jiffies. 16-bit.
MICROTIMER_RATE = 0x44
#: Micro timer control: bit0 enables the interrupt.
MICROTIMER_CTRL = 0x46

#: ADC control: low nibble selects the channel, bit7 starts a conversion.
ADC_CTRL = 0x26
#: ADC result (10-bit value in a 16-bit register).
ADC_DATA = 0x24

#: Radio control: bit0 enables receive, bit1 enables the transceiver.
RADIO_CTRL = 0x50
#: Radio transmit FIFO (write bytes one at a time).
RADIO_TXBUF = 0x51
#: Radio receive FIFO (read bytes one at a time).
RADIO_RXBUF = 0x52
#: Length of the packet waiting in the receive FIFO.
RADIO_RXLEN = 0x53
#: Writing a length here transmits the bytes queued in the TX FIFO.
RADIO_TXGO = 0x54
#: Radio status: bit0 = transmit in progress.
RADIO_STATUS = 0x55
#: Received signal strength of the last packet (16-bit).
RADIO_RSSI = 0x56

#: UART data register (write to transmit one byte, read for received byte).
UART_DATA = 0x2C
#: UART status: bit0 = transmitter ready.
UART_STATUS = 0x2E

#: 32-bit free-running jiffy counter exposed to the TimeStamping service
#: (read as two 16-bit halves).
JIFFY_COUNTER_LO = 0x60
JIFFY_COUNTER_HI = 0x62


# ---------------------------------------------------------------------------
# Interrupt vectors
# ---------------------------------------------------------------------------

VECTOR_CLOCK = "TIMER1_COMPA"
VECTOR_MICROTIMER = "TIMER3_COMPA"
VECTOR_ADC = "ADC"
VECTOR_RADIO_RX = "RADIO_RX"
VECTOR_RADIO_TXDONE = "RADIO_TXDONE"
VECTOR_UART_TX = "UART_TX"
VECTOR_UART_RX = "UART_RX"

ALL_VECTORS = [
    VECTOR_CLOCK,
    VECTOR_MICROTIMER,
    VECTOR_ADC,
    VECTOR_RADIO_RX,
    VECTOR_RADIO_TXDONE,
    VECTOR_UART_TX,
    VECTOR_UART_RX,
]

#: ADC channels used by the sensor boards.
ADC_CHANNEL_PHOTO = 1
ADC_CHANNEL_TEMP = 2
ADC_CHANNEL_MIC = 3

#: Jiffies per second of the Clock/Timer subsystem.
JIFFIES_PER_SECOND = 1024


# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Platform:
    """Parameters of one sensor-node platform.

    Attributes:
        name: Platform identifier used throughout the toolchain.
        cpu: Marketing name of the microcontroller.
        clock_hz: CPU clock frequency.
        pointer_bytes: Width of a data pointer.
        ram_bytes: SRAM budget.
        flash_bytes: Code (flash) budget.
        word_bits: Natural register width; operations wider than this are
            charged extra code bytes and cycles by the backend.
        strings_in_ram: Whether string literals occupy RAM by default.  On
            the Harvard-architecture AVR they do (unless explicitly placed in
            program memory), which is why the paper's "verbose error
            messages" variant has such a large RAM overhead on the Mica2.
            The MSP430 is a von Neumann machine, so constants stay in flash.
    """

    name: str
    cpu: str
    clock_hz: int
    pointer_bytes: int
    ram_bytes: int
    flash_bytes: int
    word_bits: int
    strings_in_ram: bool


MICA2 = Platform(
    name="mica2",
    cpu="ATmega128L",
    clock_hz=7_372_800,
    pointer_bytes=2,
    ram_bytes=4 * 1024,
    flash_bytes=128 * 1024,
    word_bits=8,
    strings_in_ram=True,
)

TELOSB = Platform(
    name="telosb",
    cpu="MSP430F1611",
    clock_hz=4_000_000,
    pointer_bytes=2,
    ram_bytes=10 * 1024,
    flash_bytes=48 * 1024,
    word_bits=16,
    strings_in_ram=False,
)

PLATFORMS = {p.name: p for p in (MICA2, TELOSB)}


def platform(name: str) -> Platform:
    """Look up a platform by name (``"mica2"`` or ``"telosb"``)."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(f"unknown platform {name!r}; expected one of "
                       f"{sorted(PLATFORMS)}") from None
