"""``Surge``: multihop data collection — the largest benchmark application.

Each mote samples its photo sensor on a timer and sends the reading toward
the base station through the multihop router; intermediate motes forward
traffic and snoop forwarded readings via the ``Intercept`` interface.  The
application layer itself is small, but pulling in the routing engine, the
radio stack, the timer stack and the ADC makes Surge the biggest program in
the paper's figures (330 CCured checks, ~16.6 KB unsafe code).
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base

#: Milliseconds between sensor readings.  Each mote adds a small
#: address-derived stagger (``(TOS_LOCAL_ADDRESS & 7) * 13`` ms) so readings
#: from perfectly synchronized simulated motes do not all hit the air in
#: the same instant and collide at a shared forwarder — the role CSMA's
#: random backoff plays on real hardware.
SAMPLE_PERIOD_MS = 2000

#: Byte offset of the Surge payload inside the multihop payload (the
#: multihop header occupies the first seven payload bytes).
SURGE_PAYLOAD_OFFSET = 7


def _surge_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg surge_msg_buf;
uint16_t surge_reading = 0;
uint16_t surge_seqno = 0;
uint16_t surge_intercepted = 0;
uint8_t surge_send_busy = 0;
uint8_t surge_initialized = 0;

uint8_t Control_init(void) {{
  surge_reading = 0;
  surge_seqno = 0;
  surge_intercepted = 0;
  surge_send_busy = 0;
  surge_initialized = 1;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({SAMPLE_PERIOD_MS} + (TOS_LOCAL_ADDRESS & 7) * 13);
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

uint8_t Timer_fired(void) {{
  PhotoADC_getData();
  return 1;
}}

void fill_surge_payload(struct TOS_Msg* msg, uint16_t reading, uint16_t seq) {{
  struct SurgeMsg* payload;
  payload = (struct SurgeMsg*)(msg->data + {SURGE_PAYLOAD_OFFSET});
  payload->sourceaddr = TOS_LOCAL_ADDRESS;
  payload->originaddr = TOS_LOCAL_ADDRESS;
  payload->reading = reading;
  payload->seqno = seq;
  payload->parentaddr = RouteControl_getParent();
  payload->hopcount = 0;
}}

void send_reading_task(void) {{
  uint16_t value;
  uint16_t seq;
  atomic {{
    value = surge_reading;
    seq = surge_seqno;
  }}
  Leds_yellowToggle();
  if (surge_send_busy) {{
    return;
  }}
  fill_surge_payload(&surge_msg_buf, value, seq);
  if (Send_send(&surge_msg_buf, {SURGE_PAYLOAD_OFFSET} + sizeof(struct SurgeMsg))) {{
    surge_send_busy = 1;
  }}
}}

uint8_t PhotoADC_dataReady(uint16_t value) {{
  atomic {{
    surge_reading = value;
    surge_seqno = surge_seqno + 1;
  }}
  post send_reading_task();
  return 1;
}}

uint8_t Send_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &surge_msg_buf) {{
    surge_send_busy = 0;
    if (success) {{
      Leds_greenToggle();
    }} else {{
      Leds_redToggle();
    }}
  }}
  return 1;
}}

uint8_t Intercept_intercept(struct TOS_Msg* msg, uint8_t* payload, uint16_t len) {{
  struct SurgeMsg* reading;
  if (msg == NULL) {{
    return 1;
  }}
  if (len < {SURGE_PAYLOAD_OFFSET} + sizeof(struct SurgeMsg)) {{
    return 1;
  }}
  reading = (struct SurgeMsg*)(payload + {SURGE_PAYLOAD_OFFSET});
  atomic {{
    surge_intercepted = surge_intercepted + 1;
  }}
  if ((reading->reading & 7) == 7) {{
    Leds_redToggle();
  }}
  return 1;
}}
"""
    return Component(
        name="SurgeM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "PhotoADC": ifaces["ADC"], "Send": ifaces["Send"],
              "Intercept": ifaces["Intercept"],
              "RouteControl": ifaces["RouteControl"]},
        source=source,
        tasks=["send_reading_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the Surge application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "Surge", platform, "Multihop collection of photo-sensor readings")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_adc(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    _base.add_multihop(app, ifaces)
    app.add_component(_surge_m(ifaces))
    app.wire("SurgeM", "Timer", "TimerC", "Timer0")
    app.wire("SurgeM", "Leds", "LedsC", "Leds")
    app.wire("SurgeM", "PhotoADC", "ADCC", "PhotoADC")
    app.wire("SurgeM", "Send", "MultiHopRouterM", "Send")
    app.wire("SurgeM", "Intercept", "MultiHopRouterM", "Intercept")
    app.wire("SurgeM", "RouteControl", "MultiHopRouterM", "RouteControl")
    app.boot.append(("SurgeM", "Control"))
    return app
