"""``BlinkTask``: the smallest benchmark application.

A one-second timer posts a task that toggles the red LED — the TinyOS
"hello world".  It is the paper's smallest application (22 CCured checks,
1.5 KB of unsafe code) and the one used for the runtime-footprint
measurement in Section 2.3.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos.apps import _base


def _blink_task_m(ifaces) -> Component:
    source = """
uint16_t blink_count = 0;

uint8_t Control_init(void) {
  blink_count = 0;
  return 1;
}

uint8_t Control_start(void) {
  Timer_start(1000);
  return 1;
}

uint8_t Control_stop(void) {
  Timer_stop();
  return 1;
}

void toggle_task(void) {
  blink_count = blink_count + 1;
  Leds_redToggle();
}

uint8_t Timer_fired(void) {
  post toggle_task();
  return 1;
}
"""
    return Component(
        name="BlinkTaskM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"]},
        source=source,
        tasks=["toggle_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the BlinkTask application."""
    ifaces = _base.interfaces()
    app = _base.new_application("BlinkTask", platform,
                                "Toggle the red LED from a task once per second")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    app.add_component(_blink_task_m(ifaces))
    app.wire("BlinkTaskM", "Timer", "TimerC", "Timer0")
    app.wire("BlinkTaskM", "Leds", "LedsC", "Leds")
    app.boot.append(("BlinkTaskM", "Control"))
    return app
