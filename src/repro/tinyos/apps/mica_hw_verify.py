"""``MicaHWVerify``: the hardware self-test application.

Cycles through a sequence of hardware tests — an LED walking pattern, photo
and temperature conversions, and a status report over the UART — advancing
one step per timer tick.  Structurally it is a state machine that touches
every peripheral, which is why its check count sits in the middle of the
paper's range.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos.apps import _base

#: Milliseconds between test steps.
STEP_PERIOD_MS = 250

#: Test-state machine states.
STATE_LEDS = 0
STATE_PHOTO = 1
STATE_TEMP = 2
STATE_REPORT = 3
NUM_STATES = 4


def _mica_hw_verify_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg hwv_report_msg;
uint16_t hwv_photo_reading = 0;
uint16_t hwv_temp_reading = 0;
uint16_t hwv_step_count = 0;
uint8_t hwv_state = {STATE_LEDS};
uint8_t hwv_led_phase = 0;
uint8_t hwv_uart_busy = 0;
uint8_t hwv_failures = 0;

uint8_t Control_init(void) {{
  hwv_state = {STATE_LEDS};
  hwv_led_phase = 0;
  hwv_step_count = 0;
  hwv_uart_busy = 0;
  hwv_failures = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({STEP_PERIOD_MS});
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

void run_led_test(void) {{
  if (hwv_led_phase == 0) {{
    Leds_redOn();
    Leds_greenOff();
    Leds_yellowOff();
  }}
  if (hwv_led_phase == 1) {{
    Leds_redOff();
    Leds_greenOn();
    Leds_yellowOff();
  }}
  if (hwv_led_phase == 2) {{
    Leds_redOff();
    Leds_greenOff();
    Leds_yellowOn();
  }}
  hwv_led_phase = (uint8_t)((hwv_led_phase + 1) % 3);
}}

void fill_report(void) {{
  uint8_t* payload;
  payload = hwv_report_msg.data;
  payload[0] = (uint8_t)(hwv_photo_reading & 255);
  payload[1] = (uint8_t)(hwv_photo_reading >> 8);
  payload[2] = (uint8_t)(hwv_temp_reading & 255);
  payload[3] = (uint8_t)(hwv_temp_reading >> 8);
  payload[4] = (uint8_t)(hwv_step_count & 255);
  payload[5] = (uint8_t)(hwv_step_count >> 8);
  payload[6] = hwv_failures;
  hwv_report_msg.length = 7;
  hwv_report_msg.type = 99;
}}

void report_task(void) {{
  if (hwv_uart_busy) {{
    return;
  }}
  fill_report();
  if (UARTSend_send(&hwv_report_msg)) {{
    hwv_uart_busy = 1;
  }} else {{
    hwv_failures = hwv_failures + 1;
  }}
}}

uint8_t Timer_fired(void) {{
  hwv_step_count = hwv_step_count + 1;
  if (hwv_state == {STATE_LEDS}) {{
    run_led_test();
  }}
  if (hwv_state == {STATE_PHOTO}) {{
    if (PhotoADC_getData() == 0) {{
      hwv_failures = hwv_failures + 1;
    }}
  }}
  if (hwv_state == {STATE_TEMP}) {{
    if (TempADC_getData() == 0) {{
      hwv_failures = hwv_failures + 1;
    }}
  }}
  if (hwv_state == {STATE_REPORT}) {{
    post report_task();
  }}
  hwv_state = (uint8_t)((hwv_state + 1) % {NUM_STATES});
  return 1;
}}

uint8_t PhotoADC_dataReady(uint16_t value) {{
  atomic {{
    hwv_photo_reading = value;
  }}
  return 1;
}}

uint8_t TempADC_dataReady(uint16_t value) {{
  atomic {{
    hwv_temp_reading = value;
  }}
  return 1;
}}

uint8_t UARTSend_sendDone(struct TOS_Msg* msg, uint8_t success) {{
  hwv_uart_busy = 0;
  if (success == 0) {{
    hwv_failures = hwv_failures + 1;
  }}
  return 1;
}}

struct TOS_Msg* UARTReceive_receive(struct TOS_Msg* msg) {{
  return msg;
}}
"""
    return Component(
        name="MicaHWVerifyM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "PhotoADC": ifaces["ADC"], "TempADC": ifaces["ADC"],
              "UARTSend": ifaces["BareSendMsg"],
              "UARTReceive": ifaces["ReceiveMsg"]},
        source=source,
        tasks=["report_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the MicaHWVerify application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "MicaHWVerify", platform, "Exercise LEDs, sensors and the UART in sequence")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_adc(app, ifaces)
    _base.add_uart_stack(app, ifaces)
    app.add_component(_mica_hw_verify_m(ifaces))
    app.wire("MicaHWVerifyM", "Timer", "TimerC", "Timer0")
    app.wire("MicaHWVerifyM", "Leds", "LedsC", "Leds")
    app.wire("MicaHWVerifyM", "PhotoADC", "ADCC", "PhotoADC")
    app.wire("MicaHWVerifyM", "TempADC", "ADCC", "TempADC")
    app.wire("MicaHWVerifyM", "UARTSend", "UARTFramedPacketC", "UARTSend")
    app.wire("MicaHWVerifyM", "UARTReceive", "UARTFramedPacketC", "UARTReceive")
    app.boot.append(("MicaHWVerifyM", "Control"))
    return app
