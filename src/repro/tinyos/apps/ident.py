"""``Ident``: periodic identity announcements.

Every few seconds the mote broadcasts an ``IdentMsg`` carrying its address
and a fixed name string; when it hears another mote's announcement it
flashes the green LED.  The name string is the one application-level string
literal in the suite, which matters for the static-data experiment: on the
Mica2 it lives in RAM unless explicitly moved to flash.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base

#: Milliseconds between announcements.
ANNOUNCE_PERIOD_MS = 2000

#: Bytes in the announced name.
NAME_LENGTH = 16


def _ident_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg ident_msg_buf;
uint8_t ident_name[{NAME_LENGTH}] = "safe-tinyos-mote";
uint16_t ident_announcements = 0;
uint16_t ident_heard = 0;
uint8_t ident_send_busy = 0;

uint8_t Control_init(void) {{
  ident_announcements = 0;
  ident_heard = 0;
  ident_send_busy = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({ANNOUNCE_PERIOD_MS});
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

void announce_task(void) {{
  struct IdentMsg* payload;
  uint8_t i;
  if (ident_send_busy) {{
    return;
  }}
  payload = (struct IdentMsg*)ident_msg_buf.data;
  payload->id = TOS_LOCAL_ADDRESS;
  for (i = 0; i < {NAME_LENGTH}; i++) {{
    payload->name[i] = ident_name[i];
  }}
  ident_msg_buf.type = {msgs.AM_IDENT};
  if (SendMsg_send({msgs.TOS_BCAST_ADDR}, sizeof(struct IdentMsg), &ident_msg_buf)) {{
    ident_send_busy = 1;
    ident_announcements = ident_announcements + 1;
  }}
}}

uint8_t Timer_fired(void) {{
  post announce_task();
  return 1;
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &ident_msg_buf) {{
    ident_send_busy = 0;
  }}
  return 1;
}}

struct TOS_Msg* ReceiveMsg_receive(struct TOS_Msg* msg) {{
  struct IdentMsg* payload;
  if (msg == NULL) {{
    return msg;
  }}
  if (msg->type != {msgs.AM_IDENT}) {{
    return msg;
  }}
  payload = (struct IdentMsg*)msg->data;
  if (payload->id != TOS_LOCAL_ADDRESS) {{
    atomic {{
      ident_heard = ident_heard + 1;
    }}
    Leds_greenToggle();
  }}
  return msg;
}}
"""
    return Component(
        name="IdentM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "SendMsg": ifaces["SendMsg"], "ReceiveMsg": ifaces["ReceiveMsg"]},
        source=source,
        tasks=["announce_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the Ident application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "Ident", platform, "Broadcast the mote's identity and listen for peers")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    app.add_component(_ident_m(ifaces))
    app.wire("IdentM", "Timer", "TimerC", "Timer0")
    app.wire("IdentM", "Leds", "LedsC", "Leds")
    app.wire("IdentM", "SendMsg", "AMStandard", "SendMsg")
    app.wire("IdentM", "ReceiveMsg", "AMStandard", "ReceiveMsg")
    app.boot.append(("IdentM", "Control"))
    return app
