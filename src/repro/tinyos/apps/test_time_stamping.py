"""``TestTimeStamping``: periodic time-stamped message exchange.

Each timer tick sends a ``TimeStampMsg`` carrying the local 32-bit jiffy
stamp; received messages are stamped again on arrival and the measured
offset drives the LEDs.  The application exists to exercise the
time-stamping service and 32-bit arithmetic in the safe toolchain.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base

#: Milliseconds between time-stamped messages.
STAMP_PERIOD_MS = 1000


def _test_time_stamping_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg tts_msg_buf;
uint16_t tts_seqno = 0;
uint32_t tts_last_offset = 0;
uint16_t tts_received = 0;
uint8_t tts_send_busy = 0;

uint8_t Control_init(void) {{
  tts_seqno = 0;
  tts_last_offset = 0;
  tts_received = 0;
  tts_send_busy = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({STAMP_PERIOD_MS});
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

void send_stamp_task(void) {{
  struct TimeStampMsg* payload;
  uint32_t now;
  if (tts_send_busy) {{
    return;
  }}
  now = TimeStamping_getStamp();
  payload = (struct TimeStampMsg*)tts_msg_buf.data;
  payload->source = TOS_LOCAL_ADDRESS;
  payload->seqno = tts_seqno;
  payload->sendTime = now;
  payload->receiveTime = 0;
  tts_seqno = tts_seqno + 1;
  tts_msg_buf.type = {msgs.AM_TIMESTAMP};
  if (SendMsg_send({msgs.TOS_BCAST_ADDR}, sizeof(struct TimeStampMsg), &tts_msg_buf)) {{
    tts_send_busy = 1;
  }}
}}

uint8_t Timer_fired(void) {{
  post send_stamp_task();
  return 1;
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &tts_msg_buf) {{
    tts_send_busy = 0;
  }}
  return 1;
}}

struct TOS_Msg* ReceiveMsg_receive(struct TOS_Msg* msg) {{
  struct TimeStampMsg* payload;
  uint32_t now;
  uint32_t offset;
  if (msg == NULL) {{
    return msg;
  }}
  if (msg->type != {msgs.AM_TIMESTAMP}) {{
    return msg;
  }}
  now = TimeStamping_getStamp();
  payload = (struct TimeStampMsg*)msg->data;
  payload->receiveTime = now;
  if (now >= payload->sendTime) {{
    offset = now - payload->sendTime;
  }} else {{
    offset = payload->sendTime - now;
  }}
  atomic {{
    tts_last_offset = offset;
    tts_received = tts_received + 1;
  }}
  Leds_set((uint8_t)(offset & 7));
  return msg;
}}
"""
    return Component(
        name="TestTimeStampingM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "SendMsg": ifaces["SendMsg"], "ReceiveMsg": ifaces["ReceiveMsg"],
              "TimeStamping": ifaces["TimeStamping"]},
        source=source,
        tasks=["send_stamp_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the TestTimeStamping application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "TestTimeStamping", platform, "Exchange time-stamped radio messages")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    _base.add_time_stamping(app, ifaces)
    app.add_component(_test_time_stamping_m(ifaces))
    app.wire("TestTimeStampingM", "Timer", "TimerC", "Timer0")
    app.wire("TestTimeStampingM", "Leds", "LedsC", "Leds")
    app.wire("TestTimeStampingM", "SendMsg", "AMStandard", "SendMsg")
    app.wire("TestTimeStampingM", "ReceiveMsg", "AMStandard", "ReceiveMsg")
    app.wire("TestTimeStampingM", "TimeStamping", "TimeStampingC", "TimeStamping")
    app.boot.append(("TestTimeStampingM", "Control"))
    return app
