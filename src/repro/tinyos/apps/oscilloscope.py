"""``Oscilloscope``: periodic light sampling streamed over the radio.

The application samples the photo sensor on a timer, accumulates ten
readings into an ``OscopeMsg`` buffer overlaid on the message payload, and
broadcasts each full buffer.  It is the canonical "sense and send" TinyOS
demo and a mid-sized entry in the paper's figures.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base

#: Readings per radio message.
READINGS_PER_MSG = 10
#: Sampling period in milliseconds.
SAMPLE_PERIOD_MS = 125


def _oscilloscope_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg oscope_msg_buf;
uint16_t oscope_readings[{READINGS_PER_MSG}];
uint8_t oscope_reading_count = 0;
uint16_t oscope_packet_count = 0;
uint16_t oscope_sample_count = 0;
uint8_t oscope_send_busy = 0;

uint8_t Control_init(void) {{
  uint8_t i;
  oscope_reading_count = 0;
  oscope_packet_count = 0;
  oscope_sample_count = 0;
  oscope_send_busy = 0;
  for (i = 0; i < {READINGS_PER_MSG}; i++) {{
    oscope_readings[i] = 0;
  }}
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({SAMPLE_PERIOD_MS});
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

uint8_t Timer_fired(void) {{
  PhotoADC_getData();
  return 1;
}}

void send_task(void) {{
  struct OscopeMsg* payload;
  uint8_t i;
  if (oscope_send_busy) {{
    return;
  }}
  payload = (struct OscopeMsg*)oscope_msg_buf.data;
  payload->sourceMoteID = TOS_LOCAL_ADDRESS;
  payload->lastSampleNumber = oscope_sample_count;
  payload->channel = 1;
  for (i = 0; i < {READINGS_PER_MSG}; i++) {{
    payload->data[i] = oscope_readings[i];
  }}
  oscope_msg_buf.type = {msgs.AM_OSCOPE};
  if (SendMsg_send({msgs.TOS_BCAST_ADDR}, sizeof(struct OscopeMsg), &oscope_msg_buf)) {{
    oscope_send_busy = 1;
    Leds_greenToggle();
  }}
}}

uint8_t PhotoADC_dataReady(uint16_t value) {{
  atomic {{
    if (oscope_reading_count < {READINGS_PER_MSG}) {{
      oscope_readings[oscope_reading_count] = value;
      oscope_reading_count = oscope_reading_count + 1;
    }}
    oscope_sample_count = oscope_sample_count + 1;
  }}
  Leds_redToggle();
  if (oscope_reading_count >= {READINGS_PER_MSG}) {{
    atomic {{
      oscope_reading_count = 0;
    }}
    post send_task();
  }}
  return 1;
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &oscope_msg_buf) {{
    oscope_send_busy = 0;
    oscope_packet_count = oscope_packet_count + 1;
  }}
  return 1;
}}

struct TOS_Msg* ReceiveMsg_receive(struct TOS_Msg* msg) {{
  return msg;
}}
"""
    return Component(
        name="OscilloscopeM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "PhotoADC": ifaces["ADC"], "SendMsg": ifaces["SendMsg"],
              "ReceiveMsg": ifaces["ReceiveMsg"]},
        source=source,
        tasks=["send_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the Oscilloscope application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "Oscilloscope", platform,
        "Sample the photo sensor and stream readings over the radio")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_adc(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    app.add_component(_oscilloscope_m(ifaces))
    app.wire("OscilloscopeM", "Timer", "TimerC", "Timer0")
    app.wire("OscilloscopeM", "Leds", "LedsC", "Leds")
    app.wire("OscilloscopeM", "PhotoADC", "ADCC", "PhotoADC")
    app.wire("OscilloscopeM", "SendMsg", "AMStandard", "SendMsg")
    app.wire("OscilloscopeM", "ReceiveMsg", "AMStandard", "ReceiveMsg")
    app.boot.append(("OscilloscopeM", "Control"))
    return app
