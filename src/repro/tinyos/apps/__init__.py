"""The twelve benchmark applications from the paper's evaluation figures.

Each module exposes a ``build()`` function returning a wired
:class:`~repro.nesc.application.Application`.  The registry in
:mod:`repro.tinyos.suite` maps the figure labels (``BlinkTask_Mica2`` …
``RadioCountToLeds_TelosB``) to these builders.
"""
