"""Shared plumbing for application definitions.

Applications differ in their top-level component and wiring but share the
interface definitions, the common message declarations, and a few standard
component stacks (timer stack, radio stack).  The helpers here keep each
application module focused on what is unique about it.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.nesc.interface import Interface, standard_interfaces
from repro.tinyos import messages as msgs
from repro.tinyos.lib import (
    adc_c,
    am_standard,
    hpl_clock,
    leds_c,
    micro_timer_c,
    multi_hop_router,
    radio_crc_packet_c,
    random_lfsr,
    time_stamping_c,
    timer_c,
    uart_framed_packet_c,
)


def interfaces() -> dict[str, Interface]:
    """The standard interface set, built against ``struct TOS_Msg``."""
    return standard_interfaces(msgs.tos_msg_type())


def new_application(name: str, platform: str = "mica2",
                    description: str = "") -> Application:
    """Create an empty application with the shared common source."""
    return Application(name=name, platform=platform,
                       common_source=msgs.COMMON_SOURCE,
                       description=description)


def add_timer_stack(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add ``HPLClock`` and ``TimerC`` and wire the clock."""
    app.add_component(hpl_clock(ifaces))
    app.add_component(timer_c(ifaces))
    app.wire("TimerC", "Clock", "HPLClock", "Clock")
    app.boot.append(("TimerC", "Control"))


def add_leds(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add ``LedsC`` and put it in the boot sequence."""
    app.add_component(leds_c(ifaces))
    app.boot.append(("LedsC", "Control"))


def add_adc(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add ``ADCC`` and put it in the boot sequence."""
    app.add_component(adc_c(ifaces))
    app.boot.append(("ADCC", "Control"))


def add_radio_stack(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add ``RadioCRCPacketC`` + ``AMStandard`` and wire them together."""
    app.add_component(radio_crc_packet_c(ifaces))
    app.add_component(am_standard(ifaces))
    app.wire("AMStandard", "RadioSend", "RadioCRCPacketC", "Send")
    app.wire("AMStandard", "RadioReceive", "RadioCRCPacketC", "Receive")
    app.boot.append(("RadioCRCPacketC", "Control"))
    app.boot.append(("AMStandard", "Control"))


def add_uart_stack(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add ``UARTFramedPacketC`` and put it in the boot sequence."""
    app.add_component(uart_framed_packet_c(ifaces))
    app.boot.append(("UARTFramedPacketC", "Control"))


def add_random(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add the LFSR random number generator."""
    app.add_component(random_lfsr(ifaces))


def add_time_stamping(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add the time-stamping service."""
    app.add_component(time_stamping_c(ifaces))


def add_micro_timer(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add the high-rate micro timer."""
    app.add_component(micro_timer_c(ifaces))
    app.boot.append(("MicroTimerC", "Control"))


def add_multihop(app: Application, ifaces: dict[str, Interface]) -> None:
    """Add the multihop router (wired onto AMStandard, TimerC.Timer1, Random)."""
    app.add_component(multi_hop_router(ifaces))
    app.add_component(random_lfsr(ifaces))
    app.wire("MultiHopRouterM", "SendMsg", "AMStandard", "SendMsg")
    app.wire("MultiHopRouterM", "ReceiveMsg", "AMStandard", "ReceiveMsg")
    app.wire("MultiHopRouterM", "Random", "RandomLFSR", "Random")
    app.wire("MultiHopRouterM", "RouteTimer", "TimerC", "Timer1")
    app.boot.append(("MultiHopRouterM", "Control"))
