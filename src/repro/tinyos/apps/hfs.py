"""``HighFrequencySampling``: double-buffered high-rate data acquisition.

A fast micro-timer drives ADC conversions at a much higher rate than the
other applications.  Readings are written into one half of a double buffer
in interrupt context; when a half fills, a task drains it into radio
messages (three readings per message).  It is the largest RAM consumer in
the paper's figures because of its sample buffers.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base
from repro.tinyos import hardware as hw

#: Samples per buffer half.
BUFFER_SAMPLES = 32
#: Micro-timer period in jiffies (1024 Hz base): ~128 conversions/second.
MICRO_PERIOD_JIFFIES = 8
#: Readings packed into one radio message.
READINGS_PER_MSG = 10


def _hfs_m(ifaces) -> Component:
    source = f"""
uint16_t hfs_buffer_a[{BUFFER_SAMPLES}];
uint16_t hfs_buffer_b[{BUFFER_SAMPLES}];
uint8_t hfs_active_buffer = 0;
uint8_t hfs_fill_index = 0;
uint8_t hfs_drain_pending = 0;
uint16_t hfs_total_samples = 0;
uint16_t hfs_messages_sent = 0;
uint8_t hfs_send_busy = 0;
uint8_t hfs_drain_index = 0;
struct TOS_Msg hfs_msg_buf;

uint8_t Control_init(void) {{
  uint8_t i;
  for (i = 0; i < {BUFFER_SAMPLES}; i++) {{
    hfs_buffer_a[i] = 0;
    hfs_buffer_b[i] = 0;
  }}
  hfs_active_buffer = 0;
  hfs_fill_index = 0;
  hfs_drain_pending = 0;
  hfs_total_samples = 0;
  hfs_messages_sent = 0;
  hfs_send_busy = 0;
  hfs_drain_index = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  MicroTimer_setRate({MICRO_PERIOD_JIFFIES});
  return 1;
}}

uint8_t Control_stop(void) {{
  return 1;
}}

uint8_t MicroTimer_tick(void) {{
  PhotoADC_getData();
  return 1;
}}

void store_sample(uint16_t value) {{
  uint16_t* buffer;
  if (hfs_active_buffer == 0) {{
    buffer = hfs_buffer_a;
  }} else {{
    buffer = hfs_buffer_b;
  }}
  if (hfs_fill_index < {BUFFER_SAMPLES}) {{
    buffer[hfs_fill_index] = value;
    hfs_fill_index = hfs_fill_index + 1;
  }}
  hfs_total_samples = hfs_total_samples + 1;
  if (hfs_fill_index >= {BUFFER_SAMPLES}) {{
    hfs_fill_index = 0;
    hfs_active_buffer = (uint8_t)(1 - hfs_active_buffer);
    hfs_drain_pending = 1;
    hfs_drain_index = 0;
    post drain_task();
  }}
}}

uint8_t PhotoADC_dataReady(uint16_t value) {{
  store_sample(value);
  return 1;
}}

void drain_task(void) {{
  struct OscopeMsg* payload;
  uint16_t* buffer;
  uint8_t i;
  uint8_t index;
  if (hfs_drain_pending == 0) {{
    return;
  }}
  if (hfs_send_busy) {{
    post drain_task();
    return;
  }}
  if (hfs_active_buffer == 0) {{
    buffer = hfs_buffer_b;
  }} else {{
    buffer = hfs_buffer_a;
  }}
  payload = (struct OscopeMsg*)hfs_msg_buf.data;
  payload->sourceMoteID = TOS_LOCAL_ADDRESS;
  payload->lastSampleNumber = hfs_total_samples;
  payload->channel = 1;
  for (i = 0; i < {READINGS_PER_MSG}; i++) {{
    index = hfs_drain_index + i;
    if (index < {BUFFER_SAMPLES}) {{
      payload->data[i] = buffer[index];
    }} else {{
      payload->data[i] = 0;
    }}
  }}
  hfs_msg_buf.type = {msgs.AM_HFS_DATA};
  if (SendMsg_send({msgs.TOS_BCAST_ADDR}, sizeof(struct OscopeMsg), &hfs_msg_buf)) {{
    hfs_send_busy = 1;
    hfs_messages_sent = hfs_messages_sent + 1;
  }}
  hfs_drain_index = hfs_drain_index + {READINGS_PER_MSG};
  if (hfs_drain_index >= {BUFFER_SAMPLES}) {{
    hfs_drain_pending = 0;
    hfs_drain_index = 0;
  }} else {{
    post drain_task();
  }}
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &hfs_msg_buf) {{
    hfs_send_busy = 0;
  }}
  return 1;
}}
"""
    return Component(
        name="HighFrequencySamplingM",
        provides={"Control": ifaces["StdControl"]},
        uses={"MicroTimer": ifaces["Clock"], "PhotoADC": ifaces["ADC"],
              "SendMsg": ifaces["SendMsg"], "Leds": ifaces["Leds"]},
        source=source,
        tasks=["drain_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the HighFrequencySampling application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "HighFrequencySampling", platform,
        "Double-buffered high-rate ADC sampling streamed over the radio")
    _base.add_leds(app, ifaces)
    _base.add_adc(app, ifaces)
    _base.add_micro_timer(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    app.add_component(_hfs_m(ifaces))
    app.wire("HighFrequencySamplingM", "MicroTimer", "MicroTimerC", "MicroTimer")
    app.wire("HighFrequencySamplingM", "PhotoADC", "ADCC", "PhotoADC")
    app.wire("HighFrequencySamplingM", "SendMsg", "AMStandard", "SendMsg")
    app.wire("HighFrequencySamplingM", "Leds", "LedsC", "Leds")
    app.boot.append(("HighFrequencySamplingM", "Control"))
    return app
