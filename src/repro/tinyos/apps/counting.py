"""Counting applications: ``CntToLedsAndRfm`` (Mica2) and ``RadioCountToLeds``
(TelosB).

Both maintain a counter driven by a timer.  ``CntToLedsAndRfm`` displays the
counter on the LEDs *and* broadcasts it over the radio;
``RadioCountToLeds`` both broadcasts its own counter and displays counters
received from other motes — it is the one TelosB entry in the paper's
figures.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base

#: Counting period in milliseconds.
COUNT_PERIOD_MS = 250


def _cnt_to_leds_and_rfm_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg cnt_msg_buf;
uint16_t cnt_counter = 0;
uint8_t cnt_send_busy = 0;

uint8_t Control_init(void) {{
  cnt_counter = 0;
  cnt_send_busy = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({COUNT_PERIOD_MS});
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

void send_count_task(void) {{
  uint16_t value;
  atomic {{
    value = cnt_counter;
  }}
  if (cnt_send_busy) {{
    return;
  }}
  cnt_msg_buf.data[0] = (uint8_t)(value & 255);
  cnt_msg_buf.data[1] = (uint8_t)(value >> 8);
  cnt_msg_buf.type = {msgs.AM_INT_MSG};
  if (SendMsg_send({msgs.TOS_BCAST_ADDR}, 2, &cnt_msg_buf)) {{
    cnt_send_busy = 1;
  }}
}}

uint8_t Timer_fired(void) {{
  atomic {{
    cnt_counter = cnt_counter + 1;
  }}
  Leds_set((uint8_t)(cnt_counter & 7));
  post send_count_task();
  return 1;
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &cnt_msg_buf) {{
    cnt_send_busy = 0;
  }}
  return 1;
}}
"""
    return Component(
        name="CntToLedsAndRfmM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "SendMsg": ifaces["SendMsg"]},
        source=source,
        tasks=["send_count_task"],
    )


def build_cnt_to_leds_and_rfm(platform: str = "mica2") -> Application:
    """Build the CntToLedsAndRfm application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "CntToLedsAndRfm", platform,
        "Count on a timer; show the count on the LEDs and broadcast it")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    app.add_component(_cnt_to_leds_and_rfm_m(ifaces))
    app.wire("CntToLedsAndRfmM", "Timer", "TimerC", "Timer0")
    app.wire("CntToLedsAndRfmM", "Leds", "LedsC", "Leds")
    app.wire("CntToLedsAndRfmM", "SendMsg", "AMStandard", "SendMsg")
    app.boot.append(("CntToLedsAndRfmM", "Control"))
    return app


def _radio_count_to_leds_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg rcl_msg_buf;
uint16_t rcl_counter = 0;
uint16_t rcl_last_received = 0;
uint8_t rcl_send_busy = 0;

uint8_t Control_init(void) {{
  rcl_counter = 0;
  rcl_last_received = 0;
  rcl_send_busy = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({COUNT_PERIOD_MS});
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

void send_task(void) {{
  uint16_t value;
  atomic {{
    value = rcl_counter;
  }}
  if (rcl_send_busy) {{
    return;
  }}
  rcl_msg_buf.data[0] = (uint8_t)(value & 255);
  rcl_msg_buf.data[1] = (uint8_t)(value >> 8);
  rcl_msg_buf.type = {msgs.AM_COUNT};
  if (SendMsg_send({msgs.TOS_BCAST_ADDR}, 2, &rcl_msg_buf)) {{
    rcl_send_busy = 1;
  }}
}}

void display_task(void) {{
  uint16_t value;
  atomic {{
    value = rcl_last_received;
  }}
  Leds_set((uint8_t)(value & 7));
}}

uint8_t Timer_fired(void) {{
  atomic {{
    rcl_counter = rcl_counter + 1;
  }}
  post send_task();
  return 1;
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &rcl_msg_buf) {{
    rcl_send_busy = 0;
  }}
  return 1;
}}

struct TOS_Msg* ReceiveMsg_receive(struct TOS_Msg* msg) {{
  uint16_t value;
  if (msg == NULL) {{
    return msg;
  }}
  if (msg->type != {msgs.AM_COUNT}) {{
    return msg;
  }}
  value = (uint16_t)msg->data[0] | ((uint16_t)msg->data[1] << 8);
  atomic {{
    rcl_last_received = value;
  }}
  post display_task();
  return msg;
}}
"""
    return Component(
        name="RadioCountToLedsM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "SendMsg": ifaces["SendMsg"], "ReceiveMsg": ifaces["ReceiveMsg"]},
        source=source,
        tasks=["send_task", "display_task"],
    )


def build_radio_count_to_leds(platform: str = "telosb") -> Application:
    """Build the RadioCountToLeds application (the TelosB benchmark)."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "RadioCountToLeds", platform,
        "Broadcast a counter and display counters received from other motes")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    app.add_component(_radio_count_to_leds_m(ifaces))
    app.wire("RadioCountToLedsM", "Timer", "TimerC", "Timer0")
    app.wire("RadioCountToLedsM", "Leds", "LedsC", "Leds")
    app.wire("RadioCountToLedsM", "SendMsg", "AMStandard", "SendMsg")
    app.wire("RadioCountToLedsM", "ReceiveMsg", "AMStandard", "ReceiveMsg")
    app.boot.append(("RadioCountToLedsM", "Control"))
    return app
