"""``GenericBase``: the radio/serial bridge used as a base station.

Packets received from the radio are forwarded to the attached PC over the
UART, and packets received from the UART are transmitted over the radio.
Both directions use the buffer-swap protocol with one spare buffer per
direction, so the component juggles message pointers — a good stress test
for CCured's pointer kinds.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos.apps import _base
from repro.tinyos.lib.radio import radio_crc_packet_c


def _generic_base_m(ifaces) -> Component:
    source = """
struct TOS_Msg gb_radio_spare;
struct TOS_Msg gb_uart_spare;
struct TOS_Msg* gb_uart_pending;
struct TOS_Msg* gb_radio_pending;
uint8_t gb_uart_busy = 0;
uint8_t gb_radio_busy = 0;
uint16_t gb_forwarded_to_uart = 0;
uint16_t gb_forwarded_to_radio = 0;
uint16_t gb_dropped = 0;

uint8_t Control_init(void) {
  atomic {
    gb_uart_busy = 0;
    gb_radio_busy = 0;
    gb_uart_pending = NULL;
    gb_radio_pending = NULL;
  }
  return 1;
}

uint8_t Control_start(void) {
  Leds_greenOn();
  return 1;
}

uint8_t Control_stop(void) {
  return 1;
}

struct TOS_Msg* RadioReceive_receive(struct TOS_Msg* msg) {
  struct TOS_Msg* free_buf;
  uint8_t busy;
  if (msg == NULL) {
    return msg;
  }
  atomic {
    busy = gb_uart_busy;
    if (busy == 0) {
      gb_uart_busy = 1;
      gb_uart_pending = msg;
    }
  }
  if (busy) {
    gb_dropped = gb_dropped + 1;
    return msg;
  }
  if (UARTSend_send(msg) == 0) {
    atomic {
      gb_uart_busy = 0;
      gb_uart_pending = NULL;
    }
    gb_dropped = gb_dropped + 1;
    return msg;
  }
  Leds_yellowToggle();
  free_buf = &gb_radio_spare;
  return free_buf;
}

uint8_t UARTSend_sendDone(struct TOS_Msg* msg, uint8_t success) {
  atomic {
    gb_uart_busy = 0;
    gb_uart_pending = NULL;
  }
  gb_forwarded_to_uart = gb_forwarded_to_uart + 1;
  return 1;
}

struct TOS_Msg* UARTReceive_receive(struct TOS_Msg* msg) {
  struct TOS_Msg* free_buf;
  uint8_t busy;
  if (msg == NULL) {
    return msg;
  }
  atomic {
    busy = gb_radio_busy;
    if (busy == 0) {
      gb_radio_busy = 1;
      gb_radio_pending = msg;
    }
  }
  if (busy) {
    gb_dropped = gb_dropped + 1;
    return msg;
  }
  if (RadioSend_send(msg) == 0) {
    atomic {
      gb_radio_busy = 0;
      gb_radio_pending = NULL;
    }
    gb_dropped = gb_dropped + 1;
    return msg;
  }
  Leds_redToggle();
  free_buf = &gb_uart_spare;
  return free_buf;
}

uint8_t RadioSend_sendDone(struct TOS_Msg* msg, uint8_t success) {
  atomic {
    gb_radio_busy = 0;
    gb_radio_pending = NULL;
  }
  gb_forwarded_to_radio = gb_forwarded_to_radio + 1;
  return 1;
}
"""
    return Component(
        name="GenericBaseM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Leds": ifaces["Leds"],
              "RadioSend": ifaces["BareSendMsg"],
              "RadioReceive": ifaces["ReceiveMsg"],
              "UARTSend": ifaces["BareSendMsg"],
              "UARTReceive": ifaces["ReceiveMsg"]},
        source=source,
    )


def build(platform: str = "mica2") -> Application:
    """Build the GenericBase application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "GenericBase", platform,
        "Bridge packets between the radio and the serial port")
    _base.add_leds(app, ifaces)
    _base.add_uart_stack(app, ifaces)
    app.add_component(radio_crc_packet_c(ifaces))
    app.boot.append(("RadioCRCPacketC", "Control"))
    app.add_component(_generic_base_m(ifaces))
    app.wire("GenericBaseM", "Leds", "LedsC", "Leds")
    app.wire("GenericBaseM", "RadioSend", "RadioCRCPacketC", "Send")
    app.wire("GenericBaseM", "RadioReceive", "RadioCRCPacketC", "Receive")
    app.wire("GenericBaseM", "UARTSend", "UARTFramedPacketC", "UARTSend")
    app.wire("GenericBaseM", "UARTReceive", "UARTFramedPacketC", "UARTReceive")
    app.boot.append(("GenericBaseM", "Control"))
    return app
