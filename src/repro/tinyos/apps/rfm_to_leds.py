"""``RfmToLeds``: display received radio values on the LEDs.

The receive half of the classic ``CntToLedsAndRfm``/``RfmToLeds`` pair: any
integer broadcast over the radio is shown on the three LEDs.  All of its
interesting work happens in interrupt context (the radio receive path), so
it exercises the concurrency handling of the safe toolchain.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base


def _rfm_to_leds_m(ifaces) -> Component:
    source = f"""
uint16_t rfm_received = 0;
uint16_t rfm_last_value = 0;

uint8_t Control_init(void) {{
  rfm_received = 0;
  rfm_last_value = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  return 1;
}}

uint8_t Control_stop(void) {{
  return 1;
}}

void display_task(void) {{
  uint16_t value;
  atomic {{
    value = rfm_last_value;
  }}
  Leds_set((uint8_t)(value & 7));
}}

struct TOS_Msg* ReceiveMsg_receive(struct TOS_Msg* msg) {{
  uint16_t value;
  if (msg == NULL) {{
    return msg;
  }}
  if (msg->type != {msgs.AM_INT_MSG}) {{
    return msg;
  }}
  value = (uint16_t)msg->data[0] | ((uint16_t)msg->data[1] << 8);
  atomic {{
    rfm_last_value = value;
    rfm_received = rfm_received + 1;
  }}
  post display_task();
  return msg;
}}
"""
    return Component(
        name="RfmToLedsM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Leds": ifaces["Leds"], "ReceiveMsg": ifaces["ReceiveMsg"]},
        source=source,
        tasks=["display_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the RfmToLeds application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "RfmToLeds", platform, "Show integers received over the radio on the LEDs")
    _base.add_leds(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    app.add_component(_rfm_to_leds_m(ifaces))
    app.wire("RfmToLedsM", "Leds", "LedsC", "Leds")
    app.wire("RfmToLedsM", "ReceiveMsg", "AMStandard", "ReceiveMsg")
    app.boot.append(("RfmToLedsM", "Control"))
    return app
