"""``SenseToRfm``: sample a sensor periodically and broadcast every reading.

The single-hop ancestor of Surge: each timer tick starts an ADC conversion
and every completed reading is sent over the radio immediately (one reading
per message), with the LEDs showing the low bits of the last reading.
"""

from __future__ import annotations

from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.tinyos import messages as msgs
from repro.tinyos.apps import _base

#: Sampling period in milliseconds.
SAMPLE_PERIOD_MS = 500


def _sense_to_rfm_m(ifaces) -> Component:
    source = f"""
struct TOS_Msg sense_msg_buf;
uint16_t sense_reading = 0;
uint16_t sense_seqno = 0;
uint8_t sense_send_busy = 0;

uint8_t Control_init(void) {{
  sense_reading = 0;
  sense_seqno = 0;
  sense_send_busy = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start({SAMPLE_PERIOD_MS});
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

uint8_t Timer_fired(void) {{
  PhotoADC_getData();
  return 1;
}}

void report_task(void) {{
  uint16_t value;
  uint16_t seq;
  atomic {{
    value = sense_reading;
    seq = sense_seqno;
  }}
  Leds_set((uint8_t)(value & 7));
  if (sense_send_busy) {{
    return;
  }}
  sense_msg_buf.data[0] = (uint8_t)(value & 255);
  sense_msg_buf.data[1] = (uint8_t)(value >> 8);
  sense_msg_buf.data[2] = (uint8_t)(seq & 255);
  sense_msg_buf.data[3] = (uint8_t)(seq >> 8);
  sense_msg_buf.type = {msgs.AM_INT_MSG};
  if (SendMsg_send({msgs.TOS_BCAST_ADDR}, 4, &sense_msg_buf)) {{
    sense_send_busy = 1;
  }}
}}

uint8_t PhotoADC_dataReady(uint16_t value) {{
  atomic {{
    sense_reading = value;
    sense_seqno = sense_seqno + 1;
  }}
  post report_task();
  return 1;
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* sent, uint8_t success) {{
  if (sent == &sense_msg_buf) {{
    sense_send_busy = 0;
  }}
  return 1;
}}
"""
    return Component(
        name="SenseToRfmM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "PhotoADC": ifaces["ADC"], "SendMsg": ifaces["SendMsg"]},
        source=source,
        tasks=["report_task"],
    )


def build(platform: str = "mica2") -> Application:
    """Build the SenseToRfm application."""
    ifaces = _base.interfaces()
    app = _base.new_application(
        "SenseToRfm", platform, "Broadcast every photo-sensor reading")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_adc(app, ifaces)
    _base.add_radio_stack(app, ifaces)
    app.add_component(_sense_to_rfm_m(ifaces))
    app.wire("SenseToRfmM", "Timer", "TimerC", "Timer0")
    app.wire("SenseToRfmM", "Leds", "LedsC", "Leds")
    app.wire("SenseToRfmM", "PhotoADC", "ADCC", "PhotoADC")
    app.wire("SenseToRfmM", "SendMsg", "AMStandard", "SendMsg")
    app.boot.append(("SenseToRfmM", "Control"))
    return app
