"""Utility services: pseudo-random numbers and message time-stamping.

``RandomLFSR`` is the 16-bit linear-feedback shift register from TinyOS 1.x,
used by the multihop router to jitter its beacon timing.  ``TimeStampingC``
exposes the free-running jiffy counter as a 32-bit time stamp, which the
TestTimeStamping application embeds in outgoing messages.
"""

from __future__ import annotations

from repro.nesc.component import Component
from repro.nesc.interface import Interface
from repro.tinyos import hardware as hw


def random_lfsr(interfaces: dict[str, Interface]) -> Component:
    """Build the 16-bit LFSR random number generator."""
    source = """
uint16_t lfsr_shift_register = 119;
uint16_t lfsr_init_seed = 119;
uint16_t lfsr_mask = 137;

uint8_t Random_init(void) {
  atomic {
    lfsr_shift_register = 119;
    lfsr_init_seed = 119;
    lfsr_mask = 137;
  }
  return 1;
}

uint16_t Random_rand(void) {
  uint8_t endbit;
  uint16_t tmp_shift_register;
  atomic {
    tmp_shift_register = lfsr_shift_register;
    endbit = (uint8_t)((tmp_shift_register & 32768) != 0);
    tmp_shift_register = tmp_shift_register << 1;
    if (endbit) {
      tmp_shift_register = tmp_shift_register ^ 4352;
    }
    tmp_shift_register = tmp_shift_register + 1;
    lfsr_shift_register = tmp_shift_register;
  }
  return tmp_shift_register ^ lfsr_mask;
}
"""
    return Component(
        name="RandomLFSR",
        provides={"Random": interfaces["Random"]},
        uses={},
        source=source,
        init_priority=50,
    )


def time_stamping_c(interfaces: dict[str, Interface]) -> Component:
    """Build the time-stamping service over the jiffy counter registers."""
    source = f"""
uint32_t ts_last_stamp = 0;

uint32_t TimeStamping_getStamp(void) {{
  uint16_t lo;
  uint16_t hi;
  uint16_t hi2;
  uint32_t stamp;
  atomic {{
    hi = *(uint16_t*){hw.JIFFY_COUNTER_HI};
    lo = *(uint16_t*){hw.JIFFY_COUNTER_LO};
    hi2 = *(uint16_t*){hw.JIFFY_COUNTER_HI};
    if (hi2 != hi) {{
      lo = *(uint16_t*){hw.JIFFY_COUNTER_LO};
      hi = hi2;
    }}
  }}
  stamp = ((uint32_t)hi << 16) | (uint32_t)lo;
  ts_last_stamp = stamp;
  return stamp;
}}
"""
    return Component(
        name="TimeStampingC",
        provides={"TimeStamping": interfaces["TimeStamping"]},
        uses={},
        source=source,
        init_priority=50,
    )
