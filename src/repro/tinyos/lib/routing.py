"""``MultiHopRouterM``: beacon-based multihop routing (the Surge substrate).

A simplified re-creation of the TinyOS 1.x ``MultiHopRouter``/``WMEWMA``
engine with the structure that matters to the toolchain: a neighbor table
updated from received beacons, periodic parent selection, a small forwarding
queue of message buffers, and a multihop header overlaid on the message
payload through a pointer cast.  Surge is the largest application in the
paper's figures chiefly because of this component.
"""

from __future__ import annotations

from repro.nesc.component import Component
from repro.nesc.interface import Interface
from repro.tinyos import messages as msgs

#: Number of neighbor-table entries.
NEIGHBOR_TABLE_SIZE = 8
#: Number of message buffers in the forwarding queue.
FORWARD_QUEUE_SIZE = 4
#: Beacon period in milliseconds.  Each mote adds a small address-derived
#: stagger (``(TOS_LOCAL_ADDRESS & 7) * 17`` ms) so beacons from perfectly
#: synchronized simulated motes drift apart instead of colliding at a
#: shared neighbour every round — the role WMEWMA's randomized beacon
#: timing plays on real, mutually unsynchronized hardware.
BEACON_PERIOD_MS = 4000
#: Address of the routing tree root (the base station).
BASE_STATION_ADDRESS = 0
#: Hop count advertised by a mote with no route; neighbors advertising it
#: must never be chosen as parents, or two routeless motes adopt each other
#: and forwarded packets ping-pong between them forever.
NO_ROUTE_HOPCOUNT = 64


def multi_hop_router(interfaces: dict[str, Interface]) -> Component:
    """Build the multihop routing engine."""
    source = f"""
struct MultihopHdr {{
  uint16_t sourceaddr;
  uint16_t originaddr;
  uint16_t seqno;
  uint8_t hopcount;
}};

struct NeighborEntry {{
  uint16_t addr;
  uint8_t hopcount;
  uint8_t quality;
  uint8_t age;
  uint8_t valid;
}};

struct NeighborEntry route_table[{NEIGHBOR_TABLE_SIZE}];
struct TOS_Msg route_fwd_queue[{FORWARD_QUEUE_SIZE}];
uint8_t route_fwd_in_use[{FORWARD_QUEUE_SIZE}];
struct TOS_Msg route_beacon_msg;
uint16_t route_parent = {msgs.TOS_BCAST_ADDR};
uint8_t route_hopcount = {NO_ROUTE_HOPCOUNT};
uint16_t route_seqno = 0;
uint8_t route_sending = 0;
uint16_t route_forwarded = 0;
uint16_t route_dropped = 0;

uint8_t Control_init(void) {{
  uint8_t i;
  for (i = 0; i < {NEIGHBOR_TABLE_SIZE}; i++) {{
    route_table[i].addr = {msgs.TOS_BCAST_ADDR};
    route_table[i].hopcount = 255;
    route_table[i].quality = 0;
    route_table[i].age = 0;
    route_table[i].valid = 0;
  }}
  for (i = 0; i < {FORWARD_QUEUE_SIZE}; i++) {{
    route_fwd_in_use[i] = 0;
  }}
  route_parent = {msgs.TOS_BCAST_ADDR};
  route_hopcount = {NO_ROUTE_HOPCOUNT};
  route_seqno = 0;
  route_sending = 0;
  if (TOS_LOCAL_ADDRESS == {BASE_STATION_ADDRESS}) {{
    route_hopcount = 0;
    route_parent = {BASE_STATION_ADDRESS};
  }}
  return 1;
}}

uint8_t Control_start(void) {{
  RouteTimer_start({BEACON_PERIOD_MS} + (TOS_LOCAL_ADDRESS & 7) * 17);
  return 1;
}}

uint8_t Control_stop(void) {{
  RouteTimer_stop();
  return 1;
}}

uint8_t find_neighbor(uint16_t addr) {{
  uint8_t i;
  for (i = 0; i < {NEIGHBOR_TABLE_SIZE}; i++) {{
    if (route_table[i].valid && route_table[i].addr == addr) {{
      return i;
    }}
  }}
  return {NEIGHBOR_TABLE_SIZE};
}}

uint8_t allocate_neighbor(uint16_t addr) {{
  uint8_t i;
  uint8_t oldest = 0;
  uint8_t oldest_age = 0;
  for (i = 0; i < {NEIGHBOR_TABLE_SIZE}; i++) {{
    if (!route_table[i].valid) {{
      route_table[i].addr = addr;
      route_table[i].hopcount = 255;
      route_table[i].quality = 0;
      route_table[i].age = 0;
      route_table[i].valid = 1;
      return i;
    }}
    if (route_table[i].age >= oldest_age) {{
      oldest_age = route_table[i].age;
      oldest = i;
    }}
  }}
  route_table[oldest].addr = addr;
  route_table[oldest].hopcount = 255;
  route_table[oldest].quality = 0;
  route_table[oldest].age = 0;
  route_table[oldest].valid = 1;
  return oldest;
}}

void update_neighbor(uint16_t addr, uint8_t hopcount) {{
  uint8_t slot;
  slot = find_neighbor(addr);
  if (slot >= {NEIGHBOR_TABLE_SIZE}) {{
    slot = allocate_neighbor(addr);
  }}
  route_table[slot].hopcount = hopcount;
  route_table[slot].age = 0;
  if (route_table[slot].quality < 255) {{
    route_table[slot].quality = route_table[slot].quality + 16;
  }}
}}

void choose_parent(void) {{
  uint8_t i;
  uint8_t best = {NEIGHBOR_TABLE_SIZE};
  uint8_t best_hopcount = 255;
  if (TOS_LOCAL_ADDRESS == {BASE_STATION_ADDRESS}) {{
    return;
  }}
  for (i = 0; i < {NEIGHBOR_TABLE_SIZE}; i++) {{
    if (!route_table[i].valid) {{
      continue;
    }}
    if (route_table[i].quality < 32) {{
      continue;
    }}
    if (route_table[i].hopcount >= {NO_ROUTE_HOPCOUNT}) {{
      continue;
    }}
    if (route_table[i].hopcount < best_hopcount) {{
      best_hopcount = route_table[i].hopcount;
      best = i;
    }}
  }}
  if (best < {NEIGHBOR_TABLE_SIZE}) {{
    route_parent = route_table[best].addr;
    route_hopcount = best_hopcount + 1;
  }} else {{
    route_parent = {msgs.TOS_BCAST_ADDR};
    route_hopcount = {NO_ROUTE_HOPCOUNT};
  }}
}}

void age_neighbors(void) {{
  uint8_t i;
  for (i = 0; i < {NEIGHBOR_TABLE_SIZE}; i++) {{
    if (!route_table[i].valid) {{
      continue;
    }}
    if (route_table[i].age < 255) {{
      route_table[i].age = route_table[i].age + 1;
    }}
    if (route_table[i].quality > 0) {{
      route_table[i].quality = route_table[i].quality - 1;
    }}
    if (route_table[i].age > 8) {{
      route_table[i].valid = 0;
    }}
  }}
}}

void send_beacon(void) {{
  struct MultihopHdr* hdr;
  uint8_t jitter;
  jitter = (uint8_t)(Random_rand() & 7);
  hdr = (struct MultihopHdr*)route_beacon_msg.data;
  hdr->sourceaddr = TOS_LOCAL_ADDRESS;
  hdr->originaddr = TOS_LOCAL_ADDRESS;
  hdr->seqno = route_seqno;
  hdr->hopcount = route_hopcount + jitter - jitter;
  route_beacon_msg.type = {msgs.AM_MULTIHOP};
  SendMsg_send({msgs.TOS_BCAST_ADDR}, sizeof(struct MultihopHdr), &route_beacon_msg);
}}

uint8_t RouteTimer_fired(void) {{
  age_neighbors();
  choose_parent();
  send_beacon();
  return 1;
}}

uint16_t RouteControl_getParent(void) {{
  return route_parent;
}}

uint8_t Send_send(struct TOS_Msg* msg, uint16_t length) {{
  struct MultihopHdr* hdr;
  if (msg == NULL) {{
    return 0;
  }}
  if (length > {msgs.TOSH_DATA_LENGTH}) {{
    return 0;
  }}
  if (route_parent == {msgs.TOS_BCAST_ADDR}) {{
    return 0;
  }}
  hdr = (struct MultihopHdr*)msg->data;
  hdr->sourceaddr = TOS_LOCAL_ADDRESS;
  hdr->originaddr = TOS_LOCAL_ADDRESS;
  hdr->seqno = route_seqno;
  hdr->hopcount = route_hopcount;
  route_seqno = route_seqno + 1;
  msg->type = {msgs.AM_MULTIHOP};
  return SendMsg_send(route_parent, (uint8_t)length, msg);
}}

uint8_t find_free_queue_slot(void) {{
  uint8_t i;
  for (i = 0; i < {FORWARD_QUEUE_SIZE}; i++) {{
    if (route_fwd_in_use[i] == 0) {{
      return i;
    }}
  }}
  return {FORWARD_QUEUE_SIZE};
}}

void copy_message(struct TOS_Msg* dst, struct TOS_Msg* src) {{
  uint8_t i;
  uint8_t* dbytes;
  uint8_t* sbytes;
  dbytes = (uint8_t*)dst;
  sbytes = (uint8_t*)src;
  for (i = 0; i < {msgs.TOS_MSG_WIRE_LENGTH}; i++) {{
    dbytes[i] = sbytes[i];
  }}
}}

void forward_message(struct TOS_Msg* msg) {{
  uint8_t slot;
  struct MultihopHdr* hdr;
  struct TOS_Msg* copy;
  if (route_parent == {msgs.TOS_BCAST_ADDR}) {{
    route_dropped = route_dropped + 1;
    return;
  }}
  slot = find_free_queue_slot();
  if (slot >= {FORWARD_QUEUE_SIZE}) {{
    route_dropped = route_dropped + 1;
    return;
  }}
  copy = &route_fwd_queue[slot];
  copy_message(copy, msg);
  hdr = (struct MultihopHdr*)copy->data;
  hdr->sourceaddr = TOS_LOCAL_ADDRESS;
  hdr->hopcount = route_hopcount;
  route_fwd_in_use[slot] = 1;
  if (SendMsg_send(route_parent, copy->length, copy)) {{
    route_forwarded = route_forwarded + 1;
  }} else {{
    route_fwd_in_use[slot] = 0;
    route_dropped = route_dropped + 1;
  }}
}}

uint8_t SendMsg_sendDone(struct TOS_Msg* msg, uint8_t success) {{
  uint8_t i;
  for (i = 0; i < {FORWARD_QUEUE_SIZE}; i++) {{
    if (route_fwd_in_use[i] && msg == &route_fwd_queue[i]) {{
      route_fwd_in_use[i] = 0;
      return 1;
    }}
  }}
  if (msg == &route_beacon_msg) {{
    return 1;
  }}
  return Send_sendDone(msg, success);
}}

struct TOS_Msg* ReceiveMsg_receive(struct TOS_Msg* msg) {{
  struct MultihopHdr* hdr;
  uint8_t* payload;
  if (msg == NULL) {{
    return msg;
  }}
  if (msg->type != {msgs.AM_MULTIHOP}) {{
    return msg;
  }}
  hdr = (struct MultihopHdr*)msg->data;
  update_neighbor(hdr->sourceaddr, hdr->hopcount);
  if (msg->length <= sizeof(struct MultihopHdr)) {{
    choose_parent();
    return msg;
  }}
  payload = msg->data;
  if (!Intercept_intercept(msg, payload, msg->length)) {{
    return msg;
  }}
  if (TOS_LOCAL_ADDRESS != {BASE_STATION_ADDRESS}) {{
    forward_message(msg);
  }}
  return msg;
}}
"""
    return Component(
        name="MultiHopRouterM",
        provides={"Control": interfaces["StdControl"],
                  "Send": interfaces["Send"],
                  "Intercept": interfaces["Intercept"],
                  "RouteControl": interfaces["RouteControl"]},
        uses={"SendMsg": interfaces["SendMsg"],
              "ReceiveMsg": interfaces["ReceiveMsg"],
              "Random": interfaces["Random"],
              "RouteTimer": interfaces["Timer"]},
        source=source,
        init_priority=60,
    )
