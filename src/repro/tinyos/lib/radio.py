"""The radio stack: packet-level driver and active-message layer.

``RadioCRCPacketC`` is the packet driver: it serializes a ``TOS_Msg`` into
the radio transmit FIFO (with a CRC computed over the wire bytes), and
deserializes received bytes back into a message buffer, using the classic
TinyOS buffer-swap protocol with its client.  ``AMStandard`` sits on top and
implements active-message addressing: it fills in the header on send and
filters received packets by group and destination address.

Both components are deliberately pointer- and array-heavy (byte-wise
serialization through ``uint8_t*`` views of the message struct), because
this is where most of CCured's interesting bounds checks come from in the
real Safe TinyOS radio stack.
"""

from __future__ import annotations

from repro.nesc.component import Component
from repro.nesc.interface import Interface
from repro.tinyos import hardware as hw
from repro.tinyos import messages as msgs


def radio_crc_packet_c(interfaces: dict[str, Interface]) -> Component:
    """Build the packet-level radio driver."""
    wire_len = msgs.TOS_MSG_WIRE_LENGTH
    source = f"""
struct TOS_Msg radio_rx_buffer;
struct TOS_Msg* radio_rx_ptr;
struct TOS_Msg* radio_tx_ptr;
uint8_t radio_tx_busy = 0;
uint8_t radio_rx_enabled = 0;
uint16_t radio_crc_errors = 0;
uint16_t radio_packets_sent = 0;
uint16_t radio_packets_received = 0;

uint16_t calc_crc(uint8_t* packet, uint8_t count) {{
  uint16_t crc = 0;
  uint8_t i;
  uint8_t b;
  for (i = 0; i < count; i++) {{
    b = packet[i];
    crc = crc ^ ((uint16_t)b << 8);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
    crc = (crc << 1) ^ (crc & 32768 ? 4129 : 0);
  }}
  return crc;
}}

uint8_t Control_init(void) {{
  atomic {{
    radio_tx_busy = 0;
    radio_rx_enabled = 0;
    radio_rx_ptr = &radio_rx_buffer;
    radio_tx_ptr = NULL;
  }}
  return 1;
}}

uint8_t Control_start(void) {{
  atomic {{
    radio_rx_enabled = 1;
  }}
  *(uint8_t*){hw.RADIO_CTRL} = 3;
  return 1;
}}

uint8_t Control_stop(void) {{
  atomic {{
    radio_rx_enabled = 0;
  }}
  *(uint8_t*){hw.RADIO_CTRL} = 0;
  return 1;
}}

uint8_t RadioControl_setListeningMode(uint8_t mode) {{
  if (mode) {{
    *(uint8_t*){hw.RADIO_CTRL} = 3;
  }} else {{
    *(uint8_t*){hw.RADIO_CTRL} = 2;
  }}
  return 1;
}}

uint8_t Send_send(struct TOS_Msg* msg) {{
  uint8_t i;
  uint8_t* bytes;
  uint16_t crc;
  uint8_t busy;
  if (msg == NULL) {{
    return 0;
  }}
  atomic {{
    busy = radio_tx_busy;
    if (busy == 0) {{
      radio_tx_busy = 1;
      radio_tx_ptr = msg;
    }}
  }}
  if (busy) {{
    return 0;
  }}
  bytes = (uint8_t*)msg;
  crc = calc_crc(bytes, {wire_len} - 2);
  msg->crc = crc;
  for (i = 0; i < {wire_len}; i++) {{
    *(uint8_t*){hw.RADIO_TXBUF} = bytes[i];
  }}
  *(uint8_t*){hw.RADIO_TXGO} = {wire_len};
  return 1;
}}

void radio_txdone_isr(void) {{
  struct TOS_Msg* sent;
  atomic {{
    sent = radio_tx_ptr;
    radio_tx_busy = 0;
    radio_tx_ptr = NULL;
  }}
  radio_packets_sent = radio_packets_sent + 1;
  if (sent != NULL) {{
    Send_sendDone(sent, 1);
  }}
}}

void radio_rx_isr(void) {{
  uint8_t len;
  uint8_t i;
  uint8_t* bytes;
  uint16_t received_crc;
  uint16_t computed_crc;
  struct TOS_Msg* next;
  if (radio_rx_enabled == 0) {{
    return;
  }}
  if (radio_rx_ptr == NULL) {{
    return;
  }}
  len = *(uint8_t*){hw.RADIO_RXLEN};
  if (len > {wire_len}) {{
    len = {wire_len};
  }}
  bytes = (uint8_t*)radio_rx_ptr;
  for (i = 0; i < len; i++) {{
    bytes[i] = *(uint8_t*){hw.RADIO_RXBUF};
  }}
  received_crc = radio_rx_ptr->crc;
  computed_crc = calc_crc(bytes, {wire_len} - 2);
  if (received_crc != computed_crc) {{
    radio_crc_errors = radio_crc_errors + 1;
    return;
  }}
  radio_rx_ptr->strength = *(uint16_t*){hw.RADIO_RSSI};
  radio_packets_received = radio_packets_received + 1;
  next = Receive_receive(radio_rx_ptr);
  if (next != NULL) {{
    radio_rx_ptr = next;
  }}
}}
"""
    return Component(
        name="RadioCRCPacketC",
        provides={"Control": interfaces["StdControl"],
                  "Send": interfaces["BareSendMsg"],
                  "Receive": interfaces["ReceiveMsg"],
                  "RadioControl": interfaces["RadioControl"]},
        uses={},
        source=source,
        interrupts={hw.VECTOR_RADIO_RX: "radio_rx_isr",
                    hw.VECTOR_RADIO_TXDONE: "radio_txdone_isr"},
        init_priority=30,
    )


def am_standard(interfaces: dict[str, Interface]) -> Component:
    """Build the active-message layer (``AMStandard`` / ``GenericComm``)."""
    source = f"""
uint8_t am_send_busy = 0;
uint16_t am_sent_count = 0;
uint16_t am_received_count = 0;
uint8_t am_group = {msgs.TOS_DEFAULT_GROUP};

uint8_t Control_init(void) {{
  atomic {{
    am_send_busy = 0;
    am_sent_count = 0;
    am_received_count = 0;
  }}
  return 1;
}}

uint8_t Control_start(void) {{
  return 1;
}}

uint8_t Control_stop(void) {{
  return 1;
}}

uint8_t SendMsg_send(uint16_t address, uint8_t length, struct TOS_Msg* msg) {{
  uint8_t ok;
  if (msg == NULL) {{
    return 0;
  }}
  if (length > {msgs.TOSH_DATA_LENGTH}) {{
    return 0;
  }}
  atomic {{
    ok = am_send_busy == 0;
    if (ok) {{
      am_send_busy = 1;
    }}
  }}
  if (!ok) {{
    return 0;
  }}
  msg->addr = address;
  msg->group = am_group;
  msg->length = length;
  ok = RadioSend_send(msg);
  if (!ok) {{
    atomic {{
      am_send_busy = 0;
    }}
  }}
  return ok;
}}

uint8_t RadioSend_sendDone(struct TOS_Msg* msg, uint8_t success) {{
  atomic {{
    am_send_busy = 0;
  }}
  am_sent_count = am_sent_count + 1;
  return SendMsg_sendDone(msg, success);
}}

struct TOS_Msg* RadioReceive_receive(struct TOS_Msg* msg) {{
  if (msg == NULL) {{
    return msg;
  }}
  if (msg->group != am_group) {{
    return msg;
  }}
  if (msg->addr != {msgs.TOS_BCAST_ADDR}) {{
    if (msg->addr != TOS_LOCAL_ADDRESS) {{
      return msg;
    }}
  }}
  am_received_count = am_received_count + 1;
  return ReceiveMsg_receive(msg);
}}
"""
    return Component(
        name="AMStandard",
        provides={"Control": interfaces["StdControl"],
                  "SendMsg": interfaces["SendMsg"],
                  "ReceiveMsg": interfaces["ReceiveMsg"]},
        uses={"RadioSend": interfaces["BareSendMsg"],
              "RadioReceive": interfaces["ReceiveMsg"]},
        source=source,
        init_priority=40,
    )
