"""``UARTFramedPacketC``: framed TOS messages over the serial port.

Used by base-station style applications (GenericBase, MicaHWVerify) to move
packets between the radio network and an attached PC.  Transmission is
interrupt-driven one byte at a time; reception assembles bytes into a
message buffer and hands complete frames to the client with the same
buffer-swap protocol as the radio driver.
"""

from __future__ import annotations

from repro.nesc.component import Component
from repro.nesc.interface import Interface
from repro.tinyos import hardware as hw
from repro.tinyos import messages as msgs


def uart_framed_packet_c(interfaces: dict[str, Interface]) -> Component:
    """Build the framed UART packet component."""
    wire_len = msgs.TOS_MSG_WIRE_LENGTH
    source = f"""
struct TOS_Msg uart_rx_buffer;
struct TOS_Msg* uart_rx_ptr;
struct TOS_Msg* uart_tx_ptr;
uint8_t uart_tx_index = 0;
uint8_t uart_tx_busy = 0;
uint8_t uart_rx_index = 0;

uint8_t Control_init(void) {{
  atomic {{
    uart_tx_busy = 0;
    uart_tx_index = 0;
    uart_rx_index = 0;
    uart_rx_ptr = &uart_rx_buffer;
    uart_tx_ptr = NULL;
  }}
  return 1;
}}

uint8_t Control_start(void) {{
  return 1;
}}

uint8_t Control_stop(void) {{
  return 1;
}}

uint8_t UARTSend_send(struct TOS_Msg* msg) {{
  uint8_t busy;
  uint8_t* bytes;
  if (msg == NULL) {{
    return 0;
  }}
  atomic {{
    busy = uart_tx_busy;
    if (busy == 0) {{
      uart_tx_busy = 1;
      uart_tx_ptr = msg;
      uart_tx_index = 0;
    }}
  }}
  if (busy) {{
    return 0;
  }}
  bytes = (uint8_t*)msg;
  *(uint8_t*){hw.UART_DATA} = bytes[0];
  atomic {{
    uart_tx_index = 1;
  }}
  return 1;
}}

void uart_tx_isr(void) {{
  uint8_t* bytes;
  struct TOS_Msg* done;
  uint8_t index;
  if (uart_tx_busy == 0) {{
    return;
  }}
  index = uart_tx_index;
  if (index >= {wire_len}) {{
    done = uart_tx_ptr;
    uart_tx_busy = 0;
    uart_tx_ptr = NULL;
    if (done != NULL) {{
      UARTSend_sendDone(done, 1);
    }}
    return;
  }}
  bytes = (uint8_t*)uart_tx_ptr;
  *(uint8_t*){hw.UART_DATA} = bytes[index];
  uart_tx_index = index + 1;
}}

void uart_rx_isr(void) {{
  uint8_t byte;
  uint8_t* bytes;
  struct TOS_Msg* next;
  byte = *(uint8_t*){hw.UART_DATA};
  if (uart_rx_ptr == NULL) {{
    return;
  }}
  bytes = (uint8_t*)uart_rx_ptr;
  if (uart_rx_index < {wire_len}) {{
    bytes[uart_rx_index] = byte;
    uart_rx_index = uart_rx_index + 1;
  }}
  if (uart_rx_index >= {wire_len}) {{
    uart_rx_index = 0;
    next = UARTReceive_receive(uart_rx_ptr);
    if (next != NULL) {{
      uart_rx_ptr = next;
    }}
  }}
}}
"""
    return Component(
        name="UARTFramedPacketC",
        provides={"Control": interfaces["StdControl"],
                  "UARTSend": interfaces["BareSendMsg"],
                  "UARTReceive": interfaces["ReceiveMsg"]},
        uses={},
        source=source,
        interrupts={hw.VECTOR_UART_TX: "uart_tx_isr",
                    hw.VECTOR_UART_RX: "uart_rx_isr"},
        init_priority=30,
    )
