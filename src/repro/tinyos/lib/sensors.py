"""``ADCC``: split-phase analog-to-digital conversion for the sensor board.

Provides two ADC instances (photo and temperature).  ``getData`` starts a
conversion in hardware; the ADC completion interrupt reads the result and
signals ``dataReady`` to whichever client started the conversion.  The
pending-channel bookkeeping is shared between task and interrupt context.
"""

from __future__ import annotations

from repro.nesc.component import Component
from repro.nesc.interface import Interface
from repro.tinyos import hardware as hw


def adc_c(interfaces: dict[str, Interface]) -> Component:
    """Build the ADC component (photo on channel 1, temperature on channel 2)."""
    source = f"""
uint8_t adc_busy = 0;
uint8_t adc_pending_channel = 0;
uint16_t adc_last_value = 0;

uint8_t Control_init(void) {{
  atomic {{
    adc_busy = 0;
    adc_pending_channel = 0;
    adc_last_value = 0;
  }}
  return 1;
}}

uint8_t Control_start(void) {{
  return 1;
}}

uint8_t Control_stop(void) {{
  return 1;
}}

uint8_t start_conversion(uint8_t channel) {{
  uint8_t ok = 0;
  atomic {{
    if (adc_busy == 0) {{
      adc_busy = 1;
      adc_pending_channel = channel;
      ok = 1;
    }}
  }}
  if (ok) {{
    *(uint8_t*){hw.ADC_CTRL} = (uint8_t)(128 | channel);
  }}
  return ok;
}}

uint8_t PhotoADC_getData(void) {{
  return start_conversion({hw.ADC_CHANNEL_PHOTO});
}}

uint8_t TempADC_getData(void) {{
  return start_conversion({hw.ADC_CHANNEL_TEMP});
}}

void adc_isr(void) {{
  uint16_t value;
  uint8_t channel;
  value = *(uint16_t*){hw.ADC_DATA};
  channel = adc_pending_channel;
  adc_last_value = value;
  adc_busy = 0;
  if (channel == {hw.ADC_CHANNEL_PHOTO}) {{
    PhotoADC_dataReady(value);
  }}
  if (channel == {hw.ADC_CHANNEL_TEMP}) {{
    TempADC_dataReady(value);
  }}
}}
"""
    return Component(
        name="ADCC",
        provides={"Control": interfaces["StdControl"],
                  "PhotoADC": interfaces["ADC"],
                  "TempADC": interfaces["ADC"]},
        uses={},
        source=source,
        interrupts={hw.VECTOR_ADC: "adc_isr"},
        init_priority=15,
    )
