"""Hardware presentation layer components: clock, micro timer, and LEDs.

These components are the lowest level of the stack and are the only ones
that touch memory-mapped registers directly.  They intentionally use the
raw ``*(uint8_t*)ADDR`` cast style of real TinyOS HPL code so that the
hardware-register refactoring stage of the pipeline has real work to do
(without it, CCured would classify these pointers WILD).
"""

from __future__ import annotations

from repro.nesc.component import Component
from repro.nesc.interface import Interface
from repro.tinyos import hardware as hw


def hpl_clock(interfaces: dict[str, Interface]) -> Component:
    """``HPLClock``: drives the 1024 Hz clock hardware and signals ticks."""
    source = f"""
uint16_t clock_rate = 0;
uint8_t clock_running = 0;

uint8_t Clock_setRate(uint16_t interval) {{
  atomic {{
    clock_rate = interval;
    *(uint16_t*){hw.TIMER_RATE} = interval;
    *(uint8_t*){hw.TIMER_CTRL} = 1;
    clock_running = 1;
  }}
  return 1;
}}

void clock_isr(void) {{
  if (clock_running) {{
    Clock_tick();
  }}
}}
"""
    return Component(
        name="HPLClock",
        provides={"Clock": interfaces["Clock"]},
        uses={},
        source=source,
        interrupts={hw.VECTOR_CLOCK: "clock_isr"},
        init_priority=10,
    )


def micro_timer_c(interfaces: dict[str, Interface]) -> Component:
    """``MicroTimerC``: a high-rate clock for high-frequency sampling."""
    source = f"""
uint16_t micro_rate = 0;
uint8_t micro_running = 0;

uint8_t Control_init(void) {{
  micro_rate = 0;
  micro_running = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  return 1;
}}

uint8_t Control_stop(void) {{
  atomic {{
    micro_running = 0;
    *(uint8_t*){hw.MICROTIMER_CTRL} = 0;
  }}
  return 1;
}}

uint8_t MicroTimer_setRate(uint16_t interval) {{
  atomic {{
    micro_rate = interval;
    *(uint16_t*){hw.MICROTIMER_RATE} = interval;
    *(uint8_t*){hw.MICROTIMER_CTRL} = 1;
    micro_running = 1;
  }}
  return 1;
}}

void micro_isr(void) {{
  if (micro_running) {{
    MicroTimer_tick();
  }}
}}
"""
    return Component(
        name="MicroTimerC",
        provides={"Control": interfaces["StdControl"],
                  "MicroTimer": interfaces["Clock"]},
        uses={},
        source=source,
        interrupts={hw.VECTOR_MICROTIMER: "micro_isr"},
        init_priority=10,
    )


def leds_c(interfaces: dict[str, Interface]) -> Component:
    """``LedsC``: the three-LED driver used by nearly every application."""
    source = f"""
uint8_t leds_state = 0;

void leds_update(void) {{
  *(uint8_t*){hw.LED_PORT} = leds_state;
}}

uint8_t Control_init(void) {{
  atomic {{
    leds_state = 0;
  }}
  leds_update();
  return 1;
}}

uint8_t Control_start(void) {{
  return 1;
}}

uint8_t Control_stop(void) {{
  return 1;
}}

uint8_t Leds_redOn(void) {{
  atomic {{
    leds_state = leds_state | 1;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_redOff(void) {{
  atomic {{
    leds_state = leds_state & 254;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_redToggle(void) {{
  atomic {{
    leds_state = leds_state ^ 1;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_greenOn(void) {{
  atomic {{
    leds_state = leds_state | 2;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_greenOff(void) {{
  atomic {{
    leds_state = leds_state & 253;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_greenToggle(void) {{
  atomic {{
    leds_state = leds_state ^ 2;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_yellowOn(void) {{
  atomic {{
    leds_state = leds_state | 4;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_yellowOff(void) {{
  atomic {{
    leds_state = leds_state & 251;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_yellowToggle(void) {{
  atomic {{
    leds_state = leds_state ^ 4;
  }}
  leds_update();
  return 1;
}}

uint8_t Leds_set(uint8_t value) {{
  atomic {{
    leds_state = value & 7;
  }}
  leds_update();
  return 1;
}}
"""
    return Component(
        name="LedsC",
        provides={"Control": interfaces["StdControl"],
                  "Leds": interfaces["Leds"]},
        uses={},
        source=source,
        init_priority=5,
    )
