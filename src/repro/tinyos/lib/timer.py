"""``TimerC``: virtual timers multiplexed over the hardware clock.

The component provides three independently wireable timers.  Clock ticks
arrive in interrupt context; expired timers are recorded and a task is
posted so that ``fired`` events are signalled in task context, exactly like
``TimerM`` in TinyOS 1.x.  The shared state between the interrupt handler
and the task is what makes the timer the canonical source of racy variables
for the concurrency analysis.
"""

from __future__ import annotations

from repro.nesc.component import Component
from repro.nesc.interface import Interface
from repro.tinyos import hardware as hw

#: Number of virtual timers provided (Timer0, Timer1, Timer2).
NUM_TIMERS = 3

#: Clock ticks per second used by the virtual timer layer.  Timer intervals
#: are given in milliseconds and converted to ticks of this rate.
TICKS_PER_SECOND = 32


def timer_c(interfaces: dict[str, Interface]) -> Component:
    """Build the virtual-timer component."""
    tick_interval_jiffies = hw.JIFFIES_PER_SECOND // TICKS_PER_SECOND
    source = f"""
uint16_t timer_period[{NUM_TIMERS}];
uint16_t timer_remaining[{NUM_TIMERS}];
uint8_t timer_running = 0;
norace uint8_t timer_expired = 0;
uint8_t timer_posted = 0;

uint8_t Control_init(void) {{
  uint8_t i;
  atomic {{
    for (i = 0; i < {NUM_TIMERS}; i++) {{
      timer_period[i] = 0;
      timer_remaining[i] = 0;
    }}
    timer_running = 0;
    timer_expired = 0;
    timer_posted = 0;
  }}
  return 1;
}}

uint8_t Control_start(void) {{
  Clock_setRate({tick_interval_jiffies});
  return 1;
}}

uint8_t Control_stop(void) {{
  atomic {{
    timer_running = 0;
  }}
  return 1;
}}

uint8_t start_timer(uint8_t which, uint32_t interval) {{
  uint16_t ticks;
  if (which >= {NUM_TIMERS}) {{
    return 0;
  }}
  ticks = (uint16_t)((interval * {TICKS_PER_SECOND}) / 1000);
  if (ticks == 0) {{
    ticks = 1;
  }}
  atomic {{
    timer_period[which] = ticks;
    timer_remaining[which] = ticks;
    timer_running = timer_running | (1 << which);
  }}
  return 1;
}}

uint8_t stop_timer(uint8_t which) {{
  if (which >= {NUM_TIMERS}) {{
    return 0;
  }}
  atomic {{
    timer_running = timer_running & ~(1 << which);
  }}
  return 1;
}}

uint8_t Timer0_start(uint32_t interval) {{
  return start_timer(0, interval);
}}

uint8_t Timer0_stop(void) {{
  return stop_timer(0);
}}

uint8_t Timer1_start(uint32_t interval) {{
  return start_timer(1, interval);
}}

uint8_t Timer1_stop(void) {{
  return stop_timer(1);
}}

uint8_t Timer2_start(uint32_t interval) {{
  return start_timer(2, interval);
}}

uint8_t Timer2_stop(void) {{
  return stop_timer(2);
}}

void fire_timers(void) {{
  uint8_t expired_now;
  atomic {{
    expired_now = timer_expired;
    timer_expired = 0;
    timer_posted = 0;
  }}
  if (expired_now & 1) {{
    Timer0_fired();
  }}
  if (expired_now & 2) {{
    Timer1_fired();
  }}
  if (expired_now & 4) {{
    Timer2_fired();
  }}
}}

uint8_t Clock_tick(void) {{
  uint8_t i;
  uint8_t need_post = 0;
  for (i = 0; i < {NUM_TIMERS}; i++) {{
    if (timer_running & (1 << i)) {{
      if (timer_remaining[i] > 0) {{
        timer_remaining[i] = timer_remaining[i] - 1;
      }}
      if (timer_remaining[i] == 0) {{
        timer_remaining[i] = timer_period[i];
        timer_expired = timer_expired | (1 << i);
        need_post = 1;
      }}
    }}
  }}
  if (need_post) {{
    if (timer_posted == 0) {{
      timer_posted = 1;
      post fire_timers();
    }}
  }}
  return 1;
}}
"""
    return Component(
        name="TimerC",
        provides={"Control": interfaces["StdControl"],
                  "Timer0": interfaces["Timer"],
                  "Timer1": interfaces["Timer"],
                  "Timer2": interfaces["Timer"]},
        uses={"Clock": interfaces["Clock"]},
        source=source,
        tasks=["fire_timers"],
        init_priority=20,
    )
