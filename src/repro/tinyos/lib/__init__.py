"""The TinyOS 1.x component library.

Each factory function returns a fresh :class:`~repro.nesc.component.Component`
so that applications can be built independently (the flattener never mutates
components, but fresh instances keep application definitions self-contained).

The library mirrors the parts of TinyOS 1.x that the paper's twelve
benchmark applications rely on:

===================  =====================================================
Component            Role
===================  =====================================================
``HPLClock``         Hardware presentation layer for the 1024 Hz clock
``MicroTimerC``      High-rate timer used by HighFrequencySampling
``LedsC``            LED driver (red/green/yellow on the LED port)
``TimerC``           Virtual timers multiplexed over the clock
``ADCC``             Split-phase analog-to-digital conversion (photo/temp)
``RadioCRCPacketC``  Packet-level radio driver with CRC
``AMStandard``       Active-message layer (addressing, groups, dispatch)
``UARTFramedPacketC``Framed packets over the UART (for base stations)
``RandomLFSR``       16-bit LFSR random numbers
``TimeStampingC``    Message time-stamping service over the jiffy counter
``MultiHopRouterM``  Beacon-based multihop routing engine (Surge)
===================  =====================================================
"""

from repro.tinyos.lib.hpl import hpl_clock, leds_c, micro_timer_c
from repro.tinyos.lib.timer import timer_c
from repro.tinyos.lib.sensors import adc_c
from repro.tinyos.lib.radio import am_standard, radio_crc_packet_c
from repro.tinyos.lib.uart import uart_framed_packet_c
from repro.tinyos.lib.services import random_lfsr, time_stamping_c
from repro.tinyos.lib.routing import multi_hop_router

__all__ = [
    "hpl_clock",
    "leds_c",
    "micro_timer_c",
    "timer_c",
    "adc_c",
    "am_standard",
    "radio_crc_packet_c",
    "uart_framed_packet_c",
    "random_lfsr",
    "time_stamping_c",
    "multi_hop_router",
]
