"""TinyOS 1.x substrate: hardware model, component library, and applications.

The paper evaluates twelve TinyOS applications on the Mica2 and TelosB
platforms.  This package re-creates that software stack for the CMinor
toolchain:

* :mod:`repro.tinyos.hardware` — the memory-mapped register model and
  platform parameters shared by the component library, the backend cost
  model and the simulator,
* :mod:`repro.tinyos.messages` — ``struct TOS_Msg`` and the other shared
  declarations (the ``common_source`` of every application),
* :mod:`repro.tinyos.lib` — the component library (timers, LEDs, ADC,
  radio stack, UART, multihop routing, …),
* :mod:`repro.tinyos.apps` — the twelve benchmark applications from the
  paper's figures,
* :mod:`repro.tinyos.suite` — a registry mapping figure application names to
  builders.
"""

from repro.tinyos.suite import (
    FIGURE_APPS,
    MICA2_APPS,
    all_application_names,
    build_application,
    build_program,
)

__all__ = [
    "FIGURE_APPS",
    "MICA2_APPS",
    "all_application_names",
    "build_application",
    "build_program",
]
