"""Registry of the benchmark applications used in the paper's figures.

The names follow the labels on the x-axes of Figures 2 and 3:
``<Application>_<Platform>``.  ``build_application`` returns the wired
component graph; ``build_program`` additionally runs the nesC flattener and
returns the whole CMinor program (the input to the rest of the toolchain).
"""

from __future__ import annotations

from typing import Callable

from repro.cminor.program import Program
from repro.nesc.application import Application
from repro.nesc.flatten import flatten_application
from repro.tinyos.apps import (
    blink,
    counting,
    generic_base,
    hfs,
    ident,
    mica_hw_verify,
    oscilloscope,
    rfm_to_leds,
    sense_to_rfm,
    surge,
    test_time_stamping,
)

#: Builders for each application, keyed by figure label.
_BUILDERS: dict[str, Callable[[], Application]] = {
    "BlinkTask_Mica2": lambda: blink.build("mica2"),
    "Oscilloscope_Mica2": lambda: oscilloscope.build("mica2"),
    "GenericBase_Mica2": lambda: generic_base.build("mica2"),
    "RfmToLeds_Mica2": lambda: rfm_to_leds.build("mica2"),
    "CntToLedsAndRfm_Mica2": lambda: counting.build_cnt_to_leds_and_rfm("mica2"),
    "MicaHWVerify_Mica2": lambda: mica_hw_verify.build("mica2"),
    "SenseToRfm_Mica2": lambda: sense_to_rfm.build("mica2"),
    "TestTimeStamping_Mica2": lambda: test_time_stamping.build("mica2"),
    "Surge_Mica2": lambda: surge.build("mica2"),
    "Ident_Mica2": lambda: ident.build("mica2"),
    "HighFrequencySampling_Mica2": lambda: hfs.build("mica2"),
    "RadioCountToLeds_TelosB": lambda: counting.build_radio_count_to_leds("telosb"),
}

#: All twelve applications, in the order they appear in the figures.
FIGURE_APPS: list[str] = list(_BUILDERS)

#: The eleven Mica2 applications used in the duty-cycle figure (3c); the
#: TelosB application is excluded there because Avrora only models the Mica2.
MICA2_APPS: list[str] = [name for name in FIGURE_APPS if name.endswith("_Mica2")]


def all_application_names() -> list[str]:
    """Names of every registered benchmark application."""
    return list(FIGURE_APPS)


def build_application(name: str) -> Application:
    """Build the wired (but not yet flattened) application ``name``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; known: {FIGURE_APPS}") from None
    return builder()


def build_program(name: str, suppress_norace: bool = False) -> Program:
    """Build and flatten application ``name`` into a whole CMinor program."""
    return flatten_application(build_application(name),
                               suppress_norace=suppress_norace)
