"""Shared message structures and constants (the applications' common source).

Every application's ``common_source`` starts with these declarations; they
play the role of ``AM.h`` / ``TosMsg.h`` in TinyOS 1.x.  The 29-byte payload
and the header layout follow the TinyOS 1.x ``TOS_Msg`` definition, which is
what the paper's applications exchange over the CC1000 radio.
"""

from __future__ import annotations

from repro.cminor import typesys as ty

#: Payload bytes available in one active message.
TOSH_DATA_LENGTH = 29

#: Total on-air message length: header (5) + payload (29) + crc (2).
TOS_MSG_WIRE_LENGTH = 5 + TOSH_DATA_LENGTH + 2

#: Broadcast destination address.
TOS_BCAST_ADDR = 0xFFFF
#: Address delivered to the local UART bridge.
TOS_UART_ADDR = 0x007E
#: Default active-message group.
TOS_DEFAULT_GROUP = 0x7D

#: Active message types used by the benchmark applications.
AM_OSCOPE = 10
AM_INT_MSG = 4
AM_SURGE = 17
AM_MULTIHOP = 250
AM_IDENT = 27
AM_TIMESTAMP = 37
AM_HFS_DATA = 51
AM_COUNT = 61

# TOS_LOCAL_ADDRESS is per-mote configuration: the loader (here, Node.boot)
# patches it after the image is built, so it must stay volatile — otherwise
# whole-program optimization folds the placeholder initializer and every
# mote in a network believes it is mote 1 (no base station, no multihop).
COMMON_SOURCE = f"""
volatile uint16_t TOS_LOCAL_ADDRESS = 1;

struct TOS_Msg {{
  uint16_t addr;
  uint8_t type;
  uint8_t group;
  uint8_t length;
  uint8_t data[{TOSH_DATA_LENGTH}];
  uint16_t crc;
  uint16_t strength;
  uint8_t ack;
  uint16_t time;
}};

struct SurgeMsg {{
  uint16_t sourceaddr;
  uint16_t originaddr;
  uint16_t reading;
  uint16_t seqno;
  uint16_t parentaddr;
  uint8_t hopcount;
}};

struct OscopeMsg {{
  uint16_t sourceMoteID;
  uint16_t lastSampleNumber;
  uint16_t channel;
  uint16_t data[10];
}};

struct IdentMsg {{
  uint16_t id;
  uint8_t name[16];
}};

struct TimeStampMsg {{
  uint16_t source;
  uint16_t seqno;
  uint32_t sendTime;
  uint32_t receiveTime;
}};
"""


def decode_multihop_header(frame: bytes) -> tuple[int, int, int]:
    """(am_type, last-hop source, origin) of a TOS wire frame.

    Decodes the ``MultihopHdr`` that ``MultiHopRouterM`` overlays on the
    message payload: ``sourceaddr`` and ``originaddr`` are the first two
    little-endian ``uint16`` fields after the 5-byte TOS header.  The
    result is only meaningful when ``am_type == AM_MULTIHOP``.
    """
    data = frame[5:]
    source = data[0] | (data[1] << 8)
    origin = data[2] | (data[3] << 8)
    return frame[2], source, origin


def tos_msg_struct_fields() -> list[ty.StructField]:
    """The ``struct TOS_Msg`` field list as CMinor types (for interface defs)."""
    return [
        ty.StructField("addr", ty.UINT16),
        ty.StructField("type", ty.UINT8),
        ty.StructField("group", ty.UINT8),
        ty.StructField("length", ty.UINT8),
        ty.StructField("data", ty.ArrayType(ty.UINT8, TOSH_DATA_LENGTH)),
        ty.StructField("crc", ty.UINT16),
        ty.StructField("strength", ty.UINT16),
        ty.StructField("ack", ty.UINT8),
        ty.StructField("time", ty.UINT16),
    ]


def tos_msg_type() -> ty.StructType:
    """A standalone ``struct TOS_Msg`` type object (used by interface defs)."""
    return ty.StructType("TOS_Msg", tuple(tos_msg_struct_fields()))
