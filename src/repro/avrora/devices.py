"""Memory-mapped peripheral models.

Each device watches a set of register addresses.  Register writes may change
device state and schedule future events on the owning node's event queue;
events typically raise an interrupt that the node delivers to the program.
The devices are deliberately packet/sample-level rather than bit-level — the
duty-cycle experiment needs the right amount of *work per event*, not an RF
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.tinyos import hardware as hw

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.avrora.node import Node


class Device:
    """Base class: a peripheral attached to a node's register bus."""

    #: Register addresses this device responds to.
    addresses: tuple[int, ...] = ()

    def attach(self, node: "Node") -> None:
        self.node = node

    def read(self, address: int, width: int) -> int:
        return 0

    def write(self, address: int, width: int, value: int) -> None:
        return None

    def start(self) -> None:
        """Called once when the simulation starts."""

    # -- snapshot / restore ---------------------------------------------------
    #
    # Devices serialize their state as plain picklable dicts so a node can
    # be checkpointed and rebuilt in another process (the sharded network
    # kernel) or resumed mid-simulation.  Scheduled callbacks cannot be
    # pickled, so each device also *describes* its queued events as tagged
    # tuples and *resolves* those tags back into callables on restore.

    def snapshot(self) -> Optional[dict]:
        """Picklable device state, or ``None`` for stateless devices."""
        return None

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot` produced by the same device class."""

    def describe_event(self, callback: Callable[[], None]) -> Optional[tuple]:
        """A picklable tag for ``callback`` if this device scheduled it."""
        return None

    def resolve_event(self, desc: tuple) -> Optional[Callable[[], None]]:
        """The callable a :meth:`describe_event` tag stands for."""
        return None


@dataclass
class LedState:
    """Observable LED history (used by tests and examples)."""

    value: int = 0
    changes: int = 0
    red_toggles: int = 0

    def update(self, new_value: int) -> None:
        if (new_value ^ self.value) & 1:
            self.red_toggles += 1
        if new_value != self.value:
            self.changes += 1
        self.value = new_value


class Leds(Device):
    """The three status LEDs behind ``LED_PORT``."""

    addresses = (hw.LED_PORT,)

    def __init__(self) -> None:
        self.state = LedState()

    def write(self, address: int, width: int, value: int) -> None:
        self.state.update(value & 0x7)

    def read(self, address: int, width: int) -> int:
        return self.state.value

    def snapshot(self) -> dict:
        return {"value": self.state.value, "changes": self.state.changes,
                "red_toggles": self.state.red_toggles}

    def restore(self, state: dict) -> None:
        self.state.value = state["value"]
        self.state.changes = state["changes"]
        self.state.red_toggles = state["red_toggles"]


class Clock(Device):
    """The 1024 Hz clock (Timer1 compare) driving the virtual timers."""

    addresses = (hw.TIMER_RATE, hw.TIMER_CTRL)

    def __init__(self) -> None:
        self.rate_jiffies = 0
        self.enabled = False
        self.ticks = 0

    def write(self, address: int, width: int, value: int) -> None:
        if address == hw.TIMER_RATE:
            self.rate_jiffies = max(1, value)
        elif address == hw.TIMER_CTRL:
            was_enabled = self.enabled
            self.enabled = bool(value & 1)
            if self.enabled and not was_enabled:
                self._schedule()

    def read(self, address: int, width: int) -> int:
        if address == hw.TIMER_RATE:
            return self.rate_jiffies
        return 1 if self.enabled else 0

    def _schedule(self) -> None:
        period_cycles = self.rate_jiffies * self.node.cycles_per_jiffy
        self.node.schedule(period_cycles, self._fire)

    def _fire(self) -> None:
        if not self.enabled:
            return
        self.ticks += 1
        self.node.raise_interrupt(hw.VECTOR_CLOCK)
        self._schedule()

    def snapshot(self) -> dict:
        return {"rate_jiffies": self.rate_jiffies, "enabled": self.enabled,
                "ticks": self.ticks}

    def restore(self, state: dict) -> None:
        self.rate_jiffies = state["rate_jiffies"]
        self.enabled = state["enabled"]
        self.ticks = state["ticks"]

    def describe_event(self, callback) -> Optional[tuple]:
        return ("clock",) if callback == self._fire else None

    def resolve_event(self, desc: tuple):
        return self._fire if desc[0] == "clock" else None


class MicroTimer(Device):
    """The high-rate timer used by HighFrequencySampling."""

    addresses = (hw.MICROTIMER_RATE, hw.MICROTIMER_CTRL)

    def __init__(self) -> None:
        self.rate_jiffies = 0
        self.enabled = False
        self.ticks = 0

    def write(self, address: int, width: int, value: int) -> None:
        if address == hw.MICROTIMER_RATE:
            self.rate_jiffies = max(1, value)
        elif address == hw.MICROTIMER_CTRL:
            was_enabled = self.enabled
            self.enabled = bool(value & 1)
            if self.enabled and not was_enabled:
                self._schedule()

    def _schedule(self) -> None:
        period_cycles = self.rate_jiffies * self.node.cycles_per_jiffy
        self.node.schedule(period_cycles, self._fire)

    def _fire(self) -> None:
        if not self.enabled:
            return
        self.ticks += 1
        self.node.raise_interrupt(hw.VECTOR_MICROTIMER)
        self._schedule()

    def snapshot(self) -> dict:
        return {"rate_jiffies": self.rate_jiffies, "enabled": self.enabled,
                "ticks": self.ticks}

    def restore(self, state: dict) -> None:
        self.rate_jiffies = state["rate_jiffies"]
        self.enabled = state["enabled"]
        self.ticks = state["ticks"]

    def describe_event(self, callback) -> Optional[tuple]:
        return ("microtimer",) if callback == self._fire else None

    def resolve_event(self, desc: tuple):
        return self._fire if desc[0] == "microtimer" else None


class Adc(Device):
    """The analog-to-digital converter with a deterministic sensor model."""

    addresses = (hw.ADC_CTRL, hw.ADC_DATA)

    #: Conversion latency in microseconds.
    CONVERSION_US = 200

    def __init__(self) -> None:
        self.busy = False
        self.channel = 0
        self.value = 0
        self.conversions = 0
        self._seed = 0x1234

    def write(self, address: int, width: int, value: int) -> None:
        if address == hw.ADC_CTRL and value & 0x80:
            self.channel = value & 0x0F
            if not self.busy:
                self.busy = True
                delay = self.node.cycles_for_us(self.CONVERSION_US)
                self.node.schedule(delay, self._complete)

    def read(self, address: int, width: int) -> int:
        if address == hw.ADC_DATA:
            return self.value
        return 0x80 if self.busy else 0

    def _sample(self) -> int:
        # A light-intensity-like waveform: deterministic, channel dependent.
        self._seed = (self._seed * 25173 + 13849) & 0xFFFF
        base = 0x200 + (self.channel * 0x40)
        return (base + (self._seed & 0xFF)) & 0x3FF

    def _complete(self) -> None:
        self.busy = False
        self.value = self._sample()
        self.conversions += 1
        self.node.raise_interrupt(hw.VECTOR_ADC)

    def snapshot(self) -> dict:
        return {"busy": self.busy, "channel": self.channel,
                "value": self.value, "conversions": self.conversions,
                "seed": self._seed}

    def restore(self, state: dict) -> None:
        self.busy = state["busy"]
        self.channel = state["channel"]
        self.value = state["value"]
        self.conversions = state["conversions"]
        self._seed = state["seed"]

    def describe_event(self, callback) -> Optional[tuple]:
        return ("adc",) if callback == self._complete else None

    def resolve_event(self, desc: tuple):
        return self._complete if desc[0] == "adc" else None


class Radio(Device):
    """A packet-level CC1000-style radio."""

    addresses = (hw.RADIO_CTRL, hw.RADIO_TXBUF, hw.RADIO_RXBUF, hw.RADIO_RXLEN,
                 hw.RADIO_TXGO, hw.RADIO_STATUS, hw.RADIO_RSSI)

    #: Microseconds of air time per byte (38.4 kbaud Manchester ~ 208 us/byte).
    US_PER_BYTE = 208

    def __init__(self) -> None:
        self.rx_enabled = False
        self.powered = False
        self.tx_fifo: list[int] = []
        self.rx_fifo: list[int] = []
        self.rx_length = 0
        self.transmitting = False
        #: Local time at which the in-flight transmission completes
        #: (meaningful only while ``transmitting``); the lockstep network
        #: scheduler reads it to bound when this node can next affect a peer.
        self.tx_done_at = 0
        self.packets_sent: list[bytes] = []
        self.packets_received = 0
        self.packets_dropped = 0
        self.on_transmit: Optional[Callable[[bytes], None]] = None

    def write(self, address: int, width: int, value: int) -> None:
        if address == hw.RADIO_CTRL:
            self.rx_enabled = bool(value & 1)
            self.powered = bool(value & 2)
        elif address == hw.RADIO_TXBUF:
            self.tx_fifo.append(value & 0xFF)
        elif address == hw.RADIO_TXGO:
            self._transmit(value & 0xFF)

    def read(self, address: int, width: int) -> int:
        if address == hw.RADIO_RXBUF:
            if self.rx_fifo:
                return self.rx_fifo.pop(0)
            return 0
        if address == hw.RADIO_RXLEN:
            return self.rx_length
        if address == hw.RADIO_STATUS:
            return 1 if self.transmitting else 0
        if address == hw.RADIO_RSSI:
            return 0x0123
        return 0

    def _transmit(self, length: int) -> None:
        payload = bytes(self.tx_fifo[:length])
        self.tx_fifo = []
        self.transmitting = True
        airtime = self.node.cycles_for_us(self.US_PER_BYTE * max(len(payload), 1))
        self.tx_done_at = self.node.time_cycles + max(1, airtime)
        self.node.schedule(airtime, self._tx_done_callback(payload))

    def _tx_done_callback(self, payload: bytes) -> Callable[[], None]:
        callback = lambda: self._transmit_done(payload)  # noqa: E731
        callback.__event_desc__ = ("radio_tx", payload)
        return callback

    def _transmit_done(self, payload: bytes) -> None:
        self.transmitting = False
        self.packets_sent.append(payload)
        if self.on_transmit is not None:
            self.on_transmit(payload)
        self.node.raise_interrupt(hw.VECTOR_RADIO_TXDONE)

    def deliver(self, payload: bytes) -> bool:
        """Called by the network when a packet arrives over the air."""
        if not self.rx_enabled:
            self.packets_dropped += 1
            return False
        if self.rx_fifo:
            # Receive buffer still draining: collision/overrun, drop.
            self.packets_dropped += 1
            return False
        self.rx_fifo = list(payload)
        self.rx_length = len(payload)
        self.packets_received += 1
        self.node.raise_interrupt(hw.VECTOR_RADIO_RX)
        return True

    def snapshot(self) -> dict:
        return {"rx_enabled": self.rx_enabled, "powered": self.powered,
                "tx_fifo": list(self.tx_fifo), "rx_fifo": list(self.rx_fifo),
                "rx_length": self.rx_length,
                "transmitting": self.transmitting,
                "tx_done_at": self.tx_done_at,
                "packets_sent": list(self.packets_sent),
                "packets_received": self.packets_received,
                "packets_dropped": self.packets_dropped}

    def restore(self, state: dict) -> None:
        self.rx_enabled = state["rx_enabled"]
        self.powered = state["powered"]
        self.tx_fifo = list(state["tx_fifo"])
        self.rx_fifo = list(state["rx_fifo"])
        self.rx_length = state["rx_length"]
        self.transmitting = state["transmitting"]
        self.tx_done_at = state["tx_done_at"]
        self.packets_sent = list(state["packets_sent"])
        self.packets_received = state["packets_received"]
        self.packets_dropped = state["packets_dropped"]

    def resolve_event(self, desc: tuple):
        if desc[0] == "radio_tx":
            return self._tx_done_callback(desc[1])
        return None


class Uart(Device):
    """The serial port, byte-interrupt driven."""

    addresses = (hw.UART_DATA, hw.UART_STATUS)

    #: Microseconds per byte at 57.6 kbaud.
    US_PER_BYTE = 170

    def __init__(self) -> None:
        self.sent_bytes: list[int] = []
        self.pending_rx: list[int] = []
        self.current_rx_byte = 0
        self.tx_busy = False

    def write(self, address: int, width: int, value: int) -> None:
        if address == hw.UART_DATA:
            self.sent_bytes.append(value & 0xFF)
            self.tx_busy = True
            delay = self.node.cycles_for_us(self.US_PER_BYTE)
            self.node.schedule(delay, self._tx_done)

    def read(self, address: int, width: int) -> int:
        if address == hw.UART_DATA:
            return self.current_rx_byte
        if address == hw.UART_STATUS:
            return 0 if self.tx_busy else 1
        return 0

    def _tx_done(self) -> None:
        self.tx_busy = False
        self.node.raise_interrupt(hw.VECTOR_UART_TX)

    #: Largest frame the serial bridge accepts in one injection: one TOS
    #: wire message (header + payload + crc).  Matches
    #: ``repro.tinyos.messages.TOS_MSG_WIRE_LENGTH``, restated here so the
    #: device layer does not import the TinyOS library layer.
    MAX_FRAME_LENGTH = 36

    def inject_frame(self, payload: bytes) -> None:
        """Queue a frame to be fed to the program one byte at a time.

        Frames longer than one TOS wire message are rejected up front
        (mirroring ``encode_tos_msg``): a silently accepted oversized
        frame would smear into the next one on the byte-serial link and
        make scenario injections ambiguous.  Malformed *content* — bad
        length fields, wrong CRCs — passes through untouched; that is
        the program's problem to survive.
        """
        if len(payload) > self.MAX_FRAME_LENGTH:
            raise ValueError(
                f"inject_frame: frame of {len(payload)} bytes does not fit "
                f"one TOS wire message (MAX_FRAME_LENGTH is "
                f"{self.MAX_FRAME_LENGTH})")
        self.pending_rx.extend(payload)
        self.node.schedule(self.node.cycles_for_us(self.US_PER_BYTE),
                           self._rx_next)

    def _rx_next(self) -> None:
        if not self.pending_rx:
            return
        self.current_rx_byte = self.pending_rx.pop(0)
        self.node.raise_interrupt(hw.VECTOR_UART_RX)
        if self.pending_rx:
            self.node.schedule(self.node.cycles_for_us(self.US_PER_BYTE),
                               self._rx_next)

    def snapshot(self) -> dict:
        return {"sent_bytes": list(self.sent_bytes),
                "pending_rx": list(self.pending_rx),
                "current_rx_byte": self.current_rx_byte,
                "tx_busy": self.tx_busy}

    def restore(self, state: dict) -> None:
        self.sent_bytes = list(state["sent_bytes"])
        self.pending_rx = list(state["pending_rx"])
        self.current_rx_byte = state["current_rx_byte"]
        self.tx_busy = state["tx_busy"]

    def describe_event(self, callback) -> Optional[tuple]:
        if callback == self._tx_done:
            return ("uart_tx",)
        if callback == self._rx_next:
            return ("uart_rx",)
        return None

    def resolve_event(self, desc: tuple):
        if desc[0] == "uart_tx":
            return self._tx_done
        if desc[0] == "uart_rx":
            return self._rx_next
        return None


class JiffyCounter(Device):
    """The free-running 32-bit jiffy counter read by TimeStampingC."""

    addresses = (hw.JIFFY_COUNTER_LO, hw.JIFFY_COUNTER_HI)

    def read(self, address: int, width: int) -> int:
        jiffies = self.node.current_jiffies()
        if address == hw.JIFFY_COUNTER_LO:
            return jiffies & 0xFFFF
        return (jiffies >> 16) & 0xFFFF


@dataclass
class DeviceBus:
    """Routes register reads and writes to the owning device."""

    devices: list[Device] = field(default_factory=list)
    _by_address: dict[int, Device] = field(default_factory=dict)

    def attach(self, node: "Node", device: Device) -> None:
        device.attach(node)
        self.devices.append(device)
        for address in device.addresses:
            self._by_address[address] = device

    def read(self, address: int, width: int) -> int:
        device = self._by_address.get(address)
        if device is None:
            return 0
        return device.read(address, width)

    def write(self, address: int, width: int, value: int) -> None:
        device = self._by_address.get(address)
        if device is not None:
            device.write(address, width, value)

    def find(self, device_type: type) -> Optional[Device]:
        for device in self.devices:
            if isinstance(device, device_type):
                return device
        return None

    def snapshot(self) -> dict:
        """Per-device state keyed by device class name."""
        out: dict = {}
        for device in self.devices:
            state = device.snapshot()
            if state is not None:
                out[type(device).__name__] = state
        return out

    def restore(self, states: dict) -> None:
        for device in self.devices:
            state = states.get(type(device).__name__)
            if state is not None:
                device.restore(state)

    def describe_event(self, callback) -> Optional[tuple]:
        for device in self.devices:
            desc = device.describe_event(callback)
            if desc is not None:
                return desc
        return None

    def resolve_event(self, desc: tuple) -> Optional[Callable[[], None]]:
        for device in self.devices:
            callback = device.resolve_event(desc)
            if callback is not None:
                return callback
        return None


def standard_devices() -> list[Device]:
    """The peripheral set of a Mica2/TelosB node in this model."""
    return [Leds(), Clock(), MicroTimer(), Adc(), Radio(), Uart(), JiffyCounter()]
