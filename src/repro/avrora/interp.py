"""The CMinor interpreters used by the simulator.

Two execution engines share one public facade:

* :class:`TreeWalkInterpreter` executes the final (optimized, linked)
  program directly on the AST, charging cycles from the backend cost model
  for every statement it executes.  It is the reference semantics.
* :class:`~repro.avrora.engine.CompiledEngine` lowers each function once
  into a flat stream of Python closures and runs those — several times
  faster, with byte-identical results (see ``ARCHITECTURE.md``).

:class:`Interpreter` is the thin facade the :class:`~repro.avrora.node.Node`
talks to; it selects the engine (compiled by default) and compiles-on-first
-call, caching per-function compiled code for the node's lifetime.

Hardware access builtins are routed to the node's device bus; ``__sleep``
hands control back to the node so it can advance time to the next event;
interrupts are polled between statements and delivered by calling the
registered handler function.

CCured's runtime support builtins (``__bounds_ok``, ``__error_report`` …)
are evaluated concretely against the memory-object model, so a program whose
checks were *not* all optimized away really does pay for them at run time —
and really does halt with a diagnostic if one fails.
"""

from __future__ import annotations

import os
from typing import Optional, TYPE_CHECKING

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.visitor import walk_expression
from repro.avrora.memory import (
    MemoryError_,
    MemoryObject,
    MemorySystem,
    Pointer,
    RuntimeValue,
    is_null,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.avrora.node import Node

#: Engine used when a Node does not ask for a specific one.  Override with
#: ``REPRO_AVRORA_ENGINE=tree`` to fall back to the reference tree-walker.
DEFAULT_ENGINE = os.environ.get("REPRO_AVRORA_ENGINE", "compiled")


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[RuntimeValue]):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class Interpreter:
    """Facade selecting one of the execution engines for a node.

    ``engine`` is ``"compiled"`` (default) for the compile-to-closures
    engine or ``"tree"`` for the reference tree-walking interpreter.
    """

    def __init__(self, node: "Node", engine: Optional[str] = None):
        self.node = node
        self.engine_name = engine or DEFAULT_ENGINE
        if self.engine_name == "tree":
            self._impl = TreeWalkInterpreter(node)
        elif self.engine_name == "compiled":
            from repro.avrora.engine import CompiledEngine

            self._impl = CompiledEngine(node)
        else:
            raise ValueError(f"unknown simulator engine {self.engine_name!r}"
                             " (expected 'compiled' or 'tree')")
        self.program: Program = node.program
        self.memory: MemorySystem = node.memory
        self.costs = node.costs

    def call(self, name: str, args: Optional[list[RuntimeValue]] = None
             ) -> Optional[RuntimeValue]:
        """Call a program function by name with already-evaluated arguments."""
        return self._impl.call(name, args)

    @property
    def statements_executed(self) -> int:
        """Statements executed so far (shared metric across engines)."""
        return self._impl.statements_executed

    def superblock_stats(self) -> dict:
        """Superblock fast-path statistics (all-zero for the tree-walker).

        The schema is engine-independent so callers (``SimRecord``, the
        network aggregator, the benchmarks) can sum entries blindly.
        """
        impl = self._impl
        stats = getattr(impl, "superblock_stats", None)
        if stats is not None:
            return stats()
        return {
            "engine": self.engine_name,
            "enabled": False,
            "traces_enabled": False,
            "superblocks": 0,
            "loop_superblocks": 0,
            "traces": 0,
            "inlined_call_sites": 0,
            "entries_fast": 0,
            "entries_slow": 0,
            "bursts": 0,
            "burst_iterations": 0,
            "inlined_calls": 0,
            "fused_statements": 0,
            "statements_total": impl.statements_executed,
            "fused_fraction": 0.0,
        }

    def code_cache_stats(self) -> dict:
        """Shared code-cache counters (zeros for the tree-walker)."""
        impl = self._impl
        stats = getattr(impl, "code_cache_stats", None)
        if stats is not None:
            return stats()
        return {"functions": 0, "lowerings": 0, "plan_hits": 0,
                "disk_loads": 0}

    def warm(self) -> int:
        """Precompile every program function (no-op for the tree-walker)."""
        compile_all = getattr(self._impl, "compile_program", None)
        return compile_all() if compile_all is not None else 0

    # -- snapshot / restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        """Picklable execution counters (part of ``Node.snapshot``)."""
        impl = self._impl
        state: dict = {"engine": self.engine_name,
                       "statements": impl.statements_executed}
        cell = getattr(impl, "_sb_cell", None)
        if cell is not None:
            state["sb_cell"] = list(cell)
            state["superblocks"] = impl.superblocks
            state["loop_superblocks"] = impl.loop_superblocks
            state["traces"] = impl.traces
            state["inlined_sites"] = impl.inlined_sites
        return state

    def restore_state(self, state: dict) -> None:
        """Apply :meth:`snapshot_state` counters, mutating cells in place.

        The compiled engine's closures close over its counter cells, so
        the cells are written through, never reassigned.
        """
        impl = self._impl
        stmt_cell = getattr(impl, "_stmt_cell", None)
        if stmt_cell is not None:
            stmt_cell[0] = state["statements"]
        else:
            impl.statements_executed = state["statements"]
        sb_cell = getattr(impl, "_sb_cell", None)
        if sb_cell is not None and "sb_cell" in state:
            cell = list(state["sb_cell"])
            cell.extend([0] * (len(sb_cell) - len(cell)))
            sb_cell[:] = cell
            impl.superblocks = state["superblocks"]
            impl.loop_superblocks = state["loop_superblocks"]
            impl.traces = state.get("traces", 0)
            impl.inlined_sites = state.get("inlined_sites", 0)


class TreeWalkInterpreter:
    """Executes one program on behalf of one node by walking the AST."""

    def __init__(self, node: "Node"):
        self.node = node
        self.program: Program = node.program
        self.memory: MemorySystem = node.memory
        self.costs = node.costs
        self.pointer_size = node.costs.platform.pointer_bytes
        self._stmt_cycles_cache: dict[int, int] = {}
        self._analysis = self.program.analysis()
        self.statements_executed = 0

    # -- function calls --------------------------------------------------------

    def call(self, name: str, args: Optional[list[RuntimeValue]] = None
             ) -> Optional[RuntimeValue]:
        """Call a program function by name with already-evaluated arguments."""
        func = self.program.lookup_function(name)
        if func is None:
            raise KeyError(f"call to unknown function {name!r}")
        args = args or []
        frame = self._build_frame(func, args)
        frame["__function__"] = func.name
        self.node.consume(self.costs.function_overhead_cycles())
        try:
            self._exec_block(func.body, frame)
        except _ReturnSignal as signal:
            return signal.value
        return 0 if not func.return_type.is_void() else None

    def _build_frame(self, func: ast.FunctionDef,
                     args: list[RuntimeValue]) -> dict[str, object]:
        if len(args) != len(func.params):
            raise TypeError(
                f"{func.name}() takes {len(func.params)} argument(s) "
                f"but {len(args)} were given")
        frame: dict[str, object] = {}
        taken = self._address_taken_locals(func)
        for param, value in zip(func.params, args):
            if param.name in taken:
                obj = self.memory.allocate(f"{func.name}.{param.name}",
                                           param.ctype.sizeof(self.pointer_size),
                                           kind="local")
                self.memory.write(Pointer(obj, 0), param.ctype, value)
                frame[param.name] = obj
            else:
                frame[param.name] = value
        return frame

    def _address_taken_locals(self, func: ast.FunctionDef) -> frozenset[str]:
        return self._analysis.address_taken_locals(func)

    def _locals_of(self, func: ast.FunctionDef) -> dict[str, ty.CType]:
        return self._analysis.local_types(func)

    # -- statements -------------------------------------------------------------

    def _stmt_cost(self, stmt: ast.Stmt) -> int:
        cached = self._stmt_cycles_cache.get(stmt.node_id)
        if cached is not None:
            return cached
        cycles = self.costs.stmt_cycles(stmt)
        for expr in self._analysis.statement_expressions(stmt):
            for node in walk_expression(expr):
                cycles += self.costs.expr_cycles(node)
        cycles = max(cycles, 1)
        self._stmt_cycles_cache[stmt.node_id] = cycles
        return cycles

    def _exec_block(self, block: ast.Block, frame: dict[str, object]) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, frame)
            self.node.poll()

    def _exec_stmt(self, stmt: ast.Stmt, frame: dict[str, object]) -> None:
        self.statements_executed += 1
        self.node.consume(self._stmt_cost(stmt))
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_vardecl(stmt, frame)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.rvalue, frame)
            self._store(stmt.lvalue, value, frame)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.cond, frame)):
                self._exec_block(stmt.then_body, frame)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body, frame)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, frame)
        elif isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    self._exec_block(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truthy(self._eval(stmt.cond, frame)):
                    break
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, frame) if stmt.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.Atomic):
            self.node.atomic_depth += 1
            try:
                self._exec_block(stmt.body, frame)
            finally:
                self.node.atomic_depth -= 1
        elif isinstance(stmt, ast.Post):
            raise RuntimeError("post statements must be lowered before simulation")
        elif isinstance(stmt, ast.Nop):
            pass
        else:
            raise RuntimeError(f"cannot execute {type(stmt).__name__}")

    def _exec_vardecl(self, stmt: ast.VarDecl, frame: dict[str, object]) -> None:
        taken_names = self._current_taken(frame)
        if stmt.name in taken_names or isinstance(stmt.ctype,
                                                  (ty.ArrayType, ty.StructType)):
            obj = self.memory.allocate(f"local.{stmt.name}",
                                       stmt.ctype.sizeof(self.pointer_size),
                                       kind="local")
            frame[stmt.name] = obj
            if stmt.init is not None and stmt.ctype.is_scalar():
                self.memory.write(Pointer(obj, 0), stmt.ctype,
                                  self._eval(stmt.init, frame))
            elif isinstance(stmt.init, ast.StringLiteral) and \
                    isinstance(stmt.ctype, ty.ArrayType):
                encoded = stmt.init.value.encode("latin-1", errors="replace")
                for index, byte in enumerate(encoded[:stmt.ctype.length]):
                    obj.data[index] = byte
            return
        value: RuntimeValue = 0
        if stmt.init is not None:
            value = self._eval(stmt.init, frame)
            if stmt.ctype.is_integer() and isinstance(value, int):
                value = ty.wrap_to(stmt.ctype, value)
        frame[stmt.name] = value

    def _current_taken(self, frame: dict[str, object]) -> frozenset[str]:
        func_name = frame.get("__function__")
        if isinstance(func_name, str):
            func = self.program.lookup_function(func_name)
            if func is not None:
                return self._analysis.address_taken_locals(func)
        return frozenset()

    def _exec_while(self, stmt: ast.While, frame: dict[str, object]) -> None:
        while self._truthy(self._eval(stmt.cond, frame)):
            self.node.consume(self.costs.branch_cycles)
            try:
                self._exec_block(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_for(self, stmt: ast.For, frame: dict[str, object]) -> None:
        if stmt.init is not None:
            self._exec_stmt(stmt.init, frame)
        while stmt.cond is None or self._truthy(self._eval(stmt.cond, frame)):
            try:
                self._exec_block(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.update is not None:
                self._exec_stmt(stmt.update, frame)

    # -- raw memory access ----------------------------------------------------------

    def _memory_read(self, pointer: Pointer, ctype: ty.CType) -> RuntimeValue:
        """Read memory; out-of-bounds reads on lenient nodes return zero.

        On real hardware an unchecked out-of-bounds access silently reads or
        corrupts whatever lives next in SRAM.  The simulator's per-object
        memory cannot reproduce the exact corruption pattern, so by default
        it models the *silent* part — the access is absorbed and counted in
        ``node.memory_violations`` — while ``strict_memory`` nodes raise.
        """
        try:
            return self.memory.read(pointer, ctype)
        except MemoryError_:
            if self.node.strict_memory:
                raise
            self.node.memory_violations += 1
            return 0

    def _memory_write(self, pointer: Pointer, ctype: ty.CType,
                      value: RuntimeValue) -> None:
        try:
            self.memory.write(pointer, ctype, value)
        except MemoryError_:
            if self.node.strict_memory:
                raise
            self.node.memory_violations += 1

    # -- lvalues ------------------------------------------------------------------

    def _locate(self, lvalue: ast.Expr, frame: dict[str, object]) -> Pointer:
        """Compute the memory location of an lvalue."""
        if isinstance(lvalue, ast.Identifier):
            slot = frame.get(lvalue.name)
            if isinstance(slot, MemoryObject):
                return Pointer(slot, 0)
            obj = self.memory.global_object(lvalue.name)
            if obj is not None:
                return Pointer(obj, 0)
            raise MemoryError_(f"no storage for {lvalue.name!r}")
        if isinstance(lvalue, ast.Deref):
            pointer = self._eval(lvalue.pointer, frame)
            return self._as_pointer(pointer)
        if isinstance(lvalue, ast.Index):
            base_type = lvalue.base.ctype
            index = self._eval(lvalue.index, frame)
            if not isinstance(index, int):
                raise MemoryError_("non-integer array index")
            if isinstance(base_type, ty.ArrayType):
                base = self._locate(lvalue.base, frame)
                elem_size = base_type.element.sizeof(self.pointer_size)
            else:
                base = self._as_pointer(self._eval(lvalue.base, frame))
                target = base_type.decay()
                elem_size = target.target.sizeof(self.pointer_size) \
                    if isinstance(target, ty.PointerType) else 1
            return base.advanced(index * elem_size)
        if isinstance(lvalue, ast.Member):
            if lvalue.arrow:
                base = self._as_pointer(self._eval(lvalue.base, frame))
                struct_type = lvalue.base.ctype
                if isinstance(struct_type, ty.PointerType):
                    struct_type = struct_type.target
            else:
                base = self._locate(lvalue.base, frame)
                struct_type = lvalue.base.ctype
            if not isinstance(struct_type, ty.StructType):
                raise MemoryError_("member access on a non-struct value")
            resolved = self.program.structs.get(struct_type.name) or struct_type
            offset = resolved.field_offset(lvalue.fieldname, self.pointer_size)
            return base.advanced(offset)
        raise MemoryError_(f"not an lvalue: {type(lvalue).__name__}")

    def _store(self, lvalue: ast.Expr, value: RuntimeValue,
               frame: dict[str, object]) -> None:
        if isinstance(lvalue, ast.Identifier):
            slot = frame.get(lvalue.name)
            if slot is not None and not isinstance(slot, MemoryObject):
                ctype = lvalue.ctype
                if ctype is not None and ctype.is_integer() and isinstance(value, int):
                    value = ty.wrap_to(ctype, value)
                frame[lvalue.name] = value
                return
            if slot is None and lvalue.name not in self.program.globals and \
                    lvalue.name not in frame:
                # A scalar local assigned before its declaration is executed
                # (possible after aggressive code motion): store in the frame.
                frame[lvalue.name] = value
                return
        location = self._locate(lvalue, frame)
        ctype = lvalue.ctype or ty.UINT8
        self._memory_write(location, ctype, value)

    def _as_pointer(self, value: RuntimeValue) -> Pointer:
        if isinstance(value, Pointer):
            return value
        if is_null(value):
            raise MemoryError_("null pointer dereference")
        raise MemoryError_(f"dereference of non-pointer value {value!r}")

    # -- expressions -----------------------------------------------------------------

    def _truthy(self, value: RuntimeValue) -> bool:
        if isinstance(value, Pointer):
            return True
        return value != 0

    def _eval(self, expr: ast.Expr, frame: dict[str, object]) -> RuntimeValue:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.StringLiteral):
            return Pointer(self.memory.string_literal(expr.value), 0)
        if isinstance(expr, ast.Identifier):
            return self._load_identifier(expr, frame)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, frame)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, frame)
        if isinstance(expr, ast.Deref):
            pointer = self._as_pointer(self._eval(expr.pointer, frame))
            return self._memory_read(pointer, expr.ctype or ty.UINT8)
        if isinstance(expr, ast.AddressOf):
            return self._locate(expr.lvalue, frame)
        if isinstance(expr, (ast.Index, ast.Member)):
            if isinstance(expr.ctype, ty.ArrayType):
                return self._locate(expr, frame)
            location = self._locate(expr, frame)
            return self._memory_read(location, expr.ctype or ty.UINT8)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame)
        if isinstance(expr, ast.Cast):
            return self._eval_cast(expr, frame)
        if isinstance(expr, ast.SizeOf):
            return expr.of_type.sizeof(self.pointer_size)
        if isinstance(expr, ast.Ternary):
            if self._truthy(self._eval(expr.cond, frame)):
                return self._eval(expr.then, frame)
            return self._eval(expr.otherwise, frame)
        raise RuntimeError(f"cannot evaluate {type(expr).__name__}")

    def _load_identifier(self, expr: ast.Identifier,
                         frame: dict[str, object]) -> RuntimeValue:
        name = expr.name
        if name in frame:
            slot = frame[name]
            if isinstance(slot, MemoryObject):
                if isinstance(expr.ctype, ty.ArrayType):
                    return Pointer(slot, 0)
                return self.memory.read(Pointer(slot, 0), expr.ctype or ty.UINT8)
            return slot  # type: ignore[return-value]
        obj = self.memory.global_object(name)
        if obj is not None:
            var = self.program.lookup_global(name)
            ctype = var.ctype if var is not None else (expr.ctype or ty.UINT8)
            if isinstance(ctype, (ty.ArrayType, ty.StructType)):
                return Pointer(obj, 0)
            return self.memory.read(Pointer(obj, 0), ctype)
        raise MemoryError_(f"read of unknown variable {name!r}")

    def _eval_binary(self, expr: ast.BinaryOp, frame: dict[str, object]) -> RuntimeValue:
        op = expr.op
        if op == "&&":
            if not self._truthy(self._eval(expr.left, frame)):
                return 0
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        if op == "||":
            if self._truthy(self._eval(expr.left, frame)):
                return 1
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._compare(op, left, right)
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            return self._pointer_arithmetic(expr, left, right)
        result = self._int_arithmetic(op, int(left), int(right))
        if expr.ctype is not None and expr.ctype.is_integer():
            return ty.wrap_to(expr.ctype, result)
        return result

    def _int_arithmetic(self, op: str, left: int, right: int) -> int:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return 0
            return int(left / right)
        if op == "%":
            if right == 0:
                return 0
            return int(left - int(left / right) * right)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << (right & 31)
        if op == ">>":
            return left >> (right & 31)
        raise RuntimeError(f"unknown operator {op!r}")

    def _compare(self, op: str, left: RuntimeValue, right: RuntimeValue) -> int:
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            if isinstance(left, Pointer) and isinstance(right, Pointer):
                equal = left.obj is right.obj and left.offset == right.offset
            elif isinstance(left, Pointer):
                equal = False if right != 0 else False
                equal = False
            else:
                equal = False
            if op == "==":
                return 1 if equal else 0
            if op == "!=":
                return 0 if equal else 1
            # Relational pointer comparison: only meaningful within an object.
            if isinstance(left, Pointer) and isinstance(right, Pointer) and \
                    left.obj is right.obj:
                left, right = left.offset, right.offset
            else:
                return 0
        left_int, right_int = int(left), int(right)
        results = {
            "==": left_int == right_int,
            "!=": left_int != right_int,
            "<": left_int < right_int,
            "<=": left_int <= right_int,
            ">": left_int > right_int,
            ">=": left_int >= right_int,
        }
        return 1 if results[op] else 0

    def _pointer_arithmetic(self, expr: ast.BinaryOp, left: RuntimeValue,
                            right: RuntimeValue) -> RuntimeValue:
        op = expr.op
        if isinstance(left, Pointer) and isinstance(right, Pointer):
            if op == "-" and left.obj is right.obj:
                elem = 1
                left_type = expr.left.ctype.decay() if expr.left.ctype else None
                if isinstance(left_type, ty.PointerType):
                    elem = left_type.target.sizeof(self.pointer_size) or 1
                return (left.offset - right.offset) // elem
            return 0
        pointer, integer = (left, right) if isinstance(left, Pointer) else (right, left)
        pointer_type = expr.left.ctype if isinstance(left, Pointer) else expr.right.ctype
        elem = 1
        if pointer_type is not None:
            decayed = pointer_type.decay()
            if isinstance(decayed, ty.PointerType):
                elem = decayed.target.sizeof(self.pointer_size) or 1
        delta = int(integer) * elem
        if op == "-":
            delta = -delta
        return pointer.advanced(delta)

    def _eval_unary(self, expr: ast.UnaryOp, frame: dict[str, object]) -> RuntimeValue:
        operand = self._eval(expr.operand, frame)
        if expr.op == "!":
            return 0 if self._truthy(operand) else 1
        if isinstance(operand, Pointer):
            return operand
        if expr.op == "-":
            result = -int(operand)
        elif expr.op == "~":
            result = ~int(operand)
        else:
            raise RuntimeError(f"unknown unary operator {expr.op!r}")
        if expr.ctype is not None and expr.ctype.is_integer():
            return ty.wrap_to(expr.ctype, result)
        return result

    def _eval_cast(self, expr: ast.Cast, frame: dict[str, object]) -> RuntimeValue:
        value = self._eval(expr.operand, frame)
        target = expr.target_type
        if target.is_integer() and isinstance(value, int):
            return ty.wrap_to(target, value)
        if target.is_pointer() and isinstance(value, int) and value == 0:
            return 0
        return value

    # -- calls --------------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, frame: dict[str, object]) -> RuntimeValue:
        name = expr.callee
        args = [self._eval(arg, frame) for arg in expr.args]
        if name in self.program.builtins:
            return self.node.call_builtin(name, args)
        result = self.call(name, args)
        return result if result is not None else 0

    # -- frames ------------------------------------------------------------------------


def build_frame_marker(func_name: str) -> dict[str, object]:
    """A frame pre-populated with bookkeeping keys."""
    return {"__function__": func_name}
