"""Multi-node simulation: radio delivery and traffic generation.

The paper runs each application "in a reasonable sensor network context":
applications that listen need peers that transmit, base stations need serial
traffic, and multihop motes need neighbours.  ``TrafficGenerator`` plays the
role of those peers without simulating a second full image: it schedules
periodic injections of well-formed TOS messages into a node's radio (or
UART), so every injected packet exercises the full receive path — including
its safety checks — on the node under test.

``Network`` additionally connects real nodes: packets transmitted by one
node are delivered to the radios of the others.  Nodes are simulated one
after another for the full duration (not in lock step), which is far coarser
than Avrora but sufficient for the workloads here, where the traffic
generator provides the time-critical stimulus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor.program import Program
from repro.avrora.node import Node
from repro.tinyos import messages as msgs


def encode_tos_msg(dest: int, am_type: int, payload: bytes,
                   group: int = msgs.TOS_DEFAULT_GROUP) -> bytes:
    """Serialize a TOS message the way ``RadioCRCPacketC`` lays it out."""
    data = bytearray(msgs.TOS_MSG_WIRE_LENGTH)
    data[0] = dest & 0xFF
    data[1] = (dest >> 8) & 0xFF
    data[2] = am_type & 0xFF
    data[3] = group & 0xFF
    data[4] = min(len(payload), msgs.TOSH_DATA_LENGTH)
    data[5:5 + min(len(payload), msgs.TOSH_DATA_LENGTH)] = \
        payload[:msgs.TOSH_DATA_LENGTH]
    crc = crc16(bytes(data[:msgs.TOS_MSG_WIRE_LENGTH - 2]))
    data[-2] = crc & 0xFF
    data[-1] = (crc >> 8) & 0xFF
    return bytes(data)


def crc16(packet: bytes) -> int:
    """The same CRC the CMinor radio driver computes (CCITT, shift-by-bit)."""
    crc = 0
    for byte in packet:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 4129) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
    return crc


@dataclass
class TrafficGenerator:
    """Schedules synthetic traffic on a node's own event queue.

    Attributes:
        radio_period_s: Seconds between injected radio packets (0 disables).
        uart_period_s: Seconds between injected UART frames (0 disables).
        am_type: Active-message type of injected radio packets.
        payload: Payload bytes of injected packets.
        dest: Destination address (broadcast by default).
    """

    radio_period_s: float = 0.0
    uart_period_s: float = 0.0
    am_type: int = msgs.AM_INT_MSG
    payload: bytes = bytes([1, 0, 0, 0])
    dest: int = msgs.TOS_BCAST_ADDR
    group: int = msgs.TOS_DEFAULT_GROUP
    injected_radio: int = 0
    injected_uart: int = 0

    def packet(self) -> bytes:
        return encode_tos_msg(self.dest, self.am_type, self.payload, self.group)

    # -- installation -----------------------------------------------------------

    def install(self, node: Node) -> None:
        """Arrange periodic injections on ``node``'s event queue."""
        if self.radio_period_s > 0:
            delay = int(self.radio_period_s * node.clock_hz)
            node.schedule(delay, lambda: self._inject_radio(node, delay))
        if self.uart_period_s > 0:
            delay = int(self.uart_period_s * node.clock_hz)
            node.schedule(delay, lambda: self._inject_uart(node, delay))

    def _inject_radio(self, node: Node, delay: int) -> None:
        node.radio.deliver(self.packet())
        self.injected_radio += 1
        node.schedule(delay, lambda: self._inject_radio(node, delay))

    def _inject_uart(self, node: Node, delay: int) -> None:
        node.uart.inject_frame(self.packet())
        self.injected_uart += 1
        node.schedule(delay, lambda: self._inject_uart(node, delay))


@dataclass
class Network:
    """A set of nodes sharing one radio channel."""

    nodes: list[Node] = field(default_factory=list)
    traffic: Optional[TrafficGenerator] = None
    delivered_packets: int = 0

    def add_node(self, node: Node) -> None:
        node.radio.on_transmit = lambda payload, sender=node: \
            self._broadcast(sender, payload)
        if self.traffic is not None:
            self.traffic.install(node)
        self.nodes.append(node)

    def _broadcast(self, sender: Node, payload: bytes) -> None:
        for node in self.nodes:
            if node is sender:
                continue
            if node.radio.deliver(payload):
                self.delivered_packets += 1

    def run(self, seconds: float) -> None:
        """Simulate every node for ``seconds`` of virtual time."""
        for node in self.nodes:
            node.run(seconds)

    def duty_cycles(self) -> list[float]:
        return [node.duty_cycle() for node in self.nodes]


def simulate(program: Program, seconds: float = 5.0, node_count: int = 1,
             traffic: Optional[TrafficGenerator] = None,
             engine: Optional[str] = None) -> list[Node]:
    """Simulate ``node_count`` nodes running one image.

    Returns the simulated nodes; duty cycle, LED history, failure records
    and device statistics can be read from them.  ``engine`` selects the
    execution engine (``"compiled"``/``"tree"``) for every node.
    """
    network = Network(traffic=traffic)
    for node_id in range(1, node_count + 1):
        node = Node(program, node_id=node_id, engine=engine)
        node.boot()
        network.add_node(node)
    network.run(seconds)
    return network.nodes
