"""Multi-node simulation: the lockstep discrete-event network kernel.

The paper runs each application "in a reasonable sensor network context":
applications that listen need peers that transmit, base stations need serial
traffic, and multihop motes need neighbours.  ``TrafficGenerator`` plays the
role of synthetic peers; ``Network`` connects *real* nodes over a modelled
radio channel.

Nodes advance in lockstep, Avrora-style: a global virtual-time scheduler
always resumes the node with the smallest local clock and lets it run only
as far as its peers provably cannot affect it (conservative lookahead
derived from radio air time and link latency).  Cross-node packets are
therefore delivered in causal order — a packet transmitted at sender time
``t`` arrives on the receiver's event queue at ``t + link latency``, never
in the receiver's past — which is what makes true multi-hop workloads
(Surge routing through an intermediate mote) reproducible.

The channel is modelled per link: a :class:`Channel` names a topology
(``broadcast``, ``chain``, ``star``, ``grid``), a per-link latency (with an
optional deterministic per-link jitter) and a loss probability drawn from a
seeded RNG, so lossy runs are bit-reproducible.  Node execution itself is
resumable via :meth:`~repro.avrora.node.Node.run_until`; see
``ARCHITECTURE.md`` ("The lockstep network kernel") for the full design.

The channel's per-packet loss and jitter are *partition-invariant*: each
packet's fate is a pure hash of ``(seed, src, dst, per-link sequence)``
(:meth:`Channel.packet_fate`), not a draw from a shared RNG stream, so the
outcome of a run cannot depend on the order in which different nodes'
transmissions interleave.  That is what lets :meth:`Network.run` accept
``workers=N`` and shard the topology across worker processes — each shard
runs this same lockstep scheduler over its own nodes while a coordinator
exchanges packets and horizon grants at conservative-window boundaries
(see ``repro.avrora.shard``) — with results bit-identical to the
single-process kernel.

The legacy semantics — each node simulated sequentially for the full
duration, transmissions delivered instantly regardless of the receiver's
clock — remain available as :meth:`Network.run_sequential` for
benchmarking the kernel against its predecessor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.cminor.program import Program
from repro.avrora.devices import Radio
from repro.avrora.node import Node
from repro.tinyos import messages as msgs


def encode_tos_msg(dest: int, am_type: int, payload: bytes,
                   group: int = msgs.TOS_DEFAULT_GROUP) -> bytes:
    """Serialize a TOS message the way ``RadioCRCPacketC`` lays it out."""
    if len(payload) > msgs.TOSH_DATA_LENGTH:
        raise ValueError(
            f"encode_tos_msg: payload of {len(payload)} bytes does not fit "
            f"in a TOS message (TOSH_DATA_LENGTH is "
            f"{msgs.TOSH_DATA_LENGTH})")
    data = bytearray(msgs.TOS_MSG_WIRE_LENGTH)
    data[0] = dest & 0xFF
    data[1] = (dest >> 8) & 0xFF
    data[2] = am_type & 0xFF
    data[3] = group & 0xFF
    data[4] = len(payload)
    data[5:5 + len(payload)] = payload
    crc = crc16(bytes(data[:msgs.TOS_MSG_WIRE_LENGTH - 2]))
    data[-2] = crc & 0xFF
    data[-1] = (crc >> 8) & 0xFF
    return bytes(data)


def crc16(packet: bytes) -> int:
    """The same CRC the CMinor radio driver computes (CCITT, shift-by-bit)."""
    crc = 0
    for byte in packet:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 4129) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
    return crc


@dataclass
class TrafficGenerator:
    """Schedules synthetic traffic on a node's own event queue.

    The network installs a fresh *copy* per node (see
    :meth:`Network.add_node`), so the ``injected_radio``/``injected_uart``
    counters are per-node statistics; the generator handed to the network
    is a template and its own counters stay untouched.

    Attributes:
        radio_period_s: Seconds between injected radio packets (0 disables).
        uart_period_s: Seconds between injected UART frames (0 disables).
        am_type: Active-message type of injected radio packets.
        payload: Payload bytes of injected packets.
        dest: Destination address (broadcast by default).
    """

    radio_period_s: float = 0.0
    uart_period_s: float = 0.0
    am_type: int = msgs.AM_INT_MSG
    payload: bytes = bytes([1, 0, 0, 0])
    dest: int = msgs.TOS_BCAST_ADDR
    group: int = msgs.TOS_DEFAULT_GROUP
    injected_radio: int = 0
    injected_uart: int = 0

    def packet(self) -> bytes:
        return encode_tos_msg(self.dest, self.am_type, self.payload, self.group)

    def copy(self) -> "TrafficGenerator":
        """A fresh generator with the same schedule and zeroed counters."""
        return replace(self, injected_radio=0, injected_uart=0)

    # -- installation -----------------------------------------------------------

    def install(self, node: Node) -> None:
        """Arrange periodic injections on ``node``'s event queue."""
        if self.radio_period_s > 0:
            delay = int(self.radio_period_s * node.clock_hz)
            node.schedule(delay, self._radio_callback(node, delay))
        if self.uart_period_s > 0:
            delay = int(self.uart_period_s * node.clock_hz)
            node.schedule(delay, self._uart_callback(node, delay))

    def _radio_callback(self, node: Node, delay: int) -> Callable[[], None]:
        callback = lambda: self._inject_radio(node, delay)  # noqa: E731
        callback.__event_desc__ = ("traffic_radio", delay)
        return callback

    def _uart_callback(self, node: Node, delay: int) -> Callable[[], None]:
        callback = lambda: self._inject_uart(node, delay)  # noqa: E731
        callback.__event_desc__ = ("traffic_uart", delay)
        return callback

    def resolve_event(self, desc: tuple, node: Node) -> Optional[
            Callable[[], None]]:
        """Rebuild an injection callback from its snapshot descriptor."""
        if desc[0] == "traffic_radio":
            return self._radio_callback(node, desc[1])
        if desc[0] == "traffic_uart":
            return self._uart_callback(node, desc[1])
        return None

    def _inject_radio(self, node: Node, delay: int) -> None:
        node.radio.deliver(self.packet())
        self.injected_radio += 1
        node.schedule(delay, self._radio_callback(node, delay))

    def _inject_uart(self, node: Node, delay: int) -> None:
        node.uart.inject_frame(self.packet())
        self.injected_uart += 1
        node.schedule(delay, self._uart_callback(node, delay))


# ---------------------------------------------------------------------------
# The radio channel model
# ---------------------------------------------------------------------------

#: Topologies a :class:`Channel` can wire (by node *position* in the
#: network, not node id): every pair, a line, a hub-and-spokes with node 0
#: as the hub, or a 4-neighbour grid.
TOPOLOGIES = ("broadcast", "chain", "star", "grid")

#: Default per-link latency: one byte time at 38.4 kbaud Manchester.
DEFAULT_LATENCY_US = Radio.US_PER_BYTE

_MASK64 = (1 << 64) - 1


def _mix64(seed: int, src: int, dst: int, sequence: int) -> int:
    """A splitmix64-style avalanche of (seed, src, dst, sequence).

    Python's built-in ``hash`` is salted per process, so packet fates use
    this explicit integer mix: the same inputs give the same 64-bit output
    in every process, which is what makes loss and jitter decisions
    partition-invariant across sharded workers.
    """
    x = (seed * 0x9E3779B97F4A7C15 + src * 0xBF58476D1CE4E5B9
         + dst * 0x94D049BB133111EB + sequence * 0xD6E8FEB86659FD93
         + 0x2545F4914F6CDD1D) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


@dataclass(frozen=True)
class Channel:
    """Topology and per-link latency/loss of the shared radio medium.

    Attributes:
        topology: One of :data:`TOPOLOGIES`.
        latency_us: Base one-way link latency in microseconds (>= 1); also
            the kernel's conservative lookahead floor.
        jitter_us: Optional deterministic per-packet latency spread: the
            ``n``-th packet on link (a, b) adds
            ``mix(seed, a, b, n) % (jitter_us + 1)`` microseconds, making
            links and packets distinguishable without run-time randomness.
        loss: Per-link, per-packet drop probability in [0, 1).
        seed: Seed of the loss/jitter hash; equal seeds give bit-identical
            simulations.  Each packet's fate is a pure function of
            ``(seed, src, dst, sequence)`` — see :meth:`packet_fate` — so
            outcomes cannot depend on how transmissions from different
            nodes interleave (partition invariance).
        grid_width: Columns of the ``grid`` topology (0 = square-ish).
    """

    topology: str = "broadcast"
    latency_us: int = DEFAULT_LATENCY_US
    jitter_us: int = 0
    loss: float = 0.0
    seed: int = 0
    grid_width: int = 0

    def __post_init__(self):
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}; "
                             f"known: {TOPOLOGIES}")
        if self.latency_us < 1:
            raise ValueError(f"latency_us must be >= 1, got {self.latency_us}")
        if self.jitter_us < 0:
            raise ValueError(f"jitter_us must be >= 0, got {self.jitter_us}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.grid_width < 0:
            raise ValueError(f"grid_width must be >= 0, "
                             f"got {self.grid_width}")

    def neighbors(self, index: int, count: int) -> list[int]:
        """Receiver positions reachable from the node at ``index``."""
        if self.topology == "chain":
            return [j for j in (index - 1, index + 1) if 0 <= j < count]
        if self.topology == "star":
            if index == 0:
                return list(range(1, count))
            return [0] if count > 0 else []
        if self.topology == "grid":
            width = self.grid_width or max(1, math.isqrt(max(count - 1, 0)) + 1)
            row, col = divmod(index, width)
            out = []
            for r, c in ((row - 1, col), (row + 1, col),
                         (row, col - 1), (row, col + 1)):
                j = r * width + c
                if r >= 0 and 0 <= c < width and j < count:
                    out.append(j)
            return out
        return [j for j in range(count) if j != index]

    def link_latency_us(self, src: int, dst: int, sequence: int = 0) -> int:
        """One-way latency of the ``sequence``-th (src, dst) packet."""
        if not self.jitter_us:
            return self.latency_us
        mix = _mix64(self.seed, src, dst, sequence)
        return self.latency_us + (mix & 0xFFFFFFFF) % (self.jitter_us + 1)

    def packet_fate(self, src: int, dst: int, sequence: int) -> tuple[bool, int]:
        """(dropped, latency_us) of the ``sequence``-th packet src → dst.

        A pure function of ``(seed, src, dst, sequence)``: the loss draw
        uses the top 53 bits of the mix as a uniform in [0, 1), the jitter
        the bottom 32 — one hash decides both.  Because the sequence number
        counts *this link's* transmissions only, any scheduler that feeds a
        link its packets in sender order (which causality guarantees)
        computes identical fates, regardless of process partitioning.
        """
        mix = _mix64(self.seed, src, dst, sequence)
        dropped = self.loss > 0.0 and (mix >> 11) * (2.0 ** -53) < self.loss
        return dropped, self.link_latency_us(src, dst, sequence)


@dataclass(frozen=True)
class DeliveryRecord:
    """One packet handed across the air, as the receiver observed it."""

    sender_id: int
    receiver_id: int
    sent_cycles: int
    received_cycles: int
    accepted: bool
    payload: bytes


# ---------------------------------------------------------------------------
# The network
# ---------------------------------------------------------------------------


@dataclass
class Network:
    """A set of nodes co-simulated in lockstep over one radio channel."""

    nodes: list[Node] = field(default_factory=list)
    traffic: Optional[TrafficGenerator] = None
    channel: Channel = field(default_factory=Channel)
    delivered_packets: int = 0
    lost_packets: int = 0
    #: Cross-node deliveries in canonical order after :meth:`run` — sorted
    #: by (received_cycles, receiver_id), with each receiver's processing
    #: order preserved among ties — so the log is identical however the
    #: network was partitioned across workers.
    deliveries: list[DeliveryRecord] = field(default_factory=list)

    def __post_init__(self):
        self._sequential = False
        #: Optional payload-corruption hook installed by a fault-injection
        #: layer (``repro.scenarios``): ``corruptor(src, dst, sequence,
        #: payload) -> Optional[bytes]`` runs after :meth:`Channel.packet_fate`
        #: on every surviving packet and may return a replacement payload
        #: (``None`` keeps the original).  To stay partition-invariant it
        #: must be a pure function of its arguments.  ``None`` (the
        #: default) costs one attribute test per transmission — nothing on
        #: the statement-execution hot path.
        self.corruptor = None
        self._active: list[Node] = []
        self._index: dict[int, int] = {}
        #: Per-directed-link packet sequence counters feeding
        #: :meth:`Channel.packet_fate`; reset at the start of every run.
        self._pair_seq: dict[tuple[int, int], int] = {}
        self._lat_min = 1
        self._air_min = 1
        #: Per-shard statistics of the last ``workers > 1`` run.
        self.shard_stats: list[dict] = []
        #: Optional :class:`~repro.avrora.chaos.ChaosPolicy` the sharded
        #: kernel applies (worker kills at chosen window rounds).  An
        #: execution knob: recovery makes results bit-identical either
        #: way.  Ignored by single-process runs, which have no worker
        #: processes to kill.
        self.chaos = None
        #: Recovery telemetry of the last ``workers > 1`` run: respawns,
        #: replayed rounds, checkpoints shipped/bytes, chaos kills
        #: consumed, recovery wall time.
        self.recovery_stats: dict = {}

    # -- membership -------------------------------------------------------------

    def add_node(self, node: Node, traffic: bool = True) -> None:
        """Attach ``node`` to the channel (and install per-node traffic).

        ``traffic=False`` skips the synthetic traffic generator for this
        node — used e.g. to stimulate only a base station.
        """
        index = len(self.nodes)
        self._index[id(node)] = index
        node.radio.on_transmit = lambda payload, sender=node, src=index: \
            self._transmit(sender, src, payload)
        if self.traffic is not None and traffic:
            generator = self.traffic.copy()
            node.traffic_generator = generator
            generator.install(node)
        self.nodes.append(node)

    # -- the channel ------------------------------------------------------------

    def _transmit(self, sender: Node, src: int, payload: bytes) -> None:
        """Route one completed transmission to the sender's neighbours."""
        if self._sequential:
            for node in self.nodes:
                if node is sender:
                    continue
                if node.radio.deliver(payload):
                    self.delivered_packets += 1
            return
        sent_at = sender.time_cycles
        earliest = None
        for dst in self.channel.neighbors(src, len(self.nodes)):
            receiver = self.nodes[dst]
            if receiver is sender:
                continue
            sequence = self._pair_seq.get((src, dst), 0)
            self._pair_seq[(src, dst)] = sequence + 1
            dropped, latency_us = self.channel.packet_fate(src, dst, sequence)
            if dropped:
                self.lost_packets += 1
                continue
            delivered = payload
            if self.corruptor is not None:
                mutated = self.corruptor(src, dst, sequence, payload)
                if mutated is not None:
                    delivered = mutated
            when = sent_at + max(1, sender.cycles_for_us(latency_us))
            receiver.schedule_delivery(
                when, sent_at, sender.node_id,
                self._delivery(sender.node_id, receiver, delivered, sent_at))
            if earliest is None or when < earliest:
                earliest = when
        if earliest is not None and len(self._active) > 1:
            # A peer may now react to this packet: the earliest possible
            # response transmission completes one minimum air time after
            # the delivery and lands one minimum latency later.  Pull the
            # sender's pause horizon in so it does not outrun the answer.
            sender.shrink_pause(earliest + self._air_min + self._lat_min)

    def _delivery(self, sender_id: int, receiver: Node, payload: bytes,
                  sent_at: int) -> Callable[[], None]:
        def deliver() -> None:
            accepted = receiver.radio.deliver(payload)
            if accepted:
                self.delivered_packets += 1
            self.deliveries.append(DeliveryRecord(
                sender_id=sender_id, receiver_id=receiver.node_id,
                sent_cycles=sent_at, received_cycles=receiver.time_cycles,
                accepted=accepted, payload=payload))

        deliver.__event_desc__ = \
            ("net_delivery", sender_id, sent_at, payload)  # type: ignore
        return deliver

    def delivery_resolver(self, receiver: Node) -> Callable[[tuple],
                                                            Optional[Callable]]:
        """An event resolver for ``receiver``'s cross-node delivery events.

        Passed to :meth:`Node.restore` so snapshots whose queues hold
        in-flight packets can be rebuilt against this network.
        """
        def resolve(desc: tuple) -> Optional[Callable[[], None]]:
            if desc[0] != "net_delivery":
                return None
            _tag, sender_id, sent_at, payload = desc
            return self._delivery(sender_id, receiver, payload, sent_at)

        return resolve

    @staticmethod
    def canonical_delivery_order(record: DeliveryRecord) -> tuple:
        """Partition-invariant sort key for the delivery log."""
        return (record.received_cycles, record.receiver_id,
                record.sent_cycles, record.sender_id)

    # -- the lockstep scheduler -------------------------------------------------

    def run(self, seconds: float, workers: int = 1) -> None:
        """Co-simulate every node for ``seconds`` of virtual time, lockstep.

        The scheduler repeatedly resumes the node with the smallest local
        clock and grants it a horizon no peer can beat: the earliest
        instant any *other* node could land a packet on it (pending
        transmission completions, next wake-up times, and the channel's
        minimum air time and latency are all conservative bounds).  With a
        single node the horizon is the end of the simulation, making the
        run byte-identical to the legacy sequential semantics.

        ``workers > 1`` partitions the topology across that many worker
        processes (``repro.avrora.shard``); the results — delivery log,
        per-node statement counts, duty cycles — are bit-identical to the
        single-process path.  ``workers=1`` is the proven in-process
        kernel.
        """
        if not self.nodes:
            return
        if workers < 1:
            raise ValueError(
                f"parallel config: workers must be >= 1, got {workers}")
        if workers > len(self.nodes):
            raise ValueError(
                f"parallel config: workers ({workers}) must not exceed the "
                f"node count ({len(self.nodes)})")
        self.shard_stats = []
        self.recovery_stats = {}
        self._pair_seq.clear()
        if workers > 1:
            from repro.avrora.shard import run_sharded

            run_sharded(self, seconds, workers, chaos=self.chaos)
            self.deliveries.sort(key=self.canonical_delivery_order)
            return
        self._sequential = False
        self._lat_min = max(1, min(
            node.cycles_for_us(self.channel.latency_us)
            for node in self.nodes))
        self._air_min = max(1, min(
            node.cycles_for_us(Radio.US_PER_BYTE) for node in self.nodes))
        for node in self.nodes:
            node.begin_run(seconds)
        active = list(self.nodes)
        self._active = active
        try:
            while active:
                current = min(
                    active,
                    key=lambda n: (n.time_cycles, self._index[id(n)]))
                horizon = current.end_cycles
                if len(active) > 1:
                    bound = min(self._earliest_effect(peer)
                                for peer in active if peer is not current)
                    horizon = min(horizon, bound)
                status = current.run_until(int(horizon))
                if status != "paused":
                    active.remove(current)
        finally:
            self._active = []
            for node in self.nodes:
                node.abort_run()
        self.deliveries.sort(key=self.canonical_delivery_order)

    def _earliest_effect(self, peer: Node) -> float:
        """Earliest instant ``peer`` could land a packet on another node."""
        bound = math.inf
        radio = peer.radio
        if radio.transmitting:
            bound = radio.tx_done_at + self._lat_min
        action = peer.next_action_cycles()
        if action is not None:
            bound = min(bound, action + self._air_min + self._lat_min)
        return bound

    def run_sequential(self, seconds: float, workers: int = 1) -> None:
        """Legacy semantics: each node simulated alone, one after another.

        Transmissions are delivered to every peer instantly — regardless
        of the receiver's local clock — so cross-node causality is only
        approximate.  Kept for benchmarking the lockstep kernel against
        its predecessor (``benchmarks/bench_network_scale.py``).
        """
        if workers != 1:
            raise ValueError(
                f"parallel config: run_sequential supports workers=1 only "
                f"(got {workers}); sharding requires the lockstep kernel")
        self._sequential = True
        try:
            for node in self.nodes:
                node.run(seconds)
        finally:
            self._sequential = False

    # -- statistics -------------------------------------------------------------

    def duty_cycles(self) -> list[float]:
        return [node.duty_cycle() for node in self.nodes]

    #: Additive fields of ``Interpreter.superblock_stats`` (everything but
    #: the engine tag, the enabled flag and the derived fraction).
    _SB_SUM_KEYS = ("superblocks", "loop_superblocks", "traces",
                    "inlined_call_sites", "inlined_calls", "entries_fast",
                    "entries_slow", "bursts", "burst_iterations",
                    "fused_statements", "statements_total")

    def superblock_stats(self) -> dict:
        """Engine fast-path statistics summed over every node.

        With the shared code cache, ``superblocks``/``loop_superblocks``
        count per-node closure bindings (they scale with the node count);
        the runtime hit-rate fields are what the simulation records and
        the CLI surface.
        """
        totals: dict = {key: 0 for key in self._SB_SUM_KEYS}
        enabled = False
        traces_enabled = False
        for node in self.nodes:
            stats = node.interpreter.superblock_stats()
            enabled = enabled or bool(stats.get("enabled"))
            traces_enabled = traces_enabled or \
                bool(stats.get("traces_enabled"))
            for key in self._SB_SUM_KEYS:
                totals[key] += stats.get(key, 0)
        executed = totals["statements_total"]
        totals["enabled"] = enabled
        totals["traces_enabled"] = traces_enabled
        totals["fused_fraction"] = \
            round(totals["fused_statements"] / executed, 4) if executed \
            else 0.0
        return totals

    def node_stats(self) -> list[dict]:
        """Per-node packet and duty-cycle statistics, in node order."""
        stats = []
        for node in self.nodes:
            generator = node.traffic_generator
            stats.append({
                "node_id": node.node_id,
                "duty_cycle": node.duty_cycle(),
                "packets_sent": len(node.radio.packets_sent),
                "packets_received": node.radio.packets_received,
                "packets_dropped": node.radio.packets_dropped,
                "injected_radio":
                    generator.injected_radio if generator else 0,
                "injected_uart":
                    generator.injected_uart if generator else 0,
                "failures": len(node.failures),
                "halted": node.halted,
            })
        return stats


def simulate(program: Program, seconds: float = 5.0, node_count: int = 1,
             traffic: Optional[TrafficGenerator] = None,
             engine: Optional[str] = None,
             channel: Optional[Channel] = None,
             workers: int = 1) -> list[Node]:
    """Simulate ``node_count`` nodes running one image, in lockstep.

    Returns the simulated nodes; duty cycle, LED history, failure records,
    device statistics and the per-node traffic generator
    (``node.traffic_generator``) can be read from them.  ``engine`` selects
    the execution engine (``"compiled"``/``"tree"``) for every node;
    ``channel`` the topology and link model (default: lossless broadcast);
    ``workers`` the number of shard processes (1 = in-process kernel).
    Broadcast networks number nodes from 1 (the historical convention);
    every other topology numbers them from 0, so the first node is the
    multihop base station (``TOS_LOCAL_ADDRESS == 0``).
    """
    channel = channel or Channel()
    network = Network(traffic=traffic, channel=channel)
    first_id = 1 if channel.topology == "broadcast" else 0
    for index in range(node_count):
        node = Node(program, node_id=first_id + index, engine=engine)
        node.boot()
        network.add_node(node)
    network.run(seconds, workers=workers)
    return network.nodes
