"""The sensor-network simulator (the role Avrora plays in the paper).

The paper measures processor duty cycle by running each application for
three simulated minutes in Avrora, a cycle-accurate simulator for networks
of Mica2 motes.  This package provides the equivalent for CMinor images:

* :mod:`repro.avrora.memory` — the byte-addressed memory-object model used
  for globals, locals, and string literals (and for evaluating CCured's
  bounds checks concretely),
* :mod:`repro.avrora.devices` — memory-mapped peripherals: LEDs, the 1024 Hz
  clock, the micro timer, the ADC, the packet radio and the UART,
* :mod:`repro.avrora.interp` — the execution facade: a reference
  tree-walking interpreter plus the engine selection logic,
* :mod:`repro.avrora.engine` — the compile-to-closures execution engine
  (the default): each function is lowered once into a flat op stream and
  re-executed many times, like a dynamic binary translator's code cache,
* :mod:`repro.avrora.node` — one mote: program + devices + interrupt
  delivery + sleep/wake accounting,
* :mod:`repro.avrora.network` — the lockstep discrete-event network kernel:
  a global virtual-time scheduler with conservative lookahead, a per-link
  latency/loss channel model and topology wiring (broadcast, chain, star,
  grid), plus synthetic traffic generation.

Absolute cycle counts differ from real AVR silicon, but the quantity the
paper reports — the *duty cycle*, busy cycles over total cycles, compared
across build variants of the same application — is preserved.
"""

from repro.avrora.node import Node, NodeHalted, SafetyFault
from repro.avrora.network import (
    Channel,
    DeliveryRecord,
    Network,
    TOPOLOGIES,
    TrafficGenerator,
    simulate,
)

__all__ = [
    "Node",
    "NodeHalted",
    "SafetyFault",
    "Channel",
    "DeliveryRecord",
    "Network",
    "TOPOLOGIES",
    "TrafficGenerator",
    "simulate",
]
