"""Chaos policies: deterministic process-fault injection for the kernel.

A :class:`ChaosPolicy` is *data* in the same sense the scenario layer's
:class:`~repro.scenarios.faults.FaultPlan` is: a frozen dataclass of
numbers, JSON-round-trippable (``ChaosPolicy.from_dict(p.to_dict()) == p``)
and seeded, so a chaos run is exactly reproducible from its spec.  Where a
fault plan perturbs the *simulated* motes, a chaos policy perturbs the
simulator's own execution layer: each ``(worker, round)`` kill makes shard
worker ``worker`` die (``os._exit``) the moment it receives its
``round``-th window grant — mid-protocol, with a grant in flight, the
worst spot the supervision layer has to recover from.

The sharded kernel's checkpoint/replay recovery (``repro.avrora.shard``)
restores the dead shard and replays the lost windows, so a chaos run's
results are bit-identical to a fault-free run; that contract is why
``SimSpec.chaos`` is an execution knob excluded from the spec's content
key, exactly like ``workers``.

Policies are injectable three ways: programmatically on
:attr:`Network.chaos <repro.avrora.network.Network>`, through
``SimSpec.chaos``, or via the ``REPRO_CHAOS`` environment variable, which
accepts either the JSON form of :meth:`ChaosPolicy.to_dict` or the compact
``W@R[,W@R...]`` syntax (``"1@3"`` = kill worker 1 at round 3).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

#: Environment variable :meth:`ChaosPolicy.from_env` reads.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Exit code of a chaos-killed worker process — recognizable in process
#: tables and distinct from Python's generic failure exits.
CHAOS_EXIT_CODE = 86


def _mix64(*values: int) -> int:
    """A splitmix64-style mixer (mirrors ``Channel.packet_fate``'s)."""
    state = 0x9E3779B97F4A7C15
    for value in values:
        state = (state + (value & 0xFFFFFFFFFFFFFFFF)) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 30
        state = (state * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 27
        state = (state * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 31
    return state


@dataclass(frozen=True)
class ChaosPolicy:
    """Kill shard workers at chosen window rounds, deterministically.

    Attributes:
        kills: ``(worker, round)`` pairs; worker indices are 0-based,
            rounds are 1-based (the worker dies on receiving that grant).
            Canonicalized to a sorted, deduplicated tuple so equal
            policies compare and serialize identically.  Pairs naming a
            worker index outside the run's actual worker count, or a
            round the run never reaches, simply never fire — a policy
            written for ``workers=4`` is harmless under ``workers=2``.
        seed: Seed :meth:`sampled` derived the kills from (0 for
            hand-written policies).  Recorded so a sampled policy's
            provenance survives serialization.
    """

    kills: tuple[tuple[int, int], ...] = ()
    seed: int = 0

    def __post_init__(self):
        normalized = []
        for entry in self.kills:
            try:
                worker, round_number = entry
            except (TypeError, ValueError):
                raise ValueError(
                    f"chaos: each kill must be a (worker, round) pair, "
                    f"got {entry!r}") from None
            if not isinstance(worker, int) or isinstance(worker, bool) \
                    or worker < 0:
                raise ValueError(
                    f"chaos: worker index must be a non-negative integer, "
                    f"got {worker!r}")
            if not isinstance(round_number, int) \
                    or isinstance(round_number, bool) or round_number < 1:
                raise ValueError(
                    f"chaos: kill round must be a positive integer, "
                    f"got {round_number!r}")
            normalized.append((worker, round_number))
        object.__setattr__(self, "kills", tuple(sorted(set(normalized))))
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(
                f"chaos: seed must be a non-negative integer, "
                f"got {self.seed!r}")

    # -- queries ---------------------------------------------------------------

    def kill_rounds(self, worker: int) -> frozenset:
        """The window rounds at which ``worker`` is scheduled to die."""
        return frozenset(round_number for target, round_number in self.kills
                         if target == worker)

    def label(self) -> str:
        """Human-readable one-liner (CLI and log output)."""
        if not self.kills:
            return "chaos: none"
        return "chaos: " + ", ".join(
            f"kill {worker}@{round_number}"
            for worker, round_number in self.kills)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {"kills": [list(pair) for pair in self.kills],
                "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPolicy":
        if not isinstance(data, dict):
            raise TypeError(
                f"chaos: expected a policy object, got {type(data).__name__}")
        kills = tuple(tuple(pair) for pair in data.get("kills", ()))
        return cls(kills=kills, seed=data.get("seed", 0))

    @classmethod
    def parse(cls, text: str) -> Optional["ChaosPolicy"]:
        """Parse the CLI/env syntax; empty or blank text means no policy.

        Accepts the JSON form of :meth:`to_dict` (``{"kills": [[1, 3]]}``)
        or the compact ``W@R[,W@R...]`` form (``"1@3,0@7"``).
        """
        text = text.strip()
        if not text:
            return None
        if text.startswith("{"):
            try:
                return cls.from_dict(json.loads(text))
            except json.JSONDecodeError as exc:
                raise ValueError(f"chaos: undecodable JSON policy: {exc}") \
                    from exc
        kills = []
        for part in text.split(","):
            part = part.strip()
            worker, separator, round_number = part.partition("@")
            if not separator:
                raise ValueError(
                    f"chaos: expected WORKER@ROUND, got {part!r}")
            try:
                kills.append((int(worker), int(round_number)))
            except ValueError:
                raise ValueError(
                    f"chaos: expected integers in WORKER@ROUND, "
                    f"got {part!r}") from None
        return cls(kills=tuple(kills))

    @classmethod
    def from_env(cls, env_var: str = CHAOS_ENV_VAR) -> Optional["ChaosPolicy"]:
        """The policy named by ``env_var``, or None when unset/empty."""
        return cls.parse(os.environ.get(env_var, ""))

    # -- seeded sampling -------------------------------------------------------

    @classmethod
    def sampled(cls, workers: int, *, kills: int = 1, max_round: int = 12,
                seed: int = 0) -> "ChaosPolicy":
        """A deterministic pseudo-random policy for soak-style testing.

        Draws ``kills`` distinct ``(worker, round)`` pairs over
        ``workers`` worker indices and rounds in ``[1, max_round]`` from a
        splitmix64 stream of ``seed`` — equal arguments always yield the
        equal policy.
        """
        if workers < 1:
            raise ValueError(f"chaos: workers must be >= 1, got {workers}")
        if max_round < 1:
            raise ValueError(
                f"chaos: max_round must be >= 1, got {max_round}")
        drawn: set = set()
        draw = 0
        while len(drawn) < min(kills, workers * max_round):
            value = _mix64(seed, draw)
            draw += 1
            drawn.add((value % workers, 1 + (value >> 32) % max_round))
        return cls(kills=tuple(drawn), seed=seed)
