"""Byte-addressed memory objects and pointers for the simulator.

Every global variable, address-taken or aggregate local, and string literal
becomes a :class:`MemoryObject` — a named bytearray.  A pointer value is a
(:class:`MemoryObject`, byte offset) pair, so pointer arithmetic, byte-wise
reinterpretation of structs, bounds checks and out-of-bounds detection all
behave the way they do on the real hardware, without needing a flat address
space.

Pointers stored *into* memory (for example a global ``struct TOS_Msg*``) are
kept in a per-object shadow table keyed by offset, with a sentinel value in
the raw bytes; code that reinterprets pointer bytes as integers sees the
sentinel, which is enough for the programs in this suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty

_object_ids = itertools.count(1)


class MemoryError_(Exception):
    """Raised on accesses outside any object (a caught safety violation).

    Beyond the human-readable message, the error carries the structured
    context of the faulting access — which object was overrun, at what
    offset, by how many bytes, reading or writing — so callers building
    verdict tables (``repro.scenarios``) can triage corruptions without
    parsing strings.  Errors raised for non-access reasons (null or
    non-pointer dereference, unknown variable) leave the fields at their
    ``None`` defaults.

    Attributes:
        access: ``"read"`` or ``"write"`` for an out-of-bounds access.
        access_size: Bytes the access covered.
        offset: Byte offset of the access within the owning object.
        object_name: Name of the owning :class:`MemoryObject`.
        object_kind: Its kind (``"global"``, ``"local"``, ``"string"``).
        object_size: Its allocated size in bytes.
    """

    def __init__(self, message: str, *, access: Optional[str] = None,
                 access_size: Optional[int] = None,
                 offset: Optional[int] = None,
                 object_name: Optional[str] = None,
                 object_kind: Optional[str] = None,
                 object_size: Optional[int] = None):
        super().__init__(message)
        self.access = access
        self.access_size = access_size
        self.offset = offset
        self.object_name = object_name
        self.object_kind = object_kind
        self.object_size = object_size

    def context(self) -> dict:
        """The structured access context as a plain JSON-ready dict."""
        return {
            "access": self.access,
            "access_size": self.access_size,
            "offset": self.offset,
            "object_name": self.object_name,
            "object_kind": self.object_kind,
            "object_size": self.object_size,
        }


@dataclass
class MemoryObject:
    """One allocated object: a global, a local, or a string literal."""

    name: str
    data: bytearray
    kind: str = "global"
    object_id: int = field(default_factory=lambda: next(_object_ids))
    pointer_slots: dict[int, "Pointer"] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"MemoryObject({self.name}, {self.size}B)"


@dataclass(frozen=True)
class Pointer:
    """A pointer value: an object plus a byte offset (possibly out of bounds)."""

    obj: MemoryObject
    offset: int

    def advanced(self, delta: int) -> "Pointer":
        return Pointer(self.obj, self.offset + delta)

    def in_bounds(self, access_size: int) -> bool:
        return 0 <= self.offset and self.offset + access_size <= self.obj.size

    def __repr__(self) -> str:
        return f"&{self.obj.name}+{self.offset}"


#: Run-time values: integers (including 0 as the null pointer) or pointers.
RuntimeValue = Union[int, Pointer]

#: Sentinel stored in raw bytes where a pointer lives.
_POINTER_SENTINEL = 0xA5A5


def is_null(value: RuntimeValue) -> bool:
    return isinstance(value, int) and value == 0


class MemorySystem:
    """Allocates and accesses the memory objects of one node."""

    def __init__(self, pointer_size: int = 2):
        self.pointer_size = pointer_size
        self.objects: dict[str, MemoryObject] = {}
        self.string_objects: dict[str, MemoryObject] = {}

    # -- allocation ------------------------------------------------------------

    def allocate(self, name: str, size: int, kind: str = "global") -> MemoryObject:
        obj = MemoryObject(name=name, data=bytearray(max(size, 1)), kind=kind)
        if kind == "global":
            self.objects[name] = obj
        return obj

    def global_object(self, name: str) -> Optional[MemoryObject]:
        return self.objects.get(name)

    def string_literal(self, value: str) -> MemoryObject:
        """Allocate (or reuse) the object backing a string literal."""
        existing = self.string_objects.get(value)
        if existing is not None:
            return existing
        data = bytearray(value.encode("latin-1", errors="replace") + b"\0")
        obj = MemoryObject(name=f'"{value[:20]}"', data=data, kind="string")
        self.string_objects[value] = obj
        return obj

    # -- typed access ------------------------------------------------------------

    def read(self, pointer: Pointer, ctype: ty.CType) -> RuntimeValue:
        """Read a value of type ``ctype`` at ``pointer``."""
        size = ctype.sizeof(self.pointer_size)
        if not pointer.in_bounds(size):
            raise MemoryError_(
                f"out-of-bounds read of {size} bytes at {pointer!r} "
                f"(object is {pointer.obj.size} bytes)",
                access="read", access_size=size, offset=pointer.offset,
                object_name=pointer.obj.name, object_kind=pointer.obj.kind,
                object_size=pointer.obj.size)
        if ctype.is_pointer():
            stored = pointer.obj.pointer_slots.get(pointer.offset)
            if stored is not None:
                return stored
            raw = int.from_bytes(
                pointer.obj.data[pointer.offset:pointer.offset + size], "little")
            return raw
        raw = int.from_bytes(
            pointer.obj.data[pointer.offset:pointer.offset + size], "little")
        if isinstance(ctype, ty.IntType) and ctype.signed:
            return ctype.wrap(raw)
        if isinstance(ctype, ty.CharType):
            return ty.IntType(8, True).wrap(raw)
        return raw

    def write(self, pointer: Pointer, ctype: ty.CType, value: RuntimeValue) -> None:
        """Write ``value`` of type ``ctype`` at ``pointer``."""
        size = ctype.sizeof(self.pointer_size)
        if not pointer.in_bounds(size):
            raise MemoryError_(
                f"out-of-bounds write of {size} bytes at {pointer!r} "
                f"(object is {pointer.obj.size} bytes)",
                access="write", access_size=size, offset=pointer.offset,
                object_name=pointer.obj.name, object_kind=pointer.obj.kind,
                object_size=pointer.obj.size)
        if isinstance(value, Pointer):
            pointer.obj.pointer_slots[pointer.offset] = value
            raw = _POINTER_SENTINEL
        else:
            pointer.obj.pointer_slots.pop(pointer.offset, None)
            raw = int(value)
        raw &= (1 << (8 * size)) - 1
        pointer.obj.data[pointer.offset:pointer.offset + size] = \
            raw.to_bytes(size, "little")

    def read_c_string(self, pointer: Pointer, limit: int = 256) -> str:
        """Read a NUL-terminated string starting at ``pointer``."""
        chars: list[str] = []
        offset = pointer.offset
        while offset < pointer.obj.size and len(chars) < limit:
            byte = pointer.obj.data[offset]
            if byte == 0:
                break
            chars.append(chr(byte))
            offset += 1
        return "".join(chars)

    # -- fault injection --------------------------------------------------------

    def flip_bit(self, object_name: str, offset: int, bit: int) -> str:
        """Flip one bit of a global object, modelling an SEU-style upset.

        The shadow-pointer representation makes a literal byte XOR wrong
        for slots holding pointers (the raw bytes are a sentinel): when
        ``offset`` is a pointer slot, the stored :class:`Pointer` is
        advanced by ``1 << bit`` bytes instead — the same observable
        outcome a bit flip in a real address register has.  Returns a
        short description of what was flipped (for scenario records).
        Raises :class:`KeyError` for unknown objects and
        :class:`ValueError` for offsets outside the object.
        """
        obj = self.objects.get(object_name)
        if obj is None:
            raise KeyError(
                f"flip_bit: unknown global {object_name!r}; known: "
                f"{sorted(self.objects)[:10]}...")
        if not 0 <= offset < obj.size:
            raise ValueError(
                f"flip_bit: offset {offset} outside {object_name!r} "
                f"({obj.size} bytes)")
        if not 0 <= bit < 8 * self.pointer_size:
            raise ValueError(
                f"flip_bit: bit must be in [0, {8 * self.pointer_size}), "
                f"got {bit}")
        slot_offset = offset - (offset % self.pointer_size)
        stored = obj.pointer_slots.get(slot_offset)
        if stored is not None:
            delta = 1 << bit
            obj.pointer_slots[slot_offset] = stored.advanced(delta)
            return (f"pointer {object_name}+{slot_offset} "
                    f"({stored!r}) advanced by {delta}")
        if bit >= 8:
            raise ValueError(
                f"flip_bit: bit {bit} exceeds one byte and "
                f"{object_name}+{offset} holds no pointer")
        obj.data[offset] ^= 1 << bit
        return f"byte {object_name}+{offset} xor {1 << bit:#04x}"

    # -- snapshot / restore -----------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize every reachable object to plain picklable data.

        Globals are keyed by name and string literals by value; objects
        reachable only through stored pointers (address-taken locals kept
        alive by a global, heap-like buffers) are discovered by walking the
        pointer shadow tables and keyed synthetically, in discovery order,
        so :meth:`restore` can rebuild the exact provenance graph.  Stored
        pointers are serialized as ``(space, key, offset)`` references,
        never as raw addresses — the simulator has none.
        """
        refs: dict[int, tuple[str, object]] = {}
        locals_found: list[MemoryObject] = []
        for name, obj in self.objects.items():
            refs[id(obj)] = ("g", name)
        for value, obj in self.string_objects.items():
            refs[id(obj)] = ("s", value)
        queue = list(self.objects.values()) + list(self.string_objects.values())
        while queue:
            obj = queue.pop(0)
            for offset in sorted(obj.pointer_slots):
                target = obj.pointer_slots[offset].obj
                if id(target) not in refs:
                    key = f"{len(locals_found)}:{target.name}"
                    refs[id(target)] = ("l", key)
                    locals_found.append(target)
                    queue.append(target)

        def entry(obj: MemoryObject) -> dict:
            return {
                "name": obj.name,
                "kind": obj.kind,
                "data": bytes(obj.data),
                "slots": [
                    (offset, refs[id(ptr.obj)], ptr.offset)
                    for offset, ptr in sorted(obj.pointer_slots.items())
                ],
            }

        return {
            "pointer_size": self.pointer_size,
            "globals": {name: entry(obj) for name, obj in self.objects.items()},
            "strings": {value: entry(obj)
                        for value, obj in self.string_objects.items()},
            "locals": {refs[id(obj)][1]: entry(obj) for obj in locals_found},
        }

    def restore(self, snapshot: dict) -> None:
        """Apply a :meth:`snapshot` to this memory system, in place.

        Existing objects are *mutated* (``data[:] = ...``), never replaced:
        the compiled engine bakes direct :class:`MemoryObject` references
        into its closures, so object identity must survive a restore.
        Objects the snapshot knows and this system does not (lazily
        allocated strings, reachable locals) are created.
        """
        resolved: dict[tuple[str, object], MemoryObject] = {}
        for name, entry in snapshot["globals"].items():
            obj = self.objects.get(name)
            if obj is None:
                obj = self.allocate(name, len(entry["data"]), "global")
            obj.data[:] = entry["data"]
            resolved[("g", name)] = obj
        for value, entry in snapshot["strings"].items():
            obj = self.string_literal(value)
            obj.data[:] = entry["data"]
            resolved[("s", value)] = obj
        for key, entry in snapshot["locals"].items():
            obj = MemoryObject(name=entry["name"],
                               data=bytearray(entry["data"]),
                               kind=entry["kind"])
            resolved[("l", key)] = obj
        for space_name, space in (("g", snapshot["globals"]),
                                  ("s", snapshot["strings"]),
                                  ("l", snapshot["locals"])):
            for key, entry in space.items():
                obj = resolved[(space_name, key)]
                obj.pointer_slots.clear()
                for offset, ref, ptr_offset in entry["slots"]:
                    target = resolved[tuple(ref)]
                    obj.pointer_slots[offset] = Pointer(target, ptr_offset)

    # -- global initialization ------------------------------------------------------

    def initialize_global(self, var: ast.GlobalVar, pointer_size: int) -> MemoryObject:
        """Allocate and statically initialize one global variable."""
        size = var.ctype.sizeof(pointer_size)
        obj = self.allocate(var.name, size, "global")
        if var.init is not None:
            self._apply_initializer(obj, 0, var.ctype, var.init)
        return obj

    def _apply_initializer(self, obj: MemoryObject, offset: int, ctype: ty.CType,
                           init: ast.Expr) -> None:
        pointer = Pointer(obj, offset)
        if isinstance(init, ast.IntLiteral):
            if ctype.is_scalar() or ctype.is_integer():
                self.write(pointer, ctype if ctype.is_scalar() else ty.UINT8,
                           init.value)
            return
        if isinstance(init, ast.StringLiteral):
            if isinstance(ctype, ty.ArrayType):
                encoded = init.value.encode("latin-1", errors="replace")
                for index, byte in enumerate(encoded[:ctype.length]):
                    obj.data[offset + index] = byte
            elif ctype.is_pointer():
                literal_obj = self.string_literal(init.value)
                self.write(pointer, ctype, Pointer(literal_obj, 0))
            return
        if isinstance(init, ast.InitList):
            if isinstance(ctype, ty.ArrayType):
                elem_size = ctype.element.sizeof(self.pointer_size)
                for index, item in enumerate(init.items):
                    self._apply_initializer(obj, offset + index * elem_size,
                                            ctype.element, item)
            elif isinstance(ctype, ty.StructType):
                for item, struct_field in zip(init.items, ctype.fields):
                    field_offset = ctype.field_offset(struct_field.name,
                                                      self.pointer_size)
                    self._apply_initializer(obj, offset + field_offset,
                                            struct_field.ctype, item)
            return
        if isinstance(init, ast.AddressOf) and isinstance(init.lvalue, ast.Identifier):
            target = self.global_object(init.lvalue.name)
            if target is not None and ctype.is_pointer():
                self.write(pointer, ctype, Pointer(target, 0))
            return
        # Other initializer forms (cast constants, unary minus) are evaluated
        # by the interpreter before main() runs.
