"""The sharded multi-process network kernel, with supervised recovery.

:func:`run_sharded` partitions a :class:`~repro.avrora.network.Network`'s
nodes into contiguous shards, forks one worker process per shard, and has
each worker run the *existing* lockstep scheduler over its own nodes while
a coordinator exchanges radio packets and horizon grants over
``multiprocessing`` pipes.  The result — delivery log, per-node statement
counts, duty cycles — is bit-identical to the single-process kernel
(``Network.run(..., workers=1)``); see ``ARCHITECTURE.md`` ("The sharded
network kernel") for the full determinism argument.

The conservative-window protocol in one paragraph: a worker may run its
nodes up to a *window* ``W(s)`` no external node can beat.  For an
external node ``j`` whose earliest cross-node effect is ``effect(j)``
(transmission in flight, or next possible action plus minimum air time
and link latency), any influence on shard ``s`` needs at least
``D(j, s)`` radio hops, and every hop past the first costs at least one
more air time plus latency, so

    ``W(s) = min over external j of effect(j) + (D(j, s) - 1) * margin``

with ``margin = air_min + lat_min`` and ``D`` the BFS hop distance on the
channel topology.  Packets a worker addresses to a remote shard are routed
through the coordinator and injected with the destination's next grant;
the same bound proves they always arrive in the destination's future.
Grants are asynchronous — each shard is re-granted the moment its window
allows progress, with no global barrier.

Workers are forked *after* the coordinator has warmed the per-program
compiled code cache, so every worker inherits the lowered program for
free and compiles nothing.  Shard state crosses the process boundary only
through ``Node.snapshot()``/``restore()`` (spawn-side) and plain tuples
(the window protocol).

**Fault tolerance.**  The coordinator never blocks unsupervised: every
pipe wait carries a timeout, worker death (EOF, broken pipe, dead
process) is detected and a worker that is alive but silent past the stall
timeout raises a labelled :class:`ShardWorkerError`.  Workers ship a
checkpoint — pickled :meth:`Node.snapshot` images plus the shard's
counters, per-link sequence numbers and delivery-log delta — with their
report every :data:`DEFAULT_CHECKPOINT_EVERY` window rounds (the first
round at or past the cadence where every local node is parked in a
snapshotable phase).  The coordinator keeps the latest checkpoint per
shard plus a log of every grant sent since; when a worker dies it is
respawned from that checkpoint (or from the initial pre-fork snapshots)
and the logged grants are replayed in order.  Because a worker is a
deterministic function of its restored state and its grant sequence, the
replayed reports are bit-identical to the recorded ones — the coordinator
verifies this — and the run's results are bit-identical to a fault-free
run.  A :class:`~repro.avrora.chaos.ChaosPolicy` on ``network.chaos``
drives deterministic worker kills to exercise exactly this path.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
import traceback
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import TYPE_CHECKING, Optional

from repro.avrora.chaos import CHAOS_EXIT_CODE, ChaosPolicy
from repro.avrora.devices import Radio

if TYPE_CHECKING:  # pragma: no cover
    from repro.avrora.network import Network
    from repro.avrora.node import Node

#: Checkpoint cadence in window rounds (``REPRO_SHARD_CHECKPOINT_EVERY``
#: overrides; 0 disables checkpointing *and* recovery — a worker death
#: then raises :class:`ShardWorkerError` instead of respawning).
DEFAULT_CHECKPOINT_EVERY = 25

#: Seconds a granted worker may stay silent before the coordinator calls
#: it stalled (``REPRO_SHARD_STALL_TIMEOUT_S`` overrides).  Generous: a
#: window is milliseconds of work, so minutes of silence means a hang,
#: not load.
DEFAULT_STALL_TIMEOUT_S = 600.0

#: Consecutive respawns of one shard without a single new report before
#: the coordinator gives up — the backstop against a deterministically
#: crashing worker replaying itself to death forever.
MAX_RESPAWNS_WITHOUT_PROGRESS = 3

#: Supervision quantum: how long one pipe wait blocks before liveness
#: and stall checks run.  Ready pipes return immediately, so this bounds
#: failure-detection latency, not throughput.
_POLL_INTERVAL_S = 0.05


class ShardWorkerError(RuntimeError):
    """A shard worker died or stalled beyond what recovery can absorb.

    Raised instead of blocking forever on a dead or hung worker.  Carries
    the worker index, the last window round the coordinator granted it,
    and the age of its last heartbeat (seconds since the coordinator last
    heard from it).
    """

    def __init__(self, worker_index: int, round_number: int,
                 heartbeat_age_s: float, reason: str):
        super().__init__(
            f"shard worker {worker_index} {reason} at round {round_number} "
            f"(last heartbeat {heartbeat_age_s:.1f}s ago)")
        self.worker_index = worker_index
        self.round_number = round_number
        self.heartbeat_age_s = heartbeat_age_s


class _WorkerDied(Exception):
    """Internal supervision signal: a shard's process is gone."""

    def __init__(self, worker_index: int):
        super().__init__(worker_index)
        self.worker_index = worker_index


def _partition(count: int, workers: int) -> list[tuple[int, int]]:
    """Split ``count`` node positions into ``workers`` contiguous shards."""
    base, extra = divmod(count, workers)
    bounds = []
    lo = 0
    for index in range(workers):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _hop_distances(channel, count: int) -> list[list]:
    """Directed BFS hop distances between node positions (None = unreachable)."""
    table = []
    for src in range(count):
        dist: list = [None] * count
        dist[src] = 0
        frontier = deque([src])
        while frontier:
            here = frontier.popleft()
            for there in channel.neighbors(here, count):
                if dist[there] is None:
                    dist[there] = dist[here] + 1
                    frontier.append(there)
        table.append(dist)
    return table


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _ShardWorker:
    """One forked process running the lockstep scheduler over one shard."""

    def __init__(self, worker_index: int, conn, network: "Network",
                 bounds: list[tuple[int, int]], snapshots: list[dict],
                 seconds: float, lat_min: int, air_min: int,
                 checkpoint_every: int = 0,
                 kill_rounds: frozenset = frozenset(),
                 resume_state: Optional[bytes] = None):
        self.worker_index = worker_index
        self.conn = conn
        self.network = network
        self.bounds = bounds
        self.snapshots = snapshots
        self.seconds = seconds
        self.lat_min = lat_min
        self.air_min = air_min
        self.margin = lat_min + air_min
        self.checkpoint_every = checkpoint_every
        self.kill_rounds = kill_rounds
        self.resume_state = resume_state
        lo, hi = bounds[worker_index]
        self.local = list(range(lo, hi))
        self.local_set = frozenset(self.local)
        self.done = {index: False for index in self.local}
        self._cap = 0
        self._outgoing: list[tuple] = []
        self.packets_out = 0

    def run(self) -> None:
        network = self.network
        nodes = network.nodes
        # Baselines are captured *before* a checkpoint's deltas are folded
        # back in, so the final message always covers everything since the
        # shard's original start, whichever incarnation sends it.
        base_delivered = network.delivered_packets
        base_lost = network.lost_packets
        base_deliveries = len(network.deliveries)
        rounds = 0
        packets_in = 0
        checkpoints = 0
        last_checkpoint_round = 0
        if self.resume_state is None:
            for index in self.local:
                node = nodes[index]
                node.restore(self.snapshots[index],
                             resolve_event=network.delivery_resolver(node))
                node.begin_run(self.seconds)
        else:
            # A respawned incarnation: restore the checkpoint — sleeping
            # nodes resume mid-run (their end_cycles come with the
            # snapshot, so begin_run must not re-arm them) — and fold the
            # checkpointed counters and delivery-log delta back in.
            state = pickle.loads(self.resume_state)
            for index, snap in state["nodes"]:
                node = nodes[index]
                node.restore(snap,
                             resolve_event=network.delivery_resolver(node),
                             resume=(snap["phase"] == "sleeping"))
            self.done.update(state["done"])
            network._pair_seq.update(state["pair_seq"])
            network.deliveries.extend(state["deliveries"])
            network.delivered_packets += state["delivered"]
            network.lost_packets += state["lost"]
            rounds = state["rounds"]
            packets_in = state["packets_in"]
            self.packets_out = state["packets_out"]
            last_checkpoint_round = rounds
        for index in self.local:
            node = nodes[index]
            node.radio.on_transmit = \
                lambda payload, sender=node, src=index: \
                self._transmit(sender, src, payload)
        wait_s = 0.0
        checkpoint_wall_s = 0.0
        started = time.perf_counter()
        try:
            while True:
                before = time.perf_counter()
                message = self.conn.recv()
                wait_s += time.perf_counter() - before
                if message[0] == "finish":
                    self._insert(message[1])
                    break
                _tag, window, packets = message
                rounds += 1
                if rounds in self.kill_rounds:
                    # Chaos: die mid-protocol with this grant in flight —
                    # the worst case the supervision layer must recover.
                    os._exit(CHAOS_EXIT_CODE)
                packets_in += len(packets)
                self._insert(packets)
                self._cap = window
                self._outgoing = []
                self._run_window()
                self.packets_out += len(self._outgoing)
                checkpoint = None
                if (self.checkpoint_every > 0
                        and rounds - last_checkpoint_round
                        >= self.checkpoint_every
                        and all(nodes[index].snapshot_phase() is not None
                                for index in self.local)):
                    # Opportunistic: an overdue checkpoint ships at the
                    # first round where every local node is parked in a
                    # snapshotable phase (motes sleep most of the time,
                    # so this rarely slips far past the cadence).
                    before = time.perf_counter()
                    checkpoint = self._checkpoint(
                        rounds, packets_in, base_deliveries,
                        base_delivered, base_lost)
                    checkpoint_wall_s += time.perf_counter() - before
                    last_checkpoint_round = rounds
                    checkpoints += 1
                self.conn.send(("report", self.worker_index,
                                self._states(), self._outgoing, checkpoint))
        finally:
            for index in self.local:
                nodes[index].abort_run()
        stats = {
            "worker": self.worker_index,
            "nodes": list(self.bounds[self.worker_index]),
            "rounds": rounds,
            "packets_in": packets_in,
            "packets_out": self.packets_out,
            "checkpoints": checkpoints,
            "checkpoint_wall_s": round(checkpoint_wall_s, 6),
            "sync_wait_s": round(wait_s, 6),
            "wall_s": round(time.perf_counter() - started, 6),
        }
        finals = [(index, nodes[index].snapshot()) for index in self.local]
        self.conn.send((
            "final", self.worker_index, finals,
            network.deliveries[base_deliveries:],
            network.delivered_packets - base_delivered,
            network.lost_packets - base_lost,
            stats))

    def _checkpoint(self, rounds: int, packets_in: int, base_deliveries: int,
                    base_delivered: int, base_lost: int) -> bytes:
        """Pickle the shard's complete resumable state.

        Pre-pickled so the pipe ships one bytes object and the coordinator
        only pays the unpickle on an actual recovery; ``len()`` of the
        blob doubles as the checkpoint-size telemetry.
        """
        network = self.network
        nodes = network.nodes
        return pickle.dumps({
            "rounds": rounds,
            "packets_in": packets_in,
            "packets_out": self.packets_out,
            "done": dict(self.done),
            "nodes": [(index, nodes[index].snapshot())
                      for index in self.local],
            "pair_seq": dict(network._pair_seq),
            "deliveries": list(network.deliveries[base_deliveries:]),
            "delivered": network.delivered_packets - base_delivered,
            "lost": network.lost_packets - base_lost,
        }, protocol=pickle.HIGHEST_PROTOCOL)

    # -- packet routing -------------------------------------------------------

    def _insert(self, packets: list[tuple]) -> None:
        """Schedule coordinator-routed arrivals on their local receivers."""
        network = self.network
        for dst, when, sender_id, sent_at, payload in packets:
            receiver = network.nodes[dst]
            # A packet below the receiver's *horizon* is a protocol
            # violation.  One between the horizon and the (possibly
            # overshot — execution pauses at statement granularity) clock
            # is legal: the receiver parked before opening its boundary
            # event batch, so the arrival still joins that batch.
            if (not self.done[dst] and when < receiver.time_cycles
                    and when < receiver.pause_cycles):
                raise RuntimeError(
                    f"shard {self.worker_index}: packet for node "
                    f"{receiver.node_id} arrives at {when} but the node's "
                    f"horizon was {receiver.pause_cycles} (clock "
                    f"{receiver.time_cycles}) — window protocol violation")
            receiver.schedule_delivery(
                when, sent_at, sender_id,
                network._delivery(sender_id, receiver, payload, sent_at))

    def _transmit(self, sender: "Node", src: int, payload: bytes) -> None:
        """Shard-local replacement for ``Network._transmit``.

        Local neighbours are scheduled directly — the identical code path
        the single-process kernel uses — while packets for remote shards
        are buffered for the coordinator, and the shard window is pulled
        in so no local node outruns the earliest possible remote reply.
        """
        network = self.network
        sent_at = sender.time_cycles
        earliest_local = None
        for dst in network.channel.neighbors(src, len(network.nodes)):
            receiver = network.nodes[dst]
            if receiver is sender:
                continue
            sequence = network._pair_seq.get((src, dst), 0)
            network._pair_seq[(src, dst)] = sequence + 1
            dropped, latency_us = network.channel.packet_fate(
                src, dst, sequence)
            if dropped:
                network.lost_packets += 1
                continue
            # The payload-corruption hook applies here exactly as in
            # ``Network._transmit``: the corruptor is a pure function of
            # (src, dst, sequence, payload), so local and boundary-routed
            # deliveries of the same packet corrupt identically.
            delivered = payload
            if network.corruptor is not None:
                mutated = network.corruptor(src, dst, sequence, payload)
                if mutated is not None:
                    delivered = mutated
            when = sent_at + max(1, sender.cycles_for_us(latency_us))
            if dst in self.local_set:
                receiver.schedule_delivery(
                    when, sent_at, sender.node_id,
                    network._delivery(sender.node_id, receiver, delivered,
                                      sent_at))
                if earliest_local is None or when < earliest_local:
                    earliest_local = when
            else:
                self._outgoing.append(
                    (dst, when, sender.node_id, sent_at, delivered))
                reply = when + self.margin
                if reply < self._cap:
                    self._cap = reply
        bound = self._cap
        if earliest_local is not None:
            bound = min(bound, earliest_local + self.margin)
        sender.shrink_pause(int(bound))

    # -- the window run -------------------------------------------------------

    def _run_window(self) -> None:
        """Run the shard's nodes lockstep until every one reaches the cap."""
        nodes = self.network.nodes
        while True:
            runnable = [index for index in self.local
                        if not self.done[index]
                        and nodes[index].time_cycles < self._cap]
            if not runnable:
                return
            current_index = min(
                runnable, key=lambda i: (nodes[i].time_cycles, i))
            current = nodes[current_index]
            horizon = min(current.end_cycles, self._cap)
            peers = [index for index in self.local
                     if index != current_index and not self.done[index]]
            if peers:
                bound = min(self._earliest_effect(nodes[index])
                            for index in peers)
                horizon = min(horizon, bound)
            status = current.run_until(int(horizon))
            if status != "paused":
                self.done[current_index] = True

    def _earliest_effect(self, peer: "Node") -> float:
        """Mirror of ``Network._earliest_effect`` for shard-local peers."""
        bound = math.inf
        radio = peer.radio
        if radio.transmitting:
            bound = radio.tx_done_at + self.lat_min
        action = peer.next_action_cycles()
        if action is not None:
            bound = min(bound, action + self.air_min + self.lat_min)
        return bound

    def _states(self) -> list[tuple]:
        """Per-node lookahead state for the coordinator's window algebra."""
        out = []
        for index in self.local:
            node = self.network.nodes[index]
            radio = node.radio
            out.append((index, node.time_cycles, node.next_action_cycles(),
                        radio.transmitting, radio.tx_done_at,
                        self.done[index]))
        return out


def _worker_main(worker_index: int, conn, network: "Network",
                 bounds: list[tuple[int, int]], snapshots: list[dict],
                 seconds: float, lat_min: int, air_min: int,
                 checkpoint_every: int, kill_rounds: frozenset,
                 resume_state: Optional[bytes]) -> None:
    worker = _ShardWorker(worker_index, conn, network, bounds, snapshots,
                          seconds, lat_min, air_min, checkpoint_every,
                          kill_rounds, resume_state)
    try:
        worker.run()
    except BaseException:
        try:
            conn.send(("error", worker_index, traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - pipe torn down
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _Coordinator:
    """Drives one sharded run: window grants plus supervised recovery.

    The window-protocol state (``states``/``queued``/``in_flight``/
    ``running``) is exactly the PR 6 algebra; the supervision state —
    latest checkpoint blob, grant and report logs since that checkpoint,
    absolute granted-round counters, heartbeat times and pending chaos
    kills, all per shard — is what :meth:`_recover` and :meth:`_replay`
    run on.
    """

    def __init__(self, network: "Network", seconds: float, workers: int, *,
                 chaos: Optional[ChaosPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 stall_timeout_s: Optional[float] = None):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "parallel config: workers > 1 requires the 'fork' start "
                "method (POSIX); this platform does not support it")
        self.context = multiprocessing.get_context("fork")
        self.network = network
        self.seconds = seconds
        self.workers = workers
        nodes = network.nodes
        self.count = len(nodes)
        channel = network.channel
        self.lat_min = max(1, min(node.cycles_for_us(channel.latency_us)
                                  for node in nodes))
        self.air_min = max(1, min(node.cycles_for_us(Radio.US_PER_BYTE)
                                  for node in nodes))
        self.margin = self.lat_min + self.air_min
        self.bounds = _partition(self.count, workers)
        self.shard_of = [s for s, (lo, hi) in enumerate(self.bounds)
                         for _ in range(lo, hi)]
        hops = _hop_distances(channel, self.count)
        # Distance from each node to each shard: fewest hops to any member.
        self.shard_dist: list[list] = []
        for j in range(self.count):
            row = []
            for lo, hi in self.bounds:
                best = None
                for i in range(lo, hi):
                    if i == j:
                        continue
                    d = hops[j][i]
                    if d is not None and (best is None or d < best):
                        best = d
                row.append(best)
            self.shard_dist.append(row)
        self.end_of = [node.time_cycles + int(seconds * node.clock_hz)
                       for node in nodes]
        self.max_end = max(self.end_of)
        if checkpoint_every is None:
            checkpoint_every = int(os.environ.get(
                "REPRO_SHARD_CHECKPOINT_EVERY", DEFAULT_CHECKPOINT_EVERY))
        if checkpoint_every < 0:
            raise ValueError(
                f"parallel config: checkpoint cadence must be >= 0, "
                f"got {checkpoint_every}")
        self.checkpoint_every = checkpoint_every
        if stall_timeout_s is None:
            stall_timeout_s = float(os.environ.get(
                "REPRO_SHARD_STALL_TIMEOUT_S", DEFAULT_STALL_TIMEOUT_S))
        self.stall_timeout_s = stall_timeout_s
        self.pending_kills = [sorted(chaos.kill_rounds(s))
                              if chaos is not None else []
                              for s in range(workers)]
        # Last-reported lookahead state per node: (time, action,
        # transmitting, tx_done_at, done).  Fresh nodes can act immediately.
        self.states: list[tuple] = [
            (node.time_cycles, node.time_cycles, False, 0, False)
            for node in nodes]
        self.done = [False] * self.count
        self.queued: list[list] = [[] for _ in range(workers)]
        self.in_flight: list[list] = [[] for _ in range(workers)]
        self.running = [False] * workers
        # Supervision state, all per shard.
        self.connections: list = [None] * workers
        self.processes: list = [None] * workers
        self.checkpoints: list = [None] * workers
        self.grant_log: list[list] = [[] for _ in range(workers)]
        self.report_log: list[list] = [[] for _ in range(workers)]
        self.finish_message: list = [None] * workers
        self.rounds_granted = [0] * workers
        self.last_heard = [0.0] * workers
        self.respawns_since_report = [0] * workers
        self.shard_stats: list = [None] * workers
        self.recovery = {"respawns": 0, "replayed_rounds": 0,
                         "checkpoints": 0, "checkpoint_bytes": 0,
                         "chaos_kills": 0, "recovery_wall_s": 0.0}

    # -- window algebra (unchanged from the unsupervised kernel) --------------

    def _effect(self, j: int) -> float:
        """Earliest instant node ``j`` could land a packet on a neighbour."""
        _time, action, transmitting, tx_done, node_done = self.states[j]
        if node_done:
            return math.inf
        bound = math.inf
        if transmitting:
            bound = tx_done + self.lat_min
        if action is not None:
            bound = min(bound, action + self.margin)
        # Undelivered arrivals can wake the node: its reaction lands one
        # margin after the arrival.  Pending until the shard's next report
        # proves the packet reached the node's queue.
        for packets in (self.queued[self.shard_of[j]],
                        self.in_flight[self.shard_of[j]]):
            for dst, when, _sender, _sent, _payload in packets:
                if dst == j:
                    bound = min(bound, when + self.margin)
        return bound

    def _window(self, s: int) -> float:
        lo, hi = self.bounds[s]
        bound = math.inf
        for j in range(self.count):
            if lo <= j < hi:
                continue
            e = self._effect(j)
            if e is math.inf:
                continue
            d = self.shard_dist[j][s]
            if d is None:
                continue
            bound = min(bound, e + (d - 1) * self.margin)
        return bound

    # -- process lifecycle ----------------------------------------------------

    def _spawn(self, s: int) -> None:
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=_worker_main,
            args=(s, child_conn, self.network, self.bounds, self.snapshots,
                  self.seconds, self.lat_min, self.air_min,
                  self.checkpoint_every, frozenset(self.pending_kills[s]),
                  self.checkpoints[s]),
            daemon=True, name=f"avrora-shard-{s}")
        process.start()
        child_conn.close()
        self.connections[s] = parent_conn
        self.processes[s] = process
        self.last_heard[s] = time.monotonic()

    def _teardown(self, s: int) -> None:
        conn = self.connections[s]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        process = self.processes[s]
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5.0)

    def _heartbeat_age(self, s: int) -> float:
        return time.monotonic() - self.last_heard[s]

    # -- supervised transport -------------------------------------------------

    def _recv(self, s: int) -> tuple:
        """One message from shard ``s``, under supervision.

        Raises :class:`_WorkerDied` when the worker's process or pipe is
        gone, :class:`ShardWorkerError` when it is alive but silent past
        the stall timeout, and re-raises a worker-reported ``error``
        (a program failure inside the shard — never recovered).
        """
        conn = self.connections[s]
        while True:
            try:
                if conn.poll(_POLL_INTERVAL_S):
                    message = conn.recv()
                    self.last_heard[s] = time.monotonic()
                    if message[0] == "error":
                        raise RuntimeError(
                            f"shard worker {message[1]} failed:"
                            f"\n{message[2]}")
                    return message
            except (EOFError, OSError) as exc:
                raise _WorkerDied(s) from exc
            if not self.processes[s].is_alive() and not conn.poll():
                raise _WorkerDied(s)
            if self._heartbeat_age(s) > self.stall_timeout_s:
                raise ShardWorkerError(
                    s, self.rounds_granted[s], self._heartbeat_age(s),
                    "stalled — no report within the stall timeout")

    def _grant(self, s: int, cap: int) -> None:
        """Send one window grant (the shard's queued packets ride along)."""
        message = ("run", cap, self.queued[s])
        if self.checkpoint_every > 0:
            self.grant_log[s].append(message)
        self.rounds_granted[s] += 1
        self.in_flight[s].extend(self.queued[s])
        self.queued[s] = []
        self.last_heard[s] = time.monotonic()
        try:
            self.connections[s].send(message)
        except OSError:
            # Dead before the grant left: recovery's replay re-sends it
            # as the trailing in-flight grant.
            self._recover(s)

    # -- recovery -------------------------------------------------------------

    def _recover(self, s: int) -> None:
        """Respawn shard ``s`` from its last checkpoint and replay it.

        Loops because the replacement can die too (a second chaos kill at
        a later logged round, or a real repeated crash); the
        no-progress counter bounds the loop.
        """
        started = time.monotonic()
        try:
            while True:
                age = self._heartbeat_age(s)
                if self.checkpoint_every <= 0:
                    raise ShardWorkerError(
                        s, self.rounds_granted[s], age,
                        "died (recovery disabled: checkpoint cadence 0)")
                self.respawns_since_report[s] += 1
                if self.respawns_since_report[s] \
                        > MAX_RESPAWNS_WITHOUT_PROGRESS:
                    raise ShardWorkerError(
                        s, self.rounds_granted[s], age,
                        f"died {self.respawns_since_report[s]} times "
                        f"without progress")
                # Chaos kills at or before the granted round fired in the
                # dead incarnation; the replacement must not re-fire them
                # while replaying those same rounds.
                consumed = [r for r in self.pending_kills[s]
                            if r <= self.rounds_granted[s]]
                if consumed:
                    self.recovery["chaos_kills"] += len(consumed)
                    self.pending_kills[s] = [
                        r for r in self.pending_kills[s]
                        if r > self.rounds_granted[s]]
                self.recovery["respawns"] += 1
                self._teardown(s)
                self._spawn(s)
                try:
                    self._replay(s)
                    return
                except _WorkerDied:
                    continue
        finally:
            self.recovery["recovery_wall_s"] = round(
                self.recovery["recovery_wall_s"]
                + time.monotonic() - started, 6)

    def _replay(self, s: int) -> None:
        """Re-drive a fresh incarnation of shard ``s`` to its pre-death state.

        Replays every logged grant since the shard's last checkpoint, in
        order, verifying each replayed report against the recorded one —
        a worker is a deterministic function of its restored state and
        grant sequence, so any divergence is a real bug, not noise.  A
        checkpoint shipped during replay advances the baseline and trims
        the logs.  The trailing unreported grant, if one was in flight
        when the worker died, is re-sent and left outstanding for the
        main loop.
        """
        index = 0
        while index < len(self.report_log[s]):
            base_round = self.rounds_granted[s] - len(self.grant_log[s])
            self._replay_send(s, self.grant_log[s][index])
            message = self._recv(s)
            self.recovery["replayed_rounds"] += 1
            _tag, _w, node_states, outgoing, checkpoint = message
            expected_states, expected_outgoing = self.report_log[s][index]
            if node_states != expected_states \
                    or outgoing != expected_outgoing:
                raise RuntimeError(
                    f"shard {s}: replayed report for round "
                    f"{base_round + index + 1} diverged from the recorded "
                    f"one — the deterministic-recovery invariant is "
                    f"violated")
            if checkpoint is not None:
                self._accept_checkpoint(s, checkpoint, upto=index + 1)
                index = 0
            else:
                index += 1
        for message in self.grant_log[s][len(self.report_log[s]):]:
            self._replay_send(s, message)
            self.recovery["replayed_rounds"] += 1

    def _replay_send(self, s: int, message: tuple) -> None:
        try:
            self.connections[s].send(message)
        except OSError as exc:
            raise _WorkerDied(s) from exc

    def _accept_checkpoint(self, s: int, blob: bytes, upto: int) -> None:
        """Adopt a shipped checkpoint and trim the logs it supersedes."""
        self.checkpoints[s] = blob
        del self.grant_log[s][:upto]
        del self.report_log[s][:upto]
        self.recovery["checkpoints"] += 1
        self.recovery["checkpoint_bytes"] += len(blob)

    # -- the run --------------------------------------------------------------

    def run(self) -> None:
        network = self.network
        nodes = network.nodes
        # Warm the shared per-program code cache before forking: every
        # worker inherits the lowered functions and compiles nothing.
        warmed: set = set()
        for node in nodes:
            if id(node.program) not in warmed:
                node.interpreter.warm()
                warmed.add(id(node.program))
        # The pre-fork snapshots double as every shard's round-0
        # checkpoint: a worker that dies before its first checkpoint is
        # respawned from these and replayed from the beginning.
        self.snapshots = [node.snapshot() for node in nodes]
        for s in range(self.workers):
            self._spawn(s)
        try:
            self._drive()
            self._collect()
        finally:
            for conn in self.connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            for process in self.processes:
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5.0)
        network.shard_stats = self.shard_stats
        network.recovery_stats = dict(self.recovery)

    def _drive(self) -> None:
        """The grant loop, with supervised waits instead of blocking reads."""
        done = self.done
        states = self.states
        while not all(done):
            granted = False
            for s in range(self.workers):
                lo, hi = self.bounds[s]
                if self.running[s] or all(done[i] for i in range(lo, hi)):
                    continue
                cap = int(min(self._window(s), self.max_end + 1))
                if not any(not done[i]
                           and states[i][0] < min(cap, self.end_of[i])
                           for i in range(lo, hi)):
                    continue
                self.running[s] = True
                self._grant(s, cap)
                granted = True
            active = [s for s in range(self.workers) if self.running[s]]
            if not active:
                if granted:  # pragma: no cover - granted implies running
                    continue
                raise RuntimeError(
                    "sharded kernel stalled: no shard is running or "
                    "grantable — conservative-window invariant violated")
            by_conn = {self.connections[s]: s for s in active}
            ready = _connection_wait(list(by_conn),
                                     timeout=_POLL_INTERVAL_S)
            if not ready:
                for s in active:
                    if not self.processes[s].is_alive() \
                            and not self.connections[s].poll():
                        self._recover(s)
                    elif self._heartbeat_age(s) > self.stall_timeout_s:
                        raise ShardWorkerError(
                            s, self.rounds_granted[s],
                            self._heartbeat_age(s),
                            "stalled — no report within the stall timeout")
                continue
            for conn in ready:
                s = by_conn[conn]
                if self.connections[s] is not conn:
                    # Replaced by a recovery earlier in this batch; the
                    # replacement's traffic arrives on the new pipe.
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._recover(s)
                    continue
                self.last_heard[s] = time.monotonic()
                if message[0] == "error":
                    raise RuntimeError(
                        f"shard worker {message[1]} failed:\n{message[2]}")
                self._absorb_report(message)

    def _absorb_report(self, message: tuple) -> None:
        _tag, w, node_states, outgoing, checkpoint = message
        self.running[w] = False
        self.in_flight[w] = []
        self.respawns_since_report[w] = 0
        if self.checkpoint_every > 0:
            self.report_log[w].append((node_states, outgoing))
            if checkpoint is not None:
                self._accept_checkpoint(w, checkpoint,
                                        upto=len(self.report_log[w]))
        for index, *state in node_states:
            self.states[index] = tuple(state)
            self.done[index] = state[-1]
        for packet in outgoing:
            self.queued[self.shard_of[packet[0]]].append(packet)

    def _finish(self, s: int) -> None:
        """Send (or after a recovery, re-send) the shard's finish message."""
        if self.finish_message[s] is None:
            self.finish_message[s] = ("finish", self.queued[s])
            self.queued[s] = []
        try:
            self.connections[s].send(self.finish_message[s])
        except OSError as exc:
            raise _WorkerDied(s) from exc

    def _collect(self) -> None:
        """Finish every shard and merge the finals, under supervision."""
        network = self.network
        nodes = network.nodes
        for s in range(self.workers):
            try:
                self._finish(s)
            except _WorkerDied:
                self._recover(s)
                self._finish(s)
        for s in range(self.workers):
            while True:
                try:
                    message = self._recv(s)
                    break
                except _WorkerDied:
                    self._recover(s)
                    self._finish(s)
            _tag, w, finals, deliveries, delivered, lost, stats = message
            for index, snap in finals:
                node = nodes[index]
                node.restore(snap,
                             resolve_event=network.delivery_resolver(node))
            network.deliveries.extend(deliveries)
            network.delivered_packets += delivered
            network.lost_packets += lost
            self.shard_stats[w] = stats


def run_sharded(network: "Network", seconds: float, workers: int, *,
                chaos: Optional[ChaosPolicy] = None,
                checkpoint_every: Optional[int] = None,
                stall_timeout_s: Optional[float] = None) -> None:
    """Run ``network`` partitioned across ``workers`` forked processes.

    Called by :meth:`Network.run` for ``workers > 1`` (which validates the
    worker count first).  On return the coordinator's own nodes hold the
    final simulation state — restored from the workers' snapshots — and
    ``network.deliveries``/packet counters/``shard_stats``/
    ``recovery_stats`` are merged, so callers cannot tell the run apart
    from a single-process one — even when ``chaos`` killed workers along
    the way, thanks to checkpointed respawn and deterministic replay.

    ``checkpoint_every`` and ``stall_timeout_s`` default to the
    ``REPRO_SHARD_CHECKPOINT_EVERY`` / ``REPRO_SHARD_STALL_TIMEOUT_S``
    environment variables, then to :data:`DEFAULT_CHECKPOINT_EVERY` /
    :data:`DEFAULT_STALL_TIMEOUT_S`.
    """
    _Coordinator(network, seconds, workers, chaos=chaos,
                 checkpoint_every=checkpoint_every,
                 stall_timeout_s=stall_timeout_s).run()
