"""The sharded multi-process network kernel.

:func:`run_sharded` partitions a :class:`~repro.avrora.network.Network`'s
nodes into contiguous shards, forks one worker process per shard, and has
each worker run the *existing* lockstep scheduler over its own nodes while
a coordinator exchanges radio packets and horizon grants over
``multiprocessing`` pipes.  The result — delivery log, per-node statement
counts, duty cycles — is bit-identical to the single-process kernel
(``Network.run(..., workers=1)``); see ``ARCHITECTURE.md`` ("The sharded
network kernel") for the full determinism argument.

The conservative-window protocol in one paragraph: a worker may run its
nodes up to a *window* ``W(s)`` no external node can beat.  For an
external node ``j`` whose earliest cross-node effect is ``effect(j)``
(transmission in flight, or next possible action plus minimum air time
and link latency), any influence on shard ``s`` needs at least
``D(j, s)`` radio hops, and every hop past the first costs at least one
more air time plus latency, so

    ``W(s) = min over external j of effect(j) + (D(j, s) - 1) * margin``

with ``margin = air_min + lat_min`` and ``D`` the BFS hop distance on the
channel topology.  Packets a worker addresses to a remote shard are routed
through the coordinator and injected with the destination's next grant;
the same bound proves they always arrive in the destination's future.
Grants are asynchronous — each shard is re-granted the moment its window
allows progress, with no global barrier.

Workers are forked *after* the coordinator has warmed the per-program
compiled code cache, so every worker inherits the lowered program for
free and compiles nothing.  Shard state crosses the process boundary only
through ``Node.snapshot()``/``restore()`` (spawn-side) and plain tuples
(the window protocol).
"""

from __future__ import annotations

import math
import multiprocessing
import time
import traceback
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import TYPE_CHECKING

from repro.avrora.devices import Radio

if TYPE_CHECKING:  # pragma: no cover
    from repro.avrora.network import Network
    from repro.avrora.node import Node


def _partition(count: int, workers: int) -> list[tuple[int, int]]:
    """Split ``count`` node positions into ``workers`` contiguous shards."""
    base, extra = divmod(count, workers)
    bounds = []
    lo = 0
    for index in range(workers):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _hop_distances(channel, count: int) -> list[list]:
    """Directed BFS hop distances between node positions (None = unreachable)."""
    table = []
    for src in range(count):
        dist: list = [None] * count
        dist[src] = 0
        frontier = deque([src])
        while frontier:
            here = frontier.popleft()
            for there in channel.neighbors(here, count):
                if dist[there] is None:
                    dist[there] = dist[here] + 1
                    frontier.append(there)
        table.append(dist)
    return table


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _ShardWorker:
    """One forked process running the lockstep scheduler over one shard."""

    def __init__(self, worker_index: int, conn, network: "Network",
                 bounds: list[tuple[int, int]], snapshots: list[dict],
                 seconds: float, lat_min: int, air_min: int):
        self.worker_index = worker_index
        self.conn = conn
        self.network = network
        self.bounds = bounds
        self.snapshots = snapshots
        self.seconds = seconds
        self.lat_min = lat_min
        self.air_min = air_min
        self.margin = lat_min + air_min
        lo, hi = bounds[worker_index]
        self.local = list(range(lo, hi))
        self.local_set = frozenset(self.local)
        self.done = {index: False for index in self.local}
        self._cap = 0
        self._outgoing: list[tuple] = []
        self.packets_out = 0

    def run(self) -> None:
        network = self.network
        nodes = network.nodes
        base_delivered = network.delivered_packets
        base_lost = network.lost_packets
        base_deliveries = len(network.deliveries)
        for index in self.local:
            node = nodes[index]
            node.radio.on_transmit = \
                lambda payload, sender=node, src=index: \
                self._transmit(sender, src, payload)
            node.restore(self.snapshots[index],
                         resolve_event=network.delivery_resolver(node))
            node.begin_run(self.seconds)
        rounds = 0
        packets_in = 0
        wait_s = 0.0
        started = time.perf_counter()
        try:
            while True:
                before = time.perf_counter()
                message = self.conn.recv()
                wait_s += time.perf_counter() - before
                if message[0] == "finish":
                    self._insert(message[1])
                    break
                _tag, window, packets = message
                rounds += 1
                packets_in += len(packets)
                self._insert(packets)
                self._cap = window
                self._outgoing = []
                self._run_window()
                self.packets_out += len(self._outgoing)
                self.conn.send(("report", self.worker_index,
                                self._states(), self._outgoing))
        finally:
            for index in self.local:
                nodes[index].abort_run()
        stats = {
            "worker": self.worker_index,
            "nodes": list(self.bounds[self.worker_index]),
            "rounds": rounds,
            "packets_in": packets_in,
            "packets_out": self.packets_out,
            "sync_wait_s": round(wait_s, 6),
            "wall_s": round(time.perf_counter() - started, 6),
        }
        finals = [(index, nodes[index].snapshot()) for index in self.local]
        self.conn.send((
            "final", self.worker_index, finals,
            network.deliveries[base_deliveries:],
            network.delivered_packets - base_delivered,
            network.lost_packets - base_lost,
            stats))

    # -- packet routing -------------------------------------------------------

    def _insert(self, packets: list[tuple]) -> None:
        """Schedule coordinator-routed arrivals on their local receivers."""
        network = self.network
        for dst, when, sender_id, sent_at, payload in packets:
            receiver = network.nodes[dst]
            # A packet below the receiver's *horizon* is a protocol
            # violation.  One between the horizon and the (possibly
            # overshot — execution pauses at statement granularity) clock
            # is legal: the receiver parked before opening its boundary
            # event batch, so the arrival still joins that batch.
            if (not self.done[dst] and when < receiver.time_cycles
                    and when < receiver.pause_cycles):
                raise RuntimeError(
                    f"shard {self.worker_index}: packet for node "
                    f"{receiver.node_id} arrives at {when} but the node's "
                    f"horizon was {receiver.pause_cycles} (clock "
                    f"{receiver.time_cycles}) — window protocol violation")
            receiver.schedule_delivery(
                when, sent_at, sender_id,
                network._delivery(sender_id, receiver, payload, sent_at))

    def _transmit(self, sender: "Node", src: int, payload: bytes) -> None:
        """Shard-local replacement for ``Network._transmit``.

        Local neighbours are scheduled directly — the identical code path
        the single-process kernel uses — while packets for remote shards
        are buffered for the coordinator, and the shard window is pulled
        in so no local node outruns the earliest possible remote reply.
        """
        network = self.network
        sent_at = sender.time_cycles
        earliest_local = None
        for dst in network.channel.neighbors(src, len(network.nodes)):
            receiver = network.nodes[dst]
            if receiver is sender:
                continue
            sequence = network._pair_seq.get((src, dst), 0)
            network._pair_seq[(src, dst)] = sequence + 1
            dropped, latency_us = network.channel.packet_fate(
                src, dst, sequence)
            if dropped:
                network.lost_packets += 1
                continue
            # The payload-corruption hook applies here exactly as in
            # ``Network._transmit``: the corruptor is a pure function of
            # (src, dst, sequence, payload), so local and boundary-routed
            # deliveries of the same packet corrupt identically.
            delivered = payload
            if network.corruptor is not None:
                mutated = network.corruptor(src, dst, sequence, payload)
                if mutated is not None:
                    delivered = mutated
            when = sent_at + max(1, sender.cycles_for_us(latency_us))
            if dst in self.local_set:
                receiver.schedule_delivery(
                    when, sent_at, sender.node_id,
                    network._delivery(sender.node_id, receiver, delivered,
                                      sent_at))
                if earliest_local is None or when < earliest_local:
                    earliest_local = when
            else:
                self._outgoing.append(
                    (dst, when, sender.node_id, sent_at, delivered))
                reply = when + self.margin
                if reply < self._cap:
                    self._cap = reply
        bound = self._cap
        if earliest_local is not None:
            bound = min(bound, earliest_local + self.margin)
        sender.shrink_pause(int(bound))

    # -- the window run -------------------------------------------------------

    def _run_window(self) -> None:
        """Run the shard's nodes lockstep until every one reaches the cap."""
        nodes = self.network.nodes
        while True:
            runnable = [index for index in self.local
                        if not self.done[index]
                        and nodes[index].time_cycles < self._cap]
            if not runnable:
                return
            current_index = min(
                runnable, key=lambda i: (nodes[i].time_cycles, i))
            current = nodes[current_index]
            horizon = min(current.end_cycles, self._cap)
            peers = [index for index in self.local
                     if index != current_index and not self.done[index]]
            if peers:
                bound = min(self._earliest_effect(nodes[index])
                            for index in peers)
                horizon = min(horizon, bound)
            status = current.run_until(int(horizon))
            if status != "paused":
                self.done[current_index] = True

    def _earliest_effect(self, peer: "Node") -> float:
        """Mirror of ``Network._earliest_effect`` for shard-local peers."""
        bound = math.inf
        radio = peer.radio
        if radio.transmitting:
            bound = radio.tx_done_at + self.lat_min
        action = peer.next_action_cycles()
        if action is not None:
            bound = min(bound, action + self.air_min + self.lat_min)
        return bound

    def _states(self) -> list[tuple]:
        """Per-node lookahead state for the coordinator's window algebra."""
        out = []
        for index in self.local:
            node = self.network.nodes[index]
            radio = node.radio
            out.append((index, node.time_cycles, node.next_action_cycles(),
                        radio.transmitting, radio.tx_done_at,
                        self.done[index]))
        return out


def _worker_main(worker_index: int, conn, network: "Network",
                 bounds: list[tuple[int, int]], snapshots: list[dict],
                 seconds: float, lat_min: int, air_min: int) -> None:
    worker = _ShardWorker(worker_index, conn, network, bounds, snapshots,
                          seconds, lat_min, air_min)
    try:
        worker.run()
    except BaseException:
        try:
            conn.send(("error", worker_index, traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - pipe torn down
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


def run_sharded(network: "Network", seconds: float, workers: int) -> None:
    """Run ``network`` partitioned across ``workers`` forked processes.

    Called by :meth:`Network.run` for ``workers > 1`` (which validates the
    worker count first).  On return the coordinator's own nodes hold the
    final simulation state — restored from the workers' snapshots — and
    ``network.deliveries``/packet counters/``shard_stats`` are merged, so
    callers cannot tell the run apart from a single-process one.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ValueError(
            "parallel config: workers > 1 requires the 'fork' start method "
            "(POSIX); this platform does not support it")
    context = multiprocessing.get_context("fork")
    nodes = network.nodes
    count = len(nodes)
    channel = network.channel
    lat_min = max(1, min(node.cycles_for_us(channel.latency_us)
                         for node in nodes))
    air_min = max(1, min(node.cycles_for_us(Radio.US_PER_BYTE)
                         for node in nodes))
    margin = lat_min + air_min
    bounds = _partition(count, workers)
    shard_of = [s for s, (lo, hi) in enumerate(bounds)
                for _ in range(lo, hi)]
    hops = _hop_distances(channel, count)
    # Distance from each node to each shard: the fewest hops to any member.
    shard_dist: list[list] = []
    for j in range(count):
        row = []
        for lo, hi in bounds:
            best = None
            for i in range(lo, hi):
                if i == j:
                    continue
                d = hops[j][i]
                if d is not None and (best is None or d < best):
                    best = d
            row.append(best)
        shard_dist.append(row)
    end_of = [node.time_cycles + int(seconds * node.clock_hz)
              for node in nodes]
    max_end = max(end_of)

    # Warm the shared per-program code cache before forking: every worker
    # inherits the lowered functions and compiles nothing.
    warmed: set = set()
    for node in nodes:
        if id(node.program) not in warmed:
            node.interpreter.warm()
            warmed.add(id(node.program))
    snapshots = [node.snapshot() for node in nodes]

    connections = []
    processes = []
    for w in range(workers):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_worker_main,
            args=(w, child_conn, network, bounds, snapshots, seconds,
                  lat_min, air_min),
            daemon=True, name=f"avrora-shard-{w}")
        process.start()
        child_conn.close()
        connections.append(parent_conn)
        processes.append(process)

    # Last-reported lookahead state per node: (time, action, transmitting,
    # tx_done_at, done).  Fresh nodes can act immediately.
    states: list[tuple] = [(node.time_cycles, node.time_cycles, False, 0,
                            False) for node in nodes]
    done = [False] * count
    queued: list[list] = [[] for _ in range(workers)]
    in_flight: list[list] = [[] for _ in range(workers)]
    running = [False] * workers

    def effect(j: int) -> float:
        """Earliest instant node ``j`` could land a packet on a neighbour."""
        _time, action, transmitting, tx_done, node_done = states[j]
        if node_done:
            return math.inf
        bound = math.inf
        if transmitting:
            bound = tx_done + lat_min
        if action is not None:
            bound = min(bound, action + margin)
        # Undelivered arrivals can wake the node: its reaction lands one
        # margin after the arrival.  Pending until the shard's next report
        # proves the packet reached the node's queue.
        for packets in (queued[shard_of[j]], in_flight[shard_of[j]]):
            for dst, when, _sender, _sent, _payload in packets:
                if dst == j:
                    bound = min(bound, when + margin)
        return bound

    def window(s: int) -> float:
        lo, hi = bounds[s]
        bound = math.inf
        for j in range(count):
            if lo <= j < hi:
                continue
            e = effect(j)
            if e is math.inf:
                continue
            d = shard_dist[j][s]
            if d is None:
                continue
            bound = min(bound, e + (d - 1) * margin)
        return bound

    try:
        while not all(done):
            granted = False
            for s in range(workers):
                lo, hi = bounds[s]
                if running[s] or all(done[i] for i in range(lo, hi)):
                    continue
                cap = int(min(window(s), max_end + 1))
                if not any(not done[i]
                           and states[i][0] < min(cap, end_of[i])
                           for i in range(lo, hi)):
                    continue
                connections[s].send(("run", cap, queued[s]))
                in_flight[s].extend(queued[s])
                queued[s] = []
                running[s] = True
                granted = True
            active = [connections[s] for s in range(workers) if running[s]]
            if not active:
                if granted:  # pragma: no cover - granted implies running
                    continue
                raise RuntimeError(
                    "sharded kernel stalled: no shard is running or "
                    "grantable — conservative-window invariant violated")
            for conn in _connection_wait(active):
                message = conn.recv()
                if message[0] == "error":
                    raise RuntimeError(
                        f"shard worker {message[1]} failed:\n{message[2]}")
                _tag, w, node_states, outgoing = message
                running[w] = False
                in_flight[w] = []
                for index, *state in node_states:
                    states[index] = tuple(state)
                    done[index] = state[-1]
                for packet in outgoing:
                    queued[shard_of[packet[0]]].append(packet)

        shard_stats: list = [None] * workers
        for s in range(workers):
            connections[s].send(("finish", queued[s]))
            queued[s] = []
        for s in range(workers):
            message = connections[s].recv()
            if message[0] == "error":
                raise RuntimeError(
                    f"shard worker {message[1]} failed:\n{message[2]}")
            _tag, w, finals, deliveries, delivered, lost, stats = message
            for index, snap in finals:
                node = nodes[index]
                node.restore(snap,
                             resolve_event=network.delivery_resolver(node))
            network.deliveries.extend(deliveries)
            network.delivered_packets += delivered
            network.lost_packets += lost
            shard_stats[w] = stats
        network.shard_stats = shard_stats
    finally:
        for conn in connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5.0)
