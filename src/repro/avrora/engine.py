"""Compile-to-closures execution engine for the simulator.

The tree-walking interpreter re-derives everything per executed statement:
it re-dispatches on AST node types, re-reads per-function analyses, keeps
frames in dicts, and models ``return``/``break``/``continue`` with Python
exceptions.  This module applies the translate-once/run-many principle of
dynamic binary translators to the simulator: each :class:`FunctionDef` is
lowered **once** into a flat stream of Python closures ("compiled ops"),
and executing the function is a tight ``pc = ops[pc](frame)`` loop.

The lowering pass resolves at compile time everything the tree-walker
resolves per statement:

* **slot-indexed frames** — every parameter and local gets an integer slot
  in a plain list; no per-call dict, no hashing;
* **precomputed costs** — each statement's cycle cost (statement +
  expression nodes) is folded into its op;
* **structured jumps** — ``if``/loops/``break``/``continue``/``return``
  become next-index threading, not signal exceptions;
* **precomputed analyses** — address-taken sets, struct field offsets,
  element sizes, integer wrap masks are all baked into the closures;
* **explicit frames** — the engine is a frame-stack machine: statement-
  level calls (``f(x);``, ``y = f(x);``) are CALL ops that push a
  :class:`CompiledFrame`, and returns pop it, so call chains through the
  flattened TinyOS dispatch layers do not consume Python stack.  Only
  calls nested inside larger expressions recurse (into a fresh machine
  run).  The explicit stack is also what makes execution state inspectable
  and, together with the node's poll-point pause gate, resumable
  (see ``Node.run_until``).

Two mechanisms push past per-statement dispatch:

* **superblocks** — maximal straight-line runs of simple statements fuse
  into a single op that charges the run's precomputed cycle total once,
  bumps the statement counter once, and executes the bare work closures
  back-to-back.  Loops whose body is entirely fusable additionally get a
  **loop superblock** that runs whole iterations in a burst.  Entry is
  gated by a **poll-window guard**: if the node's next queued event (which
  includes the lockstep kernel's horizon sentinels), a pending interrupt,
  or the end of simulated time could land inside the block's cycle window,
  the superblock falls back to the unfused per-statement ops — so every
  event, interrupt delivery and pause lands at exactly the cycle it would
  without fusion.  ``REPRO_AVRORA_SUPERBLOCKS=0`` disables fusion.
* **traces** — superblocks extend *through* calls to leaf functions
  (bodies with no further calls, no address-taken locals, no loops):
  the callee's work closures are spliced inline under the caller's
  poll-window guard, with the callee's frame slots flattened into extra
  slots of the caller's frame, so one guard and one accounting
  write-back cover the whole trace including every inlined call.
  Because an inlined ``if`` may execute either branch, callee cycle and
  statement accounting is *dynamic*: the guard checks the window
  against the worst case, the inlined units accumulate the actually
  executed cost, and a mid-trace fault repairs the accounting to
  exactly what the per-statement path would have charged.
  ``REPRO_AVRORA_TRACES=0`` disables trace formation (plain fusion
  stays on).
* **a shared code cache** — the node-independent front end of lowering
  (frame layout, per-statement cycle costs, fusability, parameter plans)
  is computed once per program in a :class:`CodeCache` hanging off the
  program's analysis cache (and invalidated with it), so every node of an
  N-node :class:`~repro.avrora.network.Network` shares one front-end
  lowering per function.  Only the final closure binding — which bakes
  node-local state (memory objects, event queue, clock) into the ops for
  speed — remains per node.  Plans also round-trip through a *portable*
  form (``CodeCache.export_portable`` / ``hydrate_portable``) keyed by
  statement order instead of process-local node ids, which the
  disk-backed :class:`~repro.avrora.codestore.PlanStore` persists across
  runs so a warm start performs zero lowerings.

Semantics are kept **byte-identical** to the tree-walker (cycle counts,
interrupt delivery points, check failures, radio traffic): ops charge the
same costs in the same order and poll the node at exactly the same points
(after every statement, by default).  The differential test in
``tests/avrora/test_engine_differential.py`` enforces this on every
application in the paper's figure suite, with fusion on and off.
"""

from __future__ import annotations

import operator
import os
from typing import Callable, Optional, TYPE_CHECKING

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.visitor import walk_expression
from repro.avrora.memory import (
    MemoryError_,
    MemoryObject,
    MemorySystem,
    Pointer,
    RuntimeValue,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.avrora.node import Node


def _simulation_finished():
    """The node module's end-of-simulation signal (lazy to avoid a cycle)."""
    from repro.avrora.node import _SimulationFinished

    return _SimulationFinished


class _Unset:
    """Sentinel for a frame slot whose declaration has not executed yet."""

    __repr__ = lambda self: "<unset>"  # noqa: E731


_UNSET = _Unset()

#: Slot 0 of every frame holds the (eventual) return value.
_RET = 0

#: Sentinel "next op index" returned by CALL ops after pushing a callee
#: frame onto the engine's explicit stack.  It compares greater than any
#: real op index, so the machine's hot loop needs no extra test: the inner
#: ``while pc < end`` exits, and the dispatcher re-enters with the new top
#: frame.
_CALL = 1 << 30

#: Closure signature of one compiled op: frame -> next op index.
Op = Callable[[list], int]
#: Closure signature of one compiled expression: frame -> runtime value.
ExprFn = Callable[[list], RuntimeValue]

#: Iterations a loop superblock runs per burst when nothing bounds the
#: poll window (no queued event, no end of simulated time).  Purely a
#: flush granularity: accounting is written back after every burst.
_BURST_CHUNK = 1 << 16

#: Statement kinds eligible for superblock fusion (when call-free): their
#: ops are pure frame/memory work with no control transfer, no poll
#: obligations of their own, and no cycle charges beyond the statement's
#: precomputed cost.
_FUSABLE_KINDS = (ast.Assign, ast.ExprStmt, ast.VarDecl, ast.Nop)


#: Version of the lowering front end, stamped into persisted plan
#: artifacts (see :mod:`repro.avrora.codestore`).  Bump whenever
#: :class:`FunctionPlan`'s fields or the meaning of its facts change, so
#: stale on-disk plans from an older lowering are rejected instead of
#: silently mis-executing.
LOWERING_VERSION = 2


def _superblocks_enabled() -> bool:
    """Read the fusion switch (``REPRO_AVRORA_SUPERBLOCKS``, default on)."""
    value = os.environ.get("REPRO_AVRORA_SUPERBLOCKS", "1").strip().lower()
    return value not in ("0", "false", "off", "no")


def _traces_enabled() -> bool:
    """Read the trace-inlining switch (``REPRO_AVRORA_TRACES``, default on)."""
    value = os.environ.get("REPRO_AVRORA_TRACES", "1").strip().lower()
    return value not in ("0", "false", "off", "no")


class _Label:
    """A forward-referenced op index, patched when the target is emitted."""

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index: Optional[int] = None


class _LoopCtx:
    """Compile-time context of the innermost enclosing loop."""

    __slots__ = ("break_label", "continue_label", "atomic_depth")

    def __init__(self, break_label: _Label, continue_label: _Label,
                 atomic_depth: int):
        self.break_label = break_label
        self.continue_label = continue_label
        self.atomic_depth = atomic_depth


# ---------------------------------------------------------------------------
# Runtime helpers shared by the generated closures
# ---------------------------------------------------------------------------


def _as_pointer(value: RuntimeValue) -> Pointer:
    if isinstance(value, Pointer):
        return value
    if isinstance(value, int) and value == 0:
        raise MemoryError_("null pointer dereference")
    raise MemoryError_(f"dereference of non-pointer value {value!r}")


def _compare_rt(op: str, left: RuntimeValue, right: RuntimeValue) -> int:
    """Comparison slow path; mirrors the tree-walker's ``_compare``."""
    if isinstance(left, Pointer) or isinstance(right, Pointer):
        if isinstance(left, Pointer) and isinstance(right, Pointer):
            equal = left.obj is right.obj and left.offset == right.offset
        else:
            equal = False
        if op == "==":
            return 1 if equal else 0
        if op == "!=":
            return 0 if equal else 1
        if isinstance(left, Pointer) and isinstance(right, Pointer) and \
                left.obj is right.obj:
            left, right = left.offset, right.offset
        else:
            return 0
    left_int, right_int = int(left), int(right)
    results = {
        "==": left_int == right_int,
        "!=": left_int != right_int,
        "<": left_int < right_int,
        "<=": left_int <= right_int,
        ">": left_int > right_int,
        ">=": left_int >= right_int,
    }
    return 1 if results[op] else 0


def _div_rt(left: int, right: int) -> int:
    if right == 0:
        return 0
    return int(left / right)


def _mod_rt(left: int, right: int) -> int:
    if right == 0:
        return 0
    return int(left - int(left / right) * right)


def _shl_rt(left: int, right: int) -> int:
    return left << (right & 31)


def _shr_rt(left: int, right: int) -> int:
    return left >> (right & 31)


#: Integer arithmetic implementations, mirroring ``_int_arithmetic``.
_INT_OPS: dict[str, Callable[[int, int], int]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _div_rt,
    "%": _mod_rt,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "<<": _shl_rt,
    ">>": _shr_rt,
}

_COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _make_wrap(ctype: ty.CType) -> Callable[[int], int]:
    """A closure implementing ``ty.wrap_to(ctype, value)``."""
    if isinstance(ctype, ty.IntType):
        bits = ctype.bits
        mask = (1 << bits) - 1
        if not ctype.signed:
            return lambda v, _m=mask: v & _m

        maxv = (1 << (bits - 1)) - 1
        span = 1 << bits

        def wrap_signed(v: int, _m: int = mask, _x: int = maxv,
                        _s: int = span) -> int:
            v &= _m
            return v - _s if v > _x else v

        return wrap_signed
    if isinstance(ctype, ty.BoolType):
        return lambda v: 1 if v else 0
    if isinstance(ctype, ty.CharType):
        def wrap_char(v: int) -> int:
            v &= 0xFF
            return v - 0x100 if v > 0x7F else v

        return wrap_char
    if isinstance(ctype, ty.PointerType):
        return lambda v: v & 0xFFFF
    return lambda v, _c=ctype: ty.wrap_to(_c, v)


def _elem_size(ctype: Optional[ty.CType], pointer_size: int) -> int:
    """Pointed-to element size used for pointer arithmetic scaling."""
    if ctype is None:
        return 1
    decayed = ctype.decay()
    if isinstance(decayed, ty.PointerType):
        return decayed.target.sizeof(pointer_size) or 1
    return 1


def _pointer_arith(op: str, left: RuntimeValue, right: RuntimeValue,
                   left_elem: int, right_elem: int, diff_elem: int
                   ) -> RuntimeValue:
    """Pointer arithmetic slow path; mirrors ``_pointer_arithmetic``."""
    if isinstance(left, Pointer) and isinstance(right, Pointer):
        if op == "-" and left.obj is right.obj:
            return (left.offset - right.offset) // diff_elem
        return 0
    if isinstance(left, Pointer):
        pointer, integer, elem = left, right, left_elem
    else:
        pointer, integer, elem = right, left, right_elem
    delta = int(integer) * elem
    if op == "-":
        delta = -delta
    return Pointer(pointer.obj, pointer.offset + delta)


# ---------------------------------------------------------------------------
# The shared code cache (node-independent lowering front end)
# ---------------------------------------------------------------------------


class FunctionPlan:
    """The node-independent half of one function's lowering.

    Everything here is derived purely from the AST, the program's analysis
    cache and the (platform-determined) cost model — no node state — so one
    plan serves every engine simulating the program: frame layout, parameter
    plans, per-statement cycle costs, and the superblock fusability facts.
    Plans are shared read-only; see :class:`CodeCache`.
    """

    __slots__ = ("name", "slots", "params", "default_return", "stmt_costs",
                 "fusable", "loop_conds", "call_sites", "leaf_cost")

    def __init__(self, name: str, slots: dict[str, int], params: tuple,
                 default_return: Optional[int], stmt_costs: dict[int, int],
                 fusable: frozenset[int], loop_conds: frozenset[int],
                 call_sites: dict[int, tuple], leaf_cost: Optional[int]):
        self.name = name
        #: Frame slot of every local / stray identifier (slot 0 = return).
        self.slots = slots
        #: Per-parameter plan: (slot, taken, ctype, size, storage_name).
        self.params = params
        self.default_return = default_return
        #: ``stmt.node_id`` -> precomputed cycle cost (statement + exprs).
        self.stmt_costs = stmt_costs
        #: ``node_id`` of every statement eligible for superblock fusion.
        self.fusable = fusable
        #: ``node_id`` of every While/For/If whose condition is call-free
        #: (or absent) — the control-flow precondition for loop
        #: superblocks (If matters for rotated loops' if-break guards).
        self.loop_conds = loop_conds
        #: ``node_id`` -> callee names, for otherwise-fusable statements
        #: whose every call targets a non-builtin program function with
        #: matching arity — the trace-inlining candidates.  Whether each
        #: callee is actually inlinable (``leaf_cost`` below) is the
        #: *callee's* plan's fact, checked at compile time.
        self.call_sites = call_sites
        #: Worst-case cycles one invocation of this function charges when
        #: spliced inline as a trace leaf (body statements only, call
        #: overhead excluded), or None when the body is not leaf-inlinable
        #: (contains calls, loops, address-taken locals, non-trailing
        #: returns, or any non-fusable statement kind).
        self.leaf_cost = leaf_cost


def _build_plan(func: ast.FunctionDef, program: Program,
                costs) -> FunctionPlan:
    """Run the lowering front end for one function (AST walks live here)."""
    cache = program.analysis()
    pointer_size = costs.platform.pointer_bytes
    locals_ = cache.local_types(func)
    taken = cache.address_taken_locals(func)
    globals_ = program.globals

    # Frame layout: slot 0 is the return value; every local name (and any
    # stray identifier that is neither local nor global, to mirror the
    # tree-walker's scratch-frame semantics) gets a slot.
    slots: dict[str, int] = {}
    for name in locals_:
        slots[name] = 1 + len(slots)

    from repro.cminor.visitor import walk_statements

    stmt_costs: dict[int, int] = {}
    fusable: set[int] = set()
    loop_conds: set[int] = set()
    call_free: set[int] = set()
    call_sites: dict[int, tuple] = {}
    stray: list[str] = []
    stray_seen: set[str] = set()
    builtins = program.builtins
    for stmt in walk_statements(func.body):
        cycles = costs.stmt_cycles(stmt)
        calls: list[ast.Call] = []
        for expr in cache.statement_expressions(stmt, func.name):
            for node in walk_expression(expr):
                cycles += costs.expr_cycles(node)
                if isinstance(node, ast.Call):
                    calls.append(node)
                elif isinstance(node, ast.Identifier) and \
                        node.name not in locals_ and \
                        node.name not in globals_ and \
                        node.name not in stray_seen:
                    stray_seen.add(node.name)
                    stray.append(node.name)
        stmt_costs[stmt.node_id] = max(cycles, 1)
        if not calls:
            call_free.add(stmt.node_id)
            if isinstance(stmt, _FUSABLE_KINDS):
                fusable.add(stmt.node_id)
        elif isinstance(stmt, _FUSABLE_KINDS):
            # Trace candidate: every call must target a non-builtin
            # program function with matching arity (builtins can
            # schedule events or fail checks mid-statement, and an
            # arity mismatch must raise exactly where the per-statement
            # path raises it).
            names = []
            for call in calls:
                callee = None if call.callee in builtins else \
                    program.lookup_function(call.callee)
                if callee is None or len(call.args) != len(callee.params):
                    names = None
                    break
                names.append(call.callee)
            if names:
                call_sites[stmt.node_id] = tuple(names)
        if isinstance(stmt, (ast.While, ast.For, ast.If)):
            cond = stmt.cond
            if cond is None or not any(
                    isinstance(node, ast.Call)
                    for node in walk_expression(cond)):
                loop_conds.add(stmt.node_id)
    for name in stray:
        if name not in slots:
            slots[name] = 1 + len(slots)

    params = []
    for param in func.params:
        params.append((
            slots[param.name],
            param.name in taken,
            param.ctype,
            param.ctype.sizeof(pointer_size),
            f"{func.name}.{param.name}",
        ))
    default_return = 0 if not func.return_type.is_void() else None
    leaf_cost = _leaf_cost(func, stmt_costs, call_free, taken)
    return FunctionPlan(func.name, slots, tuple(params), default_return,
                        stmt_costs, frozenset(fusable),
                        frozenset(loop_conds), call_sites, leaf_cost)


def _leaf_cost(func: ast.FunctionDef, stmt_costs: dict[int, int],
               call_free: set[int], taken) -> Optional[int]:
    """Worst-case body cycles of a leaf-inlinable function, or None.

    A function is a *trace leaf* when splicing its body inline under a
    caller's poll-window guard is sound: no address-taken locals (their
    memory objects would outlive the flattened slots), and a body made
    only of call-free fusable statements and call-free ``if``s whose
    branches are the same shape, plus one optional *trailing* return.
    Loops, atomic sections, break/continue and mid-body returns all
    disqualify — their control flow cannot run as a straight unit list.
    The returned bound takes the more expensive branch of every ``if``,
    so the caller's guard window covers any dynamic path.
    """
    if taken:
        return None

    def block_max(stmts) -> Optional[int]:
        total = 0
        for s in stmts:
            if s.node_id not in call_free:
                return None
            if isinstance(s, _FUSABLE_KINDS):
                total += stmt_costs[s.node_id]
            elif isinstance(s, ast.If):
                then_max = block_max(s.then_body.stmts)
                if then_max is None:
                    return None
                else_max = 0
                if s.else_body is not None:
                    else_max = block_max(s.else_body.stmts)
                    if else_max is None:
                        return None
                total += stmt_costs[s.node_id] + max(then_max, else_max)
            else:
                return None
        return total

    stmts = func.body.stmts
    ret: Optional[ast.Return] = None
    if stmts and isinstance(stmts[-1], ast.Return):
        ret = stmts[-1]
        if ret.node_id not in call_free:
            return None
        stmts = stmts[:-1]
    cost = block_max(stmts)
    if cost is None:
        return None
    if ret is not None:
        cost += stmt_costs[ret.node_id]
    return cost


class CodeCache:
    """Per-program cache of :class:`FunctionPlan` shared by every node.

    Lives on the program's :class:`~repro.cminor.analysis_cache.\
ProgramAnalysisCache` (see :meth:`code_cache
    <repro.cminor.analysis_cache.ProgramAnalysisCache.code_cache>`) and is
    invalidated with it, so passes that mutate function bodies drop the
    stale plans automatically.  ``lowerings`` counts front-end lowerings
    actually performed — in an N-node network it stays at one per function,
    while ``plan_hits`` counts the per-node compilations served by an
    existing plan (the compile-once evidence the network benchmark
    records).
    """

    __slots__ = ("plans", "lowerings", "plan_hits", "disk_loads", "costs")

    def __init__(self) -> None:
        self.plans: dict[str, FunctionPlan] = {}
        self.lowerings = 0
        self.plan_hits = 0
        #: Plans hydrated from a persistent store instead of lowered here.
        self.disk_loads = 0
        #: The cost model the cached plans were costed with.  Plans bake
        #: per-statement cycle costs, so a node carrying a *different*
        #: model (``Node(costs=...)`` accepts arbitrary ones, e.g. for a
        #: sensitivity study) must lower privately instead of sharing;
        #: CostModel is a frozen dataclass, so equality is by value.
        self.costs = None

    def plan_for(self, func: ast.FunctionDef, program: Program,
                 costs) -> FunctionPlan:
        if self.costs is None:
            self.costs = costs
        elif self.costs != costs:
            return _build_plan(func, program, costs)
        plan = self.plans.get(func.name)
        if plan is None:
            plan = _build_plan(func, program, costs)
            self.plans[func.name] = plan
            self.lowerings += 1
        else:
            self.plan_hits += 1
        return plan

    def invalidate(self, func_name: Optional[str] = None) -> None:
        """Drop plans after an AST mutation (mirrors the analysis cache)."""
        if func_name is None:
            self.plans.clear()
        else:
            self.plans.pop(func_name, None)

    def lower_all(self, program: Program, costs) -> int:
        """Lower every program function now; returns the plan count.

        Used before :meth:`export_portable` so a persisted artifact
        covers the whole program — a warm start then performs zero
        lowerings no matter which functions the simulation reaches.
        """
        for name, func in program.functions.items():
            if name not in self.plans:
                self.plan_for(func, program, costs)
        return len(self.plans)

    def export_portable(self, program: Program) -> Optional[dict]:
        """Serialize the cached plans into a process-independent form.

        ``node_id``s are assigned per process, so the portable form keys
        every per-statement fact by the statement's *index* in
        ``walk_statements`` order instead; :meth:`hydrate_portable`
        re-walks the (identical) AST to bind them back.  Returns None
        when nothing has been lowered yet.
        """
        if not self.plans:
            return None
        from repro.cminor.visitor import walk_statements

        functions: dict[str, dict] = {}
        for name, plan in self.plans.items():
            func = program.lookup_function(name)
            if func is None:  # pragma: no cover - plans track functions
                continue
            order = [s.node_id for s in walk_statements(func.body)]
            index_of = {nid: i for i, nid in enumerate(order)}
            functions[name] = {
                "slots": dict(plan.slots),
                "params": tuple(plan.params),
                "default_return": plan.default_return,
                "stmt_costs": [plan.stmt_costs[nid] for nid in order],
                "fusable": sorted(index_of[nid] for nid in plan.fusable),
                "loop_conds": sorted(index_of[nid]
                                     for nid in plan.loop_conds),
                "call_sites": {index_of[nid]: names
                               for nid, names in plan.call_sites.items()},
                "leaf_cost": plan.leaf_cost,
            }
        return {"costs": self.costs, "functions": functions}

    def hydrate_portable(self, program: Program, portable: dict) -> int:
        """Rebind a portable export to this process's ASTs; returns count.

        Statement counts are re-checked per function: a mismatch (the
        program differs from the one that produced the artifact) rejects
        that function and leaves it to lazy lowering.  Already-lowered
        plans are never overwritten.
        """
        from repro.cminor.visitor import walk_statements

        if self.costs is None:
            self.costs = portable["costs"]
        elif self.costs != portable["costs"]:
            return 0
        hydrated = 0
        for name, data in portable["functions"].items():
            if name in self.plans:
                continue
            func = program.lookup_function(name)
            if func is None:
                continue
            slots = data["slots"]
            order = []
            names_match = True
            for stmt in walk_statements(func.body):
                order.append(stmt.node_id)
                # Compilation frames resolve declarations through the
                # plan's slot map — a declaration the artifact does not
                # name (e.g. differently numbered inliner temps) means
                # the artifact came from a different lowering of this
                # function; reject it and lower lazily.
                if isinstance(stmt, ast.VarDecl) and stmt.name not in slots:
                    names_match = False
                    break
            flat_costs = data["stmt_costs"]
            if not names_match or len(order) != len(flat_costs):
                continue
            plan = FunctionPlan(
                name,
                dict(data["slots"]),
                tuple(tuple(p) for p in data["params"]),
                data["default_return"],
                {order[i]: c for i, c in enumerate(flat_costs)},
                frozenset(order[i] for i in data["fusable"]),
                frozenset(order[i] for i in data["loop_conds"]),
                {order[int(i)]: tuple(names)
                 for i, names in data["call_sites"].items()},
                data["leaf_cost"],
            )
            self.plans[name] = plan
            hydrated += 1
        self.disk_loads += hydrated
        return hydrated

    def stats(self) -> dict[str, int]:
        return {
            "functions": len(self.plans),
            "lowerings": self.lowerings,
            "plan_hits": self.plan_hits,
            "disk_loads": self.disk_loads,
        }


# ---------------------------------------------------------------------------
# Compiled function format
# ---------------------------------------------------------------------------


class CompiledFunction:
    """One lowered function: a flat op stream plus its frame layout."""

    __slots__ = ("name", "ops", "end", "nslots", "params", "nparams",
                 "flat_params", "default_return", "has_atomic")

    def __init__(self, name: str, ops: list[Op], nslots: int,
                 params: tuple, default_return: Optional[int],
                 has_atomic: bool):
        self.name = name
        self.ops = ops
        self.end = len(ops)
        self.nslots = nslots
        #: Per-parameter plan: (slot, taken, ctype, size, storage_name).
        self.params = params
        self.nparams = len(params)
        #: True when arguments can be sliced straight into the frame: no
        #: address-taken parameters, and parameter slots are 1..nparams.
        self.flat_params = all(
            plan[0] == index + 1 and not plan[1]
            for index, plan in enumerate(params))
        self.default_return = default_return
        self.has_atomic = has_atomic


class CompiledFrame:
    """One activation record on the engine's explicit call stack.

    Call and return are machine transitions, not Python recursion: a CALL
    op builds the callee's frame, parks the caller's resume index in
    ``pc``, and pushes the callee; when the callee's op stream runs off its
    end, the machine pops the frame and routes ``slots[0]`` through
    ``ret_store`` into the caller.
    """

    __slots__ = ("cf", "slots", "pc", "ret_store", "depth0")

    def __init__(self, cf: CompiledFunction, slots: list, depth0: int):
        self.cf = cf
        self.slots = slots
        #: Resume index: 0 on entry; a CALL op parks its continuation here.
        self.pc = 0
        #: Where the callee's return value goes in the caller's frame
        #: (``None`` discards it — plain call statements).
        self.ret_store: Optional[Callable[[list, RuntimeValue], None]] = None
        #: ``node.atomic_depth`` at frame entry, restored when a terminal
        #: exception unwinds through this frame's open atomic sections.
        self.depth0 = depth0


class CompiledEngine:
    """Executes one program for one node as an explicit frame-stack machine.

    Public API mirrors the tree-walking interpreter: :meth:`call` invokes a
    program function by name with already-evaluated arguments.  Functions
    are lowered on first call and cached for the node's lifetime.

    Statement-level calls (``f(x);`` and ``y = f(x);`` — the dominant
    shapes in flattened TinyOS code) execute as CALL ops that push a
    :class:`CompiledFrame` onto the machine stack; returns pop it.  Calls
    nested inside larger expressions fall back to a recursive
    :meth:`_invoke`, which enters a nested machine run.
    """

    def __init__(self, node: "Node"):
        self.node = node
        self.program: Program = node.program
        self.memory: MemorySystem = node.memory
        self.costs = node.costs
        self.pointer_size = node.costs.platform.pointer_bytes
        self._compiled: dict[str, CompiledFunction] = {}
        self._overhead = self.costs.function_overhead_cycles()
        self._sf = _simulation_finished()
        #: Mutable cell counting executed statements (cheap to close over).
        self._stmt_cell = [0]
        #: Frame stack of the innermost machine run currently executing.
        #: CALL ops push onto it directly; nested runs (interrupt handlers,
        #: expression-position calls) save and restore it.
        self._stack: list[CompiledFrame] = []
        #: Superblock fusion switch (``REPRO_AVRORA_SUPERBLOCKS``), read at
        #: engine construction so tests can toggle it per node.
        self.superblocks_enabled = _superblocks_enabled()
        #: Trace-inlining switch (``REPRO_AVRORA_TRACES``); traces build
        #: on superblocks, so disabling fusion disables traces too.
        self.traces_enabled = self.superblocks_enabled and _traces_enabled()
        #: Node-independent lowering plans shared with every other engine
        #: simulating this program (compile-once across a network).
        self.code_cache: CodeCache = self.program.analysis().code_cache()
        #: Superblocks formed at compile time (straight-line / loop).
        self.superblocks = 0
        self.loop_superblocks = 0
        #: Trace superblocks formed (fused regions with >= 1 inlined
        #: call) and call sites spliced inline, both compile-time counts.
        self.traces = 0
        self.inlined_sites = 0
        #: Runtime fast-path counters, mutated in place by the fused ops:
        #: [fast entries, slow entries, fused statements, bursts,
        #:  burst iterations, inlined calls executed].
        self._sb_cell = [0, 0, 0, 0, 0, 0]
        #: Per-trace dynamic accumulator: [extra cycles, extra statements,
        #: inlined calls], reset by each trace guard on entry.  Safe to
        #: share engine-wide: fused trace runs are straight-line (no
        #: polls, no nested machine runs), so they never nest.
        self._acc = [0, 0, 0]

    @property
    def statements_executed(self) -> int:
        return self._stmt_cell[0]

    def superblock_stats(self) -> dict:
        """Superblock formation and fast-path hit-rate statistics."""
        fast, slow, fused, bursts, iterations, inlined = self._sb_cell
        total = self._stmt_cell[0]
        return {
            "engine": "compiled",
            "enabled": self.superblocks_enabled,
            "traces_enabled": self.traces_enabled,
            "superblocks": self.superblocks,
            "loop_superblocks": self.loop_superblocks,
            "traces": self.traces,
            "inlined_call_sites": self.inlined_sites,
            "entries_fast": fast,
            "entries_slow": slow,
            "bursts": bursts,
            "burst_iterations": iterations,
            "inlined_calls": inlined,
            "fused_statements": fused,
            "statements_total": total,
            "fused_fraction": round(fused / total, 4) if total else 0.0,
        }

    def code_cache_stats(self) -> dict[str, int]:
        """Shared code-cache counters (see :class:`CodeCache`)."""
        return self.code_cache.stats()

    def compile_program(self) -> int:
        """Lower every program function now (normally lazy); returns count.

        Used by benchmarks to separate compile time from run time when
        measuring how the shared code cache amortizes per-node lowering.
        """
        for name in self.program.functions:
            if name not in self._compiled:
                self._compile_name(name)
        return len(self._compiled)

    # -- public API -------------------------------------------------------------

    def call(self, name: str, args: Optional[list[RuntimeValue]] = None
             ) -> Optional[RuntimeValue]:
        """Call a program function by name with already-evaluated arguments."""
        cf = self._compiled.get(name)
        if cf is None:
            cf = self._compile_name(name)
        return self._run_machine(self._new_frame(cf, args or []))

    # -- compilation ------------------------------------------------------------

    def _compile_name(self, name: str) -> CompiledFunction:
        func = self.program.lookup_function(name)
        if func is None:
            raise KeyError(f"call to unknown function {name!r}")
        cf = _FunctionCompiler(self, func).compile()
        self._compiled[name] = cf
        return cf

    # -- execution --------------------------------------------------------------

    def _invoke(self, name: str, args: list[RuntimeValue]) -> RuntimeValue:
        """Call-expression entry point (coerces a void result to 0)."""
        cf = self._compiled.get(name)
        if cf is None:
            cf = self._compile_name(name)
        result = self._run_machine(self._new_frame(cf, args))
        return result if result is not None else 0

    def _new_frame(self, cf: CompiledFunction,
                   args: list[RuntimeValue]) -> CompiledFrame:
        """Build an activation record: slots, parameters, entry overhead."""
        nparams = cf.nparams
        if len(args) != nparams:
            raise TypeError(
                f"{cf.name}() takes {nparams} argument(s) "
                f"but {len(args)} were given")
        slots = [_UNSET] * cf.nslots
        slots[_RET] = cf.default_return
        if cf.flat_params:
            if nparams:
                slots[1:1 + nparams] = args
        else:
            memory = self.memory
            for plan, value in zip(cf.params, args):
                slot, taken, ctype, size, storage_name = plan
                if taken:
                    obj = memory.allocate(storage_name, size, kind="local")
                    memory.write(Pointer(obj, 0), ctype, value)
                    slots[slot] = obj
                else:
                    slots[slot] = value
        node = self.node
        t = node.time_cycles + self._overhead
        node.time_cycles = t
        if node.end_cycles and t >= node.end_cycles:
            raise self._sf()
        return CompiledFrame(cf, slots, node.atomic_depth)

    def _run_machine(self, frame: CompiledFrame) -> Optional[RuntimeValue]:
        """Run one machine: dispatch the top frame until the stack drains.

        The inner loop is the engine's hot path and is unchanged from the
        recursive design: ``pc = ops[pc](slots)``.  A CALL op pushes the
        callee and returns :data:`_CALL` (>= any real index), so call
        handling costs the straight-line path nothing.
        """
        stack = [frame]
        prev = self._stack
        self._stack = stack
        node = self.node
        try:
            while True:
                top = stack[-1]
                ops = top.cf.ops
                end = top.cf.end
                slots = top.slots
                pc = top.pc
                try:
                    while pc < end:
                        pc = ops[pc](slots)
                except BaseException:
                    # Mirror the tree-walker's ``finally`` blocks: a
                    # terminal exception (simulation end, halt, safety
                    # fault) unwinding through open atomic sections
                    # restores each frame's entry depth, innermost first.
                    for open_frame in reversed(stack):
                        if open_frame.cf.has_atomic:
                            node.atomic_depth = open_frame.depth0
                    raise
                if pc != end:
                    continue  # a CALL op pushed a new top frame
                value = slots[_RET]
                stack.pop()
                if not stack:
                    return value
                store = top.ret_store
                if store is not None:
                    store(stack[-1].slots, value if value is not None else 0)
        finally:
            self._stack = prev

    # -- lenient memory access (identical to the tree-walker) --------------------

    def _memory_read(self, pointer: Pointer, ctype: ty.CType) -> RuntimeValue:
        try:
            return self.memory.read(pointer, ctype)
        except MemoryError_:
            if self.node.strict_memory:
                raise
            self.node.memory_violations += 1
            return 0

    def _memory_write(self, pointer: Pointer, ctype: ty.CType,
                      value: RuntimeValue) -> None:
        try:
            self.memory.write(pointer, ctype, value)
        except MemoryError_:
            if self.node.strict_memory:
                raise
            self.node.memory_violations += 1

    # -- dynamic fallbacks (rare paths kept out of the fast closures) ------------

    def _load_global_like(self, name: str,
                          expr_ctype: Optional[ty.CType]) -> RuntimeValue:
        """Identifier read when the frame slot is unset (pre-declaration)."""
        obj = self.memory.global_object(name)
        if obj is not None:
            var = self.program.lookup_global(name)
            ctype = var.ctype if var is not None else (expr_ctype or ty.UINT8)
            if isinstance(ctype, (ty.ArrayType, ty.StructType)):
                return Pointer(obj, 0)
            return self.memory.read(Pointer(obj, 0), ctype)
        raise MemoryError_(f"read of unknown variable {name!r}")

    def _locate_name(self, name: str) -> Pointer:
        """Identifier locate when no memory object sits in the frame slot."""
        obj = self.memory.global_object(name)
        if obj is not None:
            return Pointer(obj, 0)
        raise MemoryError_(f"no storage for {name!r}")


# ---------------------------------------------------------------------------
# The lowering pass
# ---------------------------------------------------------------------------


class _FunctionCompiler:
    """Lowers one ``FunctionDef`` into a :class:`CompiledFunction`."""

    def __init__(self, engine: CompiledEngine, func: ast.FunctionDef):
        self.engine = engine
        self.func = func
        self.program = engine.program
        self.costs = engine.costs
        self.pointer_size = engine.pointer_size
        cache = self.program.analysis()
        self._cache = cache
        self.taken = cache.address_taken_locals(func)
        self.globals_ = self.program.globals

        # The node-independent front end — frame layout, per-statement
        # costs, fusability — comes from the shared per-program code cache:
        # in an N-node network it is computed once, not N times.
        plan = engine.code_cache.plan_for(func, self.program, engine.costs)
        self.plan = plan
        self.slots: dict[str, int] = plan.slots

        self.ops: list = []
        self.end_label = _Label()
        self.loop_stack: list[_LoopCtx] = []
        self.atomic_depth = 0
        self.has_atomic = False
        self.sb_enabled = engine.superblocks_enabled
        self.trace_enabled = engine.traces_enabled
        #: Extra frame slots appended past the plan's layout, holding the
        #: flattened frames of inlined trace callees (one block per call
        #: site, so re-entrancy within one statement cannot alias).
        self.extra_slots = 0
        #: True while compiling a trace work closure: program calls then
        #: lower to inline splices instead of CALL ops / machine runs.
        self._inline_calls = False
        self._acc = engine._acc

        # Hot-path bindings baked into the generated ops.  The event queue
        # and pending-interrupt containers are mutated in place by the node
        # and never reassigned, so closing over the objects is safe; the
        # inlined accounting and the poll guard replicate ``Node.consume``
        # and the no-op test at the top of ``Node.poll`` exactly.
        self.node = engine.node
        self._sf = _simulation_finished()
        self._eq = self.node._event_queue
        self._pending = self.node.pending_interrupts
        self._cell = engine._stmt_cell
        self._sb = engine._sb_cell
        self._poll = self.node.poll
        self._param_names = {p.name for p in func.params}

    # -- emission helpers -------------------------------------------------------

    def _emit(self, op: Op) -> int:
        index = len(self.ops)
        self.ops.append(op)
        return index

    def _emit_pending(self, maker: Callable[..., Op], *labels: _Label) -> int:
        index = len(self.ops)
        self.ops.append((maker, labels))
        return index

    def _bind(self, label: _Label) -> None:
        label.index = len(self.ops)

    def _finalize(self) -> None:
        self._bind(self.end_label)
        for index, entry in enumerate(self.ops):
            if isinstance(entry, tuple):
                maker, labels = entry
                self.ops[index] = maker(*(label.index for label in labels))

    # -- costs ------------------------------------------------------------------

    def _stmt_cost(self, stmt: ast.Stmt) -> int:
        return self.plan.stmt_costs[stmt.node_id]

    # -- top level --------------------------------------------------------------

    def compile(self) -> CompiledFunction:
        self._compile_block(self.func.body)
        self._finalize()
        return CompiledFunction(self.func.name, self.ops,
                                1 + len(self.slots) + self.extra_slots,
                                self.plan.params,
                                self.plan.default_return, self.has_atomic)

    def _compile_block(self, block: ast.Block) -> None:
        stmts = block.stmts
        if not self.sb_enabled:
            for stmt in stmts:
                self._compile_stmt(stmt)
            return
        fusable = self.plan.fusable
        total = len(stmts)
        index = 0
        while index < total:
            stmt = stmts[index]
            if stmt.node_id in fusable or \
                    self._site_extra(stmt) is not None:
                end = index
                extras = []
                while end < total:
                    s = stmts[end]
                    if s.node_id in fusable:
                        extras.append(0)
                    else:
                        extra = self._site_extra(s)
                        if extra is None:
                            break
                        extras.append(extra)
                    end += 1
                # A run is worth a guard when it fuses >= 2 statements,
                # or contains even a single trace statement (inlining
                # one call already beats the CALL-op machinery).
                if end - index >= 2 or any(extras):
                    self._compile_superblock(stmts[index:end], extras)
                    index = end
                    continue
            self._compile_stmt(stmt)
            index += 1

    # -- trace facts ------------------------------------------------------------

    def _site_extra(self, stmt: ast.Stmt) -> Optional[int]:
        """Worst-case inlined-callee cycles for one trace statement.

        None when the statement is not a trace candidate: no recorded
        call sites, tracing disabled, or any callee not leaf-inlinable
        (recursive and non-leaf callees fail here — their plans carry
        ``leaf_cost is None`` — and stay on the CALL-op path).
        """
        if not self.trace_enabled:
            return None
        names = self.plan.call_sites.get(stmt.node_id)
        if not names:
            return None
        overhead = self.engine._overhead
        extra = 0
        for name in names:
            func = self.program.lookup_function(name)
            if func is None:
                return None
            plan = self.engine.code_cache.plan_for(func, self.program,
                                                   self.costs)
            if plan.leaf_cost is None:
                return None
            extra += overhead + plan.leaf_cost
        return extra

    # -- superblocks ------------------------------------------------------------

    def _compile_superblock(self, run: list,
                            extras: Optional[list] = None) -> None:
        """Fuse one maximal straight-line run of fusable statements.

        Emits a guard op followed by the unchanged per-statement ops.  The
        guard checks the **poll window**: if the node's next queued event
        (horizon sentinels included), the end of simulated time, a pending
        interrupt, or strict-memory mode could make any per-statement poll
        or end-check observable inside the run's cycle window, it falls
        through to the per-statement ops — execution is then bit-for-bit
        today's.  Otherwise it charges the precomputed total once, bumps
        the statement counter once, runs the bare work closures
        back-to-back, and jumps past the slow path.

        If a work closure raises (e.g. a null-pointer dereference aborting
        the simulation), the accounting is repaired to exactly what the
        per-statement path would have charged up to and including the
        faulting statement before the exception propagates.

        ``extras`` carries the per-statement worst-case inlined-callee
        cycles of a *trace* run (zero for plain statements): the guard
        then checks the window against the worst case, while the actual
        dynamic charge accumulates in the engine's trace accumulator.
        """
        self.engine.superblocks += 1
        trace = extras is not None and any(extras)
        guard_index = len(self.ops)
        self.ops.append(None)  # patched below, after the slow path exists
        works = []
        prefix = []
        total = 0
        for stmt in run:
            total += self._stmt_cost(stmt)
            prefix.append(total)
            if trace and self.plan.call_sites.get(stmt.node_id):
                works.append(self._compile_trace_work(stmt))
            else:
                works.append(self._compile_work(stmt))
            self._compile_stmt(stmt)
        done = len(self.ops)

        if trace:
            self.engine.traces += 1
            max_total = total + sum(extras)

            def trace_op(frame: list, _n=self.node, _eq=self._eq,
                         _pi=self._pending, _works=tuple(works),
                         _nw=len(run), _static=total, _max=max_total,
                         _prefix=tuple(prefix), _cell=self._cell,
                         _sb=self._sb, _acc=self._acc,
                         _slow=guard_index + 1, _done=done) -> int:
                t = _n.time_cycles
                limit = t + _max
                end = _n.end_cycles
                if (_pi or (_eq and _eq[0][0] <= limit)
                        or (end and limit >= end) or _n.strict_memory):
                    _sb[1] += 1
                    return _slow
                _sb[0] += 1
                _acc[0] = 0
                _acc[1] = 0
                _acc[2] = 0
                j = 0
                try:
                    while j < _nw:
                        _works[j](frame)
                        j += 1
                except BaseException:
                    # Per-statement equivalence: j completed/entered
                    # caller statements (charge-then-execute, so the
                    # faulting one is included) plus whatever the
                    # inlined callees charged before the fault.
                    _n.time_cycles = t + _prefix[j] + _acc[0]
                    _cell[0] += j + 1 + _acc[1]
                    _sb[2] += j + 1 + _acc[1]
                    _sb[5] += _acc[2]
                    raise
                _n.time_cycles = t + _static + _acc[0]
                _cell[0] += _nw + _acc[1]
                _sb[2] += _nw + _acc[1]
                _sb[5] += _acc[2]
                return _done

            self.ops[guard_index] = trace_op
            return

        def op(frame: list, _n=self.node, _eq=self._eq, _pi=self._pending,
               _works=tuple(works), _nw=len(run), _total=total,
               _prefix=tuple(prefix), _cell=self._cell, _sb=self._sb,
               _slow=guard_index + 1, _done=done) -> int:
            t = _n.time_cycles
            limit = t + _total
            end = _n.end_cycles
            if (_pi or (_eq and _eq[0][0] <= limit)
                    or (end and limit >= end) or _n.strict_memory):
                _sb[1] += 1
                return _slow
            _sb[0] += 1
            _sb[2] += _nw
            _cell[0] += _nw
            _n.time_cycles = limit
            j = 0
            try:
                while j < _nw:
                    _works[j](frame)
                    j += 1
            except BaseException:
                _n.time_cycles = t + _prefix[j]
                _cell[0] -= _nw - j - 1
                _sb[2] -= _nw - j - 1
                raise
            return _done

        self.ops[guard_index] = op

    def _loop_burst(self, stmt: ast.Stmt, body_stmts: list,
                    extra_stmt: Optional[ast.Stmt] = None,
                    base_cost: int = 0):
        """Fusion facts for a loop superblock, or None when ineligible.

        Eligible when the loop's condition is call-free (or absent) and
        every statement executed per iteration — the body plus, for
        ``for`` loops, the update — is fusable or a trace statement
        (every call inlinable).  ``base_cost`` is the per-iteration
        charge outside the statements themselves (the ``while`` branch
        cycles).  Returns
        ``(works, prefix, iter_cost, iter_stmts, extra_max)`` where
        ``prefix`` excludes ``base_cost`` and ``extra_max`` is the
        worst-case inlined-callee cycles per iteration (0 for a plain
        fusable loop).
        """
        if not self.sb_enabled or stmt.node_id not in self.plan.loop_conds:
            return None
        run = list(body_stmts)
        if extra_stmt is not None:
            run.append(extra_stmt)
        if not run:
            return None
        fusable = self.plan.fusable
        extras = []
        for s in run:
            if s.node_id in fusable:
                extras.append(0)
            else:
                extra = self._site_extra(s)
                if extra is None:
                    return None
                extras.append(extra)
        trace = any(extras)
        works = []
        prefix = []
        total = 0
        for s in run:
            total += self._stmt_cost(s)
            prefix.append(total)
            if trace and self.plan.call_sites.get(s.node_id):
                works.append(self._compile_trace_work(s))
            else:
                works.append(self._compile_work(s))
        return (tuple(works), tuple(prefix), base_cost + total, len(run),
                sum(extras))

    def _emit_burst(self, burst, cond: Optional[ExprFn], branch_cycles: int,
                    exit_label: _Label) -> None:
        """One loop superblock: run fused iterations while the window allows.

        Sits at the loop head, in front of the normal condition op.  Each
        entry computes how many whole iterations fit strictly inside the
        poll window (next event, horizon sentinel, end of time) and runs
        them back-to-back, writing the cycle and statement accounting once
        at the end.  A false condition exits the loop directly (charging
        nothing, like the condition op); an exhausted window falls through
        to the per-statement machinery, which re-evaluates the condition —
        the condition is never evaluated twice for one iteration, so even
        out-of-bounds reads inside it are absorbed exactly once.
        """
        works, prefix, iter_cost, iter_stmts, _ = burst
        self.engine.loop_superblocks += 1
        nxt = len(self.ops) + 1

        def maker(exit_index: int, _n=self.node, _eq=self._eq,
                  _pi=self._pending, _cond=cond, _works=works,
                  _nw=len(works), _prefix=prefix, _ic=iter_cost,
                  _is=iter_stmts, _bc=branch_cycles, _cell=self._cell,
                  _sb=self._sb, _chunk=_BURST_CHUNK, _nxt=nxt) -> Op:
            def op(frame: list) -> int:
                if _pi or _n.strict_memory:
                    return _nxt
                t = _n.time_cycles
                end = _n.end_cycles
                if _eq:
                    limit = _eq[0][0] - 1
                    if end and end - 1 < limit:
                        limit = end - 1
                elif end:
                    limit = end - 1
                else:
                    limit = t + _ic * _chunk
                k_max = (limit - t) // _ic
                if k_max <= 0:
                    return _nxt
                k = 0
                j = -1
                out = _nxt
                try:
                    while k < k_max:
                        if _cond is not None and _cond(frame) == 0:
                            out = exit_index
                            break
                        j = 0
                        while j < _nw:
                            _works[j](frame)
                            j += 1
                        j = -1
                        k += 1
                except BaseException:
                    # Repair to the per-statement accounting: k complete
                    # iterations, plus — when a work raised — the branch
                    # charge and the statements up to the faulting one.
                    if j < 0:
                        _n.time_cycles = t + k * _ic
                        _cell[0] += k * _is
                        _sb[2] += k * _is
                    else:
                        _n.time_cycles = t + k * _ic + _bc + _prefix[j]
                        _cell[0] += k * _is + j + 1
                        _sb[2] += k * _is + j + 1
                    if k or j >= 0:
                        _sb[3] += 1
                        _sb[4] += k
                    raise
                if k:
                    _n.time_cycles = t + k * _ic
                    _cell[0] += k * _is
                    _sb[2] += k * _is
                    _sb[3] += 1
                    _sb[4] += k
                return out

            return op

        self._emit_pending(maker, exit_label)

    def _emit_trace_burst(self, burst, cond: Optional[ExprFn],
                          branch_cycles: int, exit_label: _Label) -> None:
        """A loop superblock whose iterations contain inlined calls.

        Mirrors :meth:`_emit_burst`, except the per-iteration cost is
        dynamic: the iteration budget is computed against the worst case
        (static cost + every callee's maximal body), while the actual
        charge — accumulated by the inlined units in the engine's trace
        accumulator — is written back at the end.  Conservatively
        running fewer iterations per burst is invisible: the
        per-statement machinery takes over at the same cycle.
        """
        works, prefix, iter_cost, iter_stmts, extra_max = burst
        self.engine.loop_superblocks += 1
        self.engine.traces += 1
        nxt = len(self.ops) + 1

        def maker(exit_index: int, _n=self.node, _eq=self._eq,
                  _pi=self._pending, _cond=cond, _works=works,
                  _nw=len(works), _prefix=prefix, _ic=iter_cost,
                  _im=iter_cost + extra_max, _is=iter_stmts,
                  _bc=branch_cycles, _cell=self._cell, _sb=self._sb,
                  _acc=self._acc, _chunk=_BURST_CHUNK, _nxt=nxt) -> Op:
            def op(frame: list) -> int:
                if _pi or _n.strict_memory:
                    return _nxt
                t = _n.time_cycles
                end = _n.end_cycles
                if _eq:
                    limit = _eq[0][0] - 1
                    if end and end - 1 < limit:
                        limit = end - 1
                elif end:
                    limit = end - 1
                else:
                    limit = t + _im * _chunk
                k_max = (limit - t) // _im
                if k_max <= 0:
                    return _nxt
                _acc[0] = 0
                _acc[1] = 0
                _acc[2] = 0
                k = 0
                j = -1
                out = _nxt
                try:
                    while k < k_max:
                        if _cond is not None and _cond(frame) == 0:
                            out = exit_index
                            break
                        j = 0
                        while j < _nw:
                            _works[j](frame)
                            j += 1
                        j = -1
                        k += 1
                except BaseException:
                    # Repair to the per-statement accounting: k complete
                    # iterations plus the accumulated callee charges,
                    # plus — when a work raised — the branch charge and
                    # the statements up to the faulting one.
                    if j < 0:
                        _n.time_cycles = t + k * _ic + _acc[0]
                        _cell[0] += k * _is + _acc[1]
                        _sb[2] += k * _is + _acc[1]
                    else:
                        _n.time_cycles = t + k * _ic + _bc + _prefix[j] \
                            + _acc[0]
                        _cell[0] += k * _is + j + 1 + _acc[1]
                        _sb[2] += k * _is + j + 1 + _acc[1]
                    _sb[5] += _acc[2]
                    if k or j >= 0:
                        _sb[3] += 1
                        _sb[4] += k
                    raise
                if k:
                    _n.time_cycles = t + k * _ic + _acc[0]
                    _cell[0] += k * _is + _acc[1]
                    _sb[2] += k * _is + _acc[1]
                    _sb[3] += 1
                    _sb[4] += k
                    _sb[5] += _acc[2]
                return out

            return op

        self._emit_pending(maker, exit_label)

    def _rotated_burst_facts(self, stmt: ast.While, branch_cycles: int):
        """Fusion facts for a rotated loop, or None when ineligible.

        The simplifier desugars every ``for`` (and guarded ``while``) into
        the rotated form ``while (1) { if (exit) break; ...tail...; }`` —
        the dominant hot-loop shape reaching the engine.  Eligible when the
        while condition is a non-zero literal (so evaluating it has no
        observable effect to preserve), the first body statement is exactly
        an if-break with a call-free condition, and the tail is fusable.
        """
        if not self.sb_enabled:
            return None
        cond = stmt.cond
        if not (isinstance(cond, ast.IntLiteral) and cond.value != 0):
            return None
        body = stmt.body.stmts
        if not body:
            return None
        guard = body[0]
        if not (isinstance(guard, ast.If) and guard.else_body is None
                and len(guard.then_body.stmts) == 1
                and isinstance(guard.then_body.stmts[0], ast.Break)
                and guard.node_id in self.plan.loop_conds):
            return None
        tail = body[1:]
        fusable = self.plan.fusable
        extras = []
        for s in tail:
            if s.node_id in fusable:
                extras.append(0)
            else:
                extra = self._site_extra(s)
                if extra is None:
                    return None
                extras.append(extra)
        trace = any(extras)
        works = []
        prefix = []
        total = 0
        for s in tail:
            total += self._stmt_cost(s)
            prefix.append(total)
            if trace and self.plan.call_sites.get(s.node_id):
                works.append(self._compile_trace_work(s))
            else:
                works.append(self._compile_work(s))
        head_cost = branch_cycles + self._stmt_cost(guard)
        exit_cost = head_cost + self._stmt_cost(guard.then_body.stmts[0])
        return (self._compile_expr(guard.cond), tuple(works), tuple(prefix),
                head_cost + total, 1 + len(tail), head_cost, exit_cost,
                sum(extras))

    def _emit_rotated_burst(self, facts, exit_label: _Label) -> None:
        """The loop superblock for the rotated (if-break) loop shape.

        Per fused iteration, the accounting mirrors the slow path exactly:
        the while branch charge plus the if-break guard's statement count
        and cost, then the tail statements.  Exiting through the break
        additionally charges and counts the break statement before jumping
        to the loop exit, at the same cycle the per-statement path would.
        """
        exit_cond, works, prefix, iter_cost, iter_stmts, head_cost, \
            exit_cost, _ = facts
        self.engine.loop_superblocks += 1
        nxt = len(self.ops) + 1

        def maker(exit_index: int, _n=self.node, _eq=self._eq,
                  _pi=self._pending, _ec=exit_cond, _works=works,
                  _nw=len(works), _prefix=prefix, _ic=iter_cost,
                  _is=iter_stmts, _hc=head_cost, _xc=exit_cost,
                  _cell=self._cell, _sb=self._sb, _chunk=_BURST_CHUNK,
                  _nxt=nxt) -> Op:
            def op(frame: list) -> int:
                if _pi or _n.strict_memory:
                    return _nxt
                t = _n.time_cycles
                end = _n.end_cycles
                if _eq:
                    limit = _eq[0][0] - 1
                    if end and end - 1 < limit:
                        limit = end - 1
                elif end:
                    limit = end - 1
                else:
                    limit = t + _ic * _chunk
                # A break exit can charge more than one full iteration
                # (exit cost > iteration cost when the tail is tiny);
                # shrink the budget so every exit stays inside the window.
                budget = limit - t
                if _xc > _ic:
                    budget -= _xc - _ic
                k_max = budget // _ic
                if k_max <= 0:
                    return _nxt
                k = 0
                j = -1
                try:
                    if _nw == 2:
                        # The canonical desugared ``for``: body + update.
                        w0 = _works[0]
                        w1 = _works[1]
                        while k < k_max:
                            j = -2
                            if _ec(frame) != 0:
                                _n.time_cycles = t + k * _ic + _xc
                                _cell[0] += k * _is + 2
                                _sb[2] += k * _is + 2
                                _sb[3] += 1
                                _sb[4] += k
                                return exit_index
                            j = 0
                            w0(frame)
                            j = 1
                            w1(frame)
                            j = -1
                            k += 1
                    elif _nw == 1:
                        w0 = _works[0]
                        while k < k_max:
                            j = -2
                            if _ec(frame) != 0:
                                _n.time_cycles = t + k * _ic + _xc
                                _cell[0] += k * _is + 2
                                _sb[2] += k * _is + 2
                                _sb[3] += 1
                                _sb[4] += k
                                return exit_index
                            j = 0
                            w0(frame)
                            j = -1
                            k += 1
                    else:
                        while k < k_max:
                            j = -2
                            if _ec(frame) != 0:
                                _n.time_cycles = t + k * _ic + _xc
                                _cell[0] += k * _is + 2
                                _sb[2] += k * _is + 2
                                _sb[3] += 1
                                _sb[4] += k
                                return exit_index
                            j = 0
                            while j < _nw:
                                _works[j](frame)
                                j += 1
                            j = -1
                            k += 1
                except BaseException:
                    # Repair to the per-statement accounting: the guard
                    # condition raising counts the if statement only; a
                    # tail work raising also counts the statements up to
                    # and including the faulting one.
                    if j == -2:
                        _n.time_cycles = t + k * _ic + _hc
                        _cell[0] += k * _is + 1
                        _sb[2] += k * _is + 1
                    elif j >= 0:
                        _n.time_cycles = t + k * _ic + _hc + _prefix[j]
                        _cell[0] += k * _is + j + 2
                        _sb[2] += k * _is + j + 2
                    else:  # pragma: no cover - defensive
                        _n.time_cycles = t + k * _ic
                        _cell[0] += k * _is
                        _sb[2] += k * _is
                    _sb[3] += 1
                    _sb[4] += k
                    raise
                if k:
                    _n.time_cycles = t + k * _ic
                    _cell[0] += k * _is
                    _sb[2] += k * _is
                    _sb[3] += 1
                    _sb[4] += k
                return _nxt

            return op

        self._emit_pending(maker, exit_label)

    def _emit_trace_rotated_burst(self, facts, exit_label: _Label) -> None:
        """The rotated-loop superblock with inlined calls in the tail.

        Mirrors :meth:`_emit_rotated_burst` with the dynamic-accumulator
        accounting of :meth:`_emit_trace_burst`: the iteration budget
        uses the worst-case cost, the write-back uses the actual one.
        The if-break guard condition is call-free, so the exit path's
        cost stays static.
        """
        exit_cond, works, prefix, iter_cost, iter_stmts, head_cost, \
            exit_cost, extra_max = facts
        self.engine.loop_superblocks += 1
        self.engine.traces += 1
        nxt = len(self.ops) + 1

        def maker(exit_index: int, _n=self.node, _eq=self._eq,
                  _pi=self._pending, _ec=exit_cond, _works=works,
                  _nw=len(works), _prefix=prefix, _ic=iter_cost,
                  _im=iter_cost + extra_max, _is=iter_stmts, _hc=head_cost,
                  _xc=exit_cost, _cell=self._cell, _sb=self._sb,
                  _acc=self._acc, _chunk=_BURST_CHUNK, _nxt=nxt) -> Op:
            def op(frame: list) -> int:
                if _pi or _n.strict_memory:
                    return _nxt
                t = _n.time_cycles
                end = _n.end_cycles
                if _eq:
                    limit = _eq[0][0] - 1
                    if end and end - 1 < limit:
                        limit = end - 1
                elif end:
                    limit = end - 1
                else:
                    limit = t + _im * _chunk
                budget = limit - t
                if _xc > _im:
                    budget -= _xc - _im
                k_max = budget // _im
                if k_max <= 0:
                    return _nxt
                _acc[0] = 0
                _acc[1] = 0
                _acc[2] = 0
                k = 0
                j = -1
                try:
                    while k < k_max:
                        j = -2
                        if _ec(frame) != 0:
                            _n.time_cycles = t + k * _ic + _xc + _acc[0]
                            _cell[0] += k * _is + 2 + _acc[1]
                            _sb[2] += k * _is + 2 + _acc[1]
                            _sb[3] += 1
                            _sb[4] += k
                            _sb[5] += _acc[2]
                            return exit_index
                        j = 0
                        while j < _nw:
                            _works[j](frame)
                            j += 1
                        j = -1
                        k += 1
                except BaseException:
                    if j == -2:
                        _n.time_cycles = t + k * _ic + _hc + _acc[0]
                        _cell[0] += k * _is + 1 + _acc[1]
                        _sb[2] += k * _is + 1 + _acc[1]
                    elif j >= 0:
                        _n.time_cycles = t + k * _ic + _hc + _prefix[j] \
                            + _acc[0]
                        _cell[0] += k * _is + j + 2 + _acc[1]
                        _sb[2] += k * _is + j + 2 + _acc[1]
                    else:  # pragma: no cover - defensive
                        _n.time_cycles = t + k * _ic + _acc[0]
                        _cell[0] += k * _is + _acc[1]
                        _sb[2] += k * _is + _acc[1]
                    _sb[3] += 1
                    _sb[4] += k
                    _sb[5] += _acc[2]
                    raise
                if k:
                    _n.time_cycles = t + k * _ic + _acc[0]
                    _cell[0] += k * _is + _acc[1]
                    _sb[2] += k * _is + _acc[1]
                    _sb[3] += 1
                    _sb[4] += k
                    _sb[5] += _acc[2]
                return _nxt

            return op

        self._emit_pending(maker, exit_label)

    def _compile_work(self, stmt: ast.Stmt) -> Callable[[list], None]:
        """The bare effect of one fusable statement.

        No statement counting, no cycle charge, no end-of-time check, no
        poll: the enclosing superblock performs those once for the whole
        run, which the poll-window guard proves unobservable.  The closure
        reuses the exact store/expression compilers of the slow path, so
        the effect (including lenient-memory absorption) is identical.
        """
        if isinstance(stmt, ast.Assign):
            store = self._compile_store(stmt.lvalue)
            rvalue = self._compile_expr(stmt.rvalue)

            def work(frame: list, _st=store, _rv=rvalue) -> None:
                _st(frame, _rv(frame))

            return work
        if isinstance(stmt, ast.ExprStmt):
            value = self._compile_expr(stmt.expr)

            def work(frame: list, _v=value) -> None:
                _v(frame)

            return work
        if isinstance(stmt, ast.VarDecl):
            return self._compile_vardecl_work(stmt)
        return lambda frame: None  # ast.Nop

    def _compile_vardecl_work(self, stmt: ast.VarDecl
                              ) -> Callable[[list], None]:
        """``_compile_vardecl`` minus accounting and poll (see above)."""
        slot = self.slots[stmt.name]
        aggregate = isinstance(stmt.ctype, (ty.ArrayType, ty.StructType))
        if stmt.name in self.taken or aggregate:
            memory = self.engine.memory
            size = stmt.ctype.sizeof(self.pointer_size)
            storage = f"local.{stmt.name}"
            init_value: Optional[ExprFn] = None
            init_bytes: Optional[bytes] = None
            if stmt.init is not None and stmt.ctype.is_scalar():
                init_value = self._compile_expr(stmt.init)
            elif isinstance(stmt.init, ast.StringLiteral) and \
                    isinstance(stmt.ctype, ty.ArrayType):
                encoded = stmt.init.value.encode("latin-1", errors="replace")
                init_bytes = encoded[:stmt.ctype.length]
            ctype = stmt.ctype

            def work(frame: list, _mem=memory, _storage=storage, _size=size,
                     _slot=slot, _iv=init_value, _ib=init_bytes,
                     _ct=ctype) -> None:
                obj = _mem.allocate(_storage, _size, kind="local")
                frame[_slot] = obj
                if _iv is not None:
                    _mem.write(Pointer(obj, 0), _ct, _iv(frame))
                elif _ib is not None:
                    obj.data[0:len(_ib)] = _ib

            return work

        init = self._compile_expr(stmt.init) if stmt.init is not None else None
        wrap = _make_wrap(stmt.ctype) if stmt.ctype.is_integer() else None

        def work(frame: list, _slot=slot, _init=init, _wrap=wrap) -> None:
            if _init is None:
                frame[_slot] = 0
            else:
                value = _init(frame)
                if _wrap is not None and isinstance(value, int):
                    value = _wrap(value)
                frame[_slot] = value

        return work

    # -- trace inlining ---------------------------------------------------------

    def _compile_trace_work(self, stmt: ast.Stmt) -> Callable[[list], None]:
        """The work closure of a trace statement: calls splice inline.

        Identical to :meth:`_compile_work` except that, for the duration
        of this one statement's compilation, program calls lower through
        :meth:`_compile_inline_call` instead of entering a machine run.
        The per-statement slow path behind the same guard is compiled
        with the flag off, so a bailed window still runs the ordinary
        CALL-op machinery.
        """
        self._inline_calls = True
        try:
            return self._compile_work(stmt)
        finally:
            self._inline_calls = False

    def _compile_inline_call(self, expr: ast.Call) -> ExprFn:
        """Splice a leaf callee's body inline into the caller's frame.

        The callee's frame (return slot + locals/params) is flattened
        into a fresh block of extra caller-frame slots, and its body is
        compiled — with a sub-compiler whose slot map is shifted into
        that block — to a list of *units* ``(frame, acc) -> None`` that
        charge the trace accumulator exactly as the per-statement path
        charges the node: cost-and-count first, then the effect.  The
        call itself adds the function-entry overhead, resets the slot
        block (every invocation starts from unset slots, like a fresh
        frame), stores the raw argument values into the parameter slots
        and runs the units; the return slot then holds the result, with
        the same void-to-0 coercion as ``_invoke``.
        """
        engine = self.engine
        func = self.program.lookup_function(expr.callee)
        sub = _FunctionCompiler(engine, func)
        plan = sub.plan
        nslots = 1 + len(plan.slots)
        base = 1 + len(self.slots) + self.extra_slots
        self.extra_slots += nslots
        sub.slots = {name: base + index
                     for name, index in plan.slots.items()}
        # Argument expressions belong to the *caller* (nested calls in
        # them inline into their own slot blocks, allocated after this
        # one, so the blocks never alias).
        args = tuple(self._compile_expr(arg) for arg in expr.args)
        param_slots = tuple(base + p[0] for p in plan.params)
        body = func.body.stmts
        units = []
        if body and isinstance(body[-1], ast.Return):
            units = self._leaf_units(sub, body[:-1])
            units.append(self._leaf_return_unit(sub, body[-1], base))
        else:
            units = self._leaf_units(sub, body)
        template = [_UNSET] * nslots
        template[0] = plan.default_return
        engine.inlined_sites += 1
        acc = self._acc
        overhead = engine._overhead
        units = tuple(units)
        template = tuple(template)

        if len(args) == 1:
            def call1(frame: list, _a0=args[0], _s0=param_slots[0],
                      _b=base, _e=base + nslots, _tmpl=template,
                      _units=units, _acc=acc, _oh=overhead) -> RuntimeValue:
                v0 = _a0(frame)
                _acc[0] += _oh
                _acc[2] += 1
                frame[_b:_e] = _tmpl
                frame[_s0] = v0
                for unit in _units:
                    unit(frame, _acc)
                value = frame[_b]
                return value if value is not None else 0

            return call1
        if len(args) == 2:
            def call2(frame: list, _a0=args[0], _a1=args[1],
                      _s0=param_slots[0], _s1=param_slots[1], _b=base,
                      _e=base + nslots, _tmpl=template, _units=units,
                      _acc=acc, _oh=overhead) -> RuntimeValue:
                v0 = _a0(frame)
                v1 = _a1(frame)
                _acc[0] += _oh
                _acc[2] += 1
                frame[_b:_e] = _tmpl
                frame[_s0] = v0
                frame[_s1] = v1
                for unit in _units:
                    unit(frame, _acc)
                value = frame[_b]
                return value if value is not None else 0

            return call2

        def call(frame: list, _args=args, _ps=param_slots, _b=base,
                 _e=base + nslots, _tmpl=template, _units=units, _acc=acc,
                 _oh=overhead) -> RuntimeValue:
            values = [a(frame) for a in _args]
            _acc[0] += _oh
            _acc[2] += 1
            frame[_b:_e] = _tmpl
            for slot, value in zip(_ps, values):
                frame[slot] = value
            for unit in _units:
                unit(frame, _acc)
            value = frame[_b]
            return value if value is not None else 0

        return call

    def _leaf_units(self, sub: "_FunctionCompiler", stmts: list) -> list:
        """Compile a leaf body block into accumulator-charging units.

        Each unit replicates one per-statement op minus the end-of-time
        check and poll (both proven unobservable by the enclosing trace
        guard): it adds the statement's cost and count to the
        accumulator *before* running the effect, so a faulting effect
        leaves the accumulator exactly where the per-statement path's
        charge-then-execute order would.  ``if`` units charge before
        evaluating the condition — the per-statement order — then run
        the chosen branch's units.
        """
        units = []
        for stmt in stmts:
            cost = sub._stmt_cost(stmt)
            if isinstance(stmt, ast.If):
                cond = sub._compile_expr(stmt.cond)
                then_units = tuple(self._leaf_units(sub,
                                                    stmt.then_body.stmts))
                else_units = tuple(
                    self._leaf_units(sub, stmt.else_body.stmts)) \
                    if stmt.else_body is not None else ()

                def unit(frame: list, acc: list, _c=cost, _cond=cond,
                         _t=then_units, _e=else_units) -> None:
                    acc[0] += _c
                    acc[1] += 1
                    for inner in (_t if _cond(frame) != 0 else _e):
                        inner(frame, acc)
            else:
                work = sub._compile_work(stmt)

                def unit(frame: list, acc: list, _c=cost,
                         _w=work) -> None:
                    acc[0] += _c
                    acc[1] += 1
                    _w(frame)
            units.append(unit)
        return units

    def _leaf_return_unit(self, sub: "_FunctionCompiler", stmt: ast.Return,
                          ret_slot: int) -> Callable[[list, list], None]:
        """The trailing-return unit: charge, then set the return slot."""
        cost = sub._stmt_cost(stmt)
        value = sub._compile_expr(stmt.value) if stmt.value is not None \
            else None

        def unit(frame: list, acc: list, _c=cost, _v=value,
                 _rs=ret_slot) -> None:
            acc[0] += _c
            acc[1] += 1
            frame[_rs] = _v(frame) if _v is not None else None

        return unit

    # -- statements -------------------------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt, poll_after: bool = True) -> None:
        """Emit the ops for one statement.

        ``poll_after`` is False only for ``for``-loop init/update statements,
        which the tree-walker executes via ``_exec_stmt`` without the
        per-statement poll that ``_exec_block`` performs.
        """
        if isinstance(stmt, ast.Block):
            self._emit_entry(self._stmt_cost(stmt))
            self._compile_block(stmt)
            if poll_after:
                self._emit_poll()
        elif isinstance(stmt, ast.VarDecl):
            self._compile_vardecl(stmt, poll_after)
        elif isinstance(stmt, ast.Assign):
            self._compile_assign(stmt, poll_after)
        elif isinstance(stmt, ast.ExprStmt):
            self._compile_exprstmt(stmt, poll_after)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt, poll_after)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt, poll_after)
        elif isinstance(stmt, ast.DoWhile):
            self._compile_dowhile(stmt, poll_after)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt, poll_after)
        elif isinstance(stmt, ast.Return):
            self._compile_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._compile_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._compile_continue(stmt)
        elif isinstance(stmt, ast.Atomic):
            self._compile_atomic(stmt, poll_after)
        elif isinstance(stmt, ast.Nop):
            self._compile_nop(stmt, poll_after)
        else:
            # ``Post`` (must be lowered before simulation) and any unknown
            # statement kind: charge the cost, then fail — exactly like the
            # tree-walker, and only if the statement is actually reached.
            cost = self._stmt_cost(stmt)
            if isinstance(stmt, ast.Post):
                message = "post statements must be lowered before simulation"
            else:
                message = f"cannot execute {type(stmt).__name__}"
            consume = self.engine.node.consume
            cell = self.engine._stmt_cell

            def op(frame: list, _consume=consume, _cost=cost, _cell=cell,
                   _message=message) -> int:
                _cell[0] += 1
                _consume(_cost)
                raise RuntimeError(_message)

            self._emit(op)

    def _emit_entry(self, cost: int) -> int:
        """A bare statement-entry op: count, consume, fall through."""
        nxt = len(self.ops) + 1

        def op(frame: list, _n=self.node, _cost=cost, _cell=self._cell,
               _sf=self._sf, _nxt=nxt) -> int:
            _cell[0] += 1
            t = _n.time_cycles + _cost
            _n.time_cycles = t
            if _n.end_cycles and t >= _n.end_cycles:
                raise _sf()
            return _nxt

        return self._emit(op)

    def _emit_poll(self) -> int:
        nxt = len(self.ops) + 1

        def op(frame: list, _n=self.node, _eq=self._eq, _pi=self._pending,
               _poll=self._poll, _nxt=nxt) -> int:
            if (_eq and _eq[0][0] <= _n.time_cycles) or _pi:
                _poll()
            return _nxt

        return self._emit(op)

    def _emit_jump(self, target: int) -> int:
        def op(frame: list, _t=target) -> int:
            return _t

        return self._emit(op)

    def _emit_jump_pending(self, label: _Label) -> int:
        def maker(target: int) -> Op:
            def op(frame: list, _t=target) -> int:
                return _t

            return op

        return self._emit_pending(maker, label)

    # -- simple statements ------------------------------------------------------

    def _compile_call_stmt(self, cost: int, call: ast.Call,
                           store: Optional[Callable], poll_after: bool
                           ) -> None:
        """A statement-level program call: one CALL op on the frame stack.

        Replicates the recursive path exactly — statement entry accounting,
        argument evaluation order, lazy callee resolution, arity check,
        parameter setup and call overhead (the latter three inside
        ``_new_frame``) — but transfers control by pushing a
        :class:`CompiledFrame` instead of recursing into Python.  ``store``
        receives the return value in the caller's frame (``None``
        discards it).
        """
        args = tuple(self._compile_expr(arg) for arg in call.args)
        resume = len(self.ops) + 1
        engine = self.engine

        def op(frame: list, _eng=engine, _n=self.node, _cost=cost,
               _cell=self._cell, _sf=self._sf, _name=call.callee,
               _args=args, _cf_cell=[None], _store=store,
               _resume=resume) -> int:
            _cell[0] += 1
            t = _n.time_cycles + _cost
            _n.time_cycles = t
            if _n.end_cycles and t >= _n.end_cycles:
                raise _sf()
            cf = _cf_cell[0]
            if cf is None:
                cf = _eng._compiled.get(_name)
                if cf is None:
                    cf = _eng._compile_name(_name)
                _cf_cell[0] = cf
            callee = _eng._new_frame(cf, [a(frame) for a in _args])
            callee.ret_store = _store
            stack = _eng._stack
            stack[-1].pc = _resume
            stack.append(callee)
            return _CALL

        self._emit(op)
        if poll_after:
            self._emit_poll()

    def _compile_exprstmt(self, stmt: ast.ExprStmt, poll_after: bool) -> None:
        cost = self._stmt_cost(stmt)
        if isinstance(stmt.expr, ast.Call) and \
                stmt.expr.callee not in self.program.builtins:
            self._compile_call_stmt(cost, stmt.expr, None, poll_after)
            return
        value = self._compile_expr(stmt.expr)
        nxt = len(self.ops) + 1
        if poll_after:
            def op(frame: list, _n=self.node, _cost=cost, _v=value,
                   _cell=self._cell, _sf=self._sf, _eq=self._eq,
                   _pi=self._pending, _poll=self._poll, _nxt=nxt) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                _v(frame)
                if (_eq and _eq[0][0] <= _n.time_cycles) or _pi:
                    _poll()
                return _nxt
        else:
            def op(frame: list, _n=self.node, _cost=cost, _v=value,
                   _cell=self._cell, _sf=self._sf, _nxt=nxt) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                _v(frame)
                return _nxt
        self._emit(op)

    def _compile_nop(self, stmt: ast.Nop, poll_after: bool) -> None:
        self._emit_entry(self._stmt_cost(stmt))
        if poll_after:
            self._emit_poll()

    def _compile_vardecl(self, stmt: ast.VarDecl, poll_after: bool) -> None:
        cost = self._stmt_cost(stmt)
        slot = self.slots[stmt.name]
        nxt = len(self.ops) + 1
        aggregate = isinstance(stmt.ctype, (ty.ArrayType, ty.StructType))
        if stmt.name in self.taken or aggregate:
            memory = self.engine.memory
            size = stmt.ctype.sizeof(self.pointer_size)
            storage = f"local.{stmt.name}"
            init_value: Optional[ExprFn] = None
            init_bytes: Optional[bytes] = None
            if stmt.init is not None and stmt.ctype.is_scalar():
                init_value = self._compile_expr(stmt.init)
            elif isinstance(stmt.init, ast.StringLiteral) and \
                    isinstance(stmt.ctype, ty.ArrayType):
                encoded = stmt.init.value.encode("latin-1", errors="replace")
                init_bytes = encoded[:stmt.ctype.length]
            ctype = stmt.ctype

            def op(frame: list, _n=self.node, _cost=cost, _cell=self._cell,
                   _sf=self._sf, _mem=memory, _storage=storage, _size=size,
                   _slot=slot, _iv=init_value, _ib=init_bytes, _ct=ctype,
                   _dp=poll_after, _eq=self._eq, _pi=self._pending,
                   _poll=self._poll, _nxt=nxt) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                obj = _mem.allocate(_storage, _size, kind="local")
                frame[_slot] = obj
                if _iv is not None:
                    _mem.write(Pointer(obj, 0), _ct, _iv(frame))
                elif _ib is not None:
                    obj.data[0:len(_ib)] = _ib
                if _dp and ((_eq and _eq[0][0] <= _n.time_cycles) or _pi):
                    _poll()
                return _nxt

            self._emit(op)
            return

        init = self._compile_expr(stmt.init) if stmt.init is not None else None
        wrap = _make_wrap(stmt.ctype) if stmt.ctype.is_integer() else None

        def op(frame: list, _n=self.node, _cost=cost, _cell=self._cell,
               _sf=self._sf, _slot=slot, _init=init, _wrap=wrap,
               _dp=poll_after, _eq=self._eq, _pi=self._pending,
               _poll=self._poll, _nxt=nxt) -> int:
            _cell[0] += 1
            t = _n.time_cycles + _cost
            _n.time_cycles = t
            if _n.end_cycles and t >= _n.end_cycles:
                raise _sf()
            if _init is None:
                frame[_slot] = 0
            else:
                value = _init(frame)
                if _wrap is not None and isinstance(value, int):
                    value = _wrap(value)
                frame[_slot] = value
            if _dp and ((_eq and _eq[0][0] <= _n.time_cycles) or _pi):
                _poll()
            return _nxt

        self._emit(op)

    def _compile_assign(self, stmt: ast.Assign, poll_after: bool) -> None:
        cost = self._stmt_cost(stmt)
        if isinstance(stmt.rvalue, ast.Call) and \
                stmt.rvalue.callee not in self.program.builtins:
            self._compile_call_stmt(cost, stmt.rvalue,
                                    self._compile_store(stmt.lvalue),
                                    poll_after)
            return
        rvalue = self._compile_expr(stmt.rvalue)
        if poll_after and self._try_inline_assign(stmt, cost, rvalue):
            return
        store = self._compile_store(stmt.lvalue)
        nxt = len(self.ops) + 1
        if poll_after:
            def op(frame: list, _n=self.node, _cost=cost, _rv=rvalue,
                   _st=store, _cell=self._cell, _sf=self._sf, _eq=self._eq,
                   _pi=self._pending, _poll=self._poll, _nxt=nxt) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                _st(frame, _rv(frame))
                if (_eq and _eq[0][0] <= _n.time_cycles) or _pi:
                    _poll()
                return _nxt
        else:
            def op(frame: list, _n=self.node, _cost=cost, _rv=rvalue,
                   _st=store, _cell=self._cell, _sf=self._sf,
                   _nxt=nxt) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                _st(frame, _rv(frame))
                return _nxt
        self._emit(op)

    # -- control flow -----------------------------------------------------------

    def _compile_if(self, stmt: ast.If, poll_after: bool) -> None:
        cost = self._stmt_cost(stmt)
        cond = self._compile_expr(stmt.cond)
        then_index = len(self.ops) + 1
        else_label = _Label()

        def maker(else_index: int, _n=self.node, _cost=cost, _cond=cond,
                  _cell=self._cell, _sf=self._sf, _then=then_index) -> Op:
            def op(frame: list) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                return _then if _cond(frame) != 0 else else_index

            return op

        self._emit_pending(maker, else_label)
        self._compile_block(stmt.then_body)
        if stmt.else_body is not None:
            merge_label = _Label()
            self._emit_jump_pending(merge_label)
            self._bind(else_label)
            self._compile_block(stmt.else_body)
            self._bind(merge_label)
        else:
            self._bind(else_label)
        if poll_after:
            self._emit_poll()

    def _compile_while(self, stmt: ast.While, poll_after: bool) -> None:
        cost = self._stmt_cost(stmt)
        self._emit_entry(cost)
        cond = self._compile_expr(stmt.cond)
        branch_cycles = self.costs.branch_cycles
        exit_label = _Label()
        cond_label = _Label()
        self._bind(cond_label)
        loop_head = len(self.ops)
        burst = self._loop_burst(stmt, stmt.body.stmts,
                                 base_cost=branch_cycles)
        if burst is not None:
            if burst[4]:
                self._emit_trace_burst(burst, cond, branch_cycles,
                                       exit_label)
            else:
                self._emit_burst(burst, cond, branch_cycles, exit_label)
        else:
            rotated = self._rotated_burst_facts(stmt, branch_cycles)
            if rotated is not None:
                if rotated[7]:
                    self._emit_trace_rotated_burst(rotated, exit_label)
                else:
                    self._emit_rotated_burst(rotated, exit_label)
        cond_index = len(self.ops)
        body_index = cond_index + 1

        def maker(exit_index: int, _cond=cond, _n=self.node,
                  _bc=branch_cycles, _sf=self._sf, _body=body_index) -> Op:
            def op(frame: list) -> int:
                if _cond(frame) != 0:
                    t = _n.time_cycles + _bc
                    _n.time_cycles = t
                    if _n.end_cycles and t >= _n.end_cycles:
                        raise _sf()
                    return _body
                return exit_index

            return op

        self._emit_pending(maker, exit_label)
        self.loop_stack.append(
            _LoopCtx(exit_label, cond_label, self.atomic_depth))
        self._compile_block(stmt.body)
        self.loop_stack.pop()
        self._emit_jump(loop_head)
        self._bind(exit_label)
        if poll_after:
            self._emit_poll()

    def _compile_dowhile(self, stmt: ast.DoWhile, poll_after: bool) -> None:
        cost = self._stmt_cost(stmt)
        self._emit_entry(cost)
        body_index = len(self.ops)
        exit_label = _Label()
        cond_label = _Label()
        self.loop_stack.append(
            _LoopCtx(exit_label, cond_label, self.atomic_depth))
        self._compile_block(stmt.body)
        self.loop_stack.pop()
        self._bind(cond_label)
        cond = self._compile_expr(stmt.cond)
        exit_index = len(self.ops) + 1

        def op(frame: list, _cond=cond, _body=body_index,
               _exit=exit_index) -> int:
            return _body if _cond(frame) != 0 else _exit

        self._emit(op)
        self._bind(exit_label)
        if poll_after:
            self._emit_poll()

    def _compile_for(self, stmt: ast.For, poll_after: bool) -> None:
        cost = self._stmt_cost(stmt)
        self._emit_entry(cost)
        if stmt.init is not None:
            self._compile_stmt(stmt.init, poll_after=False)
        exit_label = _Label()
        update_label = _Label()
        cond = self._compile_expr(stmt.cond) if stmt.cond is not None \
            else None
        loop_head = len(self.ops)
        # A for-iteration charges no branch cycles (the condition op below
        # is free), so the burst's per-iteration cost is body + update.
        burst = self._loop_burst(stmt, stmt.body.stmts, stmt.update)
        if burst is not None:
            if burst[4]:
                self._emit_trace_burst(burst, cond, 0, exit_label)
            else:
                self._emit_burst(burst, cond, 0, exit_label)
        if cond is not None:
            cond_index = len(self.ops)
            body_index = cond_index + 1

            def maker(exit_index: int, _cond=cond, _body=body_index) -> Op:
                def op(frame: list) -> int:
                    return _body if _cond(frame) != 0 else exit_index

                return op

            self._emit_pending(maker, exit_label)
        self.loop_stack.append(
            _LoopCtx(exit_label, update_label, self.atomic_depth))
        self._compile_block(stmt.body)
        self.loop_stack.pop()
        self._bind(update_label)
        if stmt.update is not None:
            self._compile_stmt(stmt.update, poll_after=False)
        self._emit_jump(loop_head)
        self._bind(exit_label)
        if poll_after:
            self._emit_poll()

    def _compile_return(self, stmt: ast.Return) -> None:
        cost = self._stmt_cost(stmt)
        value = self._compile_expr(stmt.value) if stmt.value is not None \
            else None
        unwind = self.atomic_depth

        def maker(end_index: int, _n=self.node, _cost=cost, _v=value,
                  _cell=self._cell, _sf=self._sf, _unwind=unwind) -> Op:
            def op(frame: list) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                frame[_RET] = _v(frame) if _v is not None else None
                if _unwind:
                    _n.atomic_depth -= _unwind
                return end_index

            return op

        self._emit_pending(maker, self.end_label)

    def _compile_break(self, stmt: ast.Break) -> None:
        self._compile_loop_exit(stmt, continue_=False)

    def _compile_continue(self, stmt: ast.Continue) -> None:
        self._compile_loop_exit(stmt, continue_=True)

    def _compile_loop_exit(self, stmt: ast.Stmt, continue_: bool) -> None:
        cost = self._stmt_cost(stmt)
        consume = self.engine.node.consume
        cell = self._cell
        if not self.loop_stack:
            # The tree-walker would let the signal escape the function and
            # crash the simulation; fail with a clearer message, and only
            # when the statement is actually executed.
            def bad_op(frame: list, _consume=consume, _cost=cost,
                       _cell=cell) -> int:
                _cell[0] += 1
                _consume(_cost)
                raise RuntimeError("break/continue outside any loop")

            self._emit(bad_op)
            return
        ctx = self.loop_stack[-1]
        label = ctx.continue_label if continue_ else ctx.break_label
        unwind = self.atomic_depth - ctx.atomic_depth

        def maker(target: int, _n=self.node, _cost=cost, _cell=cell,
                  _sf=self._sf, _unwind=unwind) -> Op:
            def op(frame: list) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                if _unwind:
                    _n.atomic_depth -= _unwind
                return target

            return op

        self._emit_pending(maker, label)

    def _compile_atomic(self, stmt: ast.Atomic, poll_after: bool) -> None:
        self.has_atomic = True
        cost = self._stmt_cost(stmt)
        nxt = len(self.ops) + 1

        def enter(frame: list, _n=self.node, _cost=cost, _cell=self._cell,
                  _sf=self._sf, _nxt=nxt) -> int:
            _cell[0] += 1
            t = _n.time_cycles + _cost
            _n.time_cycles = t
            if _n.end_cycles and t >= _n.end_cycles:
                raise _sf()
            _n.atomic_depth += 1
            return _nxt

        self._emit(enter)
        self.atomic_depth += 1
        self._compile_block(stmt.body)
        self.atomic_depth -= 1
        exit_nxt = len(self.ops) + 1

        def leave(frame: list, _n=self.node, _nxt=exit_nxt) -> int:
            _n.atomic_depth -= 1
            return _nxt

        self._emit(leave)
        if poll_after:
            self._emit_poll()

    # -- stores -----------------------------------------------------------------

    def _try_inline_assign(self, stmt: ast.Assign, cost: int,
                           rvalue: ExprFn) -> bool:
        """Fuse the two hottest store shapes straight into the assign op.

        Covers (a) scalar locals that do not shadow a global and (b)
        integer globals whose memory object is already resolvable; both
        replicate ``_compile_store`` exactly, minus one closure call.
        """
        lvalue = stmt.lvalue
        if not isinstance(lvalue, ast.Identifier):
            return False
        name = lvalue.name
        nxt = len(self.ops) + 1
        slot = self.slots.get(name)
        if slot is not None and name not in self.taken and \
                name not in self.globals_:
            ctype = lvalue.ctype
            wrap = _make_wrap(ctype) if ctype is not None and \
                ctype.is_integer() else None

            def op(frame: list, _n=self.node, _cost=cost, _rv=rvalue,
                   _slot=slot, _w=wrap, _cell=self._cell, _sf=self._sf,
                   _eq=self._eq, _pi=self._pending, _poll=self._poll,
                   _nxt=nxt) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                value = _rv(frame)
                if frame[_slot] is _UNSET:
                    frame[_slot] = value
                elif _w is not None and isinstance(value, int):
                    frame[_slot] = _w(value)
                else:
                    frame[_slot] = value
                if (_eq and _eq[0][0] <= _n.time_cycles) or _pi:
                    _poll()
                return _nxt

            self._emit(op)
            return True
        if slot is None and name in self.globals_:
            ctype = lvalue.ctype or ty.UINT8
            var = self.program.lookup_global(name)
            if not isinstance(ctype, (ty.IntType, ty.BoolType, ty.CharType)) \
                    or var is None:
                return False
            size = ctype.sizeof(self.pointer_size)
            if size > max(var.ctype.sizeof(self.pointer_size), 1):
                return False
            obj = self.engine.memory.objects.get(name)
            if obj is None:
                return False
            mask = (1 << (8 * size)) - 1
            mwrite = self.engine._memory_write

            def op(frame: list, _n=self.node, _cost=cost, _rv=rvalue,
                   _obj=obj, _size=size, _mask=mask, _ct=ctype, _mw=mwrite,
                   _cell=self._cell, _sf=self._sf, _eq=self._eq,
                   _pi=self._pending, _poll=self._poll, _nxt=nxt) -> int:
                _cell[0] += 1
                t = _n.time_cycles + _cost
                _n.time_cycles = t
                if _n.end_cycles and t >= _n.end_cycles:
                    raise _sf()
                value = _rv(frame)
                if type(value) is int:
                    if _obj.pointer_slots:
                        _obj.pointer_slots.pop(0, None)
                    _obj.data[0:_size] = \
                        (value & _mask).to_bytes(_size, "little")
                else:
                    _mw(Pointer(_obj, 0), _ct, value)
                if (_eq and _eq[0][0] <= _n.time_cycles) or _pi:
                    _poll()
                return _nxt

            self._emit(op)
            return True
        return False

    def _compile_store(self, lvalue: ast.Expr
                       ) -> Callable[[list, RuntimeValue], None]:
        """A closure ``store(frame, value)`` mirroring ``_store``."""
        engine = self.engine
        if isinstance(lvalue, ast.Identifier):
            name = lvalue.name
            slot = self.slots.get(name)
            is_global = name in self.globals_
            if slot is not None and name not in self.taken:
                # Scalar local (or stray name): slot store with the
                # tree-walker's wrap rule; before the declaration executes,
                # fall back to its slot-miss behaviour.
                ctype = lvalue.ctype
                wrap = _make_wrap(ctype) if ctype is not None and \
                    ctype.is_integer() else None
                if is_global:
                    write_fallback = self._compile_global_write(lvalue)

                    def store(frame: list, value: RuntimeValue, _slot=slot,
                              _wrap=wrap, _fb=write_fallback) -> None:
                        if frame[_slot] is _UNSET:
                            _fb(frame, value)
                            return
                        if _wrap is not None and isinstance(value, int):
                            value = _wrap(value)
                        frame[_slot] = value
                else:
                    def store(frame: list, value: RuntimeValue, _slot=slot,
                              _wrap=wrap) -> None:
                        if frame[_slot] is _UNSET:
                            frame[_slot] = value
                            return
                        if _wrap is not None and isinstance(value, int):
                            value = _wrap(value)
                        frame[_slot] = value
                return store
            if slot is not None:
                # Address-taken local: normally a write through its memory
                # object, but the slot can also be unset (store before the
                # declaration executes — the tree-walker absorbs it into
                # the frame) or hold a scalar from such an earlier store.
                ctype = lvalue.ctype or ty.UINT8
                wrap = _make_wrap(lvalue.ctype) if lvalue.ctype is not None \
                    and lvalue.ctype.is_integer() else None
                mwrite = engine._memory_write
                locate_fallback = engine._locate_name
                shadows_global = name in self.globals_

                def store(frame: list, value: RuntimeValue, _slot=slot,
                          _ct=ctype, _mw=mwrite, _fb=locate_fallback,
                          _name=name, _w=wrap,
                          _g=shadows_global) -> None:
                    obj = frame[_slot]
                    if type(obj) is MemoryObject:
                        _mw(Pointer(obj, 0), _ct, value)
                    elif obj is _UNSET:
                        if _g:
                            _mw(_fb(_name), _ct, value)
                        else:
                            frame[_slot] = value
                    else:
                        if _w is not None and isinstance(value, int):
                            value = _w(value)
                        frame[_slot] = value

                return store
            if is_global:
                return self._compile_global_write(lvalue)

            # Neither local nor global nor stray (cannot normally happen —
            # strays got slots): mirror the tree-walker's error.
            def store(frame: list, value: RuntimeValue, _name=name) -> None:
                raise MemoryError_(f"no storage for {_name!r}")

            return store

        locate = self._compile_locate(lvalue)
        ctype = lvalue.ctype or ty.UINT8
        mwrite = engine._memory_write

        def store(frame: list, value: RuntimeValue, _loc=locate, _ct=ctype,
                  _mw=mwrite) -> None:
            _mw(_loc(frame), _ct, value)

        return store

    def _compile_global_write(self, lvalue: ast.Identifier
                              ) -> Callable[[list, RuntimeValue], None]:
        """Store to a global scalar, with an inlined integer fast path."""
        engine = self.engine
        name = lvalue.name
        ctype = lvalue.ctype or ty.UINT8
        objects_get = engine.memory.objects.get
        mwrite = engine._memory_write
        var = self.program.lookup_global(name)
        size = None
        if isinstance(ctype, (ty.IntType, ty.BoolType, ty.CharType)) and \
                var is not None:
            write_size = ctype.sizeof(self.pointer_size)
            if write_size <= max(var.ctype.sizeof(self.pointer_size), 1):
                size = write_size
        if size is None:
            def store(frame: list, value: RuntimeValue, _og=objects_get,
                      _name=name, _ct=ctype, _mw=mwrite) -> None:
                obj = _og(_name)
                if obj is None:
                    raise MemoryError_(f"no storage for {_name!r}")
                _mw(Pointer(obj, 0), _ct, value)

            return store

        mask = (1 << (8 * size)) - 1
        # Compiling on first call normally happens after boot(), so the
        # object can be resolved now and baked into the closure; fall back
        # to a per-store lookup when the node has not booted yet.
        known = objects_get(name)
        if known is not None:
            def store(frame: list, value: RuntimeValue, _obj=known,
                      _ct=ctype, _mw=mwrite, _size=size,
                      _mask=mask) -> None:
                if type(value) is int:
                    if _obj.pointer_slots:
                        _obj.pointer_slots.pop(0, None)
                    _obj.data[0:_size] = \
                        (value & _mask).to_bytes(_size, "little")
                else:
                    _mw(Pointer(_obj, 0), _ct, value)

            return store

        def store(frame: list, value: RuntimeValue, _og=objects_get,
                  _name=name, _ct=ctype, _mw=mwrite, _size=size,
                  _mask=mask) -> None:
            obj = _og(_name)
            if obj is None:
                raise MemoryError_(f"no storage for {_name!r}")
            if type(value) is int:
                if obj.pointer_slots:
                    obj.pointer_slots.pop(0, None)
                obj.data[0:_size] = (value & _mask).to_bytes(_size, "little")
            else:
                _mw(Pointer(obj, 0), _ct, value)

        return store

    # -- lvalue location --------------------------------------------------------

    def _compile_locate(self, lvalue: ast.Expr) -> Callable[[list], Pointer]:
        """A closure computing an lvalue's location; mirrors ``_locate``."""
        engine = self.engine
        if isinstance(lvalue, ast.Identifier):
            name = lvalue.name
            slot = self.slots.get(name)
            fallback = engine._locate_name
            if slot is not None and name in self.taken:
                def locate(frame: list, _slot=slot, _fb=fallback,
                           _name=name) -> Pointer:
                    obj = frame[_slot]
                    if type(obj) is MemoryObject:
                        return Pointer(obj, 0)
                    return _fb(_name)

                return locate

            def locate(frame: list, _fb=fallback, _name=name) -> Pointer:
                return _fb(_name)

            return locate
        if isinstance(lvalue, ast.Deref):
            pointer = self._compile_expr(lvalue.pointer)

            def locate(frame: list, _p=pointer) -> Pointer:
                return _as_pointer(_p(frame))

            return locate
        if isinstance(lvalue, ast.Index):
            base_type = lvalue.base.ctype
            index = self._compile_expr(lvalue.index)
            if isinstance(base_type, ty.ArrayType):
                base = self._compile_locate(lvalue.base)
                elem = base_type.element.sizeof(self.pointer_size)

                def locate(frame: list, _i=index, _b=base,
                           _e=elem) -> Pointer:
                    offset = _i(frame)
                    if not isinstance(offset, int):
                        raise MemoryError_("non-integer array index")
                    location = _b(frame)
                    return Pointer(location.obj,
                                   location.offset + offset * _e)

                return locate
            base_value = self._compile_expr(lvalue.base)
            elem = 1
            if base_type is not None:
                target = base_type.decay()
                if isinstance(target, ty.PointerType):
                    elem = target.target.sizeof(self.pointer_size)

            def locate(frame: list, _i=index, _b=base_value,
                       _e=elem) -> Pointer:
                offset = _i(frame)
                if not isinstance(offset, int):
                    raise MemoryError_("non-integer array index")
                location = _as_pointer(_b(frame))
                return Pointer(location.obj, location.offset + offset * _e)

            return locate
        if isinstance(lvalue, ast.Member):
            struct_type = lvalue.base.ctype
            if lvalue.arrow and isinstance(struct_type, ty.PointerType):
                struct_type = struct_type.target
            if not isinstance(struct_type, ty.StructType):
                def locate(frame: list) -> Pointer:
                    raise MemoryError_("member access on a non-struct value")

                return locate
            resolved = self.program.structs.get(struct_type.name) or \
                struct_type
            offset = resolved.field_offset(lvalue.fieldname,
                                           self.pointer_size)
            if lvalue.arrow:
                base_value = self._compile_expr(lvalue.base)

                def locate(frame: list, _b=base_value, _o=offset) -> Pointer:
                    location = _as_pointer(_b(frame))
                    return Pointer(location.obj, location.offset + _o)

                return locate
            base = self._compile_locate(lvalue.base)

            def locate(frame: list, _b=base, _o=offset) -> Pointer:
                location = _b(frame)
                return Pointer(location.obj, location.offset + _o)

            return locate
        kind = type(lvalue).__name__

        def locate(frame: list, _kind=kind) -> Pointer:
            raise MemoryError_(f"not an lvalue: {_kind}")

        return locate

    # -- expressions ------------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> ExprFn:
        if isinstance(expr, ast.IntLiteral):
            value = expr.value
            return lambda frame, _v=value: _v
        if isinstance(expr, ast.StringLiteral):
            literal = self.engine.memory.string_literal
            text = expr.value
            return lambda frame, _l=literal, _t=text: Pointer(_l(_t), 0)
        if isinstance(expr, ast.Identifier):
            return self._compile_identifier(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Deref):
            pointer = self._compile_expr(expr.pointer)
            ctype = expr.ctype or ty.UINT8
            mread = self.engine._memory_read

            def deref(frame: list, _p=pointer, _ct=ctype,
                      _mr=mread) -> RuntimeValue:
                return _mr(_as_pointer(_p(frame)), _ct)

            return deref
        if isinstance(expr, ast.AddressOf):
            return self._compile_locate(expr.lvalue)
        if isinstance(expr, (ast.Index, ast.Member)):
            if isinstance(expr.ctype, ty.ArrayType):
                return self._compile_locate(expr)
            locate = self._compile_locate(expr)
            ctype = expr.ctype or ty.UINT8
            mread = self.engine._memory_read

            def load(frame: list, _loc=locate, _ct=ctype,
                     _mr=mread) -> RuntimeValue:
                return _mr(_loc(frame), _ct)

            return load
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        if isinstance(expr, ast.Cast):
            return self._compile_cast(expr)
        if isinstance(expr, ast.SizeOf):
            value = expr.of_type.sizeof(self.pointer_size)
            return lambda frame, _v=value: _v
        if isinstance(expr, ast.Ternary):
            cond = self._compile_expr(expr.cond)
            then = self._compile_expr(expr.then)
            otherwise = self._compile_expr(expr.otherwise)

            def ternary(frame: list, _c=cond, _t=then,
                        _o=otherwise) -> RuntimeValue:
                return _t(frame) if _c(frame) != 0 else _o(frame)

            return ternary
        kind = type(expr).__name__

        def unknown(frame: list, _kind=kind) -> RuntimeValue:
            raise RuntimeError(f"cannot evaluate {_kind}")

        return unknown

    def _compile_identifier(self, expr: ast.Identifier) -> ExprFn:
        engine = self.engine
        name = expr.name
        slot = self.slots.get(name)
        if slot is not None:
            fallback_ct = expr.ctype
            fallback = engine._load_global_like
            if name in self.taken:
                # The slot may also hold a scalar stored before the
                # declaration executed — the tree-walker returns it as-is.
                is_array = isinstance(expr.ctype, ty.ArrayType)
                ctype = expr.ctype or ty.UINT8
                read = engine.memory.read
                if is_array:
                    def load(frame: list, _slot=slot, _fb=fallback,
                             _name=name, _fct=fallback_ct) -> RuntimeValue:
                        obj = frame[_slot]
                        if type(obj) is MemoryObject:
                            return Pointer(obj, 0)
                        if obj is _UNSET:
                            return _fb(_name, _fct)
                        return obj
                else:
                    def load(frame: list, _slot=slot, _fb=fallback,
                             _name=name, _fct=fallback_ct, _ct=ctype,
                             _rd=read) -> RuntimeValue:
                        obj = frame[_slot]
                        if type(obj) is MemoryObject:
                            return _rd(Pointer(obj, 0), _ct)
                        if obj is _UNSET:
                            return _fb(_name, _fct)
                        return obj
                return load

            if name in self._param_names:
                # Parameter slots are always populated at frame build, so
                # the pre-declaration check can be dropped entirely.
                return lambda frame, _slot=slot: frame[_slot]

            def load(frame: list, _slot=slot, _fb=fallback, _name=name,
                     _fct=fallback_ct) -> RuntimeValue:
                value = frame[_slot]
                if value is _UNSET:
                    return _fb(_name, _fct)
                return value

            return load

        # Global variable: the tree-walker reads with the *declared* type.
        var = self.program.lookup_global(name)
        ctype = var.ctype if var is not None else (expr.ctype or ty.UINT8)
        objects_get = engine.memory.objects.get
        fallback = engine._load_global_like
        fallback_ct = expr.ctype
        if isinstance(ctype, (ty.ArrayType, ty.StructType)):
            known = objects_get(name)
            if known is not None:
                return lambda frame, _obj=known: Pointer(_obj, 0)

            def load(frame: list, _og=objects_get, _name=name, _fb=fallback,
                     _fct=fallback_ct) -> RuntimeValue:
                obj = _og(_name)
                if obj is None:
                    return _fb(_name, _fct)
                return Pointer(obj, 0)

            return load
        if isinstance(ctype, ty.IntType):
            size = ctype.sizeof(self.pointer_size)
            # Bake the byte buffer when the node already booted (the normal
            # compile-on-first-call case); the buffer is mutated in place
            # and never replaced after boot.
            known = objects_get(name)
            if known is not None and not ctype.signed:
                data = known.data

                def load(frame: list, _data=data,
                         _size=size) -> RuntimeValue:
                    return int.from_bytes(_data[0:_size], "little")

                return load
            if not ctype.signed:
                def load(frame: list, _og=objects_get, _name=name,
                         _fb=fallback, _fct=fallback_ct,
                         _size=size) -> RuntimeValue:
                    obj = _og(_name)
                    if obj is None:
                        return _fb(_name, _fct)
                    return int.from_bytes(obj.data[0:_size], "little")

                return load
            maxv = ctype.max_value
            span = 1 << ctype.bits
            if known is not None:
                data = known.data

                def load(frame: list, _data=data, _size=size, _maxv=maxv,
                         _span=span) -> RuntimeValue:
                    raw = int.from_bytes(_data[0:_size], "little")
                    return raw - _span if raw > _maxv else raw

                return load

            def load(frame: list, _og=objects_get, _name=name, _fb=fallback,
                     _fct=fallback_ct, _size=size, _maxv=maxv,
                     _span=span) -> RuntimeValue:
                obj = _og(_name)
                if obj is None:
                    return _fb(_name, _fct)
                raw = int.from_bytes(obj.data[0:_size], "little")
                return raw - _span if raw > _maxv else raw

            return load
        if isinstance(ctype, ty.CharType):
            def load(frame: list, _og=objects_get, _name=name, _fb=fallback,
                     _fct=fallback_ct) -> RuntimeValue:
                obj = _og(_name)
                if obj is None:
                    return _fb(_name, _fct)
                raw = obj.data[0]
                return raw - 0x100 if raw > 0x7F else raw

            return load
        if isinstance(ctype, ty.PointerType):
            size = ctype.sizeof(self.pointer_size)
            known = objects_get(name)
            if known is not None:
                def load(frame: list, _obj=known, _size=size) -> RuntimeValue:
                    stored = _obj.pointer_slots.get(0)
                    if stored is not None:
                        return stored
                    return int.from_bytes(_obj.data[0:_size], "little")

                return load

            def load(frame: list, _og=objects_get, _name=name, _fb=fallback,
                     _fct=fallback_ct, _size=size) -> RuntimeValue:
                obj = _og(_name)
                if obj is None:
                    return _fb(_name, _fct)
                stored = obj.pointer_slots.get(0)
                if stored is not None:
                    return stored
                return int.from_bytes(obj.data[0:_size], "little")

            return load
        read = engine.memory.read

        def load(frame: list, _og=objects_get, _name=name, _fb=fallback,
                 _fct=fallback_ct, _ct=ctype, _rd=read) -> RuntimeValue:
            obj = _og(_name)
            if obj is None:
                return _fb(_name, _fct)
            return _rd(Pointer(obj, 0), _ct)

        return load

    def _compile_binary(self, expr: ast.BinaryOp) -> ExprFn:
        op = expr.op
        left = self._compile_expr(expr.left)
        right = self._compile_expr(expr.right)
        if op == "&&":
            def and_(frame: list, _l=left, _r=right) -> int:
                if _l(frame) == 0:
                    return 0
                return 1 if _r(frame) != 0 else 0

            return and_
        if op == "||":
            def or_(frame: list, _l=left, _r=right) -> int:
                if _l(frame) != 0:
                    return 1
                return 1 if _r(frame) != 0 else 0

            return or_
        if op in _COMPARISON_OPS:
            return self._compile_comparison(op, expr, left, right)
        intf = _INT_OPS.get(op)
        if intf is None:
            def bad(frame: list, _op=op) -> RuntimeValue:
                raise RuntimeError(f"unknown operator {_op!r}")

            return bad
        ctype = expr.ctype
        wrap = _make_wrap(ctype) if ctype is not None and \
            ctype.is_integer() else None
        left_elem = _elem_size(expr.left.ctype, self.pointer_size)
        right_elem = _elem_size(expr.right.ctype, self.pointer_size)

        def slow(a: RuntimeValue, b: RuntimeValue, _op=op, _f=intf,
                 _wrap=wrap, _le=left_elem, _re=right_elem) -> RuntimeValue:
            if isinstance(a, Pointer) or isinstance(b, Pointer):
                return _pointer_arith(_op, a, b, _le, _re, _le)
            result = _f(int(a), int(b))
            return _wrap(result) if _wrap is not None else result

        # Specialized shapes for the overwhelmingly common cases: unsigned
        # result types (wrap is a plain mask) and literal right operands.
        # These fold the operator and the wrap into the closure body,
        # saving two function calls per evaluation.
        rconst = expr.right.value if isinstance(expr.right, ast.IntLiteral) \
            else None
        unsigned = isinstance(ctype, ty.IntType) and not ctype.signed
        if unsigned:
            mask = (1 << ctype.bits) - 1
            fused = self._fused_masked_binop(op, left, right, rconst, mask,
                                             slow)
            if fused is not None:
                return fused
        if rconst is not None:
            if wrap is not None:
                def binop(frame: list, _l=left, _c=rconst, _f=intf, _w=wrap,
                          _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return _w(_f(a, _c))
                    return _s(a, _c)
            else:
                def binop(frame: list, _l=left, _c=rconst, _f=intf,
                          _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return _f(a, _c)
                    return _s(a, _c)
            return binop
        if wrap is not None:
            def binop(frame: list, _l=left, _r=right, _f=intf, _w=wrap,
                      _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return _w(_f(a, b))
                return _s(a, b)
        else:
            def binop(frame: list, _l=left, _r=right, _f=intf,
                      _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return _f(a, b)
                return _s(a, b)
        return binop

    def _fused_masked_binop(self, op: str, left: ExprFn, right: ExprFn,
                            rconst: Optional[int], mask: int,
                            slow: Callable) -> Optional[ExprFn]:
        """Inline ``(a <op> b) & mask`` shapes for unsigned results."""
        if rconst is not None:
            c = rconst
            if op == "+":
                def f(frame: list, _l=left, _c=c, _m=mask,
                      _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return (a + _c) & _m
                    return _s(a, _c)
            elif op == "-":
                def f(frame: list, _l=left, _c=c, _m=mask,
                      _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return (a - _c) & _m
                    return _s(a, _c)
            elif op == "*":
                def f(frame: list, _l=left, _c=c, _m=mask,
                      _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return (a * _c) & _m
                    return _s(a, _c)
            elif op == "&":
                def f(frame: list, _l=left, _c=c, _m=mask,
                      _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return (a & _c) & _m
                    return _s(a, _c)
            elif op == "|":
                def f(frame: list, _l=left, _c=c, _m=mask,
                      _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return (a | _c) & _m
                    return _s(a, _c)
            elif op == "^":
                def f(frame: list, _l=left, _c=c, _m=mask,
                      _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return (a ^ _c) & _m
                    return _s(a, _c)
            elif op == "<<":
                shift = c & 31

                def f(frame: list, _l=left, _c=c, _sh=shift, _m=mask,
                      _s=slow) -> RuntimeValue:
                    a = _l(frame)
                    if type(a) is int:
                        return (a << _sh) & _m
                    return _s(a, _c)
            else:
                return None
            return f
        if op == "+":
            def f(frame: list, _l=left, _r=right, _m=mask,
                  _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return (a + b) & _m
                return _s(a, b)
        elif op == "-":
            def f(frame: list, _l=left, _r=right, _m=mask,
                  _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return (a - b) & _m
                return _s(a, b)
        elif op == "*":
            def f(frame: list, _l=left, _r=right, _m=mask,
                  _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return (a * b) & _m
                return _s(a, b)
        elif op == "&":
            def f(frame: list, _l=left, _r=right, _m=mask,
                  _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return (a & b) & _m
                return _s(a, b)
        elif op == "|":
            def f(frame: list, _l=left, _r=right, _m=mask,
                  _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return (a | b) & _m
                return _s(a, b)
        elif op == "^":
            def f(frame: list, _l=left, _r=right, _m=mask,
                  _s=slow) -> RuntimeValue:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return (a ^ b) & _m
                return _s(a, b)
        else:
            return None
        return f

    def _compile_comparison(self, op: str, expr: ast.BinaryOp, left: ExprFn,
                            right: ExprFn) -> ExprFn:
        if isinstance(expr.right, ast.IntLiteral):
            c = expr.right.value
            if op == "==":
                def cmp_c(frame: list, _l=left, _c=c) -> int:
                    a = _l(frame)
                    if type(a) is int:
                        return 1 if a == _c else 0
                    return _compare_rt("==", a, _c)
            elif op == "!=":
                def cmp_c(frame: list, _l=left, _c=c) -> int:
                    a = _l(frame)
                    if type(a) is int:
                        return 1 if a != _c else 0
                    return _compare_rt("!=", a, _c)
            elif op == "<":
                def cmp_c(frame: list, _l=left, _c=c) -> int:
                    a = _l(frame)
                    if type(a) is int:
                        return 1 if a < _c else 0
                    return _compare_rt("<", a, _c)
            elif op == "<=":
                def cmp_c(frame: list, _l=left, _c=c) -> int:
                    a = _l(frame)
                    if type(a) is int:
                        return 1 if a <= _c else 0
                    return _compare_rt("<=", a, _c)
            elif op == ">":
                def cmp_c(frame: list, _l=left, _c=c) -> int:
                    a = _l(frame)
                    if type(a) is int:
                        return 1 if a > _c else 0
                    return _compare_rt(">", a, _c)
            else:
                def cmp_c(frame: list, _l=left, _c=c) -> int:
                    a = _l(frame)
                    if type(a) is int:
                        return 1 if a >= _c else 0
                    return _compare_rt(">=", a, _c)
            return cmp_c
        if op == "==":
            def cmp_(frame: list, _l=left, _r=right) -> int:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return 1 if a == b else 0
                return _compare_rt("==", a, b)
        elif op == "!=":
            def cmp_(frame: list, _l=left, _r=right) -> int:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return 1 if a != b else 0
                return _compare_rt("!=", a, b)
        elif op == "<":
            def cmp_(frame: list, _l=left, _r=right) -> int:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return 1 if a < b else 0
                return _compare_rt("<", a, b)
        elif op == "<=":
            def cmp_(frame: list, _l=left, _r=right) -> int:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return 1 if a <= b else 0
                return _compare_rt("<=", a, b)
        elif op == ">":
            def cmp_(frame: list, _l=left, _r=right) -> int:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return 1 if a > b else 0
                return _compare_rt(">", a, b)
        else:
            def cmp_(frame: list, _l=left, _r=right) -> int:
                a = _l(frame)
                b = _r(frame)
                if type(a) is int and type(b) is int:
                    return 1 if a >= b else 0
                return _compare_rt(">=", a, b)
        return cmp_

    def _compile_unary(self, expr: ast.UnaryOp) -> ExprFn:
        operand = self._compile_expr(expr.operand)
        op = expr.op
        if op == "!":
            def not_(frame: list, _o=operand) -> int:
                return 0 if _o(frame) != 0 else 1

            return not_
        ctype = expr.ctype
        wrap = _make_wrap(ctype) if ctype is not None and \
            ctype.is_integer() else None
        if op == "-":
            def neg(frame: list, _o=operand, _w=wrap) -> RuntimeValue:
                value = _o(frame)
                if isinstance(value, Pointer):
                    return value
                result = -int(value)
                return _w(result) if _w is not None else result

            return neg
        if op == "~":
            def inv(frame: list, _o=operand, _w=wrap) -> RuntimeValue:
                value = _o(frame)
                if isinstance(value, Pointer):
                    return value
                result = ~int(value)
                return _w(result) if _w is not None else result

            return inv

        def bad(frame: list, _o=operand, _op=op) -> RuntimeValue:
            _o(frame)
            raise RuntimeError(f"unknown unary operator {_op!r}")

        return bad

    def _compile_cast(self, expr: ast.Cast) -> ExprFn:
        operand = self._compile_expr(expr.operand)
        target = expr.target_type
        if target.is_integer():
            wrap = _make_wrap(target)

            def cast_int(frame: list, _o=operand, _w=wrap) -> RuntimeValue:
                value = _o(frame)
                if isinstance(value, int):
                    return _w(value)
                return value

            return cast_int
        if target.is_pointer():
            def cast_ptr(frame: list, _o=operand) -> RuntimeValue:
                value = _o(frame)
                if isinstance(value, int) and value == 0:
                    return 0
                return value

            return cast_ptr
        return operand

    def _compile_call(self, expr: ast.Call) -> ExprFn:
        name = expr.callee
        if self._inline_calls and name not in self.program.builtins:
            # Compiling a trace work closure: the run former already
            # proved every callee of this statement leaf-inlinable.
            return self._compile_inline_call(expr)
        args = tuple(self._compile_expr(arg) for arg in expr.args)
        if name in self.program.builtins:
            call_builtin = self.engine.node.call_builtin

            def call(frame: list, _cb=call_builtin, _name=name,
                     _args=args) -> RuntimeValue:
                return _cb(_name, [a(frame) for a in _args])

            return call
        # Expression-position call (nested inside a larger expression):
        # enters a nested machine run via Python recursion.  Statement-level
        # calls never reach this path — they lower to CALL ops.
        engine = self.engine

        def call(frame: list, _cf_cell=[None], _eng=engine,
                 _name=name, _args=args) -> RuntimeValue:
            cf = _cf_cell[0]
            if cf is None:
                cf = _eng._compiled.get(_name)
                if cf is None:
                    cf = _eng._compile_name(_name)
                _cf_cell[0] = cf
            result = _eng._run_machine(
                _eng._new_frame(cf, [a(frame) for a in _args]))
            return result if result is not None else 0

        return call
